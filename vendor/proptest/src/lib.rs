//! An offline, dependency-free drop-in subset of the `proptest` API.
//!
//! Vendored so the workspace tests run in air-gapped environments. It
//! keeps the property-testing model — strategies compose with
//! `prop_map`/`prop_flat_map`, `proptest!` runs each property over many
//! generated cases, `prop_assert*` failures report the failing inputs —
//! with two simplifications relative to upstream:
//!
//! * **Deterministic seeding.** Case `k` of property `p` always sees the
//!   same inputs (seeded from the property name and `k`), so failures
//!   reproduce without a regression file.
//! * **No shrinking.** A failing case reports its generated inputs
//!   as-is.
//!
//! Only the surface this workspace uses is implemented: integer-range
//! strategies, `any::<T>()` for primitives, tuple strategies,
//! [`collection::vec`], [`Just`], and [`ProptestConfig::with_cases`].

use std::fmt;
use std::ops::Range;

pub mod prelude {
    //! Everything a `proptest!` test module needs in scope.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it does not count
    /// against the property.
    Reject(String),
}

/// The deterministic per-case generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f` of this strategy's values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy that generates a value, builds a second strategy from
    /// it, and draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<V> {
    inner: std::rc::Rc<dyn Strategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )+};
}

impl_range_strategy_float!(f32, f64);

/// Marker for types `any::<T>()` can generate.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Raw bit patterns: covers negatives, subnormals, infinities and
        // NaN, like upstream's full `f64` domain.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies.

    use super::{fmt, Range, Strategy, TestRng};

    /// Acceptable size arguments for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Drive one property over `cfg.cases` generated cases.
///
/// Used by the [`proptest!`] expansion; not part of the upstream API.
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for k in 0..cfg.cases as u64 {
        let mut rng = TestRng::for_case(name, k);
        match case(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest property `{name}` failed at case {k}: {msg}")
            }
        }
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, stringify!($name), |__rng| {
                let mut __inputs = ::std::string::String::new();
                $crate::__proptest_bind! { (__rng, __inputs) $($params)* }
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        ::std::result::Result::Err($crate::TestCaseError::Fail(
                            ::std::format!("{__msg}\n  inputs:{__inputs}"),
                        ))
                    }
                    __other => __other,
                }
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Internal parameter-list muncher for [`proptest!`]: each parameter is
/// either `pattern in strategy` or `name: Type` (shorthand for
/// `name in any::<Type>()`).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    (($rng:ident, $inputs:ident)) => {};
    (($rng:ident, $inputs:ident) $pat:pat in $strat:expr) => {
        $crate::__proptest_bind! { (($rng, $inputs)) one $pat in $strat }
    };
    (($rng:ident, $inputs:ident) $pat:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_bind! { (($rng, $inputs)) one $pat in $strat }
        $crate::__proptest_bind! { ($rng, $inputs) $($rest)* }
    };
    (($rng:ident, $inputs:ident) $var:ident : $ty:ty) => {
        $crate::__proptest_bind! { (($rng, $inputs)) one $var in $crate::any::<$ty>() }
    };
    (($rng:ident, $inputs:ident) $var:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_bind! { (($rng, $inputs)) one $var in $crate::any::<$ty>() }
        $crate::__proptest_bind! { ($rng, $inputs) $($rest)* }
    };
    ((($rng:ident, $inputs:ident)) one $pat:pat in $strat:expr) => {
        let __value = $crate::Strategy::generate(&($strat), $rng);
        $inputs.push_str(&::std::format!(
            "\n    {} = {:?}", stringify!($pat), __value
        ));
        let $pat = __value;
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Skip the current case unless `cond` holds (does not fail the
/// property).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = super::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let i = (-9i64..-2).generate(&mut rng);
            assert!((-9..-2).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_honors_size_and_composition() {
        let strat = super::collection::vec((0usize..5, any::<bool>()), 2..10);
        let mut rng = super::TestRng::for_case("vecs", 3);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|&(n, _)| n < 5));
        }
    }

    #[test]
    fn flat_map_threads_the_outer_value() {
        let strat = (1usize..8)
            .prop_flat_map(|m| super::collection::vec(0..m, 1..20).prop_map(move |v| (m, v)));
        let mut rng = super::TestRng::for_case("flat", 1);
        for _ in 0..200 {
            let (m, v) = strat.generate(&mut rng);
            assert!(v.iter().all(|&x| x < m));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = super::TestRng::for_case("p", 4).next_u64();
        let b = super::TestRng::for_case("p", 4).next_u64();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn the_macro_itself_works((a, b) in (0i64..100, 0i64..100), flip in any::<bool>()) {
            prop_assume!(a != 99);
            let sum = if flip { a + b } else { b.wrapping_add(a) };
            prop_assert_eq!(sum, a + b);
            prop_assert!(sum >= a, "sum {} < a {}", sum, a);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        super::run_cases(&ProptestConfig::with_cases(10), "always_fails", |_rng| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }
}
