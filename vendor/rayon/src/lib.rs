//! An offline, dependency-free drop-in subset of the `rayon` API.
//!
//! This workspace builds in air-gapped environments where crates.io is
//! unreachable, so the registry `rayon` is replaced by this vendored
//! shim. It implements exactly the surface the workspace uses — slice
//! and range parallel iterators with `map`/`zip` adapters and
//! `for_each`/`try_for_each`/`collect` terminals, `join`,
//! `current_num_threads`, and scoped `ThreadPool::install` — with real
//! data parallelism on `std::thread::scope`.
//!
//! Semantics intentionally preserved from rayon:
//! * terminal operations preserve input order (`collect` is positional),
//! * a panic inside a worker closure propagates to the caller
//!   (`catch_unwind` around a parallel call contains it),
//! * `ThreadPool::install` bounds the parallelism of the parallel calls
//!   made inside it,
//! * `join` runs both closures, possibly concurrently, and returns both
//!   results.
//!
//! Not implemented (unused here): work stealing, nested-pool
//! propagation into worker threads, the full adapter zoo, `scope`,
//! `par_sort`.

use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::ops::Range;
use std::panic::resume_unwind;
use std::thread;

pub mod prelude {
    //! The traits that put `par_iter`/`par_chunks`/`into_par_iter` in scope.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// The number of threads parallel calls on this thread will use.
///
/// Inside [`ThreadPool::install`] this is the pool's configured size;
/// elsewhere it is the host's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Run both closures, potentially in parallel, and return both results.
///
/// A panic in either closure resumes on the caller once both have
/// finished, matching rayon's containment contract.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(oper_b);
        let ra = oper_a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => resume_unwind(payload),
        }
    })
}

/// Builder for a bounded [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with the default (host parallelism) size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `num_threads` workers.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Build the pool. Never fails in this shim; the `Result` mirrors
    /// the rayon signature so call sites keep their error handling.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads.unwrap_or_else(default_threads).max(1),
        })
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl Error for ThreadPoolBuildError {}

/// A bounded scope for parallel calls: inside [`ThreadPool::install`],
/// [`current_num_threads`] — and therefore the fan-out of every parallel
/// iterator terminal — is the pool's configured size.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count bounding parallel calls.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|c| c.replace(Some(self.threads))));
        op()
    }

    /// The pool's configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// A materialized parallel iterator: a positional list of base items and
/// the composed per-item transform applied on worker threads.
pub struct Par<B, F> {
    base: Vec<B>,
    f: F,
}

fn ident<T>(t: T) -> T {
    t
}

/// The identity transform used by the base constructors.
pub type Id<T> = fn(T) -> T;

fn execute<B, R, F>(base: Vec<B>, f: F) -> Vec<R>
where
    B: Send,
    R: Send,
    F: Fn(B) -> R + Sync,
{
    let len = base.len();
    let threads = current_num_threads().max(1);
    let chunk = len.div_ceil(threads.max(1)).max(1);
    if threads == 1 || len <= 1 || chunk >= len {
        return base.into_iter().map(f).collect();
    }
    let mut chunks: Vec<Vec<B>> = Vec::with_capacity(threads);
    let mut it = base.into_iter();
    loop {
        let c: Vec<B> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let parts: Vec<Vec<R>> = thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    });
    parts.into_iter().flatten().collect()
}

impl<B, I, F> Par<B, F>
where
    B: Send,
    I: Send,
    F: Fn(B) -> I + Sync,
{
    /// Transform every item with `g`.
    pub fn map<R, G>(self, g: G) -> Par<B, impl Fn(B) -> R + Sync>
    where
        R: Send,
        G: Fn(I) -> R + Sync,
    {
        let f = self.f;
        Par {
            base: self.base,
            f: move |b| g(f(b)),
        }
    }

    /// Pair this iterator positionally with `other` (shorter length wins).
    #[allow(clippy::type_complexity)]
    pub fn zip<B2, I2, F2>(
        self,
        other: Par<B2, F2>,
    ) -> Par<(B, B2), impl Fn((B, B2)) -> (I, I2) + Sync>
    where
        B2: Send,
        I2: Send,
        F2: Fn(B2) -> I2 + Sync,
    {
        let base: Vec<(B, B2)> = self.base.into_iter().zip(other.base).collect();
        let (fa, fb) = (self.f, other.f);
        Par {
            base,
            f: move |(a, b)| (fa(a), fb(b)),
        }
    }

    /// Run `g` on every item, in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(I) + Sync,
    {
        let f = self.f;
        execute(self.base, move |b| g(f(b)));
    }

    /// Run `g` on every item; return the first error in positional order.
    pub fn try_for_each<E, G>(self, g: G) -> Result<(), E>
    where
        E: Send,
        G: Fn(I) -> Result<(), E> + Sync,
    {
        let f = self.f;
        execute(self.base, move |b| g(f(b))).into_iter().collect()
    }

    /// Collect the transformed items, preserving input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I>,
    {
        let f = self.f;
        execute(self.base, f).into_iter().collect()
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// The element type produced.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Item, Id<Self::Item>>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> Par<T, Id<T>> {
        Par {
            base: self,
            f: ident,
        }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> Par<usize, Id<usize>> {
        Par {
            base: self.collect(),
            f: ident,
        }
    }
}

/// `par_iter()` for slices (and, via deref, `Vec`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type produced (a shared reference).
    type Item: Send;
    /// A parallel iterator over shared references.
    fn par_iter(&'a self) -> Par<Self::Item, Id<Self::Item>>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> Par<&'a T, Id<&'a T>> {
        Par {
            base: self.iter().collect(),
            f: ident,
        }
    }
}

/// `par_iter_mut()` for slices (and, via deref, `Vec`).
pub trait IntoParallelRefMutIterator<'a> {
    /// The element type produced (an exclusive reference).
    type Item: Send;
    /// A parallel iterator over exclusive references.
    fn par_iter_mut(&'a mut self) -> Par<Self::Item, Id<Self::Item>>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> Par<&'a mut T, Id<&'a mut T>> {
        Par {
            base: self.iter_mut().collect(),
            f: ident,
        }
    }
}

/// `par_chunks()` on slices.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over contiguous `chunk_size`-sized pieces.
    fn par_chunks(&self, chunk_size: usize) -> Par<&[T], Id<&[T]>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<&[T], Id<&[T]>> {
        Par {
            base: self.chunks(chunk_size.max(1)).collect(),
            f: ident,
        }
    }
}

/// `par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator over exclusive contiguous pieces.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<&mut [T], Id<&mut [T]>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<&mut [T], Id<&mut [T]>> {
        Par {
            base: self.chunks_mut(chunk_size.max(1)).collect(),
            f: ident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..10_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_chains_match_serial() {
        let a: Vec<i64> = (0..1000).map(|i| i as i64).collect();
        let b: Vec<i64> = (0..1000).map(|i| (i * 3) as i64).collect();
        let mut out = vec![0i64; 1000];
        out.par_chunks_mut(97)
            .zip(a.par_chunks(97))
            .zip(b.par_chunks(97))
            .for_each(|((o, x), y)| {
                for ((oi, xi), yi) in o.iter_mut().zip(x).zip(y) {
                    *oi = xi + yi;
                }
            });
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i * 4) as i64));
    }

    #[test]
    fn try_for_each_returns_first_error() {
        let r: Result<(), usize> =
            (0..100)
                .into_par_iter()
                .try_for_each(|i| if i >= 40 { Err(i) } else { Ok(()) });
        assert_eq!(r, Err(40));
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let ok: Result<Vec<usize>, ()> = (0..50).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 50);
        let err: Result<Vec<usize>, usize> = (0..50)
            .into_par_iter()
            .map(|i| if i == 7 { Err(i) } else { Ok(i) })
            .collect();
        assert_eq!(err, Err(7));
    }

    #[test]
    fn panic_in_worker_propagates() {
        let caught = std::panic::catch_unwind(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                if i == 33 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn install_bounds_current_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 2);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!((a, b.as_str()), (2, "x"));
        assert!(std::panic::catch_unwind(|| join(|| panic!("left"), || 0)).is_err());
    }
}
