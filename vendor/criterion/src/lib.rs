//! An offline, dependency-free drop-in subset of the `criterion` API.
//!
//! Vendored so the workspace's bench targets compile and run in
//! air-gapped environments. Each benchmark runs its closure for the
//! configured warm-up and measurement windows and prints the median
//! iteration time; there are no statistical comparisons, plots or
//! reports. Sufficient for smoke-running the suite and eyeballing
//! relative numbers — the repo's regression gate lives in
//! `examples/bench_report.rs`, not here.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding `value` or the work behind it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

/// Measurement backends. Only wall-clock time is implemented; the module
/// exists so signatures written against upstream
/// (`BenchmarkGroup<'_, measurement::WallTime>`) compile unchanged.
pub mod measurement {
    /// Marker for a way of measuring a benchmark iteration.
    pub trait Measurement {}

    /// Wall-clock time (the default and only backend here).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;

    impl Measurement for WallTime {}
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            _parent: self,
            _measure: std::marker::PhantomData,
        }
    }

    /// Benchmark `f` directly under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, warm_up, measurement) =
            (self.sample_size, self.warm_up, self.measurement);
        run_one(id, sample_size, warm_up, measurement, f);
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M: measurement::Measurement = measurement::WallTime> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _parent: &'a mut Criterion,
    _measure: std::marker::PhantomData<M>,
}

impl<M: measurement::Measurement> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Record the per-iteration throughput basis (printed, not analyzed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let _ = t;
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.warm_up, self.measurement, f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size,
            self.warm_up,
            self.measurement,
            |b| f(b, input),
        );
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The per-iteration throughput basis.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the measured closure; handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Time `routine`, repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / iters);
    }
}

fn run_one<F>(label: &str, sample_size: usize, warm_up: Duration, measurement: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run until the window closes, and learn how many
    // iterations one sample should batch to stay within the
    // measurement window.
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    let warm_start = Instant::now();
    let mut warm_runs: u32 = 0;
    while warm_start.elapsed() < warm_up || warm_runs == 0 {
        f(&mut b);
        warm_runs += 1;
    }
    let per_run = warm_start.elapsed() / warm_runs.max(1);
    let budget_per_sample = measurement / sample_size.max(1) as u32;
    let iters = if per_run.is_zero() {
        1
    } else {
        (budget_per_sample.as_nanos() / per_run.as_nanos().max(1)).clamp(1, 1_000_000) as u32
    };

    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!("bench {label}: median {median:?} ({sample_size} samples × {iters} iters)");
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Produce `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("tiny");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..k).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
