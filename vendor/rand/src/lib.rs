//! An offline, dependency-free drop-in subset of the `rand` API.
//!
//! Vendored so the workspace builds in air-gapped environments. Provides
//! the surface the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and the [`Rng`] methods `gen_range`, `gen_bool` and
//! `gen` over the primitive types. The generator is splitmix64 — fast,
//! full-period over the seed space and deterministic, which is all the
//! deterministic test-data generators here need (no cryptographic claims,
//! and streams differ from upstream `rand`).

use std::ops::Range;

/// Types that can be uniformly sampled from a [`Range`].
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.abs_diff(range.start) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias of
                // a 64-bit draw against test-sized spans is irrelevant here.
                let draw = rng.next_u64() as u128 % span;
                range.start.wrapping_add(draw as $t)
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Produce one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The raw 64-bit source every generator implements.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling methods, blanket-implemented for any
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `[low, high)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// One value of the `Standard` distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_differ_by_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..100).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-50i64..-10);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
