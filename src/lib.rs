#![warn(missing_docs)]

//! # multiprefix-suite
//!
//! Umbrella crate for the reproduction of Sheffler's *Implementing the
//! Multiprefix Operation on Parallel and Vector Computers* (SPAA 1993 /
//! CMU-CS-92-173). It re-exports the five member crates and hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`).
//!
//! * [`multiprefix`] — the operation itself: serial, spinetree (the
//!   paper's `O(√n)`-step CRCW-ARB algorithm), blocked-rayon and atomic
//!   engines, plus the derived primitives (segmented scans, fetch-and-op,
//!   histogram, plain scans);
//! * [`pram`] — a synchronous PRAM simulator that checks the paper's
//!   step/work/EREW claims and the CRCW-PLUS simulation theorem;
//! * [`cray_sim`] — an executable cost model of the CRAY Y-MP used to
//!   regenerate every table and figure of the evaluation;
//! * [`mp_sort`] — integer sorting (Figure 11) and the NAS IS workload;
//! * [`spmv`] — sparse-matrix × vector via CSR, jagged-diagonal and
//!   multireduce (Figure 12).
//!
//! Start with `cargo run --example quickstart`, then see DESIGN.md for the
//! system inventory and EXPERIMENTS.md for paper-vs-measured results.

pub use cray_sim;
pub use mp_sort;
pub use multiprefix;
pub use pram;
pub use spmv;
