//! Scan substrate: serial vs partition-method (the §5.1.1 recurrence
//! solver) vs the degenerate single-label multiprefix.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use multiprefix::op::Plus;
use multiprefix::scan::{exclusive_scan_partition, exclusive_scan_serial};
use multiprefix::{multiprefix, Engine};
use std::time::Duration;

fn bench_scan(c: &mut Criterion) {
    let n = 4_000_000usize;
    let values: Vec<i64> = (0..n as i64).map(|i| i % 13 - 6).collect();
    let labels = vec![0usize; n];

    let mut group = c.benchmark_group("scan");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));

    group.bench_function("serial", |b| {
        b.iter(|| exclusive_scan_serial(&values, Plus))
    });
    group.bench_function("partition_method", |b| {
        b.iter(|| exclusive_scan_partition(&values, Plus))
    });
    group.bench_function("single_label_multiprefix_blocked", |b| {
        b.iter(|| multiprefix(&values, &labels, 1, Plus, Engine::Blocked).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
