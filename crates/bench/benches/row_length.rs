//! §4.4 ablation on the host: does the row-length choice matter off-Cray?
//! (On a cached multicore the effect is memory-locality-shaped rather than
//! bank-shaped, but the sweep is the same experiment.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mp_bench::lcg_labels;
use multiprefix::op::Plus;
use multiprefix::spinetree::build::ArbPolicy;
use multiprefix::spinetree::engine::multiprefix_spinetree_instrumented;
use multiprefix::spinetree::layout::{choose_row_len_skewed, Layout};
use std::time::Duration;

fn bench_row_length(c: &mut Criterion) {
    let n = 1_000_000usize;
    let m = n / 16;
    let values: Vec<i64> = vec![1; n];
    let labels = lcg_labels(n, m, 1);

    let mut group = c.benchmark_group("row_length");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));

    for &factor in &[0.25f64, 0.5, 0.749, 1.0, 2.0, 4.0] {
        let row_len = choose_row_len_skewed(n, factor);
        let layout = Layout::with_row_len(n, m, row_len);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("factor_{factor}")),
            &factor,
            |b, _| {
                b.iter(|| {
                    multiprefix_spinetree_instrumented(
                        &values,
                        &labels,
                        Plus,
                        layout,
                        ArbPolicy::LastWins,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_row_length);
criterion_main!(benches);
