//! Host wall-clock of each spinetree phase in isolation — the Table 3
//! measurement, on the host instead of the Y-MP.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mp_bench::lcg_labels;
use multiprefix::op::Plus;
use multiprefix::spinetree::build::{build_spinetree, ArbPolicy};
use multiprefix::spinetree::layout::Layout;
use multiprefix::spinetree::phases::{multisums, rowsums, spinesums};
use std::time::Duration;

fn bench_phases(c: &mut Criterion) {
    let n = 1_000_000usize;
    let m = n / 16;
    let values: Vec<i64> = vec![1; n];
    let labels = lcg_labels(n, m, 1);
    let layout = Layout::square(n, m);
    let slots = layout.slots();

    let spine = build_spinetree(&labels, &layout, ArbPolicy::LastWins);
    let mut rowsum = vec![0i64; slots];
    let mut has_child = vec![false; slots];
    rowsums(&values, &spine, &layout, Plus, &mut rowsum, &mut has_child);
    let mut spinesum_base = vec![0i64; slots];
    spinesums(
        &spine,
        &layout,
        Plus,
        &rowsum,
        &has_child,
        &mut spinesum_base,
    );

    let mut group = c.benchmark_group("phase_breakdown");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));

    group.bench_function("spinetree_build", |b| {
        b.iter(|| build_spinetree(&labels, &layout, ArbPolicy::LastWins));
    });
    group.bench_function("rowsums", |b| {
        b.iter(|| {
            let mut rs = vec![0i64; slots];
            let mut hc = vec![false; slots];
            rowsums(&values, &spine, &layout, Plus, &mut rs, &mut hc);
            rs
        });
    });
    group.bench_function("spinesums", |b| {
        b.iter(|| {
            let mut ss = vec![0i64; slots];
            spinesums(&spine, &layout, Plus, &rowsum, &has_child, &mut ss);
            ss
        });
    });
    group.bench_function("multisums", |b| {
        b.iter(|| {
            let mut ss = spinesum_base.clone();
            let mut multi = vec![0i64; n];
            multisums(&values, &spine, &layout, Plus, &mut ss, &mut multi);
            multi
        });
    });
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
