//! Host wall-clock comparison of the five engines over input size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mp_bench::lcg_labels;
use multiprefix::atomic::multiprefix_atomic;
use multiprefix::chunked::multiprefix_chunked_with_threads;
use multiprefix::op::Plus;
use multiprefix::{multiprefix, Engine};
use std::time::Duration;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiprefix_engines");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let m = (n / 16).max(1);
        let values: Vec<i64> = (0..n as i64).collect();
        let labels = lcg_labels(n, m, 1);
        group.throughput(Throughput::Elements(n as u64));
        for engine in [
            Engine::Serial,
            Engine::Spinetree,
            Engine::Blocked,
            Engine::Chunked,
        ] {
            group.bench_with_input(BenchmarkId::new(format!("{engine:?}"), n), &n, |b, _| {
                b.iter(|| multiprefix(&values, &labels, m, Plus, engine).unwrap());
            });
        }
        // The ≥2×-atomic acceptance comparison runs on a pinned worker
        // count so host core count does not skew the ratio.
        group.bench_with_input(BenchmarkId::new("Chunked4", n), &n, |b, _| {
            b.iter(|| multiprefix_chunked_with_threads(&values, &labels, m, Plus, 4));
        });
        group.bench_with_input(BenchmarkId::new("AtomicSpinetree", n), &n, |b, _| {
            b.iter(|| multiprefix_atomic(&values, &labels, m, Plus));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
