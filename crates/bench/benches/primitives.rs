//! Host wall-clock of the derived primitives: segmented scan, keyed
//! group-by, split/pack, histogram, streaming.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mp_bench::lcg_labels;
use multiprefix::histogram::histogram;
use multiprefix::keyed::multireduce_by_key;
use multiprefix::op::Plus;
use multiprefix::segmented::segmented_exclusive_scan;
use multiprefix::split::split_stable;
use multiprefix::stream::MultiprefixStream;
use multiprefix::Engine;
use std::time::Duration;

fn bench_primitives(c: &mut Criterion) {
    let n = 1_000_000usize;
    let values: Vec<i64> = (0..n as i64).map(|i| i % 97).collect();
    let labels = lcg_labels(n, 256, 1);
    let flags: Vec<bool> = (0..n).map(|i| i % 53 == 0).collect();
    let string_keys: Vec<String> = labels.iter().map(|l| format!("tenant-{l}")).collect();

    let mut group = c.benchmark_group("primitives");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));

    group.bench_function("segmented_scan", |b| {
        b.iter(|| segmented_exclusive_scan(&values, &flags, Plus, Engine::Blocked).unwrap())
    });
    group.bench_function("histogram", |b| {
        b.iter(|| histogram(&labels, 256, Engine::Blocked).unwrap())
    });
    group.bench_function("split_stable_4way", |b| {
        let keys: Vec<usize> = labels.iter().map(|l| l % 4).collect();
        b.iter(|| split_stable(&values, &keys, 4, Engine::Blocked).unwrap())
    });
    group.bench_function("group_by_string_keys", |b| {
        b.iter(|| multireduce_by_key(&values, &string_keys, Plus, Engine::Blocked).unwrap())
    });
    group.bench_function("streaming_64k_chunks", |b| {
        b.iter(|| {
            let mut stream = MultiprefixStream::new(256, Plus, Engine::Blocked);
            for (v, l) in values.chunks(64 * 1024).zip(labels.chunks(64 * 1024)) {
                stream.feed(v, l).unwrap();
            }
            stream.finish()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
