//! Ablation: the blocked engine's chunk length — the host analogue of the
//! paper's §4.4 row-length tuning (a shape parameter trading startup
//! against parallelism) — plus the chunked engine's parts sweep and the
//! `m ≫ n` combine-pass pin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mp_bench::lcg_labels;
use multiprefix::blocked::multiprefix_blocked_with_chunk;
use multiprefix::chunked::multiprefix_chunked_with_parts;
use multiprefix::op::Plus;
use std::time::Duration;

fn bench_chunking(c: &mut Criterion) {
    let n = 4_000_000usize;
    let m = 1024;
    let values: Vec<i64> = vec![1; n];
    let labels = lcg_labels(n, m, 1);

    let mut group = c.benchmark_group("chunking");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));
    for &chunk in &[16_384usize, 65_536, 262_144, 1_048_576, 4_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| multiprefix_blocked_with_chunk(&values, &labels, m, Plus, chunk))
        });
    }
    group.finish();
}

/// The chunked engine's knob: how many chunks to cut `n` into. One chunk
/// per worker minimizes the sequential combine scan; oversubscription
/// smooths load imbalance.
fn bench_chunked_parts(c: &mut Criterion) {
    let n = 4_000_000usize;
    let m = 1024;
    let values: Vec<i64> = vec![1; n];
    let labels = lcg_labels(n, m, 1);

    let mut group = c.benchmark_group("chunked_parts");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));
    for &parts in &[1usize, 4, 8, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(parts), &parts, |b, &parts| {
            b.iter(|| multiprefix_chunked_with_parts(&values, &labels, m, Plus, parts))
        });
    }
    group.finish();
}

/// Pin for the touched-label combine pass: with `m ≫ n` the combine scan
/// must cost `O(distinct)` per chunk, not `O(m)`. Before the touched-list
/// fix this case was dominated by sweeping `chunks·m` mostly-identity
/// entries; a regression here reintroduces that sweep.
fn bench_combine_touched(c: &mut Criterion) {
    let n = 100_000usize;
    let m = 200_000usize;
    let values: Vec<i64> = vec![1; n];
    // Few distinct labels, spread over a huge label space.
    let labels: Vec<usize> = (0..n).map(|i| (i % 512) * 390).collect();

    let mut group = c.benchmark_group("combine_touched");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));
    group.bench_function("blocked_m_ggt_n", |b| {
        b.iter(|| multiprefix_blocked_with_chunk(&values, &labels, m, Plus, 16_384))
    });
    group.bench_function("chunked_m_ggt_n", |b| {
        b.iter(|| multiprefix_chunked_with_parts(&values, &labels, m, Plus, 8))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_chunking,
    bench_chunked_parts,
    bench_combine_touched
);
criterion_main!(benches);
