//! Ablation: the blocked engine's chunk length — the host analogue of the
//! paper's §4.4 row-length tuning (a shape parameter trading startup
//! against parallelism).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mp_bench::lcg_labels;
use multiprefix::blocked::multiprefix_blocked_with_chunk;
use multiprefix::op::Plus;
use std::time::Duration;

fn bench_chunking(c: &mut Criterion) {
    let n = 4_000_000usize;
    let m = 1024;
    let values: Vec<i64> = vec![1; n];
    let labels = lcg_labels(n, m, 1);

    let mut group = c.benchmark_group("chunking");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));
    for &chunk in &[16_384usize, 65_536, 262_144, 1_048_576, 4_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| multiprefix_blocked_with_chunk(&values, &labels, m, Plus, chunk))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunking);
criterion_main!(benches);
