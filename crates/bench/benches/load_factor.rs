//! Host-side Figure 10: engine throughput across bucket load factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mp_bench::labels_for_load;
use multiprefix::op::Plus;
use multiprefix::{multiprefix, Engine};
use std::time::Duration;

fn bench_load(c: &mut Criterion) {
    let n = 1_000_000usize;
    let values: Vec<i64> = vec![1; n];
    let mut group = c.benchmark_group("load_factor");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));
    for &load in &[1usize, 16, 256, 65_536, 1_000_000] {
        let (labels, m) = labels_for_load(n, load, 3);
        for engine in [Engine::Spinetree, Engine::Blocked] {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), format!("load_{load}")),
                &load,
                |b, _| {
                    b.iter(|| multiprefix(&values, &labels, m, Plus, engine).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_load);
criterion_main!(benches);
