//! Overhead of the observability layer on the hot path.
//!
//! Three variants of the same spinetree run: no recorder (the production
//! default — must be indistinguishable from the pre-obs engine, since an
//! absent recorder costs one branch per phase and zero clock reads), a
//! recorder installed (per-phase histograms live), and the dispatcher with
//! a recorder (adds per-attempt timing and counters on top).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mp_bench::lcg_labels;
use multiprefix::obs::MemoryRecorder;
use multiprefix::op::Plus;
use multiprefix::spinetree::engine::try_multiprefix_spinetree_ctx;
use multiprefix::{
    DispatchOpts, Dispatcher, DispatcherConfig, EngineKind, OverflowPolicy, Recorder, RunContext,
};
use std::sync::Arc;
use std::time::Duration;

fn bench_obs_overhead(c: &mut Criterion) {
    let n = 1_000_000usize;
    let m = n / 16;
    let values: Vec<i64> = vec![1; n];
    let labels = lcg_labels(n, m, 1);

    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));

    let plain = RunContext::new();
    group.bench_function("spinetree_no_recorder", |b| {
        b.iter(|| {
            try_multiprefix_spinetree_ctx(&values, &labels, m, Plus, OverflowPolicy::Wrap, &plain)
        })
    });

    let rec = MemoryRecorder::shared();
    let observed = RunContext::new()
        .for_engine(EngineKind::Spinetree)
        .with_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
    group.bench_function("spinetree_with_recorder", |b| {
        b.iter(|| {
            try_multiprefix_spinetree_ctx(
                &values,
                &labels,
                m,
                Plus,
                OverflowPolicy::Wrap,
                &observed,
            )
        })
    });

    let dispatcher = Dispatcher::new(DispatcherConfig {
        chain: vec![EngineKind::Spinetree],
        ..DispatcherConfig::default()
    })
    .unwrap()
    .with_recorder(MemoryRecorder::shared() as Arc<dyn Recorder>);
    let opts = DispatchOpts::default();
    group.bench_function("dispatch_with_recorder", |b| {
        b.iter(|| dispatcher.dispatch(&values, &labels, m, Plus, &opts))
    });

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
