//! Host-side Tables 2/4/5: the three SpMV routes on uniform and
//! circuit-shaped matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multiprefix::Engine;
use spmv::gen::{circuit_matrix, uniform_random};
use spmv::mp_spmv::mp_spmv;
use spmv::{CooMatrix, CsrMatrix, JaggedDiagonal};
use std::time::Duration;

fn bench_matrix(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    name: &str,
    coo: &CooMatrix,
) {
    let csr = CsrMatrix::from_coo(coo);
    let jd = JaggedDiagonal::from_coo(coo);
    let x: Vec<f64> = (0..coo.order).map(|i| 1.0 + (i % 5) as f64).collect();

    group.bench_with_input(BenchmarkId::new("csr_eval", name), &0, |b, _| {
        b.iter(|| csr.spmv(&x))
    });
    group.bench_with_input(BenchmarkId::new("jd_eval", name), &0, |b, _| {
        b.iter(|| jd.spmv(&x))
    });
    group.bench_with_input(BenchmarkId::new("jd_setup", name), &0, |b, _| {
        b.iter(|| JaggedDiagonal::from_coo(coo))
    });
    group.bench_with_input(BenchmarkId::new("mp_eval", name), &0, |b, _| {
        b.iter(|| mp_spmv(coo, &x, Engine::Blocked))
    });
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let sparse = uniform_random(5000, 0.001, 1);
    bench_matrix(&mut group, "uniform_5000_0.001", &sparse);
    let dense = uniform_random(100, 0.4, 2);
    bench_matrix(&mut group, "uniform_100_0.4", &dense);
    let circuit = circuit_matrix(2806, 6.5, 2, 3);
    bench_matrix(&mut group, "circuit_2806", &circuit);
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
