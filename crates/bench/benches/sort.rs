//! Host-side Table 1: the sorting routes on the NAS IS key distribution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mp_sort::bucket_sort::bucket_ranks;
use mp_sort::nas_is::{generate_keys, NasRng, MAX_KEY};
use mp_sort::radix_sort::radix_sort;
use mp_sort::rank_sort::rank_keys;
use multiprefix::Engine;
use std::time::Duration;

fn bench_sort(c: &mut Criterion) {
    let n = 1 << 20;
    let mut rng = NasRng::standard();
    let keys = generate_keys(n, MAX_KEY, &mut rng);
    let keys64: Vec<u64> = keys.iter().map(|&k| k as u64).collect();

    let mut group = c.benchmark_group("nas_is_sort");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(n as u64));

    group.bench_function("bucket_ranks", |b| b.iter(|| bucket_ranks(&keys, MAX_KEY)));
    group.bench_function("radix_sort_8bit", |b| b.iter(|| radix_sort(&keys64, 8)));
    group.bench_function("std_sort_unstable", |b| {
        b.iter(|| {
            let mut k = keys64.clone();
            k.sort_unstable();
            k
        })
    });
    group.bench_function("mp_rank_serial", |b| {
        b.iter(|| rank_keys(&keys, MAX_KEY, Engine::Serial).unwrap())
    });
    group.bench_function("mp_rank_blocked", |b| {
        b.iter(|| rank_keys(&keys, MAX_KEY, Engine::Blocked).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sort);
criterion_main!(benches);
