//! End-to-end tests of the `mp_cli` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_cli(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mp_cli"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mp_cli");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

const FIGURE_1: &str = "1,1\n3,2\n2,1\n1,1\n1,2\n2,2\n3,1\n1,1\n";

#[test]
fn figure_1_sums() {
    let (stdout, _, ok) = run_cli(&[], FIGURE_1);
    assert!(ok);
    assert_eq!(stdout, "0\n0\n1\n3\n3\n4\n4\n7\n");
}

#[test]
fn figure_1_reductions() {
    let (stdout, _, ok) = run_cli(&["--reduce"], FIGURE_1);
    assert!(ok);
    assert_eq!(stdout, "0,0\n1,8\n2,6\n");
}

#[test]
fn inclusive_and_engine_choice() {
    let (stdout, _, ok) = run_cli(&["--inclusive", "--engine", "spinetree"], FIGURE_1);
    assert!(ok);
    assert_eq!(stdout, "1\n3\n3\n4\n4\n6\n7\n8\n");
}

#[test]
fn max_operator() {
    let (stdout, _, ok) = run_cli(&["--op", "max", "--reduce"], "5,0\n9,0\n2,1\n");
    assert!(ok);
    assert_eq!(stdout, "0,9\n1,2\n");
}

#[test]
fn comments_and_blank_lines_skipped() {
    let (stdout, _, ok) = run_cli(&[], "# header\n\n7,0\n");
    assert!(ok);
    assert_eq!(stdout, "0\n");
}

#[test]
fn malformed_line_reports_position() {
    let (_, stderr, ok) = run_cli(&[], "1,0\nnonsense\n");
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn conflicting_flags_rejected() {
    let (_, stderr, ok) = run_cli(&["--reduce", "--inclusive"], "");
    assert!(!ok);
    assert!(stderr.contains("mutually exclusive"));
}

#[test]
fn file_input() {
    let dir = std::env::temp_dir().join("mp_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("input.csv");
    std::fs::write(&path, "4,0\n5,0\n").unwrap();
    let (stdout, _, ok) = run_cli(&[path.to_str().unwrap()], "");
    assert!(ok);
    assert_eq!(stdout, "0\n4\n");
}

#[test]
fn empty_input_is_fine() {
    let (stdout, _, ok) = run_cli(&[], "");
    assert!(ok);
    assert!(stdout.is_empty());
}
