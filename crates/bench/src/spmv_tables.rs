//! Shared machinery for the SpMV tables (2, 4, 5): generate a matrix,
//! route it through the three kernels' cost models, collect the split.

use cray_sim::kernels::spmv::{csr_clocks, jd_clocks, mp_clocks, SpmvClocks};
use cray_sim::{CostBook, VectorMachine};
use spmv::{CooMatrix, CsrMatrix, JaggedDiagonal};

/// One matrix's results across the three routes, in simulated milliseconds.
#[derive(Debug, Clone)]
pub struct SpmvRow {
    /// Label for the first column (order, or matrix name).
    pub label: String,
    /// Matrix order.
    pub order: usize,
    /// Measured density.
    pub density: f64,
    /// Nonzeros.
    pub nnz: usize,
    /// CSR clocks (setup always 0).
    pub csr: SpmvClocks,
    /// JD clocks.
    pub jd: SpmvClocks,
    /// MP clocks.
    pub mp: SpmvClocks,
}

/// Milliseconds for a clock count on the default 6 ns machine.
pub fn clk_to_ms(clocks: f64) -> f64 {
    clocks * 6e-6
}

/// Run one matrix through all three simulated routes.
pub fn evaluate_matrix(label: &str, coo: &CooMatrix) -> SpmvRow {
    let book = CostBook::default();
    let csr_m = CsrMatrix::from_coo(coo);
    let jd_m = JaggedDiagonal::from_coo(coo);

    let mut machine = VectorMachine::ymp();
    let csr = csr_clocks(&mut machine, &book, &csr_m.row_lengths());

    let mut machine = VectorMachine::ymp();
    let jd = jd_clocks(
        &mut machine,
        &book,
        coo.nnz(),
        coo.order,
        &jd_m.diag_lengths(),
    );

    let mut machine = VectorMachine::ymp();
    // The MP timing depends on the structure (row labels), not the values.
    let products = vec![1i64; coo.nnz()];
    let (mp, _) = mp_clocks(
        &mut machine,
        &book,
        &products,
        &coo.rows,
        &coo.cols,
        coo.order,
    );

    SpmvRow {
        label: label.to_string(),
        order: coo.order,
        density: coo.density(),
        nnz: coo.nnz(),
        csr,
        jd,
        mp,
    }
}

/// The Table 2/4 matrix list: `(order, density, paper totals [CSR, JD, MP])`.
pub const TABLE2_CASES: &[(usize, f64, [f64; 3])] = &[
    (15_000, 0.001, [30.29, 28.09, 27.43]),
    (10_000, 0.001, [19.52, 16.31, 12.43]),
    (5_000, 0.001, [9.48, 6.99, 3.45]),
    (2_000, 0.005, [3.90, 3.23, 2.77]),
    (1_000, 0.010, [1.95, 1.66, 1.50]),
    (100, 0.400, [0.27, 0.42, 0.76]),
];

#[cfg(test)]
mod tests {
    use super::*;
    use spmv::gen::uniform_random;

    #[test]
    fn row_carries_all_routes() {
        let coo = uniform_random(500, 0.005, 1);
        let row = evaluate_matrix("500", &coo);
        assert_eq!(row.csr.setup, 0.0, "CSR is the no-setup base case");
        assert!(row.jd.setup > 0.0);
        assert!(row.mp.setup > 0.0);
        assert!(row.csr.total() > 0.0 && row.jd.total() > 0.0 && row.mp.total() > 0.0);
    }

    #[test]
    fn large_sparse_ordering_matches_table_2() {
        // The 5000/0.001 row shows the paper's strongest MP win:
        // 9.48 (CSR) > 6.99 (JD) > 3.45 (MP).
        let coo = uniform_random(5_000, 0.001, 42);
        let row = evaluate_matrix("5000", &coo);
        let (c, j, m) = (
            clk_to_ms(row.csr.total()),
            clk_to_ms(row.jd.total()),
            clk_to_ms(row.mp.total()),
        );
        assert!(
            m < j && j < c,
            "expected MP < JD < CSR, got {m:.2} / {j:.2} / {c:.2}"
        );
    }

    #[test]
    fn small_dense_ordering_matches_table_2() {
        // The 100/0.4 row inverts: 0.27 (CSR) < 0.42 (JD) < 0.76 (MP).
        let coo = uniform_random(100, 0.4, 42);
        let row = evaluate_matrix("100", &coo);
        let (c, j, m) = (
            clk_to_ms(row.csr.total()),
            clk_to_ms(row.jd.total()),
            clk_to_ms(row.mp.total()),
        );
        assert!(
            c < j && j < m,
            "expected CSR < JD < MP, got {c:.2} / {j:.2} / {m:.2}"
        );
    }
}
