#![warn(missing_docs)]

//! # mp-bench — the reproduction harness
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — NAS IS sort comparison |
//! | `table2` | Table 2 — SpMV totals across size/density |
//! | `table3` | Table 3 — vector characterization of the four loops |
//! | `table4` | Table 4 — SpMV setup/evaluation/total split |
//! | `table5` | Table 5 — circuit-matrix SpMV |
//! | `fig10`  | Figure 10 — clocks/element vs `n` per bucket load |
//! | `row_length` | §4.4 — row-length ablation (`p = 0.749√n`) |
//! | `plus_sim` | §1.2 — CRCW-PLUS on CRCW-ARB slowdown |
//!
//! Run any of them with `cargo run -p mp-bench --release --bin <target>`.
//! Criterion wall-clock benches for the host live under `benches/`.

use std::fmt::Write as _;

/// Render an ASCII table: a header row plus data rows, columns padded to
/// the widest cell, numeric-friendly right alignment for all but the first
/// column.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for &w in &widths {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "+");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {:<width$} ", h, width = widths[i]);
    }
    let _ = writeln!(out, "|");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i == 0 {
                let _ = write!(out, "| {:<width$} ", cell, width = widths[i]);
            } else {
                let _ = write!(out, "| {:>width$} ", cell, width = widths[i]);
            }
        }
        let _ = writeln!(out, "|");
    }
    sep(&mut out);
    out
}

/// Deterministic pseudo-random labels over `[0, m)` (splitmix-fed LCG) —
/// the "standard pseudo-random number generator" workloads of §4.3.
pub fn lcg_labels(n: usize, m: usize, seed: u64) -> Vec<usize> {
    assert!(m > 0);
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        })
        .collect()
}

/// Labels for a target average bucket load: `load = n` means one bucket;
/// otherwise `m = n / load` random buckets (§4.3/Figure 10's parameter).
pub fn labels_for_load(n: usize, load: usize, seed: u64) -> (Vec<usize>, usize) {
    if load >= n {
        (vec![0; n], 1)
    } else {
        let m = (n / load).max(1);
        (lcg_labels(n, m, seed), m)
    }
}

/// Format simulated milliseconds like the paper's tables.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.2}")
}

/// Format seconds.
pub fn fmt_s(s: f64) -> String {
    format!("{s:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let t = render_table(
            &["Method", "Time"],
            &[
                vec!["A".into(), "1.00".into()],
                vec!["Longer name".into(), "12.34".into()],
            ],
        );
        assert!(t.contains("Method"));
        assert!(t.contains("Longer name"));
        assert!(t.contains("12.34"));
        assert_eq!(t.lines().count(), 6);
    }

    #[test]
    fn load_one_bucket() {
        let (labels, m) = labels_for_load(100, 100, 1);
        assert_eq!(m, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn load_sixteen() {
        let (labels, m) = labels_for_load(1600, 16, 1);
        assert_eq!(m, 100);
        assert!(labels.iter().all(|&l| l < 100));
    }

    #[test]
    fn labels_deterministic() {
        assert_eq!(lcg_labels(50, 7, 3), lcg_labels(50, 7, 3));
    }
}

pub mod spmv_tables;
