//! Regenerates **Figure 10**: time per element (in 6 ns clocks) of the
//! full multiprefix, for input sizes 10³..10⁶ and bucket loads
//! {1, 16, 256, n}. The paper's punchline: "the time per element required
//! varies no more than a few clocks" across all of it.

use cray_sim::kernels::{multiprefix_timed, MpVariant};
use cray_sim::{CostBook, VectorMachine};
use mp_bench::{labels_for_load, render_table};

fn main() {
    println!("Figure 10 — clocks per element vs n, one curve per bucket load\n");
    let sizes = [1_000usize, 4_642, 21_544, 100_000, 464_159, 1_000_000];
    type LoadFn = fn(usize) -> usize;
    let loads: [(&str, LoadFn); 4] = [
        ("load 1", |_| 1), // 1 element per bucket
        ("load 16", |_| 16),
        ("load 256", |_| 256),
        ("load n", |n| n), // one bucket
    ];
    let book = CostBook::default();

    let mut rows = Vec::new();
    let mut all: Vec<f64> = Vec::new();
    for &n in &sizes {
        let values = vec![1i64; n];
        let mut row = vec![format!("{n}")];
        for (k, &(_, loadf)) in loads.iter().enumerate() {
            let load = loadf(n);
            let (labels, m) = labels_for_load(n, load, 42 + k as u64);
            let mut machine = VectorMachine::ymp();
            let run = multiprefix_timed(&mut machine, &book, &values, &labels, m, MpVariant::FULL);
            let per_elt = run.clocks.per_element(n);
            all.push(per_elt);
            row.push(format!("{per_elt:.1}"));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["n", "load 1", "load 16", "load 256", "load n"], &rows)
    );
    let min = all.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = all.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "spread over the whole figure: {min:.1}..{max:.1} clk/elt ({:.1} clocks)",
        max - min
    );
    println!("paper: curves sit in the ~20s of clocks, spread \"no more than a few clocks\"\n");

    // Per-phase detail at n = 10^6 — the §4.3 narrative rows.
    println!("per-phase clk/elt at n = 1,000,000:");
    let n = 1_000_000;
    let values = vec![1i64; n];
    let mut detail = Vec::new();
    for &(name, loadf) in &loads {
        let (labels, m) = labels_for_load(n, loadf(n), 7);
        let mut machine = VectorMachine::ymp();
        let run = multiprefix_timed(&mut machine, &book, &values, &labels, m, MpVariant::FULL);
        let c = run.clocks;
        let f = n as f64;
        detail.push(vec![
            name.to_string(),
            format!("{:.1}", c.init / f),
            format!("{:.1}", c.spinetree / f),
            format!("{:.1}", c.rowsum / f),
            format!("{:.1}", c.spinesum / f),
            format!("{:.1}", c.prefixsum / f),
            format!("{:.1}", c.total() / f),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "load",
                "INIT",
                "SPINETREE",
                "ROWSUM",
                "SPINESUM",
                "PREFIXSUM",
                "TOTAL"
            ],
            &detail
        )
    );
    println!("§4.3 checkpoints: heavy load (load n) SPINETREE ≈ 12-13, SPINESUM ≈ 2-3;");
    println!("light load (load 1) SPINESUM ≈ 8-9 from the dummy-location hot spot.");
}
