//! Regenerates **Table 3**: the vector characterization `(t_e, n_1/2)` of
//! the four multiprefix loops, recovered from the executable model by the
//! same measure-and-regress procedure the paper used.

use cray_sim::calibrate::characterize_phases;
use cray_sim::CostBook;
use mp_bench::render_table;

fn main() {
    println!("Table 3 — vector characterization of the four phases");
    println!("(recovered by regression over a size sweep at moderate load)\n");
    let paper = [(5.3, 20.0), (4.1, 40.0), (7.4, 20.0), (6.9, 40.0)];
    let rows: Vec<Vec<String>> = characterize_phases(&CostBook::default())
        .into_iter()
        .zip(paper)
        .map(|(c, (pte, pnh))| {
            vec![
                c.phase.to_string(),
                format!("{:.1} ({pte})", c.te),
                format!("{:.0} ({pnh})", c.n_half),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Phase", "t_e (6nS clk/elt) (paper)", "n_1/2 (paper)"],
            &rows
        )
    );
    println!("note: SPINESUM regresses through the masked-loop model, so its");
    println!("effective startup shifts with the mask density — the paper saw");
    println!("the same instability (\"strange results\", §4.1).");
}
