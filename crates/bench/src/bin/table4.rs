//! Regenerates **Table 4**: the Table 2 matrices decomposed into setup /
//! evaluation / total. "The JD approach trades a large preprocessing time
//! for a very quick evaluation time … the multiprefix approach performs
//! less of its total work during setup."

use mp_bench::spmv_tables::{clk_to_ms, evaluate_matrix, TABLE2_CASES};
use mp_bench::{fmt_ms, render_table};
use spmv::gen::uniform_random;

fn main() {
    println!("Table 4 — SpMV setup / evaluation / total, simulated CRAY Y-MP (ms)\n");
    let mut rows = Vec::new();
    // Table 4 adds an order-50 fully dense row to the Table 2 list.
    let mut cases: Vec<(usize, f64)> = TABLE2_CASES.iter().map(|&(o, r, _)| (o, r)).collect();
    cases.push((50, 1.0));
    for (i, &(order, rho)) in cases.iter().enumerate() {
        let coo = uniform_random(order, rho, 1000 + i as u64);
        let r = evaluate_matrix(&order.to_string(), &coo);
        rows.push(vec![
            format!("{order}"),
            format!("{rho:.3}"),
            fmt_ms(clk_to_ms(r.jd.setup)),
            fmt_ms(clk_to_ms(r.mp.setup)),
            fmt_ms(clk_to_ms(r.csr.evaluation)),
            fmt_ms(clk_to_ms(r.jd.evaluation)),
            fmt_ms(clk_to_ms(r.mp.evaluation)),
            fmt_ms(clk_to_ms(r.csr.total())),
            fmt_ms(clk_to_ms(r.jd.total())),
            fmt_ms(clk_to_ms(r.mp.total())),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Order", "rho", "Setup JD", "Setup MP", "Eval CSR", "Eval JD", "Eval MP",
                "Tot CSR", "Tot JD", "Tot MP",
            ],
            &rows
        )
    );
    println!("(CSR setup is 0 by definition — the base case of §5.2.1.)");
    println!("shape: JD has the largest setup and the fastest eval; MP's setup");
    println!("(the spinetree build) is a small fraction of its total; for a");
    println!("single multiply on very sparse matrices MP's total wins.");
}
