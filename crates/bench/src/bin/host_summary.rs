//! One-screen host wall-clock summary: every engine and key derived
//! primitive at one size, as a readable table (the Criterion benches give
//! statistics; this gives orientation).
//!
//! ```sh
//! cargo run -p mp-bench --release --bin host_summary [n]
//! ```

use mp_bench::{lcg_labels, render_table};
use multiprefix::atomic::{multiprefix_atomic, multireduce_atomic};
use multiprefix::op::Plus;
use multiprefix::scan::{exclusive_scan_blelloch, exclusive_scan_partition, exclusive_scan_serial};
use multiprefix::{multiprefix, multireduce, Engine};
use std::time::Instant;

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000_000);
    let m = 1024;
    let values: Vec<i64> = (0..n as i64).map(|i| i % 101 - 50).collect();
    let labels = lcg_labels(n, m, 1);
    println!(
        "host summary: n = {n}, m = {m}, {} rayon threads\n",
        rayon::current_num_threads()
    );

    let mut rows = Vec::new();
    let (reference, t) = time(|| multiprefix(&values, &labels, m, Plus, Engine::Serial).unwrap());
    rows.push(vec![
        "multiprefix Serial (Figure 2)".into(),
        format!("{t:.1}"),
    ]);

    let (out, t) = time(|| multiprefix(&values, &labels, m, Plus, Engine::Spinetree).unwrap());
    assert_eq!(out, reference);
    rows.push(vec![
        "multiprefix Spinetree (vector-sim)".into(),
        format!("{t:.1}"),
    ]);

    let (out, t) = time(|| multiprefix(&values, &labels, m, Plus, Engine::Blocked).unwrap());
    assert_eq!(out, reference);
    rows.push(vec![
        "multiprefix Blocked (rayon)".into(),
        format!("{t:.1}"),
    ]);

    let (out, t) = time(|| multiprefix_atomic(&values, &labels, m, Plus));
    assert_eq!(out, reference);
    rows.push(vec![
        "multiprefix Atomic (lock-free)".into(),
        format!("{t:.1}"),
    ]);

    let (red, t) = time(|| multireduce(&values, &labels, m, Plus, Engine::Blocked).unwrap());
    assert_eq!(red, reference.reductions);
    rows.push(vec!["multireduce Blocked".into(), format!("{t:.1}")]);

    let (red, t) = time(|| multireduce_atomic(&values, &labels, m, Plus));
    assert_eq!(red, reference.reductions);
    rows.push(vec![
        "multireduce Atomic (combining send)".into(),
        format!("{t:.1}"),
    ]);

    let (s0, t) = time(|| exclusive_scan_serial(&values, Plus));
    rows.push(vec!["scan serial".into(), format!("{t:.1}")]);
    let (s1, t) = time(|| exclusive_scan_partition(&values, Plus));
    assert_eq!(s0, s1);
    rows.push(vec!["scan partition method".into(), format!("{t:.1}")]);
    let (s2, t) = time(|| exclusive_scan_blelloch(&values, Plus));
    assert_eq!(s0, s2);
    rows.push(vec!["scan Blelloch (join)".into(), format!("{t:.1}")]);

    println!("{}", render_table(&["operation", "ms"], &rows));
    println!("all parallel variants verified against the serial reference");
}
