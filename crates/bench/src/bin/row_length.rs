//! §4.4 ablation: choosing the row length.
//!
//! The paper differentiates the four-phase cost model and finds the
//! optimum at `p = 0.749 √n` for the Table 3 constants, but notes "the
//! sensitivity of this formula to variations in p near the optimal value
//! is very small" (< 2 % at n = 1000). This binary sweeps the skew factor
//! on the executable model and reports both facts.

use cray_sim::kernels::multiprefix::{multiprefix_timed_with_layout, MpVariant};
use cray_sim::{CostBook, VectorMachine};
use mp_bench::{lcg_labels, render_table};
use multiprefix::spinetree::layout::{choose_row_len_skewed, Layout};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(262_144);
    let m = (n / 16).max(1);
    println!("§4.4 — row-length ablation at n = {n}, moderate load (m = {m})\n");

    let values = vec![1i64; n];
    let labels = lcg_labels(n, m, 5);
    let book = CostBook::default();

    let factors = [
        0.25, 0.4, 0.55, 0.7, 0.749, 0.8, 1.0, 1.3, 1.7, 2.2, 3.0, 4.0,
    ];
    let mut results: Vec<(f64, usize, f64)> = Vec::new();
    for &f in &factors {
        let row_len = choose_row_len_skewed(n, f);
        let layout = Layout::with_row_len(n, m, row_len);
        let mut machine = VectorMachine::ymp();
        let run = multiprefix_timed_with_layout(
            &mut machine,
            &book,
            &values,
            &labels,
            layout,
            MpVariant::FULL,
        );
        results.push((f, row_len, run.clocks.total()));
    }
    let best =
        results.iter().cloned().fold(
            (0.0, 0, f64::INFINITY),
            |acc, r| if r.2 < acc.2 { r } else { acc },
        );

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(f, w, clocks)| {
            vec![
                format!("{f:.3}"),
                format!("{w}"),
                format!("{:.2}", clocks * 6e-6),
                format!("{:+.1}%", (clocks / best.2 - 1.0) * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["factor (p/sqrt n)", "row length", "total (ms)", "vs best"],
            &rows
        )
    );
    println!(
        "best factor here: {:.3} (paper's analytic optimum: 0.749)",
        best.0
    );

    // The < 2 % sensitivity claim, at the paper's n = 1000.
    let n1k = 1000;
    let m1k = 64;
    let v1k = vec![1i64; n1k];
    let l1k = lcg_labels(n1k, m1k, 9);
    let t = |factor: f64| {
        let layout = Layout::with_row_len(n1k, m1k, choose_row_len_skewed(n1k, factor));
        let mut machine = VectorMachine::ymp();
        multiprefix_timed_with_layout(&mut machine, &book, &v1k, &l1k, layout, MpVariant::FULL)
            .clocks
            .total()
    };
    let at_opt = t(0.749);
    let at_sqrt = t(1.0);
    println!(
        "\nn = 1000 sensitivity: sqrt-n vs optimal row length differ by {:.2}% (paper: < 2%)",
        (at_sqrt / at_opt - 1.0).abs() * 100.0
    );
}
