//! §1.2 demonstration: a CRCW-PLUS PRAM simulated on a CRCW-ARB PRAM via
//! multiprefix — constant slowdown once `n ≥ p²`.

use mp_bench::render_table;
use pram::sim_plus::plus_slowdown;

fn main() {
    println!("§1.2 — CRCW-PLUS combining write on a CRCW-ARB PRAM\n");
    println!("slowdown = (real ARB steps to run the multiprefix subroutine,");
    println!("folded onto p processors) / (the trivial n/p lower bound)\n");

    let mut rows = Vec::new();
    for &p in &[4usize, 8, 16, 32] {
        for &alpha in &[1usize, 2, 4] {
            let n = alpha * alpha * p * p;
            let s = plus_slowdown(n, p, 1).expect("simulation runs clean");
            rows.push(vec![
                format!("{p}"),
                format!("{alpha}"),
                format!("{n}"),
                format!("{}", s.virtual_steps),
                format!("{}", s.real_steps),
                format!("{}", s.optimal_steps),
                format!("{:.2}", s.slowdown),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "p",
                "alpha",
                "n = (alpha p)^2",
                "virtual S",
                "real steps",
                "n/p bound",
                "slowdown"
            ],
            &rows
        )
    );

    // The regime boundary: n below p² is NOT constant-slowdown.
    println!("below the n >= p^2 threshold the slowdown is no longer constant:");
    let mut rows = Vec::new();
    for &(n, p) in &[
        (256usize, 256usize),
        (1024, 256),
        (4096, 256),
        (65_536, 256),
    ] {
        let s = plus_slowdown(n, p, 1).unwrap();
        rows.push(vec![
            format!("{n}"),
            format!("{p}"),
            format!("{}", n >= p * p),
            format!("{:.1}", s.slowdown),
        ]);
    }
    println!(
        "{}",
        render_table(&["n", "p", "n >= p^2", "slowdown"], &rows)
    );
}
