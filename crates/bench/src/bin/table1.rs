//! Regenerates **Table 1**: the NAS Integer Sorting benchmark comparison.
//!
//! The paper's Table 1 (CRAY Y-MP, 2^23 19-bit keys, 10 ranking
//! iterations):
//!
//! | Method | Time (s) |
//! |---|---|
//! | Partially Vectorized FORTRAN Bucket Sort | 18.24 |
//! | Cray Research Inc. Implementation        | 14.00 |
//! | Our Multiprefix-based Sort               | 13.66 |
//!
//! We run the three routes on the simulated Y-MP at a scaled `n` (the
//! model is linear in `n`, so the result is exact up to the scaling) and
//! report extrapolated full-benchmark seconds, then time the *real*
//! host implementations for a wall-clock cross-check.

use cray_sim::kernels::sort::{bucket_sort_clocks, cri_sort_clocks, mp_rank_sort_timed};
use cray_sim::{CostBook, VectorMachine};
use mp_bench::{fmt_s, render_table};
use mp_sort::nas_is::{self, full_verify, generate_keys, NasRng};
use mp_sort::{bucket_sort::bucket_ranks, radix_sort::radix_sort, rank_sort::rank_keys};
use std::time::Instant;

fn main() {
    let n_sim: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 20);
    let m = nas_is::MAX_KEY;
    let iters = nas_is::ITERATIONS as f64;
    let scale = (nas_is::FULL_N as f64 / n_sim as f64) * iters;

    println!("Table 1 — NAS Integer Sorting benchmark (simulated CRAY Y-MP)");
    println!(
        "workload: {n_sim} NAS-distributed 19-bit keys, extrapolated x{scale:.1} to the full 2^23 x 10-iteration benchmark\n"
    );

    let mut rng = NasRng::standard();
    let keys = generate_keys(n_sim, m, &mut rng);
    let book = CostBook::default();

    let mut machine = VectorMachine::ymp();
    bucket_sort_clocks(&mut machine, &book, n_sim);
    let bucket_s = machine.seconds() * scale;

    let mut machine = VectorMachine::ymp();
    cri_sort_clocks(&mut machine, &book, n_sim);
    let cri_s = machine.seconds() * scale;

    let mut machine = VectorMachine::ymp();
    let run = mp_rank_sort_timed(&mut machine, &book, &keys, m);
    assert!(
        full_verify(&keys, &run.ranks),
        "simulated sort failed verification"
    );
    let mp_s = machine.seconds() * scale;

    let rows = vec![
        vec![
            "Partially Vectorized FORTRAN Bucket Sort".into(),
            fmt_s(bucket_s),
            "18.24".into(),
        ],
        vec![
            "Cray Research Inc. Implementation (stand-in)".into(),
            fmt_s(cri_s),
            "14.00".into(),
        ],
        vec![
            "Our Multiprefix-based Sort".into(),
            fmt_s(mp_s),
            "13.66".into(),
        ],
    ];
    println!(
        "{}",
        render_table(&["Method", "Simulated (s)", "Paper (s)"], &rows)
    );
    println!(
        "shape check: MP fastest = {}, beats bucket by {:.2}x (paper: 1.34x)\n",
        mp_s < cri_s && cri_s < bucket_s,
        bucket_s / mp_s
    );

    // ---- instruction-level evidence --------------------------------------
    // The same ranking compiled to vector machine code and executed on the
    // register-level ISA simulator, at a smaller n (the program is
    // straight-line, so emission is O(n)); clocks scale linearly.
    let n_isa = 1 << 14;
    let isa_keys = &keys[..n_isa.min(keys.len())];
    let m_isa = 1 << 10; // keep the scalar bucket-scan section proportionate
    let isa_keys: Vec<usize> = isa_keys.iter().map(|&k| k % m_isa).collect();
    let isa = cray_sim::isa::run_rank_sort_isa(&isa_keys, m_isa).expect("well-formed program");
    println!(
        "ISA-level cross-check: {} keys ranked in {:.0} clocks ({:.1} clk/key) over {} retired instructions\n",
        isa_keys.len(),
        isa.clocks,
        isa.clocks / isa_keys.len() as f64,
        isa.instructions
    );

    // ---- host wall-clock cross-check ------------------------------------
    println!("Host wall-clock (one ranking of {n_sim} keys, real implementations):");
    let t = Instant::now();
    let ranks = rank_keys(&keys, m, multiprefix::Engine::Blocked).unwrap();
    let mp_host = t.elapsed();
    assert!(full_verify(&keys, &ranks));

    let t = Instant::now();
    let b = bucket_ranks(&keys, m);
    let bucket_host = t.elapsed();
    assert!(full_verify(&keys, &b));

    let keys64: Vec<u64> = keys.iter().map(|&k| k as u64).collect();
    let t = Instant::now();
    let r = radix_sort(&keys64, 8);
    let radix_host = t.elapsed();
    assert!(r.windows(2).all(|w| w[0] <= w[1]));

    let host_rows = vec![
        vec!["bucket_ranks (baseline)".into(), format!("{bucket_host:?}")],
        vec![
            "radix_sort 8-bit (vendor stand-in)".into(),
            format!("{radix_host:?}"),
        ],
        vec![
            "multiprefix rank_keys (Blocked)".into(),
            format!("{mp_host:?}"),
        ],
    ];
    println!("{}", render_table(&["Implementation", "Time"], &host_rows));
}
