//! Regenerates **Table 5**: circuit-simulation matrices with a few
//! almost-full power/ground rows. "For these matrices with a few very
//! full rows, the JD approach suffers a severe performance loss" while
//! "the MP approach clearly outperforms both."
//!
//! The SPARSE-package ADVICE matrices are not distributable; the
//! generator reproduces their published structure (order, density ρ,
//! 7–8 nonzeros per ordinary row, two ~95 %-full rails) — see DESIGN.md.

use mp_bench::spmv_tables::{clk_to_ms, evaluate_matrix};
use mp_bench::{fmt_ms, render_table};
use spmv::gen::circuit_matrix;

fn main() {
    println!("Table 5 — circuit matrices (ADVICE-shaped), simulated CRAY Y-MP (ms)\n");
    // (name, order, avg ordinary row, rails) tuned to the published ρ.
    let cases = [
        ("ADVICE2806-shaped", 2806usize, 6.5f64, 2usize, 0.0030f64),
        ("ADVICE3776-shaped", 3776, 5.3, 2, 0.0019),
    ];
    let mut rows = Vec::new();
    for (i, &(name, order, avg, rails, rho_target)) in cases.iter().enumerate() {
        let coo = circuit_matrix(order, avg, rails, 77 + i as u64);
        let r = evaluate_matrix(name, &coo);
        println!(
            "{name}: order {order}, nnz {}, rho {:.4} (published {:.4})",
            r.nnz, r.density, rho_target
        );
        rows.push(vec![
            name.to_string(),
            format!("{order}"),
            format!("{:.4}", r.density),
            fmt_ms(clk_to_ms(r.jd.setup)),
            fmt_ms(clk_to_ms(r.mp.setup)),
            fmt_ms(clk_to_ms(r.csr.evaluation)),
            fmt_ms(clk_to_ms(r.jd.evaluation)),
            fmt_ms(clk_to_ms(r.mp.evaluation)),
            fmt_ms(clk_to_ms(r.csr.total())),
            fmt_ms(clk_to_ms(r.jd.total())),
            fmt_ms(clk_to_ms(r.mp.total())),
        ]);
    }
    println!();
    println!(
        "{}",
        render_table(
            &[
                "Matrix", "Order", "rho", "Setup JD", "Setup MP", "Eval CSR", "Eval JD", "Eval MP",
                "Tot CSR", "Tot JD", "Tot MP",
            ],
            &rows
        )
    );
    println!("shape: the full rows force ~order jagged diagonals, most nearly");
    println!("empty, so JD's evaluation collapses; MP has the best total.");
}
