//! §5.2.1 extension experiment: setup amortization over repeated
//! multiplies.
//!
//! "Because of the speed of the evaluation phase of the JD approach, its
//! use would be preferable in an application that requires repeated
//! multiplication of the same matrix, while the MP approach would be
//! better suited to cases where only one multiplication is performed."
//!
//! This binary quantifies that sentence on the simulated machine: for a
//! Table 2 matrix, total time = setup + k × evaluation as a function of
//! k, locating the crossover where JD's big setup pays off — and showing
//! where the *cached-spinetree* MP variant (this repo's extension:
//! `spmv::mp_spmv::PreparedMpSpmv`) moves the MP line.

use mp_bench::render_table;
use mp_bench::spmv_tables::{clk_to_ms, evaluate_matrix};
use spmv::gen::uniform_random;

fn main() {
    let order: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5000);
    let rho: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.001);
    let coo = uniform_random(order, rho, 42);
    let r = evaluate_matrix(&order.to_string(), &coo);
    println!(
        "amortization at order {order}, rho {rho} (nnz {}), simulated ms:\n",
        r.nnz
    );
    println!(
        "per-route setup/eval: CSR 0.00/{:.2}  JD {:.2}/{:.2}  MP {:.2}/{:.2}  MP-cached {:.2}/{:.2}\n",
        clk_to_ms(r.csr.evaluation),
        clk_to_ms(r.jd.setup),
        clk_to_ms(r.jd.evaluation),
        clk_to_ms(r.mp.setup),
        clk_to_ms(r.mp.evaluation),
        clk_to_ms(r.mp.setup),
        clk_to_ms(r.mp.evaluation), // cached: same eval, setup paid once
    );

    let mut rows = Vec::new();
    let mut crossover_jd_csr = None;
    let mut crossover_jd_mp_cached = None;
    for k in [1usize, 2, 3, 5, 8, 13, 21, 34, 55, 100] {
        let kf = k as f64;
        let csr = r.csr.evaluation * kf;
        let jd = r.jd.setup + r.jd.evaluation * kf;
        let mp = (r.mp.setup + r.mp.evaluation) * kf; // setup re-done each time
        let mp_cached = r.mp.setup + r.mp.evaluation * kf; // PreparedMpSpmv
        if crossover_jd_csr.is_none() && jd < csr {
            crossover_jd_csr = Some(k);
        }
        if crossover_jd_mp_cached.is_none() && jd < mp_cached {
            crossover_jd_mp_cached = Some(k);
        }
        rows.push(vec![
            k.to_string(),
            format!("{:.2}", clk_to_ms(csr)),
            format!("{:.2}", clk_to_ms(jd)),
            format!("{:.2}", clk_to_ms(mp)),
            format!("{:.2}", clk_to_ms(mp_cached)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "k multiplies",
                "CSR",
                "JD",
                "MP (setup x k)",
                "MP cached spinetree"
            ],
            &rows
        )
    );
    match crossover_jd_csr {
        Some(k) => println!("JD overtakes CSR at k = {k} (its setup amortized)"),
        None => println!("JD never overtakes CSR in this range"),
    }
    match crossover_jd_mp_cached {
        Some(k) => println!("JD overtakes cached-MP at k = {k}"),
        None => println!("cached-MP stays ahead of JD through k = 100"),
    }
}
