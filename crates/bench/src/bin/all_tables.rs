//! Run every table/figure binary in sequence — the one-command
//! reproduction of the paper's whole evaluation section.
//!
//! ```sh
//! cargo run -p mp-bench --release --bin all_tables
//! ```

use std::process::Command;

fn main() {
    let targets = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "fig10",
        "row_length",
        "plus_sim",
        "amortize",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("target dir");
    let mut failures = Vec::new();
    for target in targets {
        println!("\n================ {target} ================\n");
        let status = Command::new(dir.join(target))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {target}: {e}"));
        if !status.success() {
            failures.push(target);
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiment targets completed", targets.len());
    } else {
        eprintln!("\nFAILED targets: {failures:?}");
        std::process::exit(1);
    }
}
