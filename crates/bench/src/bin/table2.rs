//! Regenerates **Table 2**: sparse-matrix × vector totals (one setup plus
//! one evaluation) across the paper's six size/density points, on the
//! simulated Y-MP. "For very large, sparse matrices, the multiprefix
//! approach excels, while the other methods are better suited to matrices
//! of greater density."

use mp_bench::spmv_tables::{clk_to_ms, evaluate_matrix, TABLE2_CASES};
use mp_bench::{fmt_ms, render_table};
use spmv::gen::uniform_random;

fn main() {
    println!("Table 2 — SpMV totals, simulated CRAY Y-MP (ms); paper values in parentheses\n");
    let mut rows = Vec::new();
    for (i, &(order, rho, paper)) in TABLE2_CASES.iter().enumerate() {
        let coo = uniform_random(order, rho, 1000 + i as u64);
        let r = evaluate_matrix(&order.to_string(), &coo);
        rows.push(vec![
            format!("{order}"),
            format!("{rho:.3}"),
            format!("{} ({})", fmt_ms(clk_to_ms(r.csr.total())), paper[0]),
            format!("{} ({})", fmt_ms(clk_to_ms(r.jd.total())), paper[1]),
            format!("{} ({})", fmt_ms(clk_to_ms(r.mp.total())), paper[2]),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Order",
                "rho",
                "Compressed-Row",
                "Jagged-Diag",
                "Multiprefix"
            ],
            &rows
        )
    );
    println!("shape: MP wins the large/sparse rows, CSR the small/dense row — as in the paper.");
}
