//! `mp_cli` — the multiprefix operation as a command-line filter.
//!
//! Reads `value,label` CSV lines from stdin (or a file given as the last
//! argument) and prints each element's multiprefix sum; with `--reduce`
//! it prints only the per-label reductions as `label,total` lines.
//!
//! ```text
//! USAGE: mp_cli [--op plus|max|min|mult] [--engine auto|serial|spinetree|blocked]
//!               [--reduce] [--inclusive] [FILE]
//! ```
//!
//! Labels may be any non-negative integers; `m` is inferred as
//! `max(label) + 1`.

use multiprefix::op::{Max, Min, Mult, Plus};
use multiprefix::{multiprefix, multiprefix_inclusive, multireduce, Engine, MpError};
use std::io::{BufRead, Write};

struct Options {
    op: String,
    engine: Engine,
    reduce: bool,
    inclusive: bool,
    file: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        op: "plus".into(),
        engine: Engine::Auto,
        reduce: false,
        inclusive: false,
        file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--op" => {
                opts.op = args.next().ok_or("--op needs a value")?;
            }
            "--engine" => {
                opts.engine = match args.next().as_deref() {
                    Some("auto") => Engine::Auto,
                    Some("serial") => Engine::Serial,
                    Some("spinetree") => Engine::Spinetree,
                    Some("blocked") => Engine::Blocked,
                    other => return Err(format!("unknown engine {other:?}")),
                };
            }
            "--reduce" => opts.reduce = true,
            "--inclusive" => opts.inclusive = true,
            "--help" | "-h" => {
                println!(
                    "mp_cli: multiprefix over value,label CSV lines\n\
                     options: --op plus|max|min|mult  --engine auto|serial|spinetree|blocked\n\
                     \x20        --reduce (totals only)  --inclusive  [FILE]"
                );
                std::process::exit(0);
            }
            f if !f.starts_with('-') => opts.file = Some(f.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.reduce && opts.inclusive {
        return Err("--reduce and --inclusive are mutually exclusive".into());
    }
    Ok(opts)
}

fn read_input(file: &Option<String>) -> Result<(Vec<i64>, Vec<usize>), String> {
    let reader: Box<dyn BufRead> = match file {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?,
        )),
        None => Box::new(std::io::stdin().lock()),
    };
    let mut values = Vec::new();
    let mut labels = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (v, l) = line
            .split_once(',')
            .ok_or_else(|| format!("line {}: expected value,label", lineno + 1))?;
        values.push(
            v.trim()
                .parse::<i64>()
                .map_err(|e| format!("line {}: bad value: {e}", lineno + 1))?,
        );
        labels.push(
            l.trim()
                .parse::<usize>()
                .map_err(|e| format!("line {}: bad label: {e}", lineno + 1))?,
        );
    }
    Ok((values, labels))
}

fn run(opts: &Options) -> Result<String, String> {
    let (values, labels) = read_input(&opts.file)?;
    let m = labels.iter().max().map_or(0, |&l| l + 1);
    let mut out = String::new();
    macro_rules! go {
        ($op:expr) => {{
            if opts.reduce {
                let red = multireduce(&values, &labels, m, $op, opts.engine)
                    .map_err(|e: MpError| e.to_string())?;
                for (label, total) in red.iter().enumerate() {
                    out.push_str(&format!("{label},{total}\n"));
                }
            } else {
                let result = if opts.inclusive {
                    multiprefix_inclusive(&values, &labels, m, $op, opts.engine)
                } else {
                    multiprefix(&values, &labels, m, $op, opts.engine)
                }
                .map_err(|e: MpError| e.to_string())?;
                for s in &result.sums {
                    out.push_str(&format!("{s}\n"));
                }
            }
        }};
    }
    match opts.op.as_str() {
        "plus" => go!(Plus),
        "max" => go!(Max),
        "min" => go!(Min),
        "mult" => go!(Mult),
        other => return Err(format!("unknown op {other}")),
    }
    Ok(out)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mp_cli: {e}");
            std::process::exit(2);
        }
    };
    match run(&opts) {
        Ok(text) => {
            std::io::stdout()
                .write_all(text.as_bytes())
                .expect("stdout");
        }
        Err(e) => {
            eprintln!("mp_cli: {e}");
            std::process::exit(1);
        }
    }
}
