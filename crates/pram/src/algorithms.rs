//! Further PRAM programs: Figure 11's integer sort, and a pointer-doubling
//! scan as the work-inefficiency contrast.
//!
//! §3 of the paper distinguishes step complexity `S` from work `W` and
//! calls an algorithm work efficient when `W` matches the serial bound.
//! The doubling scan here ([`scan_doubling_on_pram`]) runs in `O(log n)`
//! steps but does `Θ(n log n)` work — faster in steps, wasteful in work —
//! while the multiprefix-based sort ([`integer_sort_on_pram`]) keeps
//! `W = O(n + m)` at `S = O(√n + √m)`, the paper's §5.1 bound.

use crate::algo::multiprefix_on_pram;
use crate::machine::{Pram, PramError, Word, WritePolicy};
use crate::metrics::Metrics;
use multiprefix::spinetree::Layout;

/// A PRAM integer-sort run.
#[derive(Debug, Clone)]
pub struct PramSortRun {
    /// 0-based stable rank of each key.
    pub ranks: Vec<usize>,
    /// Combined metrics over both multiprefix calls and the fix-up step.
    pub total: Metrics,
}

/// Figure 11 on the PRAM: two multiprefix calls plus one rank-fix-up
/// `pardo`, all metered.
///
/// ```text
/// MP(1, key, +, rank, bucket);
/// MP(bucket, 1, total, cumulative);     // all labels equal: plain scan
/// pardo (i): rank[i] += cumulative[key[i]];
/// ```
pub fn integer_sort_on_pram(keys: &[usize], m: usize, seed: u64) -> Result<PramSortRun, PramError> {
    let n = keys.len();

    // First multiprefix: constant-1 values keyed by the integers.
    let ones = vec![1i64; n];
    let layout1 = Layout::square(n, m);
    let run1 = multiprefix_on_pram(&ones, keys, m, layout1, seed)?;

    // Second multiprefix: the bucket counts, all under one label — the
    // degenerate case that is a plain prefix sum (§5.1.1).
    let labels0 = vec![0usize; m];
    let layout2 = Layout::square(m, 1);
    let run2 = multiprefix_on_pram(&run1.output.reductions, &labels0, 1, layout2, seed)?;

    // Rank fix-up as one explicit PRAM step: rank[i] = rank1[i] +
    // cumulative[key[i]]. Reads of cumulative[key] are concurrent (same
    // key), so this step needs CR; each rank cell has a single writer.
    let a_key = 0;
    let a_rank = n;
    let a_cum = 2 * n;
    let mut pram = Pram::new(2 * n + m, WritePolicy::CrcwArb, seed);
    for (i, (&key, &rank)) in keys.iter().zip(&run1.output.sums).enumerate() {
        pram.mem_mut()[a_key + i] = key as Word;
        pram.mem_mut()[a_rank + i] = rank;
    }
    for (b, &c) in run2.output.sums.iter().enumerate() {
        pram.mem_mut()[a_cum + b] = c;
    }
    pram.step(n, |i, ctx| {
        let k = ctx.read(a_key + i) as usize;
        let r = ctx.read(a_rank + i);
        let c = ctx.read(a_cum + k);
        ctx.write(a_rank + i, r + c);
    })?;

    let ranks = pram.mem()[a_rank..a_rank + n]
        .iter()
        .map(|&r| r as usize)
        .collect();
    let fix = pram.metrics_snapshot();
    let total = Metrics {
        steps: run1.total.steps + run2.total.steps + fix.steps,
        work: run1.total.work + run2.total.work + fix.work,
        concurrent_read_cells: run1.total.concurrent_read_cells
            + run2.total.concurrent_read_cells
            + fix.concurrent_read_cells,
        concurrent_write_cells: run1.total.concurrent_write_cells
            + run2.total.concurrent_write_cells
            + fix.concurrent_write_cells,
    };
    Ok(PramSortRun { ranks, total })
}

/// Hillis–Steele pointer-doubling **inclusive** scan on the PRAM:
/// `O(log n)` steps, `Θ(n log n)` work.
///
/// The textbook one-array formulation is CREW (cell `i` is read both by
/// processor `i` and by processor `i + 2^d`); the EREW variant below gives
/// each processor a private accumulator cell (`B[i]`, touched only by
/// processor `i`) and a published cell (`A[i]`, written by processor `i`,
/// read only by processor `i + 2^d`). Synchronous snapshot semantics make
/// the publish-while-read safe, and the machine verifies the EREW claim.
pub fn scan_doubling_on_pram(values: &[i64]) -> Result<(Vec<i64>, Metrics), PramError> {
    let n = values.len();
    let (a_pub, a_acc) = (0usize, n);
    let mut pram = Pram::new((2 * n).max(1), WritePolicy::Erew, 0);
    pram.mem_mut()[a_pub..a_pub + n].copy_from_slice(values);
    pram.mem_mut()[a_acc..a_acc + n].copy_from_slice(values);
    let mut d = 1usize;
    while d < n {
        pram.step(n, |i, ctx| {
            let mut acc = ctx.read(a_acc + i); // private
            if i >= d {
                acc = acc.wrapping_add(ctx.read(a_pub + i - d)); // sole reader
                ctx.write(a_acc + i, acc);
            }
            ctx.write(a_pub + i, acc); // publish for round d·2
        })?;
        d *= 2;
    }
    Ok((
        pram.mem()[a_pub..a_pub + n].to_vec(),
        pram.metrics_snapshot(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_sort_oracle::counting_ranks;

    /// A tiny local oracle (avoiding a cyclic dev-dependency on mp-sort).
    mod mp_sort_oracle {
        pub fn counting_ranks(keys: &[usize], m: usize) -> Vec<usize> {
            let mut counts = vec![0usize; m];
            for &k in keys {
                counts[k] += 1;
            }
            let mut offsets = vec![0usize; m];
            let mut acc = 0;
            for k in 0..m {
                offsets[k] = acc;
                acc += counts[k];
            }
            keys.iter()
                .map(|&k| {
                    let r = offsets[k];
                    offsets[k] += 1;
                    r
                })
                .collect()
        }
    }

    #[test]
    fn pram_sort_ranks_correctly() {
        let keys: Vec<usize> = (0..400).map(|i| (i * 37 + i / 5) % 19).collect();
        let run = integer_sort_on_pram(&keys, 19, 3).unwrap();
        assert_eq!(run.ranks, counting_ranks(&keys, 19));
    }

    #[test]
    fn pram_sort_is_seed_invariant() {
        let keys: Vec<usize> = (0..256).map(|i| (i * 7) % 31).collect();
        let a = integer_sort_on_pram(&keys, 31, 1).unwrap();
        let b = integer_sort_on_pram(&keys, 31, 0xFACE).unwrap();
        assert_eq!(a.ranks, b.ranks);
    }

    #[test]
    fn pram_sort_work_is_linear() {
        // W = O(n + m): doubling n should ~double the work.
        let work = |n: usize| {
            let keys: Vec<usize> = (0..n).map(|i| i % 17).collect();
            integer_sort_on_pram(&keys, 17, 1).unwrap().total.work as f64
        };
        let (w1, w2) = (work(1024), work(2048));
        let ratio = w2 / w1;
        assert!((1.6..2.6).contains(&ratio), "W(2n)/W(n) = {ratio}");
    }

    #[test]
    fn doubling_scan_correct_but_wasteful() {
        let values: Vec<i64> = (0..512).map(|i| i % 7 - 3).collect();
        let (scan, metrics) = scan_doubling_on_pram(&values).unwrap();
        // Inclusive scan oracle.
        let mut acc = 0i64;
        let expect: Vec<i64> = values
            .iter()
            .map(|&v| {
                acc += v;
                acc
            })
            .collect();
        assert_eq!(scan, expect);
        // O(log n) steps…
        assert_eq!(metrics.steps, 9, "log2(512) rounds");
        // …but Θ(n log n) work — NOT work efficient.
        assert!(metrics.work >= 512 * 9);
        assert!(
            metrics.is_erew(),
            "doubling scan must be EREW under snapshots"
        );
    }

    #[test]
    fn work_efficiency_contrast() {
        // The quantitative version of §3's point: per element, the
        // multiprefix sort's work stays flat while the doubling scan's
        // grows with log n.
        let n1 = 1 << 9;
        let n2 = 1 << 13;
        let mp_work = |n: usize| {
            let keys: Vec<usize> = (0..n).map(|i| i % 13).collect();
            integer_sort_on_pram(&keys, 13, 1).unwrap().total.work as f64 / n as f64
        };
        let scan_work = |n: usize| {
            let values = vec![1i64; n];
            scan_doubling_on_pram(&values).unwrap().1.work as f64 / n as f64
        };
        let mp_growth = mp_work(n2) / mp_work(n1);
        let scan_growth = scan_work(n2) / scan_work(n1);
        assert!(
            mp_growth < 1.3,
            "multiprefix work/elt must stay flat: x{mp_growth:.2}"
        );
        assert!(
            scan_growth > 1.3,
            "doubling work/elt must grow: x{scan_growth:.2}"
        );
    }

    #[test]
    fn empty_and_tiny_scan() {
        let (s, _) = scan_doubling_on_pram(&[]).unwrap();
        assert!(s.is_empty());
        let (s, m) = scan_doubling_on_pram(&[42]).unwrap();
        assert_eq!(s, vec![42]);
        assert_eq!(m.steps, 0);
    }
}
