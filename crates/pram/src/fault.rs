//! Fault injection for the arbitration network, and detection by
//! self-checking.
//!
//! The overwrite-and-test races of the SPINETREE phase are the only place
//! the paper's algorithm relies on concurrent-write arbitration — the one
//! component a real machine would implement with a combining/arbitrating
//! network rather than ordinary RAM. This module asks the robustness
//! question: *if that arbiter silently commits a wrong word, does anything
//! notice?*
//!
//! [`multiprefix_with_faults`] runs the unmodified PRAM multiprefix
//! ([`crate::algo::multiprefix_on_machine`]) on a machine whose arbiter is
//! armed with a [`FaultPlan`]: a deterministic fraction of **multi-writer
//! ARB commits** commit a corrupted (in-range, but un-asked-for) spine
//! pointer. The result is a structurally plausible but wrong spinetree —
//! exactly the failure mode a flaky arbitration network produces, and one
//! that no bounds check or panic can catch.
//!
//! Detection is the job of the serial cross-check
//! ([`multiprefix::oracle::verify_output`], the same comparator behind
//! [`multiprefix::multiprefix_verified`]): one `O(n + m)` reference pass
//! flags the first output cell that disagrees. The harness returns both the
//! injection count and the verification verdict so tests can assert the
//! contract end to end: faults injected ⇒ verification fails; no faults ⇒
//! verification passes.

use crate::algo::{multiprefix_on_machine, required_cells, PramRun};
use crate::machine::{FaultPlan, Pram, PramError, WritePolicy};
use multiprefix::op::Plus;
use multiprefix::oracle::verify_output;
use multiprefix::spinetree::Layout;
use multiprefix::MpError;

/// Outcome of one faulted run: what happened, and whether the self-check
/// caught it.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The (possibly corrupted) run, with its output and metrics.
    pub run: PramRun,
    /// Number of arbitration commits the plan actually corrupted.
    pub faults_injected: usize,
    /// Verdict of the serial cross-check on the run's output: `Ok(())` if
    /// the output is correct despite any faults, or the first disagreeing
    /// cell as [`MpError::VerificationFailed`].
    pub detection: Result<(), MpError>,
}

impl FaultReport {
    /// True when at least one fault was injected *and* the self-check
    /// reported the output wrong — the detection contract held.
    pub fn faults_detected(&self) -> bool {
        self.faults_injected > 0 && self.detection.is_err()
    }
}

/// Run multiprefix-PLUS on a CRCW-ARB machine with `plan`-driven
/// arbitration faults, then cross-check the output against the serial
/// oracle.
///
/// `seed` drives the (correct) arbitration choices; `plan.seed` drives the
/// independent fault stream. Everything is deterministic in
/// `(seed, plan)`, so a failing case replays exactly.
pub fn multiprefix_with_faults(
    values: &[i64],
    labels: &[usize],
    m: usize,
    layout: Layout,
    seed: u64,
    plan: FaultPlan,
) -> Result<FaultReport, PramError> {
    let mut pram = Pram::new(required_cells(&layout), WritePolicy::CrcwArb, seed);
    pram.set_fault_plan(Some(plan));
    let run = multiprefix_on_machine(&mut pram, values, labels, m, layout)?;
    let detection = verify_output(values, labels, m, Plus, &run.output);
    Ok(FaultReport {
        run,
        faults_injected: pram.faults_injected(),
        detection,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One class, distinct values: every spine pointer matters, so a wrong
    /// arbitration commit shifts at least one element's prefix.
    fn contended(n: usize) -> (Vec<i64>, Vec<usize>) {
        ((1..=n as i64).collect(), vec![0usize; n])
    }

    #[test]
    fn zero_rate_plan_is_the_identity() {
        let (values, labels) = contended(400);
        let layout = Layout::square(400, 1);
        let plan = FaultPlan::arb(9, 0);
        let report = multiprefix_with_faults(&values, &labels, 1, layout, 7, plan).unwrap();
        assert_eq!(report.faults_injected, 0);
        assert_eq!(report.detection, Ok(()));
        assert!(!report.faults_detected());
    }

    #[test]
    fn injected_faults_are_detected() {
        // Corrupt every contested arbitration commit: the spinetree is
        // thoroughly wrong and the serial cross-check must say so.
        let (values, labels) = contended(400);
        let layout = Layout::square(400, 1);
        let plan = FaultPlan::arb(1, 1_000_000);
        let report = multiprefix_with_faults(&values, &labels, 1, layout, 7, plan).unwrap();
        assert!(report.faults_injected > 0, "contended input must fault");
        assert!(
            matches!(report.detection, Err(MpError::VerificationFailed { .. })),
            "corrupted run must fail verification: {:?}",
            report.detection
        );
        assert!(report.faults_detected());
    }

    #[test]
    fn sparse_faults_detected_across_seeds() {
        // A low fault rate across several fault streams: whenever anything
        // was injected, detection must trigger; injection counts are
        // deterministic per seed.
        let (values, labels) = contended(900);
        let layout = Layout::square(900, 1);
        let mut detected = 0;
        for fault_seed in 0..8u64 {
            let plan = FaultPlan::arb(fault_seed, 200_000);
            let a = multiprefix_with_faults(&values, &labels, 1, layout, 3, plan).unwrap();
            let b = multiprefix_with_faults(&values, &labels, 1, layout, 3, plan).unwrap();
            assert_eq!(a.faults_injected, b.faults_injected, "replay must match");
            assert_eq!(a.detection, b.detection, "replay must match");
            if a.faults_detected() {
                detected += 1;
            }
        }
        assert!(detected >= 4, "only {detected}/8 fault streams detected");
    }

    #[test]
    fn injected_panic_unwinds_deterministically() {
        // A panic-everything plan crashes the contended arbiter; the panic
        // is deterministic, so both runs agree, and a bare `arb` plan with
        // the same seed stays panic-free.
        let (values, labels) = contended(400);
        let layout = Layout::square(400, 1);
        let plan = FaultPlan::arb(3, 0).panic_ppm(1_000_000);
        for _ in 0..2 {
            let caught = std::panic::catch_unwind(|| {
                multiprefix_with_faults(&values, &labels, 1, layout, 7, plan)
            });
            assert!(caught.is_err(), "panic-everything plan must unwind");
        }
        let clean =
            multiprefix_with_faults(&values, &labels, 1, layout, 7, FaultPlan::arb(3, 0)).unwrap();
        assert_eq!(clean.faults_injected, 0);
        assert_eq!(clean.detection, Ok(()));
    }

    #[test]
    fn stall_plan_counts_but_does_not_corrupt() {
        // Stalls burn time (zero here, to keep the test fast) and are
        // counted as injected faults, but never change the output.
        let (values, labels) = contended(400);
        let layout = Layout::square(400, 1);
        let plan = FaultPlan::arb(4, 0).stall(1_000_000, std::time::Duration::ZERO);
        let report = multiprefix_with_faults(&values, &labels, 1, layout, 7, plan).unwrap();
        assert!(report.faults_injected > 0, "contended input must stall");
        assert_eq!(report.detection, Ok(()), "stalls must not corrupt data");
        assert!(!report.faults_detected());
    }

    #[test]
    fn uncontended_input_has_no_eligible_commits() {
        // All-distinct labels: the spinetree phase never has two writers on
        // one bucket, so even a corrupt-everything plan finds nothing to
        // corrupt — the fault model really is scoped to arbitration.
        let n = 169;
        let values: Vec<i64> = (1..=n as i64).collect();
        let labels: Vec<usize> = (0..n).collect();
        let layout = Layout::square(n, n);
        let plan = FaultPlan::arb(5, 1_000_000);
        let report = multiprefix_with_faults(&values, &labels, n, layout, 11, plan).unwrap();
        assert_eq!(report.faults_injected, 0);
        assert_eq!(report.detection, Ok(()));
    }
}
