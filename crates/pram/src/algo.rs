//! The paper's multiprefix algorithm (Figures 3–4) as explicit PRAM steps.
//!
//! Memory map (word addresses), mirroring the Figure 8 pivot layout inside
//! the simulated memory:
//!
//! ```text
//! [0, n)                values
//! [n, 2n)               labels
//! [V+0,        V+m+n)   spine      (V = 2n; buckets first, then elements)
//! [V+(m+n),  V+2(m+n))  rowsum
//! [V+2(m+n), V+3(m+n))  spinesum
//! [V+3(m+n), V+4(m+n))  has_child
//! [R, R+m)              reductions (R = V + 4(m+n))
//! [U, U+n)              multi      (U = R + m)
//! ```
//!
//! Each `pardo` of the paper becomes one [`Pram::step`] whose processor
//! count equals the row or column population. The SPINETREE body is split
//! into its concurrent-READ half and its concurrent-ARB-WRITE half (the
//! loop fission the CRAY compiler performs, §4.1), so the conflict ledger
//! attributes reads and writes to the right sub-steps.
//!
//! The tests here check the paper's central structural claim: **only the
//! SPINETREE phase performs concurrent accesses** — the INIT, ROWSUMS,
//! SPINESUMS and MULTISUMS phases run with zero concurrent reads and zero
//! concurrent writes (EREW), on the honest machine, for arbitrary inputs.

use crate::machine::{Pram, PramError, Word, WritePolicy};
use crate::metrics::Metrics;
use multiprefix::problem::MultiprefixOutput;
use multiprefix::spinetree::Layout;

/// A finished PRAM execution of the multiprefix algorithm.
#[derive(Debug, Clone)]
pub struct PramRun {
    /// Sums and reductions read back from the simulated memory.
    pub output: MultiprefixOutput<i64>,
    /// Geometry used.
    pub layout: Layout,
    /// Per-phase metrics: `[init, spinetree, rowsums, spinesums, multisums]`
    /// (the reduction extraction is folded into `spinesums`).
    pub phases: [Metrics; 5],
    /// Whole-run metrics.
    pub total: Metrics,
}

/// Memory footprint (in words) of [`multiprefix_on_machine`] for `layout` —
/// the size a host-built [`Pram`] must have.
pub fn required_cells(layout: &Layout) -> usize {
    let slots = layout.m + layout.n;
    2 * layout.n + 4 * slots + layout.m + layout.n
}

/// Run multiprefix-PLUS on a CRCW-ARB PRAM with `p ≈ √n` processors.
///
/// `seed` drives the machine's write arbitration; the returned sums and
/// reductions are independent of it (tested), as the ARB model requires.
pub fn multiprefix_on_pram(
    values: &[i64],
    labels: &[usize],
    m: usize,
    layout: Layout,
    seed: u64,
) -> Result<PramRun, PramError> {
    let mut pram = Pram::new(required_cells(&layout), WritePolicy::CrcwArb, seed);
    multiprefix_on_machine(&mut pram, values, labels, m, layout)
}

/// [`multiprefix_on_pram`] against a **caller-supplied machine** — the seam
/// the fault-injection harness ([`crate::fault`]) uses to run the identical
/// algorithm on a machine whose arbiter has been armed with a
/// [`crate::machine::FaultPlan`]. The machine must have at least
/// [`required_cells`] words of memory and use a CRCW policy.
pub fn multiprefix_on_machine(
    pram: &mut Pram,
    values: &[i64],
    labels: &[usize],
    m: usize,
    layout: Layout,
) -> Result<PramRun, PramError> {
    assert_eq!(values.len(), labels.len());
    assert_eq!(values.len(), layout.n);
    assert_eq!(m, layout.m);
    let n = layout.n;
    let slots = m + n;

    // Address map.
    let a_value = 0;
    let a_label = n;
    let v = 2 * n;
    let a_spine = v;
    let a_rowsum = v + slots;
    let a_spinesum = v + 2 * slots;
    let a_haschild = v + 3 * slots;
    let a_red = v + 4 * slots;
    let a_multi = a_red + m;
    let total_cells = a_multi + n;
    assert!(
        pram.mem().len() >= total_cells,
        "machine too small: {} cells, need {total_cells}",
        pram.mem().len()
    );
    for i in 0..n {
        pram.mem_mut()[a_value + i] = values[i];
        pram.mem_mut()[a_label + i] = labels[i] as Word;
    }

    let snap0 = pram.metrics_snapshot();

    // ---- INIT (Figure 3): one parallel step over all m+n slots. --------
    pram.step(slots, |s, ctx| {
        ctx.write(a_rowsum + s, 0);
        ctx.write(a_spinesum + s, 0);
        ctx.write(a_haschild + s, 0);
        if s < m {
            ctx.write(a_spine + s, s as Word); // bucket points at itself
        } else {
            let label = ctx.read(a_label + (s - m));
            ctx.write(a_spine + s, label); // element points at its bucket
        }
    })?;
    let snap1 = pram.metrics_snapshot();

    // ---- Phase 1: SPINETREE, rows top to bottom. -----------------------
    for r in layout.rows_top_down() {
        let row = layout.row_elements(r);
        let base = row.start;
        let width = row.len();
        // Concurrent-READ half: test the bucket pointer.
        pram.step(width, |k, ctx| {
            let i = base + k;
            let label = ctx.read(a_label + i) as usize;
            let parent = ctx.read(a_spine + label);
            ctx.write(a_spine + m + i, parent);
        })?;
        // Concurrent-ARB-WRITE half: overwrite the bucket pointer.
        pram.step(width, |k, ctx| {
            let i = base + k;
            let label = ctx.read(a_label + i) as usize;
            ctx.write(a_spine + label, (m + i) as Word);
        })?;
    }
    let snap2 = pram.metrics_snapshot();

    // ---- Phase 2: ROWSUMS, columns left to right. ----------------------
    for c in layout.cols_left_right() {
        let col: Vec<usize> = layout.col_elements(c).collect();
        pram.step(col.len(), |k, ctx| {
            let i = col[k];
            let parent = ctx.read(a_spine + m + i) as usize;
            let rs = ctx.read(a_rowsum + parent);
            let val = ctx.read(a_value + i);
            ctx.write(a_rowsum + parent, rs.wrapping_add(val));
            ctx.write(a_haschild + parent, 1);
        })?;
    }
    let snap3 = pram.metrics_snapshot();

    // ---- Phase 3: SPINESUMS, rows bottom to top. -----------------------
    for r in layout.rows_bottom_up() {
        let row = layout.row_elements(r);
        let base = row.start;
        pram.step(row.len(), |k, ctx| {
            let i = base + k;
            let slot = m + i;
            if ctx.read(a_haschild + slot) != 0 {
                let parent = ctx.read(a_spine + slot) as usize;
                let ss = ctx.read(a_spinesum + slot);
                let rs = ctx.read(a_rowsum + slot);
                ctx.write(a_spinesum + parent, ss.wrapping_add(rs));
            }
        })?;
    }
    // Reductions (§4.2): one exclusive step over the buckets.
    if m > 0 {
        pram.step(m, |b, ctx| {
            let ss = ctx.read(a_spinesum + b);
            let rs = ctx.read(a_rowsum + b);
            ctx.write(a_red + b, ss.wrapping_add(rs));
        })?;
    }
    let snap4 = pram.metrics_snapshot();

    // ---- Phase 4: MULTISUMS, columns left to right. --------------------
    for c in layout.cols_left_right() {
        let col: Vec<usize> = layout.col_elements(c).collect();
        pram.step(col.len(), |k, ctx| {
            let i = col[k];
            let parent = ctx.read(a_spine + m + i) as usize;
            let prefix = ctx.read(a_spinesum + parent);
            let val = ctx.read(a_value + i);
            ctx.write(a_multi + i, prefix);
            ctx.write(a_spinesum + parent, prefix.wrapping_add(val));
        })?;
    }
    let snap5 = pram.metrics_snapshot();

    let mem = pram.mem();
    let sums = mem[a_multi..a_multi + n].to_vec();
    let reductions = mem[a_red..a_red + m].to_vec();

    Ok(PramRun {
        output: MultiprefixOutput { sums, reductions },
        layout,
        phases: [
            snap1 - snap0,
            snap2 - snap1,
            snap3 - snap2,
            snap4 - snap3,
            snap5 - snap4,
        ],
        total: snap5 - snap0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiprefix::op::Plus;
    use multiprefix::serial::multiprefix_serial;

    fn mixed(n: usize, m: usize) -> (Vec<i64>, Vec<usize>) {
        let values = (0..n).map(|i| (i as i64 * 37 % 41) - 20).collect();
        let labels = (0..n).map(|i| (i * 13 + i / 7) % m).collect();
        (values, labels)
    }

    #[test]
    fn matches_serial() {
        let (values, labels) = mixed(625, 9);
        let layout = Layout::square(625, 9);
        let run = multiprefix_on_pram(&values, &labels, 9, layout, 1).unwrap();
        let expect = multiprefix_serial(&values, &labels, 9, Plus);
        assert_eq!(run.output.sums, expect.sums);
        assert_eq!(run.output.reductions, expect.reductions);
    }

    #[test]
    fn only_spinetree_phase_conflicts() {
        // The central §3.1 claim, checked on the honest machine: INIT and
        // phases 2-4 are EREW; every concurrent access sits in SPINETREE.
        let (values, labels) = mixed(900, 7);
        let layout = Layout::square(900, 7);
        let run = multiprefix_on_pram(&values, &labels, 7, layout, 99).unwrap();
        let [init, spinetree, rowsums, spinesums, multisums] = run.phases;
        assert!(init.is_erew(), "INIT must be EREW: {init:?}");
        assert!(rowsums.is_erew(), "ROWSUMS must be EREW: {rowsums:?}");
        assert!(spinesums.is_erew(), "SPINESUMS must be EREW: {spinesums:?}");
        assert!(multisums.is_erew(), "MULTISUMS must be EREW: {multisums:?}");
        // With 900 elements over 7 classes there absolutely are conflicts
        // in the tree-building phase — that is the point of ARB.
        assert!(!spinetree.is_erew(), "SPINETREE should show concurrency");
    }

    #[test]
    fn erew_claim_holds_under_every_arbitration() {
        let (values, labels) = mixed(400, 5);
        let layout = Layout::square(400, 5);
        let expect = multiprefix_serial(&values, &labels, 5, Plus);
        for seed in [0u64, 1, 7, 0xFEED, 0xDEADBEEF] {
            let run = multiprefix_on_pram(&values, &labels, 5, layout, seed).unwrap();
            assert_eq!(run.output.sums, expect.sums, "seed {seed}");
            assert_eq!(run.output.reductions, expect.reductions, "seed {seed}");
            for (k, phase) in run.phases.iter().enumerate() {
                if k != 1 {
                    assert!(phase.is_erew(), "phase {k} not EREW under seed {seed}");
                }
            }
        }
    }

    #[test]
    fn step_complexity_theta_sqrt_n() {
        for n in [64usize, 256, 1024, 4096] {
            let (values, labels) = mixed(n, 3);
            let layout = Layout::square(n, 3);
            let run = multiprefix_on_pram(&values, &labels, 3, layout, 5).unwrap();
            let sqrt_n = (n as f64).sqrt();
            let s = run.total.steps as f64;
            // 2·rows (spinetree halves) + cols + rows + cols + 2 ≈ 5√n.
            assert!(s <= 6.0 * sqrt_n + 8.0, "S = {s}, √n = {sqrt_n}, n = {n}");
            assert!(
                s >= 3.0 * sqrt_n - 8.0,
                "S suspiciously small: {s} for n = {n}"
            );
            // Work efficiency: W = O(n).
            let w = run.total.work as f64;
            assert!(w <= 6.0 * n as f64 + 64.0, "W = {w} not O(n) for n = {n}");
        }
    }

    #[test]
    fn heavy_load_single_class() {
        let n = 256;
        let values: Vec<i64> = (0..n as i64).collect();
        let labels = vec![0usize; n];
        let layout = Layout::square(n, 1);
        let run = multiprefix_on_pram(&values, &labels, 1, layout, 11).unwrap();
        let expect = multiprefix_serial(&values, &labels, 1, Plus);
        assert_eq!(run.output.sums, expect.sums);
        assert_eq!(run.output.reductions, expect.reductions);
    }

    #[test]
    fn light_load_all_distinct() {
        let n = 169;
        let values: Vec<i64> = (0..n as i64).map(|i| i * 3 + 1).collect();
        let labels: Vec<usize> = (0..n).collect();
        let layout = Layout::square(n, n);
        let run = multiprefix_on_pram(&values, &labels, n, layout, 2).unwrap();
        let expect = multiprefix_serial(&values, &labels, n, Plus);
        assert_eq!(run.output.sums, expect.sums);
        assert_eq!(run.output.reductions, expect.reductions);
        // All-distinct labels: even the SPINETREE writes are exclusive.
        assert!(run.phases[1].concurrent_write_cells == 0);
    }

    #[test]
    fn tiny_inputs() {
        let layout = Layout::square(1, 2);
        let run = multiprefix_on_pram(&[7], &[1], 2, layout, 0).unwrap();
        assert_eq!(run.output.sums, vec![0]);
        assert_eq!(run.output.reductions, vec![0, 7]);
    }
}
