//! Step / work / conflict accounting — the complexity measures of §3.

use std::ops::Sub;

/// Cumulative counters for a [`crate::Pram`] run.
///
/// * `steps` — parallel steps executed (`S` in the paper);
/// * `work` — total processor activations over all steps (`W`);
/// * `concurrent_read_cells` — cells observed with ≥ 2 distinct readers in
///   one step, summed over steps (0 ⇒ every step was exclusive-read);
/// * `concurrent_write_cells` — likewise for writers (0 ⇒ exclusive-write).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Parallel steps executed.
    pub steps: usize,
    /// Total processor activations (work).
    pub work: usize,
    /// Cells with concurrent readers, accumulated over steps.
    pub concurrent_read_cells: usize,
    /// Cells with concurrent writers, accumulated over steps.
    pub concurrent_write_cells: usize,
}

impl Metrics {
    /// True iff the accounted interval used only exclusive reads & writes —
    /// i.e. it would have been legal on an EREW PRAM.
    pub fn is_erew(&self) -> bool {
        self.concurrent_read_cells == 0 && self.concurrent_write_cells == 0
    }
}

impl Sub for Metrics {
    type Output = Metrics;
    /// Difference of two snapshots: the accounting of the interval between
    /// them (later minus earlier).
    fn sub(self, earlier: Metrics) -> Metrics {
        Metrics {
            steps: self.steps - earlier.steps,
            work: self.work - earlier.work,
            concurrent_read_cells: self.concurrent_read_cells - earlier.concurrent_read_cells,
            concurrent_write_cells: self.concurrent_write_cells - earlier.concurrent_write_cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_subtraction() {
        let before = Metrics {
            steps: 2,
            work: 10,
            concurrent_read_cells: 1,
            concurrent_write_cells: 0,
        };
        let after = Metrics {
            steps: 5,
            work: 25,
            concurrent_read_cells: 1,
            concurrent_write_cells: 2,
        };
        let d = after - before;
        assert_eq!(d.steps, 3);
        assert_eq!(d.work, 15);
        assert_eq!(d.concurrent_read_cells, 0);
        assert_eq!(d.concurrent_write_cells, 2);
        assert!(!d.is_erew());
        assert!(Metrics::default().is_erew());
    }
}
