//! Figure 12 on the PRAM: sparse mat-vec as an explicit stepped program.
//!
//! ```text
//! PARALLEL-MATVECT:
//!     pardo (i = 1 to n)
//!         product[i] = vals[i] × vector[cols[i]];
//!     MR(product, rows, +, vector);
//! ```
//!
//! The product `pardo` is one PRAM step with `nnz` processors whose reads
//! of `vector[cols[i]]` are *concurrent* (several nonzeros share a column)
//! — a CREW step, legal on the ARB machine. The multireduce is the
//! multiprefix program of [`crate::algo`] with row labels.

use crate::algo::multiprefix_on_pram;
use crate::machine::{Pram, PramError, Word, WritePolicy};
use crate::metrics::Metrics;
use multiprefix::spinetree::Layout;

/// A PRAM SpMV run (integer arithmetic — the machine's words).
#[derive(Debug, Clone)]
pub struct PramSpmvRun {
    /// `y = A·x`.
    pub y: Vec<i64>,
    /// Metrics of the product step.
    pub product_step: Metrics,
    /// Metrics of the multireduce.
    pub reduce: Metrics,
}

/// Multiply an integer sparse matrix by `x` on the CRCW-ARB PRAM.
pub fn spmv_on_pram(
    order: usize,
    rows: &[usize],
    cols: &[usize],
    vals: &[i64],
    x: &[i64],
    seed: u64,
) -> Result<PramSpmvRun, PramError> {
    assert_eq!(rows.len(), cols.len());
    assert_eq!(rows.len(), vals.len());
    assert_eq!(x.len(), order);
    let nnz = rows.len();

    // Product pardo: memory = [vals | cols | x | products].
    let a_vals = 0;
    let a_cols = nnz;
    let a_x = 2 * nnz;
    let a_prod = 2 * nnz + order;
    let mut pram = Pram::new(a_prod + nnz, WritePolicy::CrcwArb, seed);
    for k in 0..nnz {
        pram.mem_mut()[a_vals + k] = vals[k];
        pram.mem_mut()[a_cols + k] = cols[k] as Word;
    }
    for (j, &xj) in x.iter().enumerate() {
        pram.mem_mut()[a_x + j] = xj;
    }
    pram.step(nnz, |k, ctx| {
        let v = ctx.read(a_vals + k);
        let c = ctx.read(a_cols + k) as usize;
        let xv = ctx.read(a_x + c); // concurrent read across shared columns
        ctx.write(a_prod + k, v.wrapping_mul(xv));
    })?;
    let product_step = pram.metrics_snapshot();
    let products = pram.mem()[a_prod..a_prod + nnz].to_vec();

    // Multireduce by row index (the multiprefix program; §4.2 says the
    // reductions are ready after SPINESUMS — we reuse the full run's
    // reduction output).
    let layout = Layout::square(nnz, order);
    let run = multiprefix_on_pram(&products, rows, order, layout, seed)?;

    Ok(PramSpmvRun {
        y: run.output.reductions,
        product_step,
        reduce: run.total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_oracle(
        order: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[i64],
        x: &[i64],
    ) -> Vec<i64> {
        let mut y = vec![0i64; order];
        for k in 0..rows.len() {
            y[rows[k]] += vals[k] * x[cols[k]];
        }
        y
    }

    #[test]
    fn small_matrix() {
        let run = spmv_on_pram(
            3,
            &[0, 0, 1, 2, 2],
            &[0, 2, 0, 1, 2],
            &[1, 3, 2, 4, 5],
            &[1, 2, 3],
            1,
        )
        .unwrap();
        assert_eq!(run.y, vec![10, 2, 23]);
        assert_eq!(run.product_step.steps, 1, "products are one pardo");
    }

    #[test]
    fn random_matrix_matches_oracle_across_seeds() {
        let order = 20;
        let nnz = 150;
        let mut state = 5u64;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let rows: Vec<usize> = (0..nnz).map(|_| step() % order).collect();
        let cols: Vec<usize> = (0..nnz).map(|_| step() % order).collect();
        let vals: Vec<i64> = (0..nnz).map(|_| (step() % 7) as i64 - 3).collect();
        let x: Vec<i64> = (0..order).map(|_| (step() % 5) as i64).collect();
        let expect = dense_oracle(order, &rows, &cols, &vals, &x);
        for seed in [0u64, 9, 77] {
            let run = spmv_on_pram(order, &rows, &cols, &vals, &x, seed).unwrap();
            assert_eq!(run.y, expect, "seed {seed}");
        }
    }

    #[test]
    fn product_step_shows_concurrent_reads_when_columns_shared() {
        // Every nonzero in column 0: the x[0] read is maximally concurrent.
        let run = spmv_on_pram(
            4,
            &[0, 1, 2, 3],
            &[0, 0, 0, 0],
            &[1, 1, 1, 1],
            &[9, 0, 0, 0],
            2,
        )
        .unwrap();
        assert_eq!(run.y, vec![9, 9, 9, 9]);
        assert!(
            run.product_step.concurrent_read_cells > 0,
            "shared column ⇒ CR"
        );
        assert_eq!(
            run.product_step.concurrent_write_cells, 0,
            "products are exclusive"
        );
    }
}
