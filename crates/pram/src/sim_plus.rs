//! §1.2: simulating a CRCW-PLUS PRAM on a CRCW-ARB PRAM.
//!
//! "The CRCW-PLUS PRAM model allows a combining function to be applied to
//! values concurrently written to the same location. Our multiprefix
//! algorithm can be used to simulate a concurrent combining write for
//! problem sizes `n ≥ p²` … A CRCW-PLUS PRAM may be simulated on a
//! CRCW-ARB PRAM with only constant slowdown for problem sizes `n ≥ p²`."
//!
//! The simulation of one combining-write step is exactly a **multireduce**:
//! treat each virtual processor's `(address, value)` request as an element
//! labeled by its address, run the multiprefix algorithm on the ARB
//! machine, and store each bucket's reduction into the target cell.
//!
//! [`plus_slowdown`] quantifies the theorem: a `p`-processor host
//! simulating the `O(√n)`-virtual-step algorithm (whose steps engage ~`√n`
//! virtual processors each) spends `Θ(√n · √n / p) = Θ(n/p)` real steps —
//! the trivial lower bound for touching `n` requests with `p` processors —
//! whenever `n ≥ p²`, i.e. constant slowdown. Below that size the `√n`
//! step count itself dominates and the slowdown grows as `p²/n`.

use crate::algo::multiprefix_on_pram;
use crate::machine::{Pram, PramError, Word, WritePolicy};
use multiprefix::spinetree::Layout;

/// One combining-write request of a virtual processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRequest {
    /// Target cell in `[0, m)`.
    pub addr: usize,
    /// Value contributed.
    pub value: i64,
}

/// Execute one combining-write step *directly* on a CRCW-PLUS machine —
/// the specification the ARB simulation must match. Returns the memory
/// image after the step (cells never written stay at their prior value).
pub fn combining_write_direct(
    memory: &[Word],
    requests: &[WriteRequest],
) -> Result<Vec<Word>, PramError> {
    let mut pram = Pram::new(memory.len(), WritePolicy::CrcwPlus, 0);
    pram.mem_mut().copy_from_slice(memory);
    pram.step(requests.len(), |k, ctx| {
        ctx.write(requests[k].addr, requests[k].value);
    })?;
    Ok(pram.mem().to_vec())
}

/// Result of simulating a combining write on the ARB machine.
#[derive(Debug, Clone)]
pub struct ArbSimulation {
    /// Memory image after the simulated step.
    pub memory: Vec<Word>,
    /// Virtual parallel steps the multiprefix subroutine used.
    pub virtual_steps: usize,
    /// Total work of the subroutine.
    pub work: usize,
}

/// Simulate one CRCW-PLUS combining write on the CRCW-ARB machine via the
/// multiprefix algorithm (used as a multireduce).
pub fn combining_write_on_arb(
    memory: &[Word],
    requests: &[WriteRequest],
    seed: u64,
) -> Result<ArbSimulation, PramError> {
    let m = memory.len();
    let values: Vec<i64> = requests.iter().map(|r| r.value).collect();
    let labels: Vec<usize> = requests.iter().map(|r| r.addr).collect();
    let layout = Layout::square(requests.len(), m);
    let run = multiprefix_on_pram(&values, &labels, m, layout, seed)?;

    let mut out = memory.to_vec();
    let mut touched = vec![false; m];
    for &l in &labels {
        touched[l] = true;
    }
    for (cell, (&red, &was_written)) in out
        .iter_mut()
        .zip(run.output.reductions.iter().zip(&touched))
    {
        if was_written {
            // CLR's combining write REPLACES the cell with the combination
            // of the concurrently written values.
            *cell = red;
        }
    }
    Ok(ArbSimulation {
        memory: out,
        virtual_steps: run.total.steps,
        work: run.total.work,
    })
}

/// Slowdown accounting for the §1.2 theorem.
#[derive(Debug, Clone, Copy)]
pub struct Slowdown {
    /// Problem size (virtual processors issuing the combining write).
    pub n: usize,
    /// Real processors of the host ARB machine.
    pub p: usize,
    /// Virtual steps of the multiprefix subroutine (≈ 5√n).
    pub virtual_steps: usize,
    /// Real steps after folding each wide virtual step onto `p` processors:
    /// `Σ ceil(step_width / p)`, estimated as `steps + work/p`.
    pub real_steps: usize,
    /// The trivial lower bound `ceil(n / p)` — any algorithm must spend
    /// this many steps just reading the requests.
    pub optimal_steps: usize,
    /// `real_steps / optimal_steps` — the simulation's slowdown factor.
    pub slowdown: f64,
}

/// Measure the simulation slowdown for `n` requests on a `p`-processor
/// host, by actually running the algorithm and folding its step widths.
pub fn plus_slowdown(n: usize, p: usize, seed: u64) -> Result<Slowdown, PramError> {
    assert!(n > 0 && p > 0);
    let values: Vec<i64> = (0..n as i64).collect();
    let labels: Vec<usize> = (0..n).map(|i| (i * 7) % (n / 2 + 1)).collect();
    let m = n / 2 + 1;
    let layout = Layout::square(n, m);
    let run = multiprefix_on_pram(&values, &labels, m, layout, seed)?;
    // Each virtual step engages at most max(row_len, n_rows, m+n-init)
    // processors; folding onto p real processors costs ceil(width/p) real
    // steps. `steps + work/p` is an exact upper bound on Σ ceil(w_i / p).
    let real_steps = run.total.steps + run.total.work.div_ceil(p);
    let optimal_steps = n.div_ceil(p);
    Ok(Slowdown {
        n,
        p,
        virtual_steps: run.total.steps,
        real_steps,
        optimal_steps,
        slowdown: real_steps as f64 / optimal_steps as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests(n: usize, m: usize) -> Vec<WriteRequest> {
        (0..n)
            .map(|i| WriteRequest {
                addr: (i * 31 + i / 5) % m,
                value: (i as i64 * 13) % 50 - 25,
            })
            .collect()
    }

    #[test]
    fn arb_simulation_matches_plus_machine() {
        let memory: Vec<Word> = (0..10).map(|i| i * 100).collect();
        let reqs = requests(200, 10);
        let direct = combining_write_direct(&memory, &reqs).unwrap();
        for seed in [0u64, 3, 17] {
            let sim = combining_write_on_arb(&memory, &reqs, seed).unwrap();
            assert_eq!(sim.memory, direct, "seed {seed}");
        }
    }

    #[test]
    fn untouched_cells_keep_old_values() {
        let memory = vec![11, 22, 33, 44];
        let reqs = vec![
            WriteRequest { addr: 1, value: 5 },
            WriteRequest { addr: 1, value: 6 },
        ];
        let direct = combining_write_direct(&memory, &reqs).unwrap();
        assert_eq!(direct, vec![11, 11, 33, 44]);
        let sim = combining_write_on_arb(&memory, &reqs, 9).unwrap();
        assert_eq!(sim.memory, direct);
    }

    #[test]
    fn constant_slowdown_when_n_at_least_p_squared() {
        // For n = α²p², the slowdown must stay below a fixed constant as
        // both α and p vary — the theorem's statement.
        let mut max_slowdown: f64 = 0.0;
        for p in [4usize, 8, 16] {
            for alpha in [1usize, 2, 4] {
                let n = alpha * alpha * p * p;
                let s = plus_slowdown(n, p, 1).unwrap();
                assert!(
                    s.slowdown < 16.0,
                    "slowdown {} too large for n={n}, p={p}",
                    s.slowdown
                );
                max_slowdown = max_slowdown.max(s.slowdown);
            }
        }
        assert!(max_slowdown > 0.0);
    }

    #[test]
    fn slowdown_grows_below_the_threshold() {
        // With n = p (far below p²) the √n virtual step count dominates and
        // the slowdown is no longer constant: it must exceed the constant
        // regime observed above by a clear margin.
        let under = plus_slowdown(256, 256, 1).unwrap(); // n = p
        let over = plus_slowdown(256 * 256, 256, 1).unwrap(); // n = p²
        assert!(
            under.slowdown > 4.0 * over.slowdown,
            "expected sub-threshold slowdown ({}) to dwarf the n ≥ p² case ({})",
            under.slowdown,
            over.slowdown
        );
    }

    #[test]
    fn virtual_steps_scale_as_sqrt_n() {
        let a = plus_slowdown(1024, 4, 1).unwrap();
        let b = plus_slowdown(4096, 4, 1).unwrap();
        let ratio = b.virtual_steps as f64 / a.virtual_steps as f64;
        assert!(
            (1.5..=2.6).contains(&ratio),
            "S(4n)/S(n) = {ratio}, expected ≈ 2"
        );
    }
}
