//! The synchronous shared-memory machine.
//!
//! A [`Pram`] owns a word memory and executes **steps**. In one step every
//! active processor runs the same program fragment (a closure receiving its
//! processor id and a [`ProcCtx`]): all reads observe the memory as of the
//! *start* of the step, and all writes are buffered and committed together
//! at the *end* of the step — the standard synchronous PRAM semantics.
//!
//! After the processors run, the machine inspects the access sets:
//!
//! * a cell read by ≥ 2 distinct processors is a **concurrent read** —
//!   an error under [`WritePolicy::Erew`], counted otherwise;
//! * a cell written by ≥ 2 distinct processors is a **concurrent write** —
//!   an error under EREW/CREW, resolved under CRCW-ARB by electing a
//!   pseudo-random winner (deterministic in the machine's seed: "an
//!   arbitrary one succeeds"), and under CRCW-PLUS by summing the written
//!   values (the combining write of [CLR89, p. 690]).

use crate::metrics::Metrics;
use std::collections::HashMap;

/// Machine word. The paper's algorithm only needs integers and indices.
pub type Word = i64;

/// Concurrent-access discipline of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Exclusive read, exclusive write: any concurrent access is an error.
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
    /// Concurrent read; of concurrent writers an arbitrary one succeeds.
    CrcwArb,
    /// Concurrent read; concurrent writes to one cell are combined with `+`.
    CrcwPlus,
    /// Concurrent read; concurrent writes combined with `max` (another
    /// combining CW from the CLR taxonomy).
    CrcwMax,
}

/// A concurrent access the active policy forbids. Fields: the step index,
/// the contested cell and the number of processors involved.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PramError {
    /// ≥ 2 processors read `addr` in step `step` under EREW.
    ReadConflict {
        step: usize,
        addr: usize,
        processors: usize,
    },
    /// ≥ 2 processors wrote `addr` in step `step` under EREW/CREW.
    WriteConflict {
        step: usize,
        addr: usize,
        processors: usize,
    },
}

impl std::fmt::Display for PramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PramError::ReadConflict { step, addr, processors } => write!(
                f,
                "EREW violation: {processors} processors read cell {addr} in step {step}"
            ),
            PramError::WriteConflict { step, addr, processors } => write!(
                f,
                "exclusive-write violation: {processors} processors wrote cell {addr} in step {step}"
            ),
        }
    }
}

impl std::error::Error for PramError {}

/// Per-processor view of one step: reads against the step-start snapshot,
/// buffered writes.
pub struct ProcCtx<'a> {
    snapshot: &'a [Word],
    proc: usize,
    reads: &'a mut Vec<(usize, usize)>,
    writes: &'a mut Vec<(usize, usize, Word)>,
}

impl ProcCtx<'_> {
    /// Read a cell (as of the start of this step).
    pub fn read(&mut self, addr: usize) -> Word {
        self.reads.push((self.proc, addr));
        self.snapshot[addr]
    }

    /// Buffer a write, committed at the end of the step.
    pub fn write(&mut self, addr: usize, value: Word) {
        self.writes.push((self.proc, addr, value));
    }
}

/// A deterministic plan for corrupting CRCW-ARB arbitration commits — the
/// fault model of the `fault` module's harness.
///
/// Only **multi-writer** ARB commits (the overwrite-and-test races of the
/// SPINETREE phase) are eligible: those are exactly the writes whose
/// hardware realization is a combining/arbitrating network, the component
/// the paper's §5 positions as the exotic part of a multiprefix machine.
/// Whether an eligible commit is corrupted is a pure function of
/// `(fault_seed, step, addr)`, so a run is exactly reproducible.
///
/// Beyond silent corruption (`rate_ppm`), a plan can model two further
/// arbiter failure modes for chaos testing:
///
/// * `panic_ppm` — the arbiter *crashes*: an eligible commit panics with
///   `"chaos: injected arbiter panic"` instead of committing. Harnesses
///   that catch unwinds (the core crate's dispatcher, the soak tests) see
///   it as an engine panic; bare callers see a deterministic panic.
/// * `stall_ppm` / `stall` — the arbiter *hangs* for `stall` per firing
///   commit, modeling a degraded network; used to exercise deadlines.
///
/// `FaultPlan::default()` injects nothing; [`FaultPlan::arb`] gives the
/// original corrupt-only plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the fault stream (independent of the arbitration seed).
    pub seed: u64,
    /// Corruption probability per eligible commit, in parts per million
    /// (`1_000_000` = corrupt every eligible commit).
    pub rate_ppm: u32,
    /// Injected-panic probability per eligible commit, in parts per
    /// million. Drawn from an independent stream, after corruption.
    pub panic_ppm: u32,
    /// Stall probability per eligible commit, in parts per million.
    pub stall_ppm: u32,
    /// How long a firing stall blocks the step.
    pub stall: std::time::Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            rate_ppm: 0,
            panic_ppm: 0,
            stall_ppm: 0,
            stall: std::time::Duration::ZERO,
        }
    }
}

impl FaultPlan {
    /// A corruption-only plan (the PR-1 fault model): corrupt eligible
    /// arbitration commits at `rate_ppm`, never panic or stall.
    pub fn arb(seed: u64, rate_ppm: u32) -> Self {
        FaultPlan {
            seed,
            rate_ppm,
            ..FaultPlan::default()
        }
    }

    /// Set the injected-panic rate.
    pub fn panic_ppm(mut self, ppm: u32) -> Self {
        self.panic_ppm = ppm;
        self
    }

    /// Set the stall rate and duration.
    pub fn stall(mut self, ppm: u32, stall: std::time::Duration) -> Self {
        self.stall_ppm = ppm;
        self.stall = stall;
        self
    }

    /// Does this plan corrupt the multi-writer commit at `(step, addr)`?
    #[inline]
    fn fires(&self, step: usize, addr: usize) -> bool {
        mix(self.seed, step as u64, addr as u64) % 1_000_000 < self.rate_ppm as u64
    }

    /// Does this plan panic on the multi-writer commit at `(step, addr)`?
    /// (Independent stream: the seed is offset so the panic draw is not
    /// correlated with the corruption draw.)
    #[inline]
    fn fires_panic(&self, step: usize, addr: usize) -> bool {
        self.panic_ppm > 0
            && mix(self.seed ^ 0xA11C_E5CA_FE00_0001, step as u64, addr as u64) % 1_000_000
                < self.panic_ppm as u64
    }

    /// Does this plan stall on the multi-writer commit at `(step, addr)`?
    #[inline]
    fn fires_stall(&self, step: usize, addr: usize) -> bool {
        self.stall_ppm > 0
            && mix(self.seed ^ 0x57A1_1ED0_0000_0002, step as u64, addr as u64) % 1_000_000
                < self.stall_ppm as u64
    }
}

/// The machine.
pub struct Pram {
    mem: Vec<Word>,
    policy: WritePolicy,
    seed: u64,
    metrics: Metrics,
    fault: Option<FaultPlan>,
    faults_injected: usize,
}

#[inline]
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Pram {
    /// Create a machine with `cells` zeroed memory words under `policy`.
    /// `seed` drives CRCW-ARB arbitration (different seeds may elect
    /// different winners; algorithms claiming ARB-correctness must produce
    /// identical results for every seed).
    pub fn new(cells: usize, policy: WritePolicy, seed: u64) -> Self {
        Pram {
            mem: vec![0; cells],
            policy,
            seed,
            metrics: Metrics::default(),
            fault: None,
            faults_injected: 0,
        }
    }

    /// Arm a [`FaultPlan`]: from now on, eligible (multi-writer CRCW-ARB)
    /// commits may be corrupted. Pass `None` to disarm.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// How many arbitration commits have been corrupted so far.
    pub fn faults_injected(&self) -> usize {
        self.faults_injected
    }

    /// Direct (host-side) access to memory — for loading inputs and reading
    /// results outside the stepped computation.
    pub fn mem(&self) -> &[Word] {
        &self.mem
    }

    /// Mutable host-side access (input loading).
    pub fn mem_mut(&mut self) -> &mut [Word] {
        &mut self.mem
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The active write policy.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// Execute one synchronous step on `processors` processors.
    ///
    /// `body(proc, ctx)` runs once per processor; `proc ∈ [0, processors)`.
    /// Returns the step's conflict tallies or a [`PramError`] if the policy
    /// forbids an observed access pattern (memory is left unchanged in the
    /// error case — the illegal step does not commit).
    pub fn step<F>(&mut self, processors: usize, mut body: F) -> Result<(), PramError>
    where
        F: FnMut(usize, &mut ProcCtx),
    {
        let step_index = self.metrics.steps;
        let mut reads: Vec<(usize, usize)> = Vec::new();
        let mut writes: Vec<(usize, usize, Word)> = Vec::new();

        for proc in 0..processors {
            let mut ctx = ProcCtx {
                snapshot: &self.mem,
                proc,
                reads: &mut reads,
                writes: &mut writes,
            };
            body(proc, &mut ctx);
        }

        // --- conflict analysis ---------------------------------------
        let mut readers: HashMap<usize, usize> = HashMap::new();
        {
            // distinct processors per read cell
            let mut seen: HashMap<(usize, usize), ()> = HashMap::new();
            for &(proc, addr) in &reads {
                if seen.insert((proc, addr), ()).is_none() {
                    *readers.entry(addr).or_insert(0) += 1;
                }
            }
        }
        for (&addr, &procs) in &readers {
            if procs > 1 {
                if self.policy == WritePolicy::Erew {
                    return Err(PramError::ReadConflict {
                        step: step_index,
                        addr,
                        processors: procs,
                    });
                }
                self.metrics.concurrent_read_cells += 1;
            }
        }

        let mut writers: HashMap<usize, Vec<(usize, Word)>> = HashMap::new();
        for &(proc, addr, value) in &writes {
            writers.entry(addr).or_default().push((proc, value));
        }
        for (&addr, entries) in &writers {
            let distinct: std::collections::HashSet<usize> =
                entries.iter().map(|&(p, _)| p).collect();
            if distinct.len() > 1 {
                match self.policy {
                    WritePolicy::Erew | WritePolicy::Crew => {
                        return Err(PramError::WriteConflict {
                            step: step_index,
                            addr,
                            processors: distinct.len(),
                        });
                    }
                    WritePolicy::CrcwArb | WritePolicy::CrcwPlus | WritePolicy::CrcwMax => {
                        self.metrics.concurrent_write_cells += 1;
                    }
                }
            }
        }

        // --- commit ---------------------------------------------------
        for (addr, entries) in writers {
            match self.policy {
                WritePolicy::CrcwPlus => {
                    // Combining write: the cell is REPLACED by the sum of
                    // all concurrently written values (CLR's combining CW;
                    // the old content does not participate).
                    let mut total = 0i64;
                    for &(_, v) in &entries {
                        total = total.wrapping_add(v);
                    }
                    self.mem[addr] = total;
                }
                WritePolicy::CrcwMax => {
                    self.mem[addr] = entries.iter().map(|&(_, v)| v).max().expect("non-empty");
                }
                _ => {
                    // ARB (and the trivially exclusive cases): elect a
                    // winner by seeded hash — "an arbitrary one succeeds."
                    let winner = entries
                        .iter()
                        .max_by_key(|&&(p, _)| {
                            mix(self.seed, step_index as u64, (p as u64) << 20 | addr as u64)
                        })
                        .expect("non-empty");
                    let mut committed = winner.1;
                    // Fault injection: corrupt the arbitrated value of a
                    // contested commit. The corrupted word must differ from
                    // EVERY contending write — electing a different writer
                    // is a legal ARB outcome the algorithm is proof against
                    // (arbitration independence), not a fault. `min − 1`
                    // (or `max + 1` when min is 0) stays adjacent to the
                    // written range, so spinetree pointers remain in-range
                    // for the pivot block instead of indexing out of
                    // bounds, yet names a parent no arbiter could elect.
                    if let Some(plan) = self.fault {
                        if entries.len() > 1 {
                            if plan.fires(step_index, addr) {
                                let lo = entries.iter().map(|&(_, v)| v).min().expect("non-empty");
                                let hi = entries.iter().map(|&(_, v)| v).max().expect("non-empty");
                                committed = if lo > 0 { lo - 1 } else { hi + 1 };
                                self.faults_injected += 1;
                            }
                            if plan.fires_stall(step_index, addr) {
                                self.faults_injected += 1;
                                std::thread::sleep(plan.stall);
                            }
                            if plan.fires_panic(step_index, addr) {
                                self.faults_injected += 1;
                                panic!("chaos: injected arbiter panic");
                            }
                        }
                    }
                    self.mem[addr] = committed;
                }
            }
        }

        self.metrics.steps += 1;
        self.metrics.work += processors;
        Ok(())
    }

    /// Snapshot the metrics (for per-phase accounting: snapshot before and
    /// after, subtract).
    pub fn metrics_snapshot(&self) -> Metrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_write_read_roundtrip() {
        let mut pram = Pram::new(4, WritePolicy::Erew, 1);
        pram.step(4, |p, ctx| ctx.write(p, p as Word * 10)).unwrap();
        let mut got = vec![0; 4];
        pram.step(4, |p, ctx| got[p] = ctx.read(p)).unwrap();
        assert_eq!(got, vec![0, 10, 20, 30]);
        assert_eq!(pram.mem(), &[0, 10, 20, 30]);
        assert_eq!(pram.metrics().steps, 2);
        assert_eq!(pram.metrics().work, 8);
    }

    #[test]
    fn erew_rejects_concurrent_read() {
        let mut pram = Pram::new(2, WritePolicy::Erew, 1);
        let err = pram.step(2, |_, ctx| {
            ctx.read(0);
        });
        assert!(matches!(
            err,
            Err(PramError::ReadConflict {
                addr: 0,
                processors: 2,
                ..
            })
        ));
    }

    #[test]
    fn erew_allows_same_processor_rereads() {
        let mut pram = Pram::new(2, WritePolicy::Erew, 1);
        pram.step(1, |_, ctx| {
            ctx.read(0);
            ctx.read(0);
        })
        .unwrap();
    }

    #[test]
    fn crew_allows_concurrent_read_rejects_concurrent_write() {
        let mut pram = Pram::new(2, WritePolicy::Crew, 1);
        pram.step(2, |_, ctx| {
            ctx.read(0);
        })
        .unwrap();
        let err = pram.step(2, |p, ctx| ctx.write(0, p as Word));
        assert!(matches!(
            err,
            Err(PramError::WriteConflict {
                addr: 0,
                processors: 2,
                ..
            })
        ));
    }

    #[test]
    fn failed_step_does_not_commit() {
        let mut pram = Pram::new(1, WritePolicy::Crew, 1);
        let _ = pram.step(2, |p, ctx| ctx.write(0, 7 + p as Word));
        assert_eq!(pram.mem()[0], 0, "illegal step must not modify memory");
    }

    #[test]
    fn arb_elects_exactly_one_writer() {
        let mut pram = Pram::new(1, WritePolicy::CrcwArb, 42);
        pram.step(8, |p, ctx| ctx.write(0, 100 + p as Word))
            .unwrap();
        let v = pram.mem()[0];
        assert!(
            (100..108).contains(&v),
            "winner must be one of the written values, got {v}"
        );
        assert_eq!(pram.metrics().concurrent_write_cells, 1);
    }

    #[test]
    fn arb_winner_varies_with_seed() {
        let winner = |seed| {
            let mut pram = Pram::new(1, WritePolicy::CrcwArb, seed);
            pram.step(64, |p, ctx| ctx.write(0, p as Word)).unwrap();
            pram.mem()[0]
        };
        let w: Vec<Word> = (0..16).map(winner).collect();
        assert!(
            w.iter().any(|&x| x != w[0]),
            "arbitration should vary across seeds: {w:?}"
        );
    }

    #[test]
    fn plus_combines_concurrent_writes() {
        let mut pram = Pram::new(2, WritePolicy::CrcwPlus, 1);
        pram.step(5, |p, ctx| ctx.write(0, p as Word + 1)).unwrap();
        assert_eq!(pram.mem()[0], 1 + 2 + 3 + 4 + 5);
        // Exclusive cells behave normally under PLUS too.
        pram.step(1, |_, ctx| ctx.write(1, 9)).unwrap();
        assert_eq!(pram.mem()[1], 9);
    }

    #[test]
    fn max_combines_concurrent_writes() {
        let mut pram = Pram::new(1, WritePolicy::CrcwMax, 1);
        pram.step(5, |p, ctx| ctx.write(0, (p as Word) * 3 - 5))
            .unwrap();
        assert_eq!(pram.mem()[0], 7, "max of {{-5,-2,1,4,7}}");
    }

    #[test]
    fn reads_see_step_start_snapshot() {
        // Processor 0 writes cell 1 while processor 1 reads it: the read
        // must observe the pre-step value (synchronous semantics).
        let mut pram = Pram::new(2, WritePolicy::CrcwArb, 1);
        pram.mem_mut()[1] = 55;
        let mut observed = 0;
        pram.step(2, |p, ctx| {
            if p == 0 {
                ctx.write(1, 99);
            } else {
                observed = ctx.read(1);
            }
        })
        .unwrap();
        assert_eq!(observed, 55);
        assert_eq!(pram.mem()[1], 99);
    }

    #[test]
    fn conflict_metrics_accumulate() {
        let mut pram = Pram::new(4, WritePolicy::CrcwArb, 3);
        pram.step(4, |_, ctx| {
            ctx.read(2);
        })
        .unwrap();
        pram.step(4, |p, ctx| ctx.write(3, p as Word)).unwrap();
        let m = pram.metrics();
        assert_eq!(m.concurrent_read_cells, 1);
        assert_eq!(m.concurrent_write_cells, 1);
        assert_eq!(m.steps, 2);
    }
}
