#![warn(missing_docs)]

//! # pram — a synchronous PRAM simulator
//!
//! The paper states its algorithm and theorems on a **CRCW-ARB PRAM**:
//! `p` processors sharing a word-addressed memory, proceeding in lockstep
//! steps; when several processors write one cell in the same step, an
//! *arbitrary* one succeeds. This crate is an executable version of that
//! machine, built so the paper's claims can be *checked* rather than
//! assumed:
//!
//! * [`machine::Pram`] runs synchronous steps with pluggable write
//!   policies ([`machine::WritePolicy`]: EREW, CREW, CRCW-ARB, CRCW-PLUS)
//!   and detects every concurrent read and concurrent write per step;
//! * [`metrics::Metrics`] accounts parallel steps, work, and conflict
//!   counts — the `S` and `W` measures of §3;
//! * [`algo`] expresses the paper's Figures 3–4 as explicit PRAM steps with
//!   `p ≈ √n` processors. Its tests confirm `S = Θ(√n)`, `W = Θ(n)`, and —
//!   the §3.1 punchline — that after the SPINETREE phase **every remaining
//!   step is EREW** (zero concurrent reads or writes), for random labelings;
//! * [`sim_plus`] demonstrates §1.2: a CRCW-PLUS combining write simulated
//!   on the ARB machine via multiprefix, with measured (constant, for
//!   `n ≥ p²`) slowdown;
//! * [`fault`] injects deterministic faults into the machine's arbitration
//!   commits ([`machine::FaultPlan`]) and shows the serial cross-check of
//!   `multiprefix::multiprefix_verified` detects the corrupted runs.

//! ## Example
//!
//! ```
//! use pram::{Pram, WritePolicy};
//!
//! // Eight processors concurrently increment-via-ARB one cell: exactly
//! // one write survives, and the machine records the conflict.
//! let mut pram = Pram::new(4, WritePolicy::CrcwArb, 42);
//! pram.step(8, |p, ctx| ctx.write(0, 100 + p as i64)).unwrap();
//! assert!((100..108).contains(&pram.mem()[0]));
//! assert_eq!(pram.metrics().concurrent_write_cells, 1);
//! ```

pub mod algo;
pub mod algorithms;
pub mod fault;
pub mod machine;
pub mod metrics;
pub mod sim_plus;
pub mod spmv_pram;

pub use fault::{multiprefix_with_faults, FaultReport};
pub use machine::{FaultPlan, Pram, PramError, ProcCtx, Word, WritePolicy};
pub use metrics::Metrics;
