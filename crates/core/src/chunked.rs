//! The two-level chunked engine: work-efficient parallel multiprefix with
//! compact per-chunk bucket tables and reusable workspaces.
//!
//! This is the multicore instance of the paper's §4 two-level decomposition.
//! There, the element vector is laid out as rows of length `p ≈ 0.749√n`;
//! each row computes its contribution independently and a spine pass
//! combines the row summaries. Here the "rows" are `p` contiguous chunks —
//! one per worker thread — and the operation runs in three phases:
//!
//! 1. **local** (parallel over chunks): each worker runs the serial
//!    (Figure 2) multiprefix over its chunk into a *compact* bucket table:
//!    labels map to dense slots on first touch, and a touched-label list
//!    records which of the `m` buckets this chunk actually saw. Per-chunk
//!    cost is `O(chunk_len + distinct_labels)` — **not** `O(m)` — so
//!    `m ≫ n` workloads pay for the labels present, never the label space;
//! 2. **combine** (sequential over chunks, `O(Σ distinct)` total): an
//!    exclusive scan per touched label across the chunk summaries, in chunk
//!    order. Associativity plus preserved order makes this correct for
//!    non-commutative operators; the running totals end as the global
//!    reductions;
//! 3. **apply** (parallel over chunks): one linear pass prepends each
//!    chunk's per-label offset: `sums[i] = offset(chunk, lᵢ) ⊕ local[i]`.
//!
//! Unlike the [`crate::atomic`] engine there is no cross-thread `fetch_add`
//! traffic at all — every cache line is written by exactly one worker until
//! the (tiny) combine phase — and unlike [`crate::blocked`] the tables are
//! compact and **reusable**: a [`ChunkedWorkspace`] carries the epoch-marked
//! label maps, touched lists and chunk summaries across calls, and a
//! [`WorkspacePool`] lets a [`crate::service::Service`] hand each request a
//! warm workspace so steady-state traffic does zero large allocations.
//!
//! The hardened entry points (`try_*`) thread the full execution contract
//! through all three phases: [`crate::exec::OverflowPolicy`] trip-and-replay
//! via [`CheckGuard`], [`RunContext`] cancellation/deadline checkpoints at
//! phase boundaries and every [`crate::resilience::CHECK_STRIDE`] elements,
//! obs phase spans (`engine.chunked.phase.{local,combine,apply}`), and
//! chaos worker faults in the local phase. [`ChunkedPlan`] amortizes the
//! label-structure discovery across repeated runs over the same labels.

use crate::error::MpError;
use crate::exec::{try_filled_vec, CheckGuard, ExecConfig, OverflowPolicy, TryEngineResult};
use crate::obs::{phase_key, Phase};
use crate::op::{CombineOp, TryCombineOp};
use crate::problem::{validate, Element, MultiprefixOutput};
use crate::resilience::{EngineKind, RunContext, CHECK_STRIDE};
use crate::simd::{Kernel, Kernels};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Minimum chunk length before the engine stops splitting: below this the
/// per-thread spawn cost outweighs the parallelism and the chunk count
/// collapses toward one (which runs inline on the caller's thread).
pub const MIN_CHUNK_LEN: usize = 4096;

/// The number of chunks (= workers) for an `n`-element run on `threads`
/// threads: one chunk per thread, but never chunks shorter than
/// [`MIN_CHUNK_LEN`].
fn chunk_count(n: usize, threads: usize) -> usize {
    threads.max(1).min(n.div_ceil(MIN_CHUNK_LEN)).max(1)
}

/// The combine abstraction the engine core is generic over: the plain
/// operator on the infallible path, a [`CheckGuard`] on the hardened path.
/// Keeping the core monomorphic over this avoids duplicating the three
/// phases for the plain/try split.
pub(crate) trait Comb<T: Element>: Copy + Send + Sync {
    fn identity(&self) -> T;
    fn combine(&self, a: T, b: T) -> T;
    /// The recognized vector-kernel class for this combine, when engaging
    /// it is bit-exact for this run ([`crate::op::CombineOp::KERNEL`],
    /// vetoed by checked/saturating policies and
    /// [`crate::ExecConfig::force_scalar`]). `None` keeps every phase on
    /// the scalar loops.
    fn kernel(&self) -> Option<Kernel> {
        None
    }
    /// Whether the opt-in `f32` kernel is admitted
    /// ([`crate::ExecConfig::simd_f32`]).
    fn allow_f32(&self) -> bool {
        false
    }
}

/// Resolve the vector-kernel table for this run, or `None` for scalar.
#[inline]
pub(crate) fn comb_kernels<T: Element, C: Comb<T>>(comb: C) -> Option<&'static Kernels<T>> {
    comb.kernel()
        .and_then(|k| crate::simd::kernels::<T>(k, comb.allow_f32()))
}

/// Plain (unchecked) combine for the infallible entry points.
#[derive(Clone, Copy)]
pub(crate) struct PlainComb<O>(pub(crate) O);

impl<T: Element, O: CombineOp<T>> Comb<T> for PlainComb<O> {
    #[inline(always)]
    fn identity(&self) -> T {
        self.0.identity()
    }
    #[inline(always)]
    fn combine(&self, a: T, b: T) -> T {
        self.0.combine(a, b)
    }
    #[inline(always)]
    fn kernel(&self) -> Option<Kernel> {
        O::KERNEL
    }
}

impl<T: Element, O: TryCombineOp<T>> Comb<T> for CheckGuard<'_, O> {
    #[inline(always)]
    fn identity(&self) -> T {
        CheckGuard::identity(self)
    }
    #[inline(always)]
    fn combine(&self, a: T, b: T) -> T {
        CheckGuard::combine(self, a, b)
    }
    #[inline(always)]
    fn kernel(&self) -> Option<Kernel> {
        if self.simd_ok() {
            O::KERNEL
        } else {
            None
        }
    }
    #[inline(always)]
    fn allow_f32(&self) -> bool {
        CheckGuard::allow_f32(self)
    }
}

/// Fallibly grow `v` to at least `len`, filling new space with `fill`.
fn try_grow<U: Element>(v: &mut Vec<U>, len: usize, fill: U) -> Result<(), MpError> {
    if v.len() < len {
        let additional = len - v.len();
        v.try_reserve(additional)
            .map_err(|_| MpError::AllocationFailed {
                bytes: additional.saturating_mul(std::mem::size_of::<U>()),
            })?;
        v.resize(len, fill);
    }
    Ok(())
}

/// Fibonacci hash of a label into the probed map's power-of-two table.
#[inline(always)]
fn hash_label(l: usize) -> usize {
    ((l as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize
}

/// One chunk's (or the combine phase's) compact label table: a label → slot
/// map plus slot-indexed values and a touched-label list in first-touch
/// order.
///
/// Two map modes, chosen per run:
///
/// * **direct** — `m`-sized `mark`/`slot_of` arrays, validated by an epoch
///   stamp so *reuse costs nothing*: bumping the epoch invalidates every
///   stale entry without touching memory (the `m`-sized arrays are written
///   once, on first use at a given `m`, not zeroed per call);
/// * **probed** — an open-addressed, linear-probe table sized to twice the
///   chunk's maximum distinct-label count (`≤ 50%` load, so probes are
///   short and insertion cannot fail). Used when `m` is large relative to
///   `n` and the direct arrays would dwarf the data.
///
/// Either way the per-call work is `O(elements + distinct)`, never `O(m)`.
pub struct ChunkSpace<T> {
    // Direct mode: label -> slot, valid iff mark[label] == epoch.
    mark: Vec<u32>,
    slot_of: Vec<u32>,
    epoch: u32,
    // Probed mode: open-addressed keys (usize::MAX = empty) -> slot.
    keys: Vec<usize>,
    slots: Vec<u32>,
    mask: usize,
    direct: bool,
    // Both modes.
    pub(crate) touched: Vec<usize>,
    pub(crate) vals: Vec<T>,
}

impl<T> Default for ChunkSpace<T> {
    fn default() -> Self {
        ChunkSpace {
            mark: Vec::new(),
            slot_of: Vec::new(),
            epoch: 0,
            keys: Vec::new(),
            slots: Vec::new(),
            mask: 0,
            direct: true,
            touched: Vec::new(),
            vals: Vec::new(),
        }
    }
}

impl<T> std::fmt::Debug for ChunkSpace<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkSpace")
            .field("direct", &self.direct)
            .field("touched", &self.touched.len())
            .field("map_capacity", &self.mark.len().max(self.keys.len()))
            .finish()
    }
}

impl<T: Element> ChunkSpace<T> {
    /// Prepare the space for one run: clear the touched list and values and
    /// (re)validate the label map. `distinct_cap` bounds the number of
    /// distinct labels this use can see (chunk length, or `m`, whichever is
    /// smaller). Self-healing: a space abandoned mid-run by a panic is
    /// fully reset here.
    pub(crate) fn begin_use(
        &mut self,
        m: usize,
        distinct_cap: usize,
        direct: bool,
    ) -> Result<(), MpError> {
        self.touched.clear();
        self.vals.clear();
        self.direct = direct;
        if direct {
            try_grow(&mut self.mark, m, 0)?;
            try_grow(&mut self.slot_of, m, 0)?;
            self.epoch = self.epoch.wrapping_add(1);
            if self.epoch == 0 {
                // Epoch wrapped: stale stamps could collide. Reset once per
                // 2³² uses.
                self.mark.fill(0);
                self.epoch = 1;
            }
        } else {
            let cap = distinct_cap
                .max(1)
                .saturating_mul(2)
                .next_power_of_two()
                .max(16);
            try_grow(&mut self.keys, cap, usize::MAX)?;
            try_grow(&mut self.slots, cap, 0)?;
            // Memset (not epoch) clearing keeps the probed map panic-safe:
            // no state from an abandoned run can alias a live label.
            self.keys[..cap].fill(usize::MAX);
            self.mask = cap - 1;
        }
        Ok(())
    }

    /// The slot for `label`, inserting it (touched list + identity value)
    /// on first sight.
    #[inline]
    pub(crate) fn slot_or_insert(&mut self, label: usize, identity: T) -> usize {
        if self.direct {
            if self.mark[label] == self.epoch {
                return self.slot_of[label] as usize;
            }
            let slot = self.vals.len();
            self.mark[label] = self.epoch;
            self.slot_of[label] = slot as u32;
            self.touched.push(label);
            self.vals.push(identity);
            slot
        } else {
            let mut j = hash_label(label) & self.mask;
            loop {
                let k = self.keys[j];
                if k == label {
                    return self.slots[j] as usize;
                }
                if k == usize::MAX {
                    let slot = self.vals.len();
                    self.keys[j] = label;
                    self.slots[j] = slot as u32;
                    self.touched.push(label);
                    self.vals.push(identity);
                    return slot;
                }
                j = (j + 1) & self.mask;
            }
        }
    }

    /// Bytes retained by the grown map/value buffers (capacity, not
    /// length): the quantity the pool's high-water check budgets.
    fn retained_bytes(&self) -> usize {
        self.mark.capacity() * std::mem::size_of::<u32>()
            + self.slot_of.capacity() * std::mem::size_of::<u32>()
            + self.keys.capacity() * std::mem::size_of::<usize>()
            + self.slots.capacity() * std::mem::size_of::<u32>()
            + self.touched.capacity() * std::mem::size_of::<usize>()
            + self.vals.capacity() * std::mem::size_of::<T>()
    }

    /// The slot of a label known to be present (apply phase: every label in
    /// the chunk was inserted during the local phase).
    #[inline]
    pub(crate) fn slot(&self, label: usize) -> usize {
        if self.direct {
            debug_assert_eq!(self.mark[label], self.epoch, "label not in chunk table");
            self.slot_of[label] as usize
        } else {
            let mut j = hash_label(label) & self.mask;
            loop {
                if self.keys[j] == label {
                    return self.slots[j] as usize;
                }
                debug_assert_ne!(self.keys[j], usize::MAX, "label not in chunk table");
                j = (j + 1) & self.mask;
            }
        }
    }
}

/// Reusable scratch state for the chunked engine: per-chunk label tables
/// plus the combine phase's global table. A fresh (default) workspace works
/// for any call; reusing one across calls retains the grown buffers, so a
/// warm workspace performs **zero large allocations** per run (the output
/// vectors themselves are the only O(n)/O(m) allocations left).
///
/// Not thread-safe by itself — one workspace serves one call at a time; use
/// a [`WorkspacePool`] to share warm workspaces across service workers.
pub struct ChunkedWorkspace<T> {
    spaces: Vec<ChunkSpace<T>>,
    global: ChunkSpace<T>,
}

impl<T> Default for ChunkedWorkspace<T> {
    fn default() -> Self {
        ChunkedWorkspace {
            spaces: Vec::new(),
            global: ChunkSpace::default(),
        }
    }
}

impl<T> std::fmt::Debug for ChunkedWorkspace<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedWorkspace")
            .field("chunks", &self.spaces.len())
            .finish()
    }
}

impl<T: Element> ChunkedWorkspace<T> {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_chunks(&mut self, chunks: usize) {
        if self.spaces.len() < chunks {
            self.spaces.resize_with(chunks, ChunkSpace::default);
        }
    }

    /// Bytes retained across all grown scratch buffers.
    pub fn retained_bytes(&self) -> usize {
        self.spaces
            .iter()
            .map(ChunkSpace::retained_bytes)
            .sum::<usize>()
            + self.global.retained_bytes()
    }
}

/// Default per-workspace retention budget for a [`WorkspacePool`]
/// (bytes). A workspace returning with more grown scratch than this is
/// discarded instead of retained, so one huge request cannot pin its
/// oversized buffers in the pool forever.
pub const DEFAULT_HIGH_WATER_BYTES: usize = 64 << 20;

/// A bounded pool of warm [`ChunkedWorkspace`]s.
///
/// [`WorkspacePool::checkout`] pops a warm workspace (or creates a cold one
/// when the pool is empty — checkout never blocks); dropping the returned
/// [`PooledWorkspace`] puts it back, up to `max_idle` retained workspaces.
/// The [`crate::service::Service`] keeps one pool sized to its worker
/// count, so steady-state traffic recycles the same scratch buffers
/// forever.
///
/// Retention is budgeted: a workspace whose grown buffers exceed the
/// pool's high-water mark ([`DEFAULT_HIGH_WATER_BYTES`] unless set via
/// [`WorkspacePool::with_high_water`]) is dropped on return rather than
/// pooled, releasing its memory.
pub struct WorkspacePool<T> {
    free: Mutex<Vec<ChunkedWorkspace<T>>>,
    max_idle: usize,
    high_water_bytes: usize,
}

impl<T> std::fmt::Debug for WorkspacePool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let idle = self.free.lock().map(|v| v.len()).unwrap_or(0);
        f.debug_struct("WorkspacePool")
            .field("idle", &idle)
            .field("max_idle", &self.max_idle)
            .field("high_water_bytes", &self.high_water_bytes)
            .finish()
    }
}

impl<T: Element> WorkspacePool<T> {
    /// A pool retaining at most `max_idle` idle workspaces, each within the
    /// default high-water budget.
    pub fn new(max_idle: usize) -> Self {
        Self::with_high_water(max_idle, DEFAULT_HIGH_WATER_BYTES)
    }

    /// [`WorkspacePool::new`] with an explicit per-workspace retention
    /// budget in bytes (`usize::MAX` disables the cap).
    pub fn with_high_water(max_idle: usize, high_water_bytes: usize) -> Self {
        WorkspacePool {
            free: Mutex::new(Vec::new()),
            max_idle,
            high_water_bytes,
        }
    }

    /// Check out a workspace (warm if one is idle, cold otherwise). The
    /// guard returns it on drop.
    pub fn checkout(&self) -> PooledWorkspace<'_, T> {
        let ws = self
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        PooledWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Idle workspaces currently retained.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// A checked-out workspace; derefs to [`ChunkedWorkspace`] and returns to
/// its [`WorkspacePool`] on drop (discarded if the pool is already at its
/// idle cap).
pub struct PooledWorkspace<'a, T: Element> {
    pool: &'a WorkspacePool<T>,
    ws: Option<ChunkedWorkspace<T>>,
}

impl<T: Element> std::ops::Deref for PooledWorkspace<'_, T> {
    type Target = ChunkedWorkspace<T>;
    fn deref(&self) -> &ChunkedWorkspace<T> {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl<T: Element> std::ops::DerefMut for PooledWorkspace<'_, T> {
    fn deref_mut(&mut self) -> &mut ChunkedWorkspace<T> {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl<T: Element> Drop for PooledWorkspace<'_, T> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            // Shrink-on-return: a workspace grown past the high-water mark
            // (one huge request) is released, not pinned in the pool.
            if ws.retained_bytes() > self.pool.high_water_bytes {
                return;
            }
            let mut free = self.pool.free.lock().unwrap_or_else(|e| e.into_inner());
            if free.len() < self.pool.max_idle {
                free.push(ws);
            }
        }
    }
}

/// Dense tables are admitted while the per-chunk map arrays stay within a
/// small multiple of the data we already hold (same criterion as
/// [`crate::blocked`]).
pub(crate) fn use_direct(chunks: usize, n: usize, m: usize) -> bool {
    chunks.saturating_mul(m) <= 8 * n.max(1) + 1024
}

/// The local phase over one chunk: a serial (Figure 2) multiprefix into the
/// chunk's compact table. `worker` indexes the chunk for chaos injection.
#[allow(clippy::too_many_arguments)]
fn local_pass<T: Element, C: Comb<T>>(
    space: &mut ChunkSpace<T>,
    sums: &mut [T],
    values: &[T],
    labels: &[usize],
    comb: C,
    fast: Option<&'static Kernels<T>>,
    ctx: &RunContext,
    worker: usize,
) -> Result<(), MpError> {
    // The chunk-worker chaos checkpoint: a targeted plan can panic or stall
    // this worker, exercising the engine's containment (the panic unwinds
    // through the scope join into the engine's catch_unwind).
    if let Some(chaos) = ctx.chaos() {
        chaos.inject_chunk_worker(worker, ctx.deadline());
    }
    // Single-label fast path (`fast` is only `Some` when `m == 1`, so
    // every label is 0): the whole chunk is one exclusive scan with the
    // bucket value as carry. Block-strided so the cancellation fuse is
    // polled at exactly the same indices as the scalar loop below.
    if let Some(tbl) = fast {
        if !values.is_empty() {
            let s = space.slot_or_insert(0, comb.identity());
            let mut acc = space.vals[s];
            let mut i = 0usize;
            while i < values.len() {
                ctx.checkpoint_every(i)?;
                let end = (i + CHECK_STRIDE).min(values.len());
                acc = (tbl.excl_scan_into)(&values[i..end], &mut sums[i..end], acc);
                i = end;
            }
            space.vals[s] = acc;
        }
        return Ok(());
    }
    for (i, ((si, &v), &l)) in sums.iter_mut().zip(values).zip(labels).enumerate() {
        ctx.checkpoint_every(i)?;
        let s = space.slot_or_insert(l, comb.identity());
        *si = space.vals[s];
        space.vals[s] = comb.combine(space.vals[s], v);
    }
    Ok(())
}

/// The local phase of a reduce-only run: totals, no element output.
fn local_reduce_pass<T: Element, C: Comb<T>>(
    space: &mut ChunkSpace<T>,
    values: &[T],
    labels: &[usize],
    comb: C,
    fast: Option<&'static Kernels<T>>,
    ctx: &RunContext,
    worker: usize,
) -> Result<(), MpError> {
    if let Some(chaos) = ctx.chaos() {
        chaos.inject_chunk_worker(worker, ctx.deadline());
    }
    if let Some(tbl) = fast {
        if !values.is_empty() {
            let s = space.slot_or_insert(0, comb.identity());
            let mut acc = space.vals[s];
            let mut i = 0usize;
            while i < values.len() {
                ctx.checkpoint_every(i)?;
                let end = (i + CHECK_STRIDE).min(values.len());
                acc = (tbl.reduce)(acc, &values[i..end]);
                i = end;
            }
            space.vals[s] = acc;
        }
        return Ok(());
    }
    for (i, (&v, &l)) in values.iter().zip(labels).enumerate() {
        ctx.checkpoint_every(i)?;
        let s = space.slot_or_insert(l, comb.identity());
        space.vals[s] = comb.combine(space.vals[s], v);
    }
    Ok(())
}

/// The apply phase over one chunk: prepend the chunk's per-label offsets.
fn apply_pass<T: Element, C: Comb<T>>(
    space: &ChunkSpace<T>,
    sums: &mut [T],
    labels: &[usize],
    comb: C,
    fast: Option<&'static Kernels<T>>,
    ctx: &RunContext,
) -> Result<(), MpError> {
    // Single-label fast path: one offset prepended across the chunk.
    if let Some(tbl) = fast {
        if !sums.is_empty() {
            let acc = space.vals[space.slot(0)];
            let mut i = 0usize;
            while i < sums.len() {
                ctx.checkpoint_every(i)?;
                let end = (i + CHECK_STRIDE).min(sums.len());
                (tbl.combine_broadcast)(acc, &mut sums[i..end]);
                i = end;
            }
        }
        return Ok(());
    }
    for (i, (si, &l)) in sums.iter_mut().zip(labels).enumerate() {
        ctx.checkpoint_every(i)?;
        *si = comb.combine(space.vals[space.slot(l)], *si);
    }
    Ok(())
}

/// Run `f` over every chunk, on scoped threads when there is more than one
/// chunk (inline otherwise). Worker panics are re-raised on the caller's
/// thread (the hardened entry points contain them); worker errors surface
/// as the first `Err` in chunk order.
fn run_chunks<'env, I, F>(items: Vec<I>, f: F) -> Result<(), MpError>
where
    I: Send + 'env,
    F: Fn(usize, I) -> Result<(), MpError> + Sync + Send,
{
    let mut items = items;
    if items.len() == 1 {
        return f(0, items.pop().expect("one item"));
    }
    let f = &f;
    let results: Vec<Result<(), MpError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .into_iter()
            .enumerate()
            .map(|(idx, item)| scope.spawn(move || f(idx, item)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    results.into_iter().collect()
}

/// The engine core: all three phases, generic over the combine wrapper.
/// `pub(crate)` so the sharded supervisor can degrade to single-node
/// chunked execution without re-wrapping the public API.
pub(crate) fn run_prefix<T: Element, C: Comb<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    comb: C,
    parts: usize,
    ws: &mut ChunkedWorkspace<T>,
    ctx: &RunContext,
) -> Result<MultiprefixOutput<T>, MpError> {
    ctx.checkpoint()?;
    let n = values.len();
    if n == 0 {
        return Ok(MultiprefixOutput {
            sums: Vec::new(),
            reductions: try_filled_vec(comb.identity(), m)?,
        });
    }
    let chunk_len = n.div_ceil(parts.clamp(1, n));
    let chunks = n.div_ceil(chunk_len);
    let direct = use_direct(chunks, n, m);
    let mut sums = try_filled_vec(comb.identity(), n)?;
    ws.ensure_chunks(chunks);
    let ChunkedWorkspace { spaces, global } = ws;
    let spaces = &mut spaces[..chunks];

    // Vector-kernel eligibility for this run: a single label class means
    // the local scan and the apply prepend degenerate to plain prefix
    // operations the simd kernels implement bit-exactly. Multi-bucket
    // tables stay scalar (see DESIGN §12).
    let fast = if m == 1 {
        comb_kernels::<T, C>(comb)
    } else {
        None
    };
    if let Some(rec) = ctx.recorder() {
        rec.event(
            phase_key(EngineKind::Chunked, Phase::Local),
            if fast.is_some() {
                "kernel=simd"
            } else {
                "kernel=scalar"
            },
        );
    }

    // Phase 1 — local. Tables are prepared serially (fallible allocation
    // surfaces before any thread spawns), then each chunk runs its serial
    // multiprefix on its own thread.
    {
        let _span = ctx.phase_span(Phase::Local);
        let distinct_cap = chunk_len.min(m);
        for space in spaces.iter_mut() {
            space.begin_use(m, distinct_cap, direct)?;
        }
        let items: Vec<_> = spaces
            .iter_mut()
            .zip(sums.chunks_mut(chunk_len))
            .zip(values.chunks(chunk_len).zip(labels.chunks(chunk_len)))
            .collect();
        run_chunks(items, |idx, ((space, s), (v, l))| {
            local_pass(space, s, v, l, comb, fast, ctx, idx)
        })?;
    }

    // Phase 2 — combine: the shared exscan-over-summaries primitive
    // ([`crate::shard::exscan`]): an exclusive scan per touched label
    // across the chunk summaries, in chunk order; the running totals
    // become the reductions.
    ctx.checkpoint()?;
    let reductions = {
        let _span = ctx.phase_span(Phase::Combine);
        crate::shard::exscan::exscan_parts(spaces, m, n, global, comb, ctx)?
    };

    // Phase 3 — apply: prepend each chunk's offsets in one linear pass.
    ctx.checkpoint()?;
    {
        let _span = ctx.phase_span(Phase::Apply);
        let items: Vec<_> = spaces
            .iter()
            .zip(sums.chunks_mut(chunk_len))
            .zip(labels.chunks(chunk_len))
            .collect();
        run_chunks(items, |_, ((space, s), l)| {
            apply_pass(space, s, l, comb, fast, ctx)
        })?;
    }
    Ok(MultiprefixOutput { sums, reductions })
}

/// The reduce-only core: local totals, then a fold across chunk summaries
/// straight into the `m`-sized output (no global map, no apply phase).
fn run_reduce<T: Element, C: Comb<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    comb: C,
    parts: usize,
    ws: &mut ChunkedWorkspace<T>,
    ctx: &RunContext,
) -> Result<Vec<T>, MpError> {
    ctx.checkpoint()?;
    let n = values.len();
    if n == 0 {
        return try_filled_vec(comb.identity(), m);
    }
    let chunk_len = n.div_ceil(parts.clamp(1, n));
    let chunks = n.div_ceil(chunk_len);
    let direct = use_direct(chunks, n, m);
    ws.ensure_chunks(chunks);
    let spaces = &mut ws.spaces[..chunks];
    let fast = if m == 1 {
        comb_kernels::<T, C>(comb)
    } else {
        None
    };
    {
        let _span = ctx.phase_span(Phase::Local);
        let distinct_cap = chunk_len.min(m);
        for space in spaces.iter_mut() {
            space.begin_use(m, distinct_cap, direct)?;
        }
        let items: Vec<_> = spaces
            .iter_mut()
            .zip(values.chunks(chunk_len).zip(labels.chunks(chunk_len)))
            .collect();
        run_chunks(items, |idx, (space, (v, l))| {
            local_reduce_pass(space, v, l, comb, fast, ctx, idx)
        })?;
    }
    ctx.checkpoint()?;
    let _span = ctx.phase_span(Phase::Combine);
    let mut reductions = try_filled_vec(comb.identity(), m)?;
    let mut step = 0usize;
    for space in spaces.iter() {
        for (ti, &label) in space.touched.iter().enumerate() {
            ctx.checkpoint_every(step)?;
            step += 1;
            reductions[label] = comb.combine(reductions[label], space.vals[ti]);
        }
    }
    Ok(reductions)
}

/// The default worker count: [`ExecConfig::threads`] when set, otherwise
/// the machine's available parallelism.
fn default_parts(n: usize, cfg: ExecConfig) -> usize {
    chunk_count(n, cfg.effective_threads())
}

/// Chunked multiprefix with the default thread count (available
/// parallelism). Preconditions as elsewhere (validated by
/// [`crate::api::multiprefix`]): equal lengths, labels `< m`.
pub fn multiprefix_chunked<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
) -> MultiprefixOutput<T> {
    multiprefix_chunked_with_threads(
        values,
        labels,
        m,
        op,
        ExecConfig::default().effective_threads(),
    )
}

/// [`multiprefix_chunked`] on exactly `threads` workers (still subject to
/// [`MIN_CHUNK_LEN`]: tiny inputs collapse to one inline chunk).
pub fn multiprefix_chunked_with_threads<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    threads: usize,
) -> MultiprefixOutput<T> {
    multiprefix_chunked_with_parts(values, labels, m, op, chunk_count(values.len(), threads))
}

/// [`multiprefix_chunked`] split into exactly `parts` chunks (clamped to
/// `[1, n]`), bypassing [`MIN_CHUNK_LEN`] — the tuning knob the
/// chunks-per-thread bench sweep turns, and the way tests force multi-chunk
/// execution on small inputs.
pub fn multiprefix_chunked_with_parts<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    parts: usize,
) -> MultiprefixOutput<T> {
    let mut ws = ChunkedWorkspace::new();
    run_prefix(
        values,
        labels,
        m,
        PlainComb(op),
        parts,
        &mut ws,
        &RunContext::new(),
    )
    .expect("chunked engine failed on the plain (infallible) path")
}

/// Chunked multireduce: per-label reductions only.
pub fn multireduce_chunked<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
) -> Vec<T> {
    let mut ws = ChunkedWorkspace::new();
    run_reduce(
        values,
        labels,
        m,
        PlainComb(op),
        default_parts(values.len(), ExecConfig::default()),
        &mut ws,
        &RunContext::new(),
    )
    .expect("chunked engine failed on the plain (infallible) path")
}

/// Hardened chunked multiprefix (see [`crate::exec`] for the contract):
/// fallible allocation, guarded combines under a checking
/// [`OverflowPolicy`] (a trip yields `Ok(None)` and the caller replays the
/// serial engine), and panic containment for the whole engine body
/// including its scoped workers.
pub fn try_multiprefix_chunked<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
) -> TryEngineResult<MultiprefixOutput<T>> {
    try_multiprefix_chunked_ctx(values, labels, m, op, policy, &RunContext::new())
}

/// [`try_multiprefix_chunked`] under a [`RunContext`]: the context is
/// polled at phase boundaries and every
/// [`crate::resilience::CHECK_STRIDE`] elements (chunk-locally in the
/// parallel phases), and its chaos stream's worker faults fire at each
/// local-phase worker's entry.
pub fn try_multiprefix_chunked_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
    ctx: &RunContext,
) -> TryEngineResult<MultiprefixOutput<T>> {
    try_multiprefix_chunked_cfg_ctx(
        values,
        labels,
        m,
        op,
        ExecConfig::default().overflow(policy),
        ctx,
    )
}

/// [`try_multiprefix_chunked_ctx`] taking the policy *and* thread count
/// from an [`ExecConfig`] — the form the dispatcher and [`crate::api`]
/// call.
pub fn try_multiprefix_chunked_cfg_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    cfg: ExecConfig,
    ctx: &RunContext,
) -> TryEngineResult<MultiprefixOutput<T>> {
    let mut ws = ChunkedWorkspace::new();
    try_multiprefix_chunked_ws_ctx(values, labels, m, op, cfg, &mut ws, ctx)
}

/// [`try_multiprefix_chunked_cfg_ctx`] running in a caller-supplied
/// [`ChunkedWorkspace`] — the zero-allocation steady-state entry the
/// [`crate::service::Service`] uses via its [`WorkspacePool`]. The
/// workspace may be cold, warm, or abandoned by a previous panicked run;
/// every run re-validates it.
pub fn try_multiprefix_chunked_ws_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    cfg: ExecConfig,
    ws: &mut ChunkedWorkspace<T>,
    ctx: &RunContext,
) -> TryEngineResult<MultiprefixOutput<T>> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let tripped = AtomicBool::new(false);
        let guard = CheckGuard::new(op, cfg.overflow, &tripped)
            .with_simd_opts(cfg.force_scalar, cfg.simd_f32);
        let out = run_prefix(
            values,
            labels,
            m,
            guard,
            default_parts(values.len(), cfg),
            ws,
            ctx,
        )?;
        if tripped.load(Ordering::Relaxed) {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }));
    // AssertUnwindSafe is sound: on panic the partially-built output dies
    // inside the closure, and the workspace (which the caller can observe)
    // is re-validated wholesale by the next run's `begin_use`.
    caught.unwrap_or(Err(MpError::EnginePanicked))
}

/// Hardened chunked multireduce. Same contract as
/// [`try_multiprefix_chunked`]; as with every parallel engine, a checking
/// policy is canonicalized by the *caller* (dispatcher / API) replaying
/// serially.
pub fn try_multireduce_chunked<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
) -> TryEngineResult<Vec<T>> {
    try_multireduce_chunked_ctx(values, labels, m, op, policy, &RunContext::new())
}

/// [`try_multireduce_chunked`] under a [`RunContext`].
pub fn try_multireduce_chunked_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
    ctx: &RunContext,
) -> TryEngineResult<Vec<T>> {
    try_multireduce_chunked_cfg_ctx(
        values,
        labels,
        m,
        op,
        ExecConfig::default().overflow(policy),
        ctx,
    )
}

/// [`try_multireduce_chunked_ctx`] with policy and threads from an
/// [`ExecConfig`].
pub fn try_multireduce_chunked_cfg_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    cfg: ExecConfig,
    ctx: &RunContext,
) -> TryEngineResult<Vec<T>> {
    let mut ws = ChunkedWorkspace::new();
    try_multireduce_chunked_ws_ctx(values, labels, m, op, cfg, &mut ws, ctx)
}

/// [`try_multireduce_chunked_cfg_ctx`] in a caller-supplied workspace.
pub fn try_multireduce_chunked_ws_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    cfg: ExecConfig,
    ws: &mut ChunkedWorkspace<T>,
    ctx: &RunContext,
) -> TryEngineResult<Vec<T>> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let tripped = AtomicBool::new(false);
        let guard = CheckGuard::new(op, cfg.overflow, &tripped)
            .with_simd_opts(cfg.force_scalar, cfg.simd_f32);
        let red = run_reduce(
            values,
            labels,
            m,
            guard,
            default_parts(values.len(), cfg),
            ws,
            ctx,
        )?;
        if tripped.load(Ordering::Relaxed) {
            Ok(None)
        } else {
            Ok(Some(red))
        }
    }));
    caught.unwrap_or(Err(MpError::EnginePanicked))
}

/// A prepared chunked plan: the label structure — chunk boundaries, each
/// element's compact slot, each chunk's touched-label list — discovered
/// once and reused across runs over different value vectors (the paper's
/// "many multiprefixes over one index pattern" amortization, cf.
/// [`crate::spinetree::PreparedMultiprefix`]).
///
/// A planned run skips all label hashing in the local and apply phases:
/// both become pure array passes over precomputed slots.
#[derive(Debug, Clone)]
pub struct ChunkedPlan {
    n: usize,
    m: usize,
    chunk_len: usize,
    chunks: usize,
    /// Per-element slot in its chunk's compact table.
    elem_slot: Vec<u32>,
    /// Concatenated per-chunk touched-label lists, first-touch order.
    touched: Vec<usize>,
    /// `touched[touched_off[c]..touched_off[c + 1]]` is chunk `c`'s list.
    touched_off: Vec<usize>,
}

impl ChunkedPlan {
    /// Build a plan for `labels` over `m` buckets with the default thread
    /// count. Validates every label (`< m`).
    pub fn new(labels: &[usize], m: usize) -> Result<Self, MpError> {
        Self::with_threads(labels, m, ExecConfig::default().effective_threads())
    }

    /// [`ChunkedPlan::new`] for an explicit worker count.
    pub fn with_threads(labels: &[usize], m: usize, threads: usize) -> Result<Self, MpError> {
        validate(&labels.len(), labels, m)?;
        let n = labels.len();
        let chunks = chunk_count(n, threads);
        let chunk_len = if n == 0 { 1 } else { n.div_ceil(chunks) };
        let chunks = if n == 0 { 0 } else { n.div_ceil(chunk_len) };
        let mut elem_slot = Vec::new();
        elem_slot
            .try_reserve_exact(n)
            .map_err(|_| MpError::AllocationFailed {
                bytes: n.saturating_mul(4),
            })?;
        let mut touched = Vec::new();
        let mut touched_off = Vec::with_capacity(chunks + 1);
        touched_off.push(0);
        // () values: the ChunkSpace machinery reused purely as a label map.
        let mut space = ChunkSpace::<()>::default();
        let direct = use_direct(chunks, n.max(1), m);
        for chunk in labels.chunks(chunk_len.max(1)) {
            space.begin_use(m, chunk.len().min(m), direct)?;
            for &l in chunk {
                elem_slot.push(space.slot_or_insert(l, ()) as u32);
            }
            touched.extend_from_slice(&space.touched);
            touched_off.push(touched.len());
        }
        Ok(ChunkedPlan {
            n,
            m,
            chunk_len: chunk_len.max(1),
            chunks,
            elem_slot,
            touched,
            touched_off,
        })
    }

    /// Elements the plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the plan covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The bucket count `m`.
    pub fn buckets(&self) -> usize {
        self.m
    }

    /// The number of chunks the plan splits the vector into.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Total distinct labels summed over chunks (the combine-phase work).
    pub fn total_touched(&self) -> usize {
        self.touched.len()
    }

    /// Run the plan over `values` (`values.len()` must equal
    /// [`ChunkedPlan::len`]).
    pub fn run<T: Element, O: CombineOp<T>>(&self, values: &[T], op: O) -> MultiprefixOutput<T> {
        self.run_core(values, PlainComb(op), &RunContext::new())
            .expect("chunked plan failed on the plain (infallible) path")
    }

    /// Hardened planned run (policy trip → `Ok(None)`, caller replays
    /// serially).
    pub fn try_run<T: Element, O: TryCombineOp<T>>(
        &self,
        values: &[T],
        op: O,
        policy: OverflowPolicy,
    ) -> TryEngineResult<MultiprefixOutput<T>> {
        self.try_run_ctx(values, op, policy, &RunContext::new())
    }

    /// [`ChunkedPlan::try_run`] under a [`RunContext`].
    pub fn try_run_ctx<T: Element, O: TryCombineOp<T>>(
        &self,
        values: &[T],
        op: O,
        policy: OverflowPolicy,
        ctx: &RunContext,
    ) -> TryEngineResult<MultiprefixOutput<T>> {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let tripped = AtomicBool::new(false);
            let guard = CheckGuard::new(op, policy, &tripped);
            let out = self.run_core(values, guard, ctx)?;
            if tripped.load(Ordering::Relaxed) {
                Ok(None)
            } else {
                Ok(Some(out))
            }
        }));
        caught.unwrap_or(Err(MpError::EnginePanicked))
    }

    fn run_core<T: Element, C: Comb<T>>(
        &self,
        values: &[T],
        comb: C,
        ctx: &RunContext,
    ) -> Result<MultiprefixOutput<T>, MpError> {
        assert_eq!(
            values.len(),
            self.n,
            "plan built for {} elements, run over {}",
            self.n,
            values.len()
        );
        ctx.checkpoint()?;
        if self.n == 0 {
            return Ok(MultiprefixOutput {
                sums: Vec::new(),
                reductions: try_filled_vec(comb.identity(), self.m)?,
            });
        }
        let mut sums = try_filled_vec(comb.identity(), self.n)?;
        // Per-chunk summaries, sized to each chunk's distinct-label count.
        let mut chunk_vals: Vec<Vec<T>> = Vec::with_capacity(self.chunks);
        for c in 0..self.chunks {
            chunk_vals.push(try_filled_vec(
                comb.identity(),
                self.touched_off[c + 1] - self.touched_off[c],
            )?);
        }

        // Local: pure slot-indexed passes, no hashing.
        {
            let _span = ctx.phase_span(Phase::Local);
            let items: Vec<_> = chunk_vals
                .iter_mut()
                .zip(sums.chunks_mut(self.chunk_len))
                .zip(
                    values
                        .chunks(self.chunk_len)
                        .zip(self.elem_slot.chunks(self.chunk_len)),
                )
                .collect();
            run_chunks(items, |idx, ((vals, s), (v, slots))| {
                if let Some(chaos) = ctx.chaos() {
                    chaos.inject_chunk_worker(idx, ctx.deadline());
                }
                for (i, ((si, &vi), &slot)) in s.iter_mut().zip(v).zip(slots).enumerate() {
                    ctx.checkpoint_every(i)?;
                    let slot = slot as usize;
                    *si = vals[slot];
                    vals[slot] = comb.combine(vals[slot], vi);
                }
                Ok(())
            })?;
        }

        // Combine: the shared exscan primitive over (touched-slice, value)
        // part views of the plan's precomputed label lists.
        ctx.checkpoint()?;
        let reductions = {
            let _span = ctx.phase_span(Phase::Combine);
            let mut global = ChunkSpace::<T>::default();
            let mut parts: Vec<crate::shard::exscan::SlicePart<'_, T>> = chunk_vals
                .iter_mut()
                .enumerate()
                .map(|(c, vals)| crate::shard::exscan::SlicePart {
                    touched: &self.touched[self.touched_off[c]..self.touched_off[c + 1]],
                    vals,
                })
                .collect();
            crate::shard::exscan::exscan_parts(&mut parts, self.m, self.n, &mut global, comb, ctx)?
        };

        // Apply.
        ctx.checkpoint()?;
        {
            let _span = ctx.phase_span(Phase::Apply);
            let items: Vec<_> = chunk_vals
                .iter()
                .zip(sums.chunks_mut(self.chunk_len))
                .zip(self.elem_slot.chunks(self.chunk_len))
                .collect();
            run_chunks(items, |_, ((vals, s), slots)| {
                for (i, (si, &slot)) in s.iter_mut().zip(slots).enumerate() {
                    ctx.checkpoint_every(i)?;
                    *si = comb.combine(vals[slot as usize], *si);
                }
                Ok(())
            })?;
        }
        Ok(MultiprefixOutput { sums, reductions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{FirstLast, Max, Plus};
    use crate::serial::{multiprefix_serial, multireduce_serial};

    fn mixed_input(n: usize, m: usize) -> (Vec<i64>, Vec<usize>) {
        let values = (0..n).map(|i| (i as i64 * 37 % 101) - 50).collect();
        let labels = (0..n).map(|i| (i * 7 + i / 13) % m.max(1)).collect();
        (values, labels)
    }

    #[test]
    fn matches_serial_small() {
        let (values, labels) = mixed_input(100, 7);
        assert_eq!(
            multiprefix_chunked(&values, &labels, 7, Plus),
            multiprefix_serial(&values, &labels, 7, Plus)
        );
    }

    #[test]
    fn matches_serial_multi_chunk() {
        let (values, labels) = mixed_input(50_000, 97);
        assert_eq!(
            multiprefix_chunked_with_threads(&values, &labels, 97, Plus, 7),
            multiprefix_serial(&values, &labels, 97, Plus)
        );
    }

    #[test]
    fn every_part_count_is_correct() {
        let (values, labels) = mixed_input(10_000, 23);
        let expect = multiprefix_serial(&values, &labels, 23, Plus);
        for parts in [1usize, 2, 3, 5, 16, 100, 9_999, 10_000, 20_000] {
            assert_eq!(
                multiprefix_chunked_with_parts(&values, &labels, 23, Plus, parts),
                expect,
                "parts {parts}"
            );
        }
    }

    #[test]
    fn probed_tables_when_m_dwarfs_n() {
        // m >> n forces the probed (open-addressed) label maps.
        let n = 5_000;
        let m = 1_000_000;
        let values: Vec<i64> = (0..n as i64).collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 104_729) % m).collect();
        assert_eq!(
            multiprefix_chunked_with_parts(&values, &labels, m, Plus, 4),
            multiprefix_serial(&values, &labels, m, Plus)
        );
    }

    #[test]
    fn noncommutative_across_chunk_boundaries() {
        let n = 30_000;
        let values: Vec<(i32, i32)> = (0..n as i32).map(|i| (i, i)).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 5).collect();
        assert_eq!(
            multiprefix_chunked_with_threads(&values, &labels, 5, FirstLast, 6),
            multiprefix_serial(&values, &labels, 5, FirstLast)
        );
    }

    #[test]
    fn max_identity_for_absent_labels() {
        let (values, labels) = mixed_input(10_000, 3);
        let out = multiprefix_chunked(&values, &labels, 10, Max);
        assert_eq!(out, multiprefix_serial(&values, &labels, 10, Max));
        assert_eq!(out.reductions[9], i64::MIN);
    }

    #[test]
    fn empty_and_single() {
        let out = multiprefix_chunked::<i64, _>(&[], &[], 4, Plus);
        assert!(out.sums.is_empty());
        assert_eq!(out.reductions, vec![0; 4]);
        let out = multiprefix_chunked(&[9i64], &[2], 4, Plus);
        assert_eq!(out.sums, vec![0]);
        assert_eq!(out.reductions, vec![0, 0, 9, 0]);
    }

    #[test]
    fn multireduce_agrees() {
        let (values, labels) = mixed_input(40_000, 1000);
        assert_eq!(
            multireduce_chunked(&values, &labels, 1000, Plus),
            multireduce_serial(&values, &labels, 1000, Plus)
        );
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        // One workspace across shapes that flip direct/probed modes and
        // chunk counts: results must match a fresh run every time.
        let mut ws = ChunkedWorkspace::new();
        for &(n, m) in &[(10_000usize, 16usize), (257, 100_000), (20_000, 3), (0, 5)] {
            let (values, labels) = mixed_input(n, m);
            let got = try_multiprefix_chunked_ws_ctx(
                &values,
                &labels,
                m,
                Plus,
                ExecConfig::default().threads(4),
                &mut ws,
                &RunContext::new(),
            )
            .unwrap()
            .unwrap();
            assert_eq!(
                got,
                multiprefix_serial(&values, &labels, m, Plus),
                "n={n} m={m}"
            );
        }
    }

    #[test]
    fn checked_policy_trips_to_none() {
        // Overflow at a chunk boundary region: the engine reports the trip
        // (Ok(None)); canonicalization is the caller's serial replay.
        let mut values = vec![1i64; 10_000];
        values[5_000] = i64::MAX;
        let labels = vec![0usize; 10_000];
        let got = try_multiprefix_chunked_ctx(
            &values,
            &labels,
            1,
            Plus,
            OverflowPolicy::Checked,
            &RunContext::new(),
        )
        .unwrap();
        assert!(got.is_none(), "checked overflow must trip");
        // Wrap never trips.
        let got = try_multiprefix_chunked(&values, &labels, 1, Plus, OverflowPolicy::Wrap)
            .unwrap()
            .unwrap();
        assert_eq!(got, multiprefix_serial(&values, &labels, 1, Plus));
    }

    #[test]
    fn cancellation_at_any_checkpoint_is_clean() {
        use crate::resilience::CancelToken;
        let (values, labels) = mixed_input(20_000, 31);
        for k in [0u64, 1, 2, 3, 5, 8, 13] {
            let ctx = RunContext::new().with_cancel(&CancelToken::cancel_after(k));
            let got =
                try_multiprefix_chunked_ctx(&values, &labels, 31, Plus, OverflowPolicy::Wrap, &ctx);
            match got {
                Err(MpError::Cancelled) => {}
                Ok(Some(out)) => {
                    assert_eq!(out, multiprefix_serial(&values, &labels, 31, Plus), "k={k}")
                }
                other => panic!("unexpected outcome at k={k}: {other:?}"),
            }
        }
    }

    /// Miri target (name-matched by the CI `miri` filter): a genuinely
    /// multi-chunk run — scoped threads, combine scan, probed maps — on an
    /// input small enough for the interpreter.
    #[test]
    fn combine_phase_small_multichunk_for_miri() {
        let n = 120;
        let values: Vec<i64> = (0..n as i64).map(|i| i % 9 - 4).collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 11) % 7).collect();
        let expect = multiprefix_serial(&values, &labels, 7, Plus);
        assert_eq!(
            multiprefix_chunked_with_parts(&values, &labels, 7, Plus, 5),
            expect
        );
        // Probed-map flavor of the same shape (m >> n).
        let m = 100_000;
        let labels: Vec<usize> = (0..n).map(|i| (i * 31_337) % m).collect();
        assert_eq!(
            multiprefix_chunked_with_parts(&values, &labels, m, Plus, 5),
            multiprefix_serial(&values, &labels, m, Plus)
        );
    }

    #[test]
    fn plan_matches_adhoc_and_reruns() {
        let (values, labels) = mixed_input(25_000, 53);
        let plan = ChunkedPlan::with_threads(&labels, 53, 4).unwrap();
        assert_eq!(plan.len(), 25_000);
        assert!(plan.chunks() >= 1);
        let expect = multiprefix_serial(&values, &labels, 53, Plus);
        assert_eq!(plan.run(&values, Plus), expect);
        // Rerun over different values, same labels.
        let values2: Vec<i64> = values.iter().map(|v| v * 3 - 1).collect();
        assert_eq!(
            plan.run(&values2, Plus),
            multiprefix_serial(&values2, &labels, 53, Plus)
        );
        // Hardened planned run agrees too.
        let got = plan
            .try_run(&values, Plus, OverflowPolicy::Wrap)
            .unwrap()
            .unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn plan_rejects_bad_labels_and_wrong_len() {
        assert!(matches!(
            ChunkedPlan::new(&[0, 5], 3),
            Err(MpError::LabelOutOfRange { .. })
        ));
        let plan = ChunkedPlan::new(&[0, 1], 2).unwrap();
        let caught = catch_unwind(AssertUnwindSafe(|| plan.run(&[1i64], Plus)));
        assert!(caught.is_err(), "length mismatch must be rejected");
    }

    #[test]
    fn pool_recycles_up_to_cap() {
        let pool: WorkspacePool<i64> = WorkspacePool::new(1);
        assert_eq!(pool.idle(), 0);
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            // Both out: pool empty.
            assert_eq!(pool.idle(), 0);
        }
        // Cap is 1: one returned, one discarded.
        assert_eq!(pool.idle(), 1);
        {
            let _a = pool.checkout();
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn panicked_workspace_is_healed_on_reuse() {
        #[derive(Clone, Copy)]
        struct PanicAfter(i64);
        impl CombineOp<i64> for PanicAfter {
            const COMMUTATIVE: bool = true;
            fn identity(&self) -> i64 {
                0
            }
            fn combine(&self, a: i64, b: i64) -> i64 {
                assert!(a < self.0, "boom");
                a.wrapping_add(b)
            }
        }
        impl TryCombineOp<i64> for PanicAfter {
            fn checked_combine(&self, a: i64, b: i64) -> Option<i64> {
                Some(self.combine(a, b))
            }
            fn saturating_combine(&self, a: i64, b: i64) -> i64 {
                self.combine(a, b)
            }
        }
        let values = vec![1i64; 9_000];
        let labels: Vec<usize> = (0..9_000).map(|i| i % 13).collect();
        let mut ws = ChunkedWorkspace::new();
        let cfg = ExecConfig::default().threads(3);
        let err = try_multiprefix_chunked_ws_ctx(
            &values,
            &labels,
            13,
            PanicAfter(10),
            cfg,
            &mut ws,
            &RunContext::new(),
        )
        .unwrap_err();
        assert_eq!(err, MpError::EnginePanicked);
        // Same workspace, sane operator: correct output.
        let got = try_multiprefix_chunked_ws_ctx(
            &values,
            &labels,
            13,
            Plus,
            cfg,
            &mut ws,
            &RunContext::new(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(got, multiprefix_serial(&values, &labels, 13, Plus));
    }
}
