#![warn(missing_docs)]

//! # multiprefix
//!
//! A reproduction of the multiprefix operation of
//! *Implementing the Multiprefix Operation on Parallel and Vector Computers*
//! (Thomas J. Sheffler, CMU-CS-92-173, SPAA 1993).
//!
//! For an ordered set of `n` values `A = (a_0, .., a_{n-1})`, each with an
//! integer label `l_i ∈ [0, m)`, the **multiprefix** operation computes
//!
//! * a partial sum `s_i = ⊕ { a_j | l_j = l_i and j < i }` for every element
//!   (the ⊕-sum of all *preceding* values with the *same* label — an
//!   exclusive scan-by-key over **unsorted** labels, in vector-index order),
//! * a reduction `r_k = ⊕ { a_j | l_j = k }` for every label.
//!
//! `⊕` is any binary associative operator (see [`op`]); labels that never
//! appear get the operator identity in the reduction vector, and the
//! first element of every label class receives the identity as its sum.
//!
//! ## Engines
//!
//! | Engine | Module | What it is |
//! |---|---|---|
//! | [`Engine::Serial`] | [`serial`] | the paper's Figure 2 bucket loop — the reference semantics |
//! | [`Engine::Spinetree`] | [`spinetree`] | the paper's `O(√n)`-step CRCW-ARB algorithm, executed as the paper did on the CRAY Y-MP: one vector loop per parallel step |
//! | [`Engine::Blocked`] | [`blocked`] | a production `rayon` engine (chunk-local buckets → per-label scan across chunks → replay); deterministic and work-efficient |
//! | [`Engine::Chunked`] | [`chunked`] | the two-level local/combine/apply engine: compact touched-label tables (O(distinct), never O(m)), scoped worker threads, reusable pooled workspaces — the default primary on multicore hosts |
//! | [`Engine::AtomicSpinetree`] | [`atomic`] | a genuinely concurrent spinetree build for `i64`/`Plus`: the overwrite-and-test races are resolved by relaxed atomic stores, a faithful CRCW-ARB realization |
//!
//! All engines produce results identical to [`serial::multiprefix_serial`]
//! (bit-for-bit for integer types). Under them sits [`simd`]: runtime-
//! dispatched AVX2 scan/broadcast/reduce kernels (portable fallback
//! elsewhere) that the chunked/blocked single-label fast paths, the
//! [`scan`] partition sweeps, and the session store's bulk Fenwick
//! rebuild call through — engaged only for operators with an exact
//! machine counterpart, so results stay bit-identical.
//!
//! ## Quick start
//!
//! ```
//! use multiprefix::{multiprefix, op::Plus, Engine};
//!
//! // The paper's Figure 1 example style: values with unsorted labels.
//! let values = [1i64, 3, 2, 1, 1, 2, 3, 1];
//! let labels = [1usize, 2, 1, 1, 2, 2, 1, 1];
//! let out = multiprefix(&values, &labels, 4, Plus, Engine::Auto).unwrap();
//! assert_eq!(out.sums, vec![0, 0, 1, 3, 3, 4, 4, 7]);
//! assert_eq!(out.reductions, vec![0, 8, 6, 0]);
//! ```
//!
//! ## Hardened execution
//!
//! [`try_multiprefix`] / [`try_multireduce`] run the same engines under an
//! [`exec::ExecConfig`]: overflow policies (wrap / checked / saturating,
//! with serial-order semantics shared by every engine), bucket and memory
//! budgets enforced before allocation, fallible allocation for the large
//! engine blocks, and panic containment in the blocked engine.
//! [`multiprefix_verified`] cross-validates any engine's output against an
//! independent serial evaluation. See [`exec`] for the contract.
//!
//! ## Resilient dispatch
//!
//! [`resilience`] turns the engine ladder into a runtime: a [`Dispatcher`]
//! runs requests through a fallback chain (e.g. blocked → spinetree →
//! serial) with deadlines, cooperative cancellation ([`CancelToken`],
//! polled at engine phase boundaries and every few thousand loop
//! iterations), retry with jittered backoff for transient failures, and a
//! per-engine circuit breaker. A seeded chaos harness
//! ([`resilience::ChaosPlan`]) injects panics, allocation failures and
//! stalls to prove the guarantee: every request returns the serial-oracle
//! answer or a typed error — never a hang, wrong answer, or abort.
//!
//! ## Service layer
//!
//! [`service`] lifts the dispatcher into a concurrent, overload-safe
//! [`service::Service`]: a supervised worker pool behind a bounded
//! two-priority submission queue. Submissions return a [`service::Ticket`];
//! overload is met with backpressure ([`service::Service::submit`]),
//! fail-fast refusal ([`service::Service::try_submit`] →
//! [`MpError::Overloaded`]), or load shedding of lower-priority work.
//! Workers that panic resolve their in-flight tickets
//! ([`MpError::WorkerLost`]) and are respawned; small requests can be
//! coalesced into one fused multiprefix call (the paper's §4.4 fixed-cost
//! amortization) with exact, bit-for-bit splitting. The accounting
//! invariant — every admitted request resolves to a reply or a typed
//! error — is tracked by [`service::ServiceMetrics`].
//!
//! ## Observability
//!
//! [`obs`] is a zero-dependency metrics layer: a [`obs::Recorder`] trait
//! (counters, gauges, lock-free latency histograms with p50/p95/p99
//! snapshots, discrete events) threaded through the engines (per-phase
//! timings matching the paper's SPINETREE/ROWSUMS/SPINESUMS/MULTISUMS
//! breakdown), the [`Dispatcher`] (attempt latency, retry and breaker
//! activity) and the [`service::Service`] (queue depth, queue-wait vs.
//! execution split). Install a [`obs::MemoryRecorder`] and export the
//! snapshot as JSON or text; with no recorder installed, instrumentation
//! reduces to one branch per site and reads no clocks.
//!
//! ## Durable sessions
//!
//! [`session`] makes the multiprefix *stateful and crash-durable*: a
//! [`session::DurableSession`] maintains per-label Fenwick trees for
//! O(log n) `append` / `update` / `prefix_query` / `label_total` over a
//! growing element log, with every mutation acknowledged by a
//! checksummed write-ahead log (the same MPXF frame discipline as the
//! socket transport) before it applies. Periodic snapshots (atomic
//! tmp+rename, independent header/payload CRCs, generation-numbered)
//! bound replay length; recovery loads the newest valid snapshot,
//! replays the WAL tail — detecting torn, truncated and bit-flipped
//! records and truncating the log at the first invalid one — and
//! cross-checks the rebuilt state with the Träff exclusive-scan
//! structure before serving. A store damaged beyond recovery fails
//! closed with [`MpError::CorruptStore`]. The
//! [`service::Service`] session API (`open_session` / `session_append` /
//! `session_query` / …) routes these stores through the dispatcher's
//! deadline and breaker discipline.
//!
//! ## Derived primitives
//!
//! The paper argues multiprefix subsumes many parallel primitives; the
//! corresponding modules are [`segmented`] (segmented scans), [`fetch_op`]
//! (deterministic fetch-and-op), [`histogram`] (multireduce / "vector update
//! loop"), and [`scan`] (plain prefix sums, including the partition method
//! the paper uses for the bucket-cumulation step of its sorting benchmark).

pub mod api;
pub mod atomic;
pub mod blocked;
pub mod chunked;
pub mod error;
pub mod exec;
pub mod fetch_op;
pub mod histogram;
pub mod keyed;
pub mod obs;
pub mod op;
pub mod oracle;
pub mod problem;
pub mod resilience;
pub mod scan;
pub mod segmented;
pub mod serial;
pub mod service;
pub mod session;
pub mod shard;
pub mod simd;
pub mod spinetree;
pub mod split;
pub mod stream;

pub use api::{
    multiprefix, multiprefix_inclusive, multiprefix_verified, multireduce, try_multiprefix,
    try_multiprefix_ctx, try_multireduce, try_multireduce_ctx, Engine,
};
pub use chunked::{ChunkedPlan, ChunkedWorkspace, WorkspacePool};
pub use error::MpError;
pub use exec::{ExecConfig, OverflowPolicy};
pub use obs::{MemoryRecorder, ObsSnapshot, Recorder};
pub use op::{InvertibleOp, TryCombineOp};
pub use problem::{validate, Element, MultiprefixOutput};
pub use resilience::{
    CancelToken, Deadline, DispatchOpts, DispatchOutcome, Dispatcher, DispatcherConfig, EngineKind,
    RunContext,
};
pub use session::{DurableSession, RecoveryReport, SessionCore, SessionOptions};
pub use shard::net::{
    maybe_run_worker_from_env, multiprefix_socket, try_multiprefix_socket_ctx, NetConfig, NetError,
    SocketKind, WireOp, WireValue,
};
pub use shard::{
    exscan_over_summaries, multiprefix_sharded, ShardConfig, ShardSummary, ShardSupervisor,
};
