//! The public front door: validated multiprefix / multireduce with engine
//! selection.

use crate::blocked::{
    multiprefix_blocked, multireduce_blocked, try_multiprefix_blocked_cfg_ctx,
    try_multireduce_blocked_cfg_ctx,
};
use crate::chunked::{
    multiprefix_chunked, multireduce_chunked, try_multiprefix_chunked_cfg_ctx,
    try_multireduce_chunked_cfg_ctx,
};
use crate::error::MpError;
use crate::exec::{estimate_engine_mem, ExecConfig};
use crate::op::{CombineOp, TryCombineOp};
use crate::oracle::verify_output;
use crate::problem::{validate_slices, Element, MultiprefixOutput};
use crate::resilience::RunContext;
use crate::serial::{
    multiprefix_serial, multireduce_serial, try_multiprefix_serial_ctx, try_multireduce_serial_ctx,
};
use crate::spinetree::{
    multiprefix_spinetree, multireduce_spinetree, try_multiprefix_spinetree_ctx,
    try_multireduce_spinetree_ctx,
};

/// Which implementation executes the operation.
///
/// All engines compute identical results; they differ in execution
/// strategy. See the module docs of [`crate::serial`], [`crate::spinetree`]
/// and [`crate::blocked`]. (The `i64`-only concurrent engine lives in
/// [`crate::atomic`] and is invoked directly, not through this enum,
/// because it constrains the element type.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Pick automatically: serial below a size threshold, chunked above.
    #[default]
    Auto,
    /// The paper's Figure 2 reference loop.
    Serial,
    /// The paper's `O(√n)`-step spinetree algorithm (vector-simulation
    /// execution: one loop per parallel step).
    Spinetree,
    /// The chunked rayon engine (dense-or-sparse chunk tables over the
    /// global rayon pool).
    Blocked,
    /// The two-level local/combine/apply engine with compact touched-label
    /// tables and reusable workspaces ([`crate::chunked`]) — the fastest on
    /// multicore hosts.
    Chunked,
}

/// Below this element count `Engine::Auto` stays serial: the parallel
/// engines' fixed costs (thread wake-ups, table allocation) dominate.
pub const AUTO_SERIAL_THRESHOLD: usize = 16 * 1024;

/// Compute the multiprefix of `values` under `labels` with `m` buckets.
///
/// Validates the inputs (`values.len() == labels.len()`, all labels `< m`)
/// and dispatches to the chosen [`Engine`].
///
/// ```
/// use multiprefix::{multiprefix, op::Plus, Engine};
/// let out = multiprefix(&[1i64, 1, 1], &[0, 1, 0], 2, Plus, Engine::Auto).unwrap();
/// assert_eq!(out.sums, vec![0, 0, 1]);
/// assert_eq!(out.reductions, vec![2, 1]);
/// ```
pub fn multiprefix<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    engine: Engine,
) -> Result<MultiprefixOutput<T>, MpError> {
    validate_slices(values, labels, m)?;
    Ok(match resolve(engine, values.len()) {
        Engine::Serial => multiprefix_serial(values, labels, m, op),
        Engine::Spinetree => multiprefix_spinetree(values, labels, m, op),
        Engine::Blocked => multiprefix_blocked(values, labels, m, op),
        Engine::Chunked => multiprefix_chunked(values, labels, m, op),
        Engine::Auto => unreachable!("resolve() never returns Auto"),
    })
}

/// Compute only the per-label reductions (§4.2's cheaper multireduce).
pub fn multireduce<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    engine: Engine,
) -> Result<Vec<T>, MpError> {
    validate_slices(values, labels, m)?;
    Ok(match resolve(engine, values.len()) {
        Engine::Serial => multireduce_serial(values, labels, m, op),
        Engine::Spinetree => multireduce_spinetree(values, labels, m, op),
        Engine::Blocked => multireduce_blocked(values, labels, m, op),
        Engine::Chunked => multireduce_chunked(values, labels, m, op),
        Engine::Auto => unreachable!("resolve() never returns Auto"),
    })
}

fn resolve(engine: Engine, n: usize) -> Engine {
    match engine {
        Engine::Auto => {
            if n < AUTO_SERIAL_THRESHOLD {
                Engine::Serial
            } else {
                Engine::Chunked
            }
        }
        other => other,
    }
}

/// Hardened multiprefix: [`multiprefix`] under an explicit [`ExecConfig`].
///
/// On top of the plain API's validation this enforces the config's resource
/// budgets *before any allocation*, allocates the large engine blocks
/// fallibly, contains operator panics in the blocked engine, and applies
/// the configured [`OverflowPolicy`]. See [`crate::exec`] for the full
/// contract; the essentials:
///
/// * all engines return **bit-identical results** — and, under
///   [`crate::exec::OverflowPolicy::Checked`], the **same**
///   [`MpError::ArithmeticOverflow`] with the same serial-order index —
///   for the same input;
/// * `Checked`/`Saturating` semantics are defined by serial (Figure 2)
///   evaluation order. A parallel engine whose checked run trips re-derives
///   the canonical answer with one serial replay; untripped runs are
///   returned directly (the engines compute every serial intermediate, so
///   an untripped run certifies the serial order is overflow-free).
///
/// ```
/// use multiprefix::{try_multiprefix, op::Plus, Engine};
/// use multiprefix::exec::{ExecConfig, OverflowPolicy};
/// use multiprefix::MpError;
///
/// let cfg = ExecConfig::default().overflow(OverflowPolicy::Checked);
/// let err = try_multiprefix(&[i64::MAX, 1], &[0, 0], 1, Plus, Engine::Auto, cfg)
///     .unwrap_err();
/// assert_eq!(err, MpError::ArithmeticOverflow { index: 1 });
/// ```
pub fn try_multiprefix<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    engine: Engine,
    config: ExecConfig,
) -> Result<MultiprefixOutput<T>, MpError> {
    try_multiprefix_ctx(values, labels, m, op, engine, config, &RunContext::new())
}

/// [`try_multiprefix`] under a [`RunContext`]: the run — including any
/// canonicalizing serial replay — honors the context's deadline and
/// [`crate::CancelToken`], returning [`MpError::DeadlineExceeded`] /
/// [`MpError::Cancelled`] from the next checkpoint (phase boundaries and
/// every [`crate::resilience::CHECK_STRIDE`] loop iterations). Also
/// rejects configs no request can satisfy via
/// [`ExecConfig::validate_for`].
///
/// ```
/// use multiprefix::{try_multiprefix_ctx, op::Plus, Engine, ExecConfig, MpError, RunContext};
///
/// let cancel = multiprefix::CancelToken::new();
/// cancel.cancel();
/// let ctx = RunContext::new().with_cancel(&cancel);
/// let err = try_multiprefix_ctx(&[1i64], &[0], 1, Plus, Engine::Auto,
///                               ExecConfig::default(), &ctx).unwrap_err();
/// assert_eq!(err, MpError::Cancelled);
/// ```
pub fn try_multiprefix_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    engine: Engine,
    config: ExecConfig,
    ctx: &RunContext,
) -> Result<MultiprefixOutput<T>, MpError> {
    config.validate_for(std::mem::size_of::<T>())?;
    validate_slices(values, labels, m)?;
    config.check_buckets(m)?;
    config.check_mem(estimate_engine_mem(
        values.len(),
        m,
        std::mem::size_of::<T>(),
    ))?;
    let tripped = match resolve(engine, values.len()) {
        Engine::Serial => {
            return try_multiprefix_serial_ctx(values, labels, m, op, config.overflow, ctx)
        }
        Engine::Spinetree => {
            try_multiprefix_spinetree_ctx(values, labels, m, op, config.overflow, ctx)?
        }
        Engine::Blocked => try_multiprefix_blocked_cfg_ctx(values, labels, m, op, config, ctx)?,
        Engine::Chunked => try_multiprefix_chunked_cfg_ctx(values, labels, m, op, config, ctx)?,
        Engine::Auto => unreachable!("resolve() never returns Auto"),
    };
    match tripped {
        Some(out) => Ok(out),
        // A checked combine tripped: the engine's grouping overflowed
        // somewhere, so the canonical (serial-order) answer — a result or
        // the first-overflow index — comes from one serial replay.
        None => try_multiprefix_serial_ctx(values, labels, m, op, config.overflow, ctx),
    }
}

/// Hardened multireduce: [`multireduce`] under an [`ExecConfig`].
///
/// Under a checking policy this always evaluates serially: a reduce-only
/// engine combines row/chunk *subtotals*, never the per-element serial
/// steps, so even an overflow-free engine run cannot certify that the
/// serial order (which defines `Checked`/`Saturating` semantics) is
/// overflow-free — e.g. chunks `[MAX]` and `[1, −1]` combine cleanly while
/// the serial prefix trips at `MAX + 1`. Under `Wrap` (the default) the
/// parallel engines run as usual with budgets, fallible allocation and (for
/// the blocked engine) panic containment.
pub fn try_multireduce<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    engine: Engine,
    config: ExecConfig,
) -> Result<Vec<T>, MpError> {
    try_multireduce_ctx(values, labels, m, op, engine, config, &RunContext::new())
}

/// [`try_multireduce`] under a [`RunContext`]; see [`try_multiprefix_ctx`]
/// for the deadline/cancellation contract.
pub fn try_multireduce_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    engine: Engine,
    config: ExecConfig,
    ctx: &RunContext,
) -> Result<Vec<T>, MpError> {
    config.validate_for(std::mem::size_of::<T>())?;
    validate_slices(values, labels, m)?;
    config.check_buckets(m)?;
    config.check_mem(estimate_engine_mem(
        values.len(),
        m,
        std::mem::size_of::<T>(),
    ))?;
    if config.overflow.needs_checking() {
        return try_multireduce_serial_ctx(values, labels, m, op, config.overflow, ctx);
    }
    let clean = match resolve(engine, values.len()) {
        Engine::Serial => {
            return try_multireduce_serial_ctx(values, labels, m, op, config.overflow, ctx)
        }
        Engine::Spinetree => {
            try_multireduce_spinetree_ctx(values, labels, m, op, config.overflow, ctx)?
        }
        Engine::Blocked => try_multireduce_blocked_cfg_ctx(values, labels, m, op, config, ctx)?,
        Engine::Chunked => try_multireduce_chunked_cfg_ctx(values, labels, m, op, config, ctx)?,
        Engine::Auto => unreachable!("resolve() never returns Auto"),
    };
    match clean {
        Some(red) => Ok(red),
        None => try_multireduce_serial_ctx(values, labels, m, op, config.overflow, ctx),
    }
}

/// Self-checking multiprefix: run the chosen engine, then cross-validate
/// the full output cell-by-cell against an independent serial (Figure 2)
/// evaluation. Any disagreement — an engine bug, a corrupted arbitration
/// write (see the `pram` crate's fault-injection harness), a soft memory
/// error — surfaces as [`MpError::VerificationFailed`] instead of silently
/// wrong data. Costs one extra `O(n + m)` serial pass.
///
/// When the selected engine resolves to `Serial` the check still runs (two
/// independent serial evaluations): this mode's contract is "the returned
/// output was reproduced twice", not "the engine was parallel".
pub fn multiprefix_verified<T: Element + PartialEq, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    engine: Engine,
) -> Result<MultiprefixOutput<T>, MpError> {
    let out = multiprefix(values, labels, m, op, engine)?;
    verify_output(values, labels, m, op, &out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Plus;

    #[test]
    fn engines_agree() {
        let values: Vec<i64> = (0..2500).map(|i| (i % 17) as i64 - 8).collect();
        let labels: Vec<usize> = (0..2500).map(|i| (i * 3 + 1) % 11).collect();
        let reference = multiprefix(&values, &labels, 11, Plus, Engine::Serial).unwrap();
        for engine in [
            Engine::Spinetree,
            Engine::Blocked,
            Engine::Chunked,
            Engine::Auto,
        ] {
            assert_eq!(
                multiprefix(&values, &labels, 11, Plus, engine).unwrap(),
                reference,
                "{engine:?}"
            );
        }
    }

    #[test]
    fn validation_happens_before_dispatch() {
        for engine in [
            Engine::Serial,
            Engine::Spinetree,
            Engine::Blocked,
            Engine::Chunked,
            Engine::Auto,
        ] {
            let err = multiprefix(&[1i64], &[3], 2, Plus, engine).unwrap_err();
            assert!(matches!(err, MpError::LabelOutOfRange { .. }), "{engine:?}");
            let err = multiprefix(&[1i64, 2], &[0], 2, Plus, engine).unwrap_err();
            assert!(matches!(err, MpError::LengthMismatch { .. }), "{engine:?}");
        }
    }

    #[test]
    fn auto_threshold_behavior() {
        // Below and above the threshold both give correct results (the
        // dispatch itself is an implementation detail; correctness isn't).
        let small: Vec<i64> = vec![1; 100];
        let labels_small = vec![0usize; 100];
        let out = multiprefix(&small, &labels_small, 1, Plus, Engine::Auto).unwrap();
        assert_eq!(out.reductions, vec![100]);

        let big: Vec<i64> = vec![1; AUTO_SERIAL_THRESHOLD + 1];
        let labels_big = vec![0usize; AUTO_SERIAL_THRESHOLD + 1];
        let out = multiprefix(&big, &labels_big, 1, Plus, Engine::Auto).unwrap();
        assert_eq!(out.reductions, vec![(AUTO_SERIAL_THRESHOLD + 1) as i64]);
    }

    #[test]
    fn multireduce_engines_agree() {
        let values: Vec<i64> = (0..4000).map(|i| i as i64).collect();
        let labels: Vec<usize> = (0..4000).map(|i| i % 7).collect();
        let reference = multireduce(&values, &labels, 7, Plus, Engine::Serial).unwrap();
        for engine in [
            Engine::Spinetree,
            Engine::Blocked,
            Engine::Chunked,
            Engine::Auto,
        ] {
            assert_eq!(
                multireduce(&values, &labels, 7, Plus, engine).unwrap(),
                reference,
                "{engine:?}"
            );
        }
    }
}

/// Inclusive multiprefix: `sums[i]` *includes* element `i` itself
/// (`s_i = ⊕ { a_j | l_j = l_i, j ≤ i }`). Computed as the exclusive
/// multiprefix with each element's own value appended — one extra `O(n)`
/// pass, no second engine run.
pub fn multiprefix_inclusive<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    engine: Engine,
) -> Result<MultiprefixOutput<T>, MpError> {
    let mut out = multiprefix(values, labels, m, op, engine)?;
    for (s, &v) in out.sums.iter_mut().zip(values) {
        *s = op.combine(*s, v);
    }
    Ok(out)
}

#[cfg(test)]
mod inclusive_tests {
    use super::*;
    use crate::op::{Max, Plus};

    #[test]
    fn inclusive_includes_self() {
        let values = [1i64, 3, 2, 1, 1, 2, 3, 1];
        let labels = [1usize, 2, 1, 1, 2, 2, 1, 1];
        let out = multiprefix_inclusive(&values, &labels, 4, Plus, Engine::Serial).unwrap();
        assert_eq!(out.sums, vec![1, 3, 3, 4, 4, 6, 7, 8]);
        assert_eq!(out.reductions, vec![0, 8, 6, 0]);
    }

    #[test]
    fn last_of_each_class_equals_reduction() {
        let values: Vec<i64> = (0..200).map(|i| i % 13 - 6).collect();
        let labels: Vec<usize> = (0..200).map(|i| i % 7).collect();
        let out = multiprefix_inclusive(&values, &labels, 7, Plus, Engine::Blocked).unwrap();
        // For each label, the last occurrence's inclusive sum is the
        // label's reduction.
        for k in 0..7 {
            let last = (0..200).rev().find(|&i| labels[i] == k).unwrap();
            assert_eq!(out.sums[last], out.reductions[k]);
        }
    }

    #[test]
    fn inclusive_max() {
        let values = [5i64, 1, 9];
        let labels = [0usize, 0, 0];
        let out = multiprefix_inclusive(&values, &labels, 1, Max, Engine::Serial).unwrap();
        assert_eq!(out.sums, vec![5, 5, 9]);
    }
}
