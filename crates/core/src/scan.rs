//! Plain (un-keyed) prefix scans.
//!
//! A multiprefix in which every element carries the same label *is* an
//! ordinary prefix sum (§1: a segmented scan "is simulated by distributing
//! the same label to each element in a segment"). This module provides the
//! direct implementations the applications use:
//!
//! * serial inclusive/exclusive scans (the references);
//! * the **partition method** of Hockney & Jesshope [HJ88], which the paper
//!   uses for the bucket-cumulation step of its NAS sort (§5.1.1: "we
//!   resorted to the traditional 'partition method' for solving this part
//!   of the problem") — here with rayon supplying the per-partition
//!   parallelism.

use crate::op::CombineOp;
use crate::problem::Element;
use rayon::prelude::*;

/// Serial exclusive scan: `out[i] = v[0] ⊕ … ⊕ v[i-1]`, `out[0] = identity`.
/// Returns `(out, total)`.
pub fn exclusive_scan_serial<T: Element, O: CombineOp<T>>(values: &[T], op: O) -> (Vec<T>, T) {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = op.identity();
    for &v in values {
        out.push(acc);
        acc = op.combine(acc, v);
    }
    (out, acc)
}

/// Serial inclusive scan: `out[i] = v[0] ⊕ … ⊕ v[i]`.
pub fn inclusive_scan_serial<T: Element, O: CombineOp<T>>(values: &[T], op: O) -> Vec<T> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = op.identity();
    for &v in values {
        acc = op.combine(acc, v);
        out.push(acc);
    }
    out
}

/// Exclusive scan by the partition method: split into `P` contiguous
/// partitions; (1) each partition reduces its values in parallel; (2) a
/// serial exclusive scan over the `P` partial sums yields each partition's
/// offset; (3) each partition re-scans serially from its offset, in
/// parallel. Two parallel sweeps + `O(P)` serial work — the classic
/// vector-machine recurrence solver. Deterministic for non-commutative ⊕.
pub fn exclusive_scan_partition<T: Element, O: CombineOp<T>>(values: &[T], op: O) -> (Vec<T>, T) {
    let n = values.len();
    if n == 0 {
        return (Vec::new(), op.identity());
    }
    let partitions = rayon::current_num_threads().max(1) * 4;
    let part_len = n.div_ceil(partitions).max(1);

    // Both sweeps are plain prefix operations, so recognized operators
    // ([`crate::op::CombineOp::KERNEL`]) run the vectorized kernels —
    // bit-identical to the serial fold for the exact integer kernels.
    let fast = O::KERNEL.and_then(|k| crate::simd::kernels::<T>(k, false));

    // Sweep 1: per-partition totals.
    let totals: Vec<T> = values
        .par_chunks(part_len)
        .map(|chunk| match fast {
            Some(tbl) => (tbl.reduce)(op.identity(), chunk),
            None => chunk
                .iter()
                .fold(op.identity(), |acc, &v| op.combine(acc, v)),
        })
        .collect();

    // Serial scan over the P totals.
    let (offsets, grand_total) = exclusive_scan_serial(&totals, op);

    // Sweep 2: re-scan each partition from its offset.
    let mut out = vec![op.identity(); n];
    out.par_chunks_mut(part_len)
        .zip(values.par_chunks(part_len))
        .zip(offsets.par_iter())
        .for_each(|((o, v), &offset)| {
            if let Some(tbl) = fast {
                (tbl.excl_scan_into)(v, o, offset);
                return;
            }
            let mut acc = offset;
            for (oi, &vi) in o.iter_mut().zip(v) {
                *oi = acc;
                acc = op.combine(acc, vi);
            }
        });
    (out, grand_total)
}

/// Inclusive scan via the partition method.
pub fn inclusive_scan_partition<T: Element, O: CombineOp<T>>(values: &[T], op: O) -> Vec<T> {
    let (mut out, _) = exclusive_scan_partition(values, op);
    out.par_iter_mut()
        .zip(values.par_iter())
        .for_each(|(o, &v)| *o = op.combine(*o, v));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{FirstLast, Max, Mult, Plus};

    #[test]
    fn serial_exclusive_basics() {
        let (out, total) = exclusive_scan_serial(&[1i64, 2, 3, 4], Plus);
        assert_eq!(out, vec![0, 1, 3, 6]);
        assert_eq!(total, 10);
    }

    #[test]
    fn serial_inclusive_basics() {
        assert_eq!(
            inclusive_scan_serial(&[1i64, 2, 3, 4], Plus),
            vec![1, 3, 6, 10]
        );
    }

    #[test]
    fn empty_scans() {
        let (out, total) = exclusive_scan_serial::<i64, _>(&[], Plus);
        assert!(out.is_empty());
        assert_eq!(total, 0);
        let (out, total) = exclusive_scan_partition::<i64, _>(&[], Plus);
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn partition_matches_serial_plus() {
        let values: Vec<i64> = (0..100_000).map(|i| (i % 7) as i64 - 3).collect();
        let (a, ta) = exclusive_scan_serial(&values, Plus);
        let (b, tb) = exclusive_scan_partition(&values, Plus);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn partition_matches_serial_max() {
        let values: Vec<i64> = (0..65_537)
            .map(|i| (i as i64 * 911) % 5000 - 2500)
            .collect();
        assert_eq!(
            inclusive_scan_partition(&values, Max),
            inclusive_scan_serial(&values, Max)
        );
    }

    #[test]
    fn partition_noncommutative() {
        let values: Vec<(i32, i32)> = (0..50_000).map(|i| (i, i)).collect();
        let (a, ta) = exclusive_scan_serial(&values, FirstLast);
        let (b, tb) = exclusive_scan_partition(&values, FirstLast);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn mult_scan_overflow_wraps_consistently() {
        let values: Vec<i64> = (1..1000).map(|i| i | 1).collect();
        let (a, _) = exclusive_scan_serial(&values, Mult);
        let (b, _) = exclusive_scan_partition(&values, Mult);
        assert_eq!(a, b);
    }

    #[test]
    fn scan_equals_single_label_multiprefix() {
        // The subsumption claim of §1, checked concretely.
        let values: Vec<i64> = (0..5000).map(|i| (i * i % 13) as i64).collect();
        let labels = vec![0usize; 5000];
        let mp = crate::serial::multiprefix_serial(&values, &labels, 1, Plus);
        let (scan, total) = exclusive_scan_serial(&values, Plus);
        assert_eq!(mp.sums, scan);
        assert_eq!(mp.reductions[0], total);
    }
}

/// Work-efficient tree scan (Blelloch's up-sweep / down-sweep), with the
/// recursion parallelized by `rayon::join` — the third classic scan shape,
/// included alongside the serial loop and the partition method. Exclusive;
/// returns `(scan, total)`. `O(n)` work (the up-sweep stores each split's
/// left-half total so the down-sweep never recomputes), `O(log n)` span.
pub fn exclusive_scan_blelloch<T: Element, O: CombineOp<T>>(values: &[T], op: O) -> (Vec<T>, T) {
    let n = values.len();
    if n == 0 {
        return (Vec::new(), op.identity());
    }
    let mut out = values.to_vec();
    let (tree, total) = up_sweep(&out, op);
    down_sweep(&mut out, &tree, op, op.identity());
    (out, total)
}

/// Sequential cutoff below which recursion stays on one thread.
const SCAN_CUTOFF: usize = 8 * 1024;

/// Totals tree produced by the up-sweep: mirrors the `join` split
/// structure, storing each internal node's left-half total.
enum SweepTree<T> {
    Leaf,
    Node {
        left_total: T,
        left: Box<SweepTree<T>>,
        right: Box<SweepTree<T>>,
    },
}

/// Up-sweep: build the totals tree and return the slice's ⊕-total.
fn up_sweep<T: Element, O: CombineOp<T>>(slice: &[T], op: O) -> (SweepTree<T>, T) {
    let n = slice.len();
    if n <= SCAN_CUTOFF {
        let total = slice
            .iter()
            .fold(op.identity(), |acc, &v| op.combine(acc, v));
        return (SweepTree::Leaf, total);
    }
    let mid = n / 2;
    let (left_half, right_half) = slice.split_at(mid);
    let ((left, left_total), (right, right_total)) =
        rayon::join(|| up_sweep(left_half, op), || up_sweep(right_half, op));
    let total = op.combine(left_total, right_total);
    (
        SweepTree::Node {
            left_total,
            left: Box::new(left),
            right: Box::new(right),
        },
        total,
    )
}

/// Down-sweep: replace each element with `carry ⊕ (everything before it
/// in this slice)`, reusing the stored left totals.
fn down_sweep<T: Element, O: CombineOp<T>>(slice: &mut [T], tree: &SweepTree<T>, op: O, carry: T) {
    match tree {
        SweepTree::Leaf => {
            let mut acc = carry;
            for v in slice.iter_mut() {
                let old = *v;
                *v = acc;
                acc = op.combine(acc, old);
            }
        }
        SweepTree::Node {
            left_total,
            left,
            right,
        } => {
            let mid = slice.len() / 2;
            let (left_half, right_half) = slice.split_at_mut(mid);
            let right_carry = op.combine(carry, *left_total);
            rayon::join(
                || down_sweep(left_half, left, op, carry),
                || down_sweep(right_half, right, op, right_carry),
            );
        }
    }
}

#[cfg(test)]
mod blelloch_tests {
    use super::*;
    use crate::op::{FirstLast, Max, Plus};

    #[test]
    fn matches_serial_small_and_large() {
        for n in [0usize, 1, 2, 100, 10_000, 100_000] {
            let values: Vec<i64> = (0..n as i64).map(|i| i % 31 - 15).collect();
            let (a, ta) = exclusive_scan_serial(&values, Plus);
            let (b, tb) = exclusive_scan_blelloch(&values, Plus);
            assert_eq!(a, b, "n = {n}");
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn max_and_noncommutative() {
        let values: Vec<i64> = (0..50_000)
            .map(|i| (i as i64 * 7919) % 1000 - 500)
            .collect();
        assert_eq!(
            exclusive_scan_blelloch(&values, Max),
            exclusive_scan_serial(&values, Max)
        );
        let pairs: Vec<(i32, i32)> = (0..30_000).map(|i| (i, i)).collect();
        assert_eq!(
            exclusive_scan_blelloch(&pairs, FirstLast),
            exclusive_scan_serial(&pairs, FirstLast)
        );
    }

    #[test]
    fn three_scans_agree() {
        let values: Vec<i64> = (0..70_001i64).map(|i| i.wrapping_mul(i) % 97).collect();
        let (a, ta) = exclusive_scan_serial(&values, Plus);
        let (b, tb) = exclusive_scan_partition(&values, Plus);
        let (c, tc) = exclusive_scan_blelloch(&values, Plus);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(ta, tb);
        assert_eq!(tb, tc);
    }
}
