//! The definitional (quadratic) oracle and result checkers — public so
//! downstream code can verify any multiprefix implementation against the
//! paper's definition, not just against this crate's engines.

use crate::op::CombineOp;
use crate::problem::{Element, MultiprefixOutput};

/// The multiprefix computed *directly from the definition* (§1):
/// `s_i = ⊕ { a_j | l_j = l_i and j < i }`, `r_k = ⊕ { a_j | l_j = k }`.
/// `O(n²)` time — for testing only.
pub fn multiprefix_definitional<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
) -> MultiprefixOutput<T> {
    let sums = (0..values.len())
        .map(|i| {
            (0..i)
                .filter(|&j| labels[j] == labels[i])
                .map(|j| values[j])
                .fold(op.identity(), |acc, v| op.combine(acc, v))
        })
        .collect();
    let reductions = (0..m)
        .map(|k| {
            values
                .iter()
                .zip(labels)
                .filter(|&(_, &l)| l == k)
                .map(|(&v, _)| v)
                .fold(op.identity(), |acc, v| op.combine(acc, v))
        })
        .collect();
    MultiprefixOutput { sums, reductions }
}

/// Check a claimed output against the definition. Returns the first
/// discrepancy as `(what, index)` — `what` is `"sum"` or `"reduction"`.
pub fn check_output<T: Element + PartialEq, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    claimed: &MultiprefixOutput<T>,
) -> Result<(), (&'static str, usize)> {
    let expect = multiprefix_definitional(values, labels, m, op);
    if claimed.sums.len() != expect.sums.len() {
        return Err(("sum", usize::MAX));
    }
    for (i, (a, b)) in claimed.sums.iter().zip(&expect.sums).enumerate() {
        if a != b {
            return Err(("sum", i));
        }
    }
    if claimed.reductions.len() != expect.reductions.len() {
        return Err(("reduction", usize::MAX));
    }
    for (k, (a, b)) in claimed
        .reductions
        .iter()
        .zip(&expect.reductions)
        .enumerate()
    {
        if a != b {
            return Err(("reduction", k));
        }
    }
    Ok(())
}

/// Check a claimed output against the **serial** engine — `O(n + m)` where
/// [`check_output`] is `O(n²)`, cheap enough for production self-checking.
/// This is the comparator behind [`crate::multiprefix_verified`] and the
/// PRAM fault-injection harness; the first discrepancy is reported as
/// [`crate::MpError::VerificationFailed`].
pub fn verify_output<T: Element + PartialEq, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    claimed: &MultiprefixOutput<T>,
) -> Result<(), crate::MpError> {
    use crate::MpError::VerificationFailed;
    let expect = crate::serial::multiprefix_serial(values, labels, m, op);
    if claimed.sums.len() != expect.sums.len() {
        return Err(VerificationFailed {
            what: "sum",
            index: usize::MAX,
        });
    }
    for (i, (a, b)) in claimed.sums.iter().zip(&expect.sums).enumerate() {
        if a != b {
            return Err(VerificationFailed {
                what: "sum",
                index: i,
            });
        }
    }
    if claimed.reductions.len() != expect.reductions.len() {
        return Err(VerificationFailed {
            what: "reduction",
            index: usize::MAX,
        });
    }
    for (k, (a, b)) in claimed
        .reductions
        .iter()
        .zip(&expect.reductions)
        .enumerate()
    {
        if a != b {
            return Err(VerificationFailed {
                what: "reduction",
                index: k,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{multiprefix, Engine};
    use crate::op::Plus;

    #[test]
    fn oracle_matches_figure_1() {
        let values = [1i64, 3, 2, 1, 1, 2, 3, 1];
        let labels = [1usize, 2, 1, 1, 2, 2, 1, 1];
        let out = multiprefix_definitional(&values, &labels, 4, Plus);
        assert_eq!(out.sums, vec![0, 0, 1, 3, 3, 4, 4, 7]);
        assert_eq!(out.reductions, vec![0, 8, 6, 0]);
    }

    #[test]
    fn engines_pass_the_checker() {
        let values: Vec<i64> = (0..300).map(|i| i % 23 - 11).collect();
        let labels: Vec<usize> = (0..300).map(|i| (i * 7) % 9).collect();
        for engine in [Engine::Serial, Engine::Spinetree, Engine::Blocked] {
            let out = multiprefix(&values, &labels, 9, Plus, engine).unwrap();
            assert_eq!(check_output(&values, &labels, 9, Plus, &out), Ok(()));
        }
    }

    #[test]
    fn verify_output_agrees_with_quadratic_checker() {
        let values: Vec<i64> = (0..120).map(|i| i % 19 - 9).collect();
        let labels: Vec<usize> = (0..120).map(|i| (i * 5) % 7).collect();
        let good = multiprefix_definitional(&values, &labels, 7, Plus);
        assert_eq!(verify_output(&values, &labels, 7, Plus, &good), Ok(()));
        let mut bad = good.clone();
        bad.sums[17] += 1;
        assert_eq!(
            verify_output(&values, &labels, 7, Plus, &bad),
            Err(crate::MpError::VerificationFailed {
                what: "sum",
                index: 17
            })
        );
        let mut bad = good;
        bad.reductions[3] -= 1;
        assert_eq!(
            verify_output(&values, &labels, 7, Plus, &bad),
            Err(crate::MpError::VerificationFailed {
                what: "reduction",
                index: 3
            })
        );
    }

    #[test]
    fn checker_localizes_corruption() {
        let values = [1i64, 2, 3];
        let labels = [0usize, 0, 0];
        let mut out = multiprefix_definitional(&values, &labels, 1, Plus);
        out.sums[2] += 1;
        assert_eq!(
            check_output(&values, &labels, 1, Plus, &out),
            Err(("sum", 2))
        );
        let mut out = multiprefix_definitional(&values, &labels, 1, Plus);
        out.reductions[0] = 0;
        assert_eq!(
            check_output(&values, &labels, 1, Plus, &out),
            Err(("reduction", 0))
        );
    }
}
