//! Segmented scans via multiprefix.
//!
//! §1 of the paper: "Multiprefix also provides the functionality of the
//! segmented-scans [Ble90] … A segmented-scan is simulated by distributing
//! the same label to each element in a segment and then executing the
//! multiprefix operation."
//!
//! A segmentation is given by a boolean flag vector: `flags[i] == true`
//! opens a new segment at `i` (position 0 always opens the first segment,
//! whatever its flag). [`segment_ids`] converts flags to per-element
//! segment labels with an inclusive scan; the segmented exclusive scan is
//! then one multiprefix call with those labels.

use crate::api::{multiprefix, Engine};
use crate::error::MpError;
use crate::op::CombineOp;
use crate::problem::{Element, MultiprefixOutput};

/// Convert segment-start flags into 0-based segment ids.
///
/// ```
/// use multiprefix::segmented::segment_ids;
/// let flags = [false, false, true, false, true];
/// assert_eq!(segment_ids(&flags), vec![0, 0, 1, 1, 2]);
/// ```
pub fn segment_ids(flags: &[bool]) -> Vec<usize> {
    let mut ids = Vec::with_capacity(flags.len());
    let mut current = 0usize;
    for (i, &f) in flags.iter().enumerate() {
        if f && i > 0 {
            current += 1;
        }
        ids.push(current);
    }
    ids
}

/// Number of segments described by a flag vector (0 for an empty vector).
pub fn segment_count(flags: &[bool]) -> usize {
    if flags.is_empty() {
        0
    } else {
        1 + flags.iter().skip(1).filter(|&&f| f).count()
    }
}

/// Segmented **exclusive** scan: within each segment, `out[i]` is the ⊕ of
/// the segment's values strictly before `i` (identity at each segment
/// head). Also returns the per-segment totals, which is what a
/// segmented *reduce* would produce.
pub fn segmented_exclusive_scan<T: Element, O: CombineOp<T>>(
    values: &[T],
    flags: &[bool],
    op: O,
    engine: Engine,
) -> Result<MultiprefixOutput<T>, MpError> {
    let ids = segment_ids(flags);
    multiprefix(values, &ids, segment_count(flags), op, engine)
}

/// Segmented **inclusive** scan (each position includes its own value).
pub fn segmented_inclusive_scan<T: Element, O: CombineOp<T>>(
    values: &[T],
    flags: &[bool],
    op: O,
    engine: Engine,
) -> Result<Vec<T>, MpError> {
    let out = segmented_exclusive_scan(values, flags, op, engine)?;
    Ok(out
        .sums
        .iter()
        .zip(values)
        .map(|(&s, &v)| op.combine(s, v))
        .collect())
}

/// Build start-flags from segment lengths: `lengths = [3, 2]` describes
/// segments covering positions `0..3` and `3..5`.
///
/// ```
/// use multiprefix::segmented::flags_from_lengths;
/// assert_eq!(
///     flags_from_lengths(&[3, 2]),
///     vec![true, false, false, true, false]
/// );
/// ```
///
/// # Panics
/// Panics if any length is zero (empty segments have no head position to
/// flag; represent them out of band).
pub fn flags_from_lengths(lengths: &[usize]) -> Vec<bool> {
    let total: usize = lengths.iter().sum();
    let mut flags = vec![false; total];
    let mut at = 0usize;
    for &len in lengths {
        assert!(
            len > 0,
            "zero-length segments are not representable as flags"
        );
        flags[at] = true;
        at += len;
    }
    flags
}

/// Recover segment lengths from per-element segment ids (the inverse of
/// [`segment_ids`] composed with [`flags_from_lengths`]).
pub fn lengths_from_ids(ids: &[usize]) -> Vec<usize> {
    let Some(&last) = ids.last() else {
        return Vec::new();
    };
    let mut lengths = vec![0usize; last + 1];
    for &id in ids {
        lengths[id] += 1;
    }
    lengths
}

/// Serial reference segmented exclusive scan — used by tests to validate
/// the multiprefix route.
pub fn segmented_exclusive_scan_serial<T: Element, O: CombineOp<T>>(
    values: &[T],
    flags: &[bool],
    op: O,
) -> Vec<T> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = op.identity();
    for (i, &v) in values.iter().enumerate() {
        if i == 0 || flags[i] {
            acc = op.identity();
        }
        out.push(acc);
        acc = op.combine(acc, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Max, Plus};

    #[test]
    fn ids_basics() {
        assert_eq!(segment_ids(&[]), Vec::<usize>::new());
        assert_eq!(segment_ids(&[true, true, true]), vec![0, 1, 2]);
        assert_eq!(segment_ids(&[false, false]), vec![0, 0]);
        assert_eq!(segment_count(&[false, true, false, true]), 3);
        assert_eq!(segment_count(&[]), 0);
    }

    #[test]
    fn first_flag_value_is_irrelevant() {
        assert_eq!(segment_ids(&[true, false]), segment_ids(&[false, false]));
    }

    #[test]
    fn exclusive_matches_serial_reference() {
        let values: Vec<i64> = (0..1000).map(|i| (i % 11) as i64).collect();
        let flags: Vec<bool> = (0..1000).map(|i| i % 37 == 0).collect();
        let expect = segmented_exclusive_scan_serial(&values, &flags, Plus);
        for engine in [Engine::Serial, Engine::Spinetree, Engine::Blocked] {
            let got = segmented_exclusive_scan(&values, &flags, Plus, engine).unwrap();
            assert_eq!(got.sums, expect, "{engine:?}");
        }
    }

    #[test]
    fn segment_totals_are_reductions() {
        let values = [1i64, 2, 3, 10, 20, 100];
        let flags = [false, false, false, true, false, true];
        let out = segmented_exclusive_scan(&values, &flags, Plus, Engine::Serial).unwrap();
        assert_eq!(out.reductions, vec![6, 30, 100]);
        assert_eq!(out.sums, vec![0, 1, 3, 0, 10, 0]);
    }

    #[test]
    fn inclusive_scan_includes_self() {
        let values = [1i64, 2, 3, 4];
        let flags = [false, false, true, false];
        let got = segmented_inclusive_scan(&values, &flags, Plus, Engine::Serial).unwrap();
        assert_eq!(got, vec![1, 3, 3, 7]);
    }

    #[test]
    fn max_segmented() {
        let values = [5i64, 1, 9, 2, 8, 3];
        let flags = [false, false, false, true, false, false];
        let expect = segmented_exclusive_scan_serial(&values, &flags, Max);
        let got = segmented_exclusive_scan(&values, &flags, Max, Engine::Spinetree).unwrap();
        assert_eq!(got.sums, expect);
    }

    #[test]
    fn length_flag_id_roundtrip() {
        let lengths = vec![1usize, 4, 2, 7];
        let flags = flags_from_lengths(&lengths);
        assert_eq!(flags.len(), 14);
        let ids = segment_ids(&flags);
        assert_eq!(lengths_from_ids(&ids), lengths);
        assert_eq!(segment_count(&flags), 4);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_segment_rejected() {
        flags_from_lengths(&[2, 0, 1]);
    }

    #[test]
    fn lengths_from_empty() {
        assert!(lengths_from_ids(&[]).is_empty());
        assert!(flags_from_lengths(&[]).is_empty());
    }

    #[test]
    fn every_element_its_own_segment() {
        let values = [7i64, 8, 9];
        let flags = [true, true, true];
        let out = segmented_exclusive_scan(&values, &flags, Plus, Engine::Serial).unwrap();
        assert_eq!(out.sums, vec![0, 0, 0]);
        assert_eq!(out.reductions, vec![7, 8, 9]);
    }
}
