//! Problem statement types: inputs, validation and outputs.

use crate::error::MpError;

/// Marker trait for element types the engines can carry.
///
/// Everything is moved by value through tight loops, so elements must be
/// `Copy`; `Send + Sync` lets the rayon engines share slices across threads.
pub trait Element: Copy + Send + Sync + 'static {}
impl<T: Copy + Send + Sync + 'static> Element for T {}

/// The result of a multiprefix operation.
///
/// `sums[i]` is the ⊕-combination of all values `values[j]` with
/// `labels[j] == labels[i]` and `j < i` (the operator identity when no such
/// `j` exists). `reductions[k]` is the ⊕-combination of **all** values with
/// label `k` (the identity when label `k` never occurs); this is the
/// "bucket" vector `R` of the paper's Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiprefixOutput<T> {
    /// Per-element exclusive prefix, in vector-index order.
    pub sums: Vec<T>,
    /// Per-label reduction, length `m`.
    pub reductions: Vec<T>,
}

/// Validate a multiprefix problem instance.
///
/// Checks that `values` and `labels` have equal length and that every label
/// lies in `[0, m)`. Every public entry point calls this before dispatching
/// to an engine, so engines themselves may index without bounds anxiety.
///
/// ```
/// use multiprefix::problem::validate;
/// assert!(validate(&[1, 2][..].len(), &[0usize, 1], 2).is_ok());
/// assert!(validate(&2, &[0usize, 5], 2).is_err());
/// ```
pub fn validate(n_values: &usize, labels: &[usize], m: usize) -> Result<(), MpError> {
    if *n_values != labels.len() {
        return Err(MpError::LengthMismatch {
            values: *n_values,
            labels: labels.len(),
        });
    }
    for (index, &label) in labels.iter().enumerate() {
        if label >= m {
            return Err(MpError::LabelOutOfRange { index, label, m });
        }
    }
    Ok(())
}

/// Convenience wrapper over [`validate`] taking the value slice directly.
pub fn validate_slices<T>(values: &[T], labels: &[usize], m: usize) -> Result<(), MpError> {
    validate(&values.len(), labels, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed() {
        assert_eq!(validate_slices(&[1, 2, 3], &[0, 1, 2], 3), Ok(()));
    }

    #[test]
    fn accepts_empty() {
        assert_eq!(validate_slices::<i64>(&[], &[], 0), Ok(()));
    }

    #[test]
    fn rejects_length_mismatch() {
        assert_eq!(
            validate_slices(&[1, 2, 3], &[0, 1], 3),
            Err(MpError::LengthMismatch {
                values: 3,
                labels: 2
            })
        );
    }

    #[test]
    fn rejects_label_out_of_range() {
        assert_eq!(
            validate_slices(&[1, 2, 3], &[0, 3, 1], 3),
            Err(MpError::LabelOutOfRange {
                index: 1,
                label: 3,
                m: 3
            })
        );
    }

    #[test]
    fn rejects_any_label_when_m_is_zero() {
        assert_eq!(
            validate_slices(&[9], &[0], 0),
            Err(MpError::LabelOutOfRange {
                index: 0,
                label: 0,
                m: 0
            })
        );
    }

    #[test]
    fn reports_first_offending_index() {
        assert_eq!(
            validate_slices(&[0; 4], &[1, 7, 9, 7], 5),
            Err(MpError::LabelOutOfRange {
                index: 1,
                label: 7,
                m: 5
            })
        );
    }
}
