//! The in-memory incremental multiprefix engine: per-label Fenwick trees
//! over a growing element log.
//!
//! Where every batch engine answers "the multiprefix of *this* vector,
//! once", a [`SessionCore`] holds a *live* vector: `append` admits the
//! next element, `update` re-assigns an existing one, and
//! `prefix_query`/`label_total` answer the multiprefix questions of the
//! moment in O(log n) — no rescan, no resubmission. The contract is
//! differential: after any op sequence, `prefix_query(i)` equals
//! `sums[i]` and `label_total(l)` equals `reductions[l]` of the batch
//! chunked engine run over the session's current (label, value) vector,
//! bit for bit (`tests/session_differential.rs`).
//!
//! Recovery reuses the Träff exclusive-scan structure: segment the
//! restored element log, summarize each segment per label, and stitch the
//! segments with [`exscan_over_summaries`] — the same primitive the
//! chunked engine's combine phase and the shard supervisor use — to
//! cross-check the rebuilt Fenwick forest (totals *and* the per-segment
//! carries at every segment boundary) before the store is trusted.

use super::fenwick::Fenwick;
use crate::error::MpError;
use crate::op::InvertibleOp;
use crate::problem::Element;
use crate::shard::{exscan_over_summaries, ShardSummary};
use std::collections::HashMap;

/// One live element of the session log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SessionElem<T> {
    /// Its label (bucket), `< m`.
    pub label: usize,
    /// Its current value (the latest `update`, or the appended value).
    pub value: T,
    /// Its occurrence index within its label class (0-based).
    pub occ: usize,
}

/// The incremental engine: an element log plus one Fenwick tree per
/// touched label.
#[derive(Debug)]
pub struct SessionCore<T, O> {
    op: O,
    m: usize,
    elems: Vec<SessionElem<T>>,
    trees: HashMap<usize, Fenwick<T, O>>,
}

impl<T: Element, O: InvertibleOp<T>> SessionCore<T, O> {
    /// An empty session over `m` buckets.
    pub fn new(m: usize, op: O) -> Self {
        SessionCore {
            op,
            m,
            elems: Vec::new(),
            trees: HashMap::new(),
        }
    }

    /// Rebuild a session from a full `(label, value)` log in one pass —
    /// the snapshot-restore path. Per-label occurrence sequences are
    /// gathered, then each tree is bulk-built by
    /// [`Fenwick::from_values`] (a single vectorizable scan per label)
    /// instead of `O(log n)` combines per element; the resulting trees
    /// are bit-identical to replaying [`SessionCore::append`].
    pub fn from_batch<I>(m: usize, op: O, items: I) -> Result<Self, MpError>
    where
        I: IntoIterator<Item = (usize, T)>,
    {
        let mut elems: Vec<SessionElem<T>> = Vec::new();
        let mut per_label: HashMap<usize, Vec<T>> = HashMap::new();
        for (label, value) in items {
            if label >= m {
                return Err(MpError::LabelOutOfRange {
                    index: elems.len(),
                    label,
                    m,
                });
            }
            let vals = per_label.entry(label).or_default();
            elems.push(SessionElem {
                label,
                value,
                occ: vals.len(),
            });
            vals.push(value);
        }
        let mut trees = HashMap::with_capacity(per_label.len());
        for (label, vals) in per_label {
            trees.insert(label, Fenwick::from_values(op, &vals)?);
        }
        Ok(SessionCore {
            op,
            m,
            elems,
            trees,
        })
    }

    /// The declared bucket count.
    pub fn buckets(&self) -> usize {
        self.m
    }

    /// Elements appended so far.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Append the next element; returns its (stable) index.
    pub fn append(&mut self, label: usize, value: T) -> Result<u64, MpError> {
        if label >= self.m {
            return Err(MpError::LabelOutOfRange {
                index: self.elems.len(),
                label,
                m: self.m,
            });
        }
        let tree = self
            .trees
            .entry(label)
            .or_insert_with(|| Fenwick::new(self.op));
        let occ = tree.len();
        tree.push(value)?;
        self.elems.push(SessionElem { label, value, occ });
        Ok(self.elems.len() as u64 - 1)
    }

    /// Re-assign element `index` to `value` (its label is fixed).
    pub fn update(&mut self, index: u64, value: T) -> Result<(), MpError> {
        let len = self.elems.len() as u64;
        let elem = match self.elems.get_mut(index as usize) {
            Some(e) => e,
            None => return Err(MpError::IndexOutOfRange { index, len }),
        };
        let tree = self
            .trees
            .get_mut(&elem.label)
            .expect("invariant: every element's label has a tree");
        tree.assign(elem.occ, elem.value, value);
        elem.value = value;
        Ok(())
    }

    /// The multiprefix sum of element `index`: the ⊕-combination of every
    /// *earlier* element with the same label (identity for the first).
    pub fn prefix_query(&self, index: u64) -> Result<T, MpError> {
        let elem = match self.elems.get(index as usize) {
            Some(e) => e,
            None => {
                return Err(MpError::IndexOutOfRange {
                    index,
                    len: self.elems.len() as u64,
                })
            }
        };
        let tree = self
            .trees
            .get(&elem.label)
            .expect("invariant: every element's label has a tree");
        Ok(tree.prefix(elem.occ))
    }

    /// The ⊕-reduction of every element with label `label` (identity for
    /// an untouched label).
    pub fn label_total(&self, label: usize) -> Result<T, MpError> {
        if label >= self.m {
            return Err(MpError::LabelOutOfRange {
                index: self.elems.len(),
                label,
                m: self.m,
            });
        }
        Ok(self
            .trees
            .get(&label)
            .map(|t| t.total())
            .unwrap_or_else(|| self.op.identity()))
    }

    /// The current (label, value) vectors, in append order — what a batch
    /// engine would be handed to reproduce this session's state.
    pub fn as_batch(&self) -> (Vec<T>, Vec<usize>) {
        (
            self.elems.iter().map(|e| e.value).collect(),
            self.elems.iter().map(|e| e.label).collect(),
        )
    }

    /// Internal: the raw element log (snapshot encoding).
    pub(crate) fn elems(&self) -> &[SessionElem<T>] {
        &self.elems
    }

    /// The recovery self-check: segment the log, summarize each segment
    /// per label, exscan-stitch the summaries, and compare (a) the global
    /// reductions against every tree's total and (b) each segment's
    /// exclusive carry against `prefix_query` at the first in-segment
    /// occurrence of each label — the cross-segment carries of the batch
    /// structure replayed against the incremental one.
    pub(crate) fn verify_with_exscan(&self) -> Result<(), MpError>
    where
        T: PartialEq,
    {
        let n = self.elems.len();
        if n == 0 {
            return Ok(());
        }
        let segments = 8.min(n);
        let seg_len = n.div_ceil(segments);
        let mut summaries: Vec<ShardSummary<T>> = Vec::with_capacity(segments);
        // First in-segment element index per (segment, label), to probe
        // the carries afterwards.
        let mut firsts: Vec<Vec<(usize, usize)>> = Vec::with_capacity(segments);
        for (s, chunk) in self.elems.chunks(seg_len).enumerate() {
            let base = s * seg_len;
            let mut touched: Vec<usize> = Vec::new();
            let mut totals: Vec<T> = Vec::new();
            let mut slot: HashMap<usize, usize> = HashMap::new();
            let mut first: Vec<(usize, usize)> = Vec::new();
            for (off, e) in chunk.iter().enumerate() {
                match slot.get(&e.label) {
                    Some(&at) => totals[at] = self.op.combine(totals[at], e.value),
                    None => {
                        slot.insert(e.label, touched.len());
                        touched.push(e.label);
                        totals.push(e.value);
                        first.push((e.label, base + off));
                    }
                }
            }
            summaries.push(ShardSummary {
                shard: s,
                touched,
                totals,
            });
            firsts.push(first);
        }
        let reductions = exscan_over_summaries(&mut summaries, self.m, self.op)?;
        // (a) global reductions vs tree totals.
        for (label, tree) in &self.trees {
            if reductions[*label] != tree.total() {
                return Err(MpError::CorruptStore {
                    what: "recovery self-check: exscan reduction disagrees with Fenwick total",
                });
            }
        }
        // (b) per-segment exclusive carries vs prefix queries at segment
        // entry points.
        for (summary, first) in summaries.iter().zip(&firsts) {
            let (touched, carried) = (&summary.touched, &summary.totals);
            for (slot, &label) in touched.iter().enumerate() {
                let (flabel, at) = first[slot];
                debug_assert_eq!(flabel, label);
                if self.prefix_query(at as u64)? != carried[slot] {
                    return Err(MpError::CorruptStore {
                        what: "recovery self-check: exscan carry disagrees with prefix query",
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunked::multiprefix_chunked;
    use crate::op::Plus;

    #[test]
    fn session_matches_batch_chunked_on_every_prefix() {
        let m = 13;
        let mut core = SessionCore::new(m, Plus);
        let mut state = 0x5EEDu64;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in 0..300u64 {
            let label = (step() % m as u64) as usize;
            let value = step() as i64 - (u32::MAX / 2) as i64;
            assert_eq!(core.append(label, value).unwrap(), i);
            if step() % 4 == 0 && i > 0 {
                let target = step() % (i + 1);
                core.update(target, step() as i64).unwrap();
            }
            // Every few ops, check the whole state against the batch
            // chunked engine.
            if i % 37 == 0 {
                let (values, labels) = core.as_batch();
                let batch = multiprefix_chunked(&values, &labels, m, Plus);
                for j in 0..values.len() {
                    assert_eq!(
                        core.prefix_query(j as u64).unwrap(),
                        batch.sums[j],
                        "i={i} j={j}"
                    );
                }
                for l in 0..m {
                    assert_eq!(
                        core.label_total(l).unwrap(),
                        batch.reductions[l],
                        "i={i} l={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_ops_are_typed_errors() {
        let mut core: SessionCore<i64, Plus> = SessionCore::new(4, Plus);
        assert!(matches!(
            core.append(4, 1),
            Err(MpError::LabelOutOfRange { label: 4, m: 4, .. })
        ));
        assert!(core.update(0, 1).is_err());
        assert!(core.prefix_query(0).is_err());
        assert!(core.label_total(4).is_err());
        assert_eq!(core.label_total(3).unwrap(), 0);
    }

    #[test]
    fn exscan_self_check_accepts_clean_state() {
        let mut core = SessionCore::new(7, Plus);
        for i in 0..100 {
            core.append(i % 7, i as i64 * 11 - 300).unwrap();
        }
        // Updates too, including overflow-adjacent values.
        core.update(3, i64::MAX).unwrap();
        core.update(97, i64::MIN).unwrap();
        core.verify_with_exscan().unwrap();
    }
}
