//! The durable session store: WAL-then-apply writes, generation-chained
//! snapshots, and crash-exact recovery.
//!
//! ## On-disk layout
//!
//! A store directory holds at most two *generations* of state:
//!
//! ```text
//! store/
//!   snap-00000003.mpss     older snapshot (fallback)
//!   wal-00000003.mpwl      its WAL segment (sealed at the cut)
//!   snap-00000004.mpss     newest snapshot
//!   wal-00000004.mpwl      the live segment (appends go here)
//! ```
//!
//! Every mutation is WAL-first: the record is framed, written and fsynced
//! *before* the in-memory Fenwick forest applies it, so an `Ok` from
//! [`DurableSession::append`]/[`DurableSession::update`] is a durability
//! acknowledgment. A snapshot rotates the chain under the session's
//! exclusive borrow: a new segment `wal-(g+1)` opens with a
//! [`Segment`](WalRecord::Segment) header carrying the exact operation
//! count at the cut, *then* the image `snap-(g+1)` is written atomically,
//! *then* generations `≤ g−1` are reaped. A crash between any two of
//! those steps leaves a recoverable chain — the new segment's header
//! binds it to the cut, so recovery from the *older* snapshot replays
//! through both segments and lands on the same state.
//!
//! ## Recovery state machine
//!
//! ```text
//! pick snapshot:  newest valid snap-g  (corrupt → fall back a
//!                 generation, counting `session.recovery.snapshot_fallback`;
//!                 none at all → empty state at gen 0)
//! replay chain:   for g, g+1, …: scan wal-g strictly
//!   header        must be Segment{base_ops == ops so far, gen == g, m}
//!   records       applied in order; each is one operation
//!   damage        in the FINAL segment → truncate the file at the last
//!                 whole record (`session.recovery.truncated_tail`)
//!                 in a NON-final segment → fail closed (CorruptStore)
//!   headerless    final segment with no valid header and no records:
//!                 an aborted rotation — the file is removed
//! self-check:     segment the restored log and cross-check the Fenwick
//!                 forest against `exscan_over_summaries` (totals and
//!                 per-segment carries) before trusting the store
//! ```
//!
//! Anything the machine cannot prove consistent is a typed
//! [`MpError::CorruptStore`] — never a panic, never silently partial
//! state.

use super::engine::SessionCore;
use super::snapshot::{read_snapshot, write_snapshot, SnapshotImage};
use super::wal::{scan_wal, WalRecord, WalWriter};
use crate::error::MpError;
use crate::obs::Recorder;
use crate::op::InvertibleOp;
use crate::problem::Element;
use crate::resilience::chaos::ChaosState;
use crate::shard::net::wire::WireValue;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Tuning and wiring for a [`DurableSession`].
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// Automatically snapshot after this many operations since the last
    /// cut (`None`: only on explicit [`DurableSession::snapshot`] calls).
    pub snapshot_every: Option<u64>,
    /// fsync the WAL after every record (the default durability
    /// contract). Turning this off trades crash-exactness of the last few
    /// operations for throughput — recovery is still torn-tail safe.
    pub no_sync: bool,
    /// Injected storage faults (armed [`ChaosPlan`]).
    ///
    /// [`ChaosPlan`]: crate::resilience::ChaosPlan
    pub chaos: Option<Arc<ChaosState>>,
    /// Observability sink for `session.*` counters and spans.
    pub recorder: Option<Arc<dyn Recorder>>,
}

/// What recovery did to open the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The generation the session resumed at.
    pub gen: u64,
    /// Operations restored from the snapshot image.
    pub snapshot_ops: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Whether a damaged/torn WAL tail was truncated.
    pub truncated_tail: bool,
    /// Corrupt snapshot generations skipped before one verified.
    pub snapshot_fallbacks: u64,
}

fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:08}.mpwl"))
}

fn snap_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snap-{gen:08}.mpss"))
}

/// Generations present in `dir` for files `<prefix><gen><suffix>`,
/// newest first.
fn list_gens(dir: &Path, prefix: &str, suffix: &str) -> Result<Vec<u64>, MpError> {
    let mut gens = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| MpError::Storage {
        op: "store.list",
        kind: e.kind(),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| MpError::Storage {
            op: "store.list",
            kind: e.kind(),
        })?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix(prefix)
            .and_then(|r| r.strip_suffix(suffix))
        {
            if let Ok(g) = num.parse::<u64>() {
                gens.push(g);
            }
        }
    }
    gens.sort_unstable_by(|a, b| b.cmp(a));
    Ok(gens)
}

fn snapshot_gens(dir: &Path) -> Result<Vec<u64>, MpError> {
    list_gens(dir, "snap-", ".mpss")
}

fn wal_gens(dir: &Path) -> Result<Vec<u64>, MpError> {
    list_gens(dir, "wal-", ".mpwl")
}

/// A crash-durable incremental multiprefix session: a [`SessionCore`]
/// whose every mutation is WAL-acknowledged before it is applied, with
/// snapshot/recovery machinery around it.
pub struct DurableSession<T, O> {
    core: SessionCore<T, O>,
    wal: WalWriter,
    dir: PathBuf,
    /// Total operations applied (appends + updates) since the store was
    /// created — the chain coordinate snapshots and segment headers bind.
    ops: u64,
    ops_at_cut: u64,
    gen: u64,
    opts: SessionOptions,
    /// Set when the backing segment can no longer be trusted (torn
    /// write): mutations fail closed until a successful snapshot rotates
    /// to a fresh segment.
    poisoned: bool,
    last_report: RecoveryReport,
}

impl<T, O> std::fmt::Debug for DurableSession<T, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableSession")
            .field("dir", &self.dir)
            .field("gen", &self.gen)
            .field("ops", &self.ops)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl<T, O> DurableSession<T, O>
where
    T: Element + WireValue + PartialEq,
    O: InvertibleOp<T>,
{
    /// Open (or create) the store at `dir` for `m` buckets, running the
    /// recovery state machine over whatever the directory holds.
    pub fn open(dir: &Path, m: usize, op: O, opts: SessionOptions) -> Result<Self, MpError> {
        let start = Instant::now();
        std::fs::create_dir_all(dir).map_err(|e| MpError::Storage {
            op: "store.open",
            kind: e.kind(),
        })?;
        let mut report = RecoveryReport::default();

        // 1. Newest snapshot that verifies; corrupt generations fall back.
        let mut base: Option<SnapshotImage<T>> = None;
        for g in snapshot_gens(dir)? {
            match read_snapshot::<T>(&snap_path(dir, g)) {
                Ok(Some(img)) if img.gen == g && img.m == m as u64 => {
                    base = Some(img);
                    break;
                }
                Ok(_) | Err(MpError::CorruptStore { .. }) => {
                    report.snapshot_fallbacks += 1;
                }
                Err(e) => return Err(e),
            }
        }
        let have_snapshot = base.is_some();
        let (restored, mut ops, base_gen) = match base {
            Some(img) => {
                report.snapshot_ops = img.ops;
                let elems = img
                    .elems
                    .into_iter()
                    .map(|(l, v)| (l as usize, v))
                    .collect::<Vec<_>>();
                (elems, img.ops, img.gen)
            }
            None => (Vec::new(), 0, 0),
        };

        // Bulk rebuild: one vectorizable scan per label instead of
        // `O(log n)` combines per restored element (bit-identical trees).
        let mut core = SessionCore::from_batch(m, op, restored)?;

        // 2. Replay the WAL chain from the snapshot generation forward.
        let mut gen = base_gen;
        let mut last_good: Option<(u64, u32)> = None;
        loop {
            let path = wal_path(dir, gen);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    if gen == base_gen && have_snapshot {
                        // A snapshot's own segment is created (and synced)
                        // before the snapshot exists; its absence is
                        // damage, not a crash window.
                        return Err(MpError::CorruptStore {
                            what: "wal segment missing for snapshot generation",
                        });
                    }
                    break;
                }
                Err(e) => {
                    return Err(MpError::Storage {
                        op: "wal.read",
                        kind: e.kind(),
                    })
                }
            };
            let scan = scan_wal::<T>(&bytes);
            let next_exists = wal_path(dir, gen + 1).exists();
            if scan.damage.is_some() && next_exists {
                // The chain continues past this segment, so this segment
                // was sealed whole at a rotation: damage inside it is
                // unrecoverable media corruption, not a crash tail.
                return Err(MpError::CorruptStore {
                    what: "wal damage in a sealed (non-final) segment",
                });
            }
            match scan.records.first() {
                Some((
                    _,
                    WalRecord::Segment {
                        base_ops,
                        gen: sg,
                        m: sm,
                    },
                )) => {
                    if *sg != gen || *sm != m as u64 || *base_ops != ops {
                        return Err(MpError::CorruptStore {
                            what: "wal segment header disagrees with the chain",
                        });
                    }
                }
                Some(_) => {
                    return Err(MpError::CorruptStore {
                        what: "wal segment does not begin with a header record",
                    });
                }
                None => {
                    // No whole record at all. A final, headerless segment
                    // is an aborted rotation — or, at generation 0 with no
                    // snapshot, an aborted first creation. Either way no
                    // operation in it was ever acknowledged: drop it. A
                    // headerless segment anywhere a snapshot or successor
                    // depends on it is damage.
                    if next_exists || (gen == base_gen && have_snapshot) {
                        return Err(MpError::CorruptStore {
                            what: "wal segment header unreadable",
                        });
                    }
                    std::fs::remove_file(&path).map_err(|e| MpError::Storage {
                        op: "wal.remove",
                        kind: e.kind(),
                    })?;
                    report.truncated_tail = true;
                    break;
                }
            }
            for (_, rec) in &scan.records[1..] {
                match rec {
                    WalRecord::Append { label, value } => {
                        core.append(*label as usize, *value)?;
                    }
                    WalRecord::Update { index, value } => {
                        core.update(*index, *value)?;
                    }
                    WalRecord::Segment { .. } => {
                        return Err(MpError::CorruptStore {
                            what: "wal header record repeated mid-segment",
                        });
                    }
                }
                ops += 1;
                report.replayed_records += 1;
            }
            if scan.damage.is_some() {
                // Final segment, valid header, damaged/torn tail: the log
                // ends at the last whole record. Truncate so future
                // appends never interleave with garbage.
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| MpError::Storage {
                        op: "wal.truncate",
                        kind: e.kind(),
                    })?;
                f.set_len(scan.valid_len as u64)
                    .map_err(|e| MpError::Storage {
                        op: "wal.truncate",
                        kind: e.kind(),
                    })?;
                f.sync_data().map_err(|e| MpError::Storage {
                    op: "wal.truncate",
                    kind: e.kind(),
                })?;
                report.truncated_tail = true;
            }
            last_good = Some((gen, scan.next_seq()));
            if scan.damage.is_some() {
                // Nothing after a truncated tail can be part of the chain
                // (rotation seals segments whole), and `next_exists` was
                // already checked false.
                break;
            }
            gen += 1;
        }

        // A store with history but no replayable chain (every snapshot
        // corrupt and the gen-0 log already reaped, or stray segments the
        // chain cannot reach) must fail closed — *never* silently restart
        // empty over the wreckage.
        if last_good.is_none() && (report.snapshot_fallbacks > 0 || !wal_gens(dir)?.is_empty()) {
            return Err(MpError::CorruptStore {
                what: "no valid snapshot and no replayable wal chain",
            });
        }

        // 3. Cross-check the rebuilt incremental structures against the
        //    Träff exclusive-scan evaluation before trusting anything.
        core.verify_with_exscan()?;

        // 4. Reopen (or create) the live segment.
        let (gen, wal) = match last_good {
            Some((g, next_seq)) => (
                g,
                WalWriter::reopen(
                    &wal_path(dir, g),
                    next_seq,
                    !opts.no_sync,
                    opts.chaos.clone(),
                )?,
            ),
            None => (
                0,
                WalWriter::create::<T>(
                    &wal_path(dir, 0),
                    0,
                    0,
                    m as u64,
                    !opts.no_sync,
                    opts.chaos.clone(),
                )?,
            ),
        };
        report.gen = gen;

        if let Some(rec) = &opts.recorder {
            rec.duration_ns("session.recover", start.elapsed().as_nanos() as u64);
            rec.counter("session.recovery.replayed_records", report.replayed_records);
            if report.truncated_tail {
                rec.counter("session.recovery.truncated_tail", 1);
            }
            rec.counter(
                "session.recovery.snapshot_fallback",
                report.snapshot_fallbacks,
            );
        }

        Ok(DurableSession {
            core,
            wal,
            dir: dir.to_path_buf(),
            ops,
            ops_at_cut: report.snapshot_ops,
            gen,
            opts,
            poisoned: false,
            last_report: report,
        })
    }

    /// Elements in the session log.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.core.is_empty()
    }

    /// The declared bucket count.
    pub fn buckets(&self) -> usize {
        self.core.buckets()
    }

    /// Total operations applied over the store's lifetime.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The current snapshot/segment generation.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// What recovery did when this handle was opened.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.last_report
    }

    fn guard(&self) -> Result<(), MpError> {
        if self.poisoned {
            return Err(MpError::Storage {
                op: "session.poisoned",
                kind: std::io::ErrorKind::Other,
            });
        }
        Ok(())
    }

    /// Durably append `(label, value)`; `Ok(index)` means the record is
    /// on disk. A storage failure poisons the session until a successful
    /// [`DurableSession::snapshot`] rotates to a fresh segment.
    pub fn append(&mut self, label: usize, value: T) -> Result<u64, MpError> {
        let start = self.opts.recorder.as_ref().map(|_| Instant::now());
        self.guard()?;
        if label >= self.core.buckets() {
            return Err(MpError::LabelOutOfRange {
                index: self.core.len(),
                label,
                m: self.core.buckets(),
            });
        }
        let logged = self.wal.append(&WalRecord::Append {
            label: label as u64,
            value,
        });
        if let Err(e) = logged {
            self.poisoned = self.wal.is_poisoned();
            return Err(e);
        }
        let index = self.core.append(label, value)?;
        self.ops += 1;
        if let (Some(rec), Some(start)) = (&self.opts.recorder, start) {
            rec.counter("session.append", 1);
            rec.duration_ns("session.append", start.elapsed().as_nanos() as u64);
        }
        self.maybe_auto_snapshot();
        Ok(index)
    }

    /// Durably re-assign element `index` to `value`.
    pub fn update(&mut self, index: u64, value: T) -> Result<(), MpError> {
        self.guard()?;
        if index >= self.core.len() as u64 {
            return Err(MpError::IndexOutOfRange {
                index,
                len: self.core.len() as u64,
            });
        }
        let logged = self.wal.append(&WalRecord::Update { index, value });
        if let Err(e) = logged {
            self.poisoned = self.wal.is_poisoned();
            return Err(e);
        }
        self.core.update(index, value)?;
        self.ops += 1;
        if let Some(rec) = &self.opts.recorder {
            rec.counter("session.update", 1);
        }
        self.maybe_auto_snapshot();
        Ok(())
    }

    /// The multiprefix sum of element `index` (see
    /// [`SessionCore::prefix_query`]).
    pub fn prefix_query(&self, index: u64) -> Result<T, MpError> {
        let start = self.opts.recorder.as_ref().map(|_| Instant::now());
        let out = self.core.prefix_query(index);
        if let (Some(rec), Some(start)) = (&self.opts.recorder, start) {
            rec.counter("session.query", 1);
            rec.duration_ns("session.query", start.elapsed().as_nanos() as u64);
        }
        out
    }

    /// The ⊕-reduction of every element with label `label`.
    pub fn label_total(&self, label: usize) -> Result<T, MpError> {
        self.core.label_total(label)
    }

    /// The current (values, labels) vectors, in append order.
    pub fn as_batch(&self) -> (Vec<T>, Vec<usize>) {
        self.core.as_batch()
    }

    fn maybe_auto_snapshot(&mut self) {
        if let Some(every) = self.opts.snapshot_every {
            if self.ops - self.ops_at_cut >= every {
                // Auto-cut failures must not fail the (already durable)
                // triggering operation; they surface as a counter and the
                // next explicit snapshot's error.
                if self.snapshot().is_err() {
                    if let Some(rec) = &self.opts.recorder {
                        rec.counter("session.snapshot.auto_failed", 1);
                    }
                }
            }
        }
    }

    /// Cut a snapshot: rotate to a fresh WAL segment at the current
    /// operation count, write the image atomically, then reap
    /// generations older than the fallback. Also the way out of a
    /// poisoned (torn-write) session: a successful rotation makes the
    /// damaged segment the *sealed* past and re-arms mutations.
    pub fn snapshot(&mut self) -> Result<u64, MpError> {
        let start = self.opts.recorder.as_ref().map(|_| Instant::now());
        let new_gen = self.gen + 1;

        // A poisoned segment has an untrustworthy tail: torn-write
        // garbage, or a whole record whose fsync failed — bytes that
        // *look* valid but were never acknowledged. The chain header of
        // the next segment must agree with what replay will actually
        // count, so seal the segment at the last *acknowledged* byte
        // (not the last parseable one) before rotating.
        if self.poisoned {
            let path = wal_path(&self.dir, self.gen);
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| MpError::Storage {
                    op: "wal.truncate",
                    kind: e.kind(),
                })?;
            f.set_len(self.wal.acked_len())
                .map_err(|e| MpError::Storage {
                    op: "wal.truncate",
                    kind: e.kind(),
                })?;
            f.sync_data().map_err(|e| MpError::Storage {
                op: "wal.truncate",
                kind: e.kind(),
            })?;
        }

        // 1. Open the next segment, bound to the cut. From here on,
        //    recovery can reach the cut through the *old* snapshot chain
        //    even if we crash before (or while) writing the new image.
        //    A failed earlier rotation attempt may have left a partial
        //    next-segment file; it holds nothing acknowledged.
        let _ = std::fs::remove_file(wal_path(&self.dir, new_gen));
        let wal = WalWriter::create::<T>(
            &wal_path(&self.dir, new_gen),
            self.ops,
            new_gen,
            self.core.buckets() as u64,
            !self.opts.no_sync,
            self.opts.chaos.clone(),
        );
        let wal = match wal {
            Ok(w) => w,
            Err(e) => {
                // Don't leave a half-created segment on disk: the session
                // keeps appending to the *current* segment after this
                // error, so a stale next-gen header would disagree with
                // the chain at recovery.
                let _ = std::fs::remove_file(wal_path(&self.dir, new_gen));
                return Err(e);
            }
        };
        self.wal = wal;
        self.gen = new_gen;
        self.ops_at_cut = self.ops;
        self.poisoned = false;

        // 2. The image (atomic tmp+rename; injected corruption lands
        //    *inside* the payload and is only detectable at recovery).
        let image = SnapshotImage {
            gen: new_gen,
            ops: self.ops,
            m: self.core.buckets() as u64,
            elems: self
                .core
                .elems()
                .iter()
                .map(|e| (e.label as u64, e.value))
                .collect(),
        };
        write_snapshot(
            &snap_path(&self.dir, new_gen),
            &image,
            self.opts.chaos.as_ref(),
        )?;

        // 3. Reap generations older than the fallback pair.
        if new_gen >= 2 {
            for g in (0..new_gen - 1).rev() {
                let s = std::fs::remove_file(snap_path(&self.dir, g));
                let w = std::fs::remove_file(wal_path(&self.dir, g));
                if s.is_err() && w.is_err() {
                    break; // already reaped earlier
                }
            }
        }

        if let (Some(rec), Some(start)) = (&self.opts.recorder, start) {
            rec.counter("session.snapshot", 1);
            rec.duration_ns("session.snapshot", start.elapsed().as_nanos() as u64);
        }
        Ok(new_gen)
    }

    /// Flush and close; the store can be reopened with
    /// [`DurableSession::open`].
    pub fn close(mut self) -> Result<(), MpError> {
        if !self.poisoned {
            self.wal.sync("wal.close")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Plus;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mpx-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> SessionOptions {
        SessionOptions::default()
    }

    #[test]
    fn fresh_store_persists_and_reopens() {
        let dir = tmpdir("fresh");
        {
            let mut s = DurableSession::open(&dir, 8, Plus, opts()).unwrap();
            for i in 0..50i64 {
                s.append((i % 8) as usize, i * 3 - 11).unwrap();
            }
            s.update(7, 1_000).unwrap();
            s.close().unwrap();
        }
        let s = DurableSession::<i64, Plus>::open(&dir, 8, Plus, opts()).unwrap();
        assert_eq!(s.len(), 50);
        assert_eq!(s.ops(), 51);
        assert_eq!(s.recovery_report().replayed_records, 51);
        // Element 7 was updated; its prefix (first occurrence of label 7)
        // is the identity, its label total includes the update.
        assert_eq!(s.prefix_query(7).unwrap(), 0);
        let (values, labels) = s.as_batch();
        let batch = crate::chunked::multiprefix_chunked(&values, &labels, 8, Plus);
        for j in 0..values.len() {
            assert_eq!(s.prefix_query(j as u64).unwrap(), batch.sums[j]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_rotates_and_reopens_from_image() {
        let dir = tmpdir("rotate");
        {
            let mut s = DurableSession::open(&dir, 4, Plus, opts()).unwrap();
            for i in 0..30i64 {
                s.append((i % 4) as usize, i).unwrap();
            }
            assert_eq!(s.snapshot().unwrap(), 1);
            for i in 30..40i64 {
                s.append((i % 4) as usize, i).unwrap();
            }
            assert_eq!(s.snapshot().unwrap(), 2);
            for i in 40..45i64 {
                s.append((i % 4) as usize, i).unwrap();
            }
            s.close().unwrap();
        }
        // Generation 0 must have been reaped; 1 and 2 remain.
        assert!(!wal_path(&dir, 0).exists());
        assert!(snap_path(&dir, 1).exists() && wal_path(&dir, 1).exists());
        let s = DurableSession::<i64, Plus>::open(&dir, 4, Plus, opts()).unwrap();
        assert_eq!(s.len(), 45);
        assert_eq!(s.generation(), 2);
        let rep = s.recovery_report();
        assert_eq!(rep.snapshot_ops, 40);
        assert_eq!(rep.replayed_records, 5);
        assert_eq!(rep.snapshot_fallbacks, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_one_generation() {
        let dir = tmpdir("fallback");
        {
            let mut s = DurableSession::open(&dir, 4, Plus, opts()).unwrap();
            for i in 0..20i64 {
                s.append((i % 4) as usize, i).unwrap();
            }
            s.snapshot().unwrap();
            for i in 20..25i64 {
                s.append((i % 4) as usize, i).unwrap();
            }
            s.snapshot().unwrap();
            s.close().unwrap();
        }
        // Flip a payload bit in the newest image.
        let p = snap_path(&dir, 2);
        let mut bytes = std::fs::read(&p).unwrap();
        let at = bytes.len() - 20;
        bytes[at] ^= 0x10;
        std::fs::write(&p, &bytes).unwrap();
        let s = DurableSession::<i64, Plus>::open(&dir, 4, Plus, opts()).unwrap();
        assert_eq!(s.len(), 25);
        let rep = s.recovery_report();
        assert_eq!(rep.snapshot_fallbacks, 1);
        assert_eq!(rep.snapshot_ops, 20);
        // Replays wal-1's 5 post-cut records, then wal-2's 0.
        assert_eq!(rep.replayed_records, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_and_survives_reopen() {
        let dir = tmpdir("torntail");
        {
            let mut s = DurableSession::open(&dir, 4, Plus, opts()).unwrap();
            for i in 0..10i64 {
                s.append((i % 4) as usize, i).unwrap();
            }
            s.close().unwrap();
        }
        // Tear the last record: drop its final 3 bytes.
        let p = wal_path(&dir, 0);
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 3]).unwrap();
        let s = DurableSession::<i64, Plus>::open(&dir, 4, Plus, opts()).unwrap();
        assert_eq!(s.len(), 9);
        assert!(s.recovery_report().truncated_tail);
        drop(s);
        // Second reopen is clean (the tear is gone from disk).
        let s = DurableSession::<i64, Plus>::open(&dir, 4, Plus, opts()).unwrap();
        assert_eq!(s.len(), 9);
        assert!(!s.recovery_report().truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_chain_damage_fails_closed() {
        let dir = tmpdir("midchain");
        {
            let mut s = DurableSession::open(&dir, 4, Plus, opts()).unwrap();
            for i in 0..12i64 {
                s.append((i % 4) as usize, i).unwrap();
            }
            s.snapshot().unwrap();
            for i in 12..16i64 {
                s.append((i % 4) as usize, i).unwrap();
            }
            s.close().unwrap();
        }
        // Corrupt the newest snapshot so recovery must chain wal-0→wal-1,
        // then damage wal-0 mid-file: unrecoverable.
        let p = snap_path(&dir, 1);
        let mut bytes = std::fs::read(&p).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        let w = wal_path(&dir, 0);
        let mut bytes = std::fs::read(&w).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x01;
        std::fs::write(&w, &bytes).unwrap();
        let err = DurableSession::<i64, Plus>::open(&dir, 4, Plus, opts()).unwrap_err();
        assert!(
            matches!(err, MpError::CorruptStore { .. }),
            "expected CorruptStore, got {err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bucket_count_mismatch_is_rejected() {
        let dir = tmpdir("buckets");
        {
            let mut s = DurableSession::open(&dir, 4, Plus, opts()).unwrap();
            s.append(0, 1i64).unwrap();
            s.close().unwrap();
        }
        let err = DurableSession::<i64, Plus>::open(&dir, 8, Plus, opts()).unwrap_err();
        assert!(matches!(err, MpError::CorruptStore { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_snapshot_cuts_on_op_threshold() {
        let dir = tmpdir("auto");
        let mut o = opts();
        o.snapshot_every = Some(10);
        let mut s = DurableSession::open(&dir, 4, Plus, o).unwrap();
        for i in 0..25i64 {
            s.append((i % 4) as usize, i).unwrap();
        }
        assert_eq!(s.generation(), 2);
        s.close().unwrap();
        let s = DurableSession::<i64, Plus>::open(&dir, 4, Plus, opts()).unwrap();
        assert_eq!(s.len(), 25);
        assert_eq!(s.recovery_report().snapshot_ops, 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_poisons_until_snapshot_rotates() {
        use crate::resilience::ChaosPlan;
        let dir = tmpdir("poison");
        let mut o = opts();
        // Every 40th nominal fault draw; with 100% ppm the first WAL write
        // faults immediately.
        o.chaos = Some(ChaosPlan::seeded(5).wal_torn_write_ppm(1_000_000).arm());
        let mut s = DurableSession::open(&dir, 4, Plus, o).unwrap();
        let err = s.append(0, 7i64).unwrap_err();
        assert!(matches!(err, MpError::Storage { .. }));
        // Poisoned: even a would-be-clean append fails closed.
        assert!(s.append(1, 8i64).is_err());
        // The failed op was never acked and must not be visible.
        assert_eq!(s.len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
