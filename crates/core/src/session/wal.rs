//! The session write-ahead log: checksummed, sequence-numbered records in
//! the `MPXF` frame discipline, with strict truncate-at-first-damage
//! replay.
//!
//! Every record rides the same 20-byte frame the socket transport uses
//! ([`crate::shard::net::frame`]): `MPXF | seq | len | hcrc | pcrc |
//! payload`, both CRCs IEEE CRC-32. The WAL reuses the *encoder*
//! verbatim but replays with its own strict scanner instead of the
//! stream parser: a socket peer can be NAKed into resending damaged
//! bytes, a disk cannot — so the first record that fails any check
//! (magic, header CRC, length cap, payload CRC, sequence continuity,
//! payload decode) is where the log **ends**, and recovery truncates the
//! file there. Damage never replays, and a torn final write (the
//! classic crash signature) is indistinguishable from a clean
//! end-of-log — exactly the semantics a WAL needs.
//!
//! Record payloads are tag + little-endian fields via [`WireValue`], the
//! same total decoders as the wire codec: every malformed payload is a
//! typed stop, never a panic or over-allocation.

use crate::error::MpError;
use crate::resilience::chaos::{ChaosState, WalFault};
use crate::shard::net::frame::{crc32, encode_frame, HEADER_LEN, MAGIC};
use crate::shard::net::wire::WireValue;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Hard cap on one WAL record's payload. Records are tiny (tens of
/// bytes); a length field beyond this is damage, not data.
pub const WAL_MAX_RECORD: usize = 64 * 1024;

/// One durable session operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecord<T> {
    /// Segment header: always the first record (seq 1) of a WAL segment.
    /// Binds the segment to its base state so replay can verify the
    /// chain: the segment applies to a session that has already applied
    /// exactly `base_ops` operations.
    Segment {
        /// Operations applied before this segment begins.
        base_ops: u64,
        /// The snapshot generation this segment follows.
        gen: u64,
        /// The session's bucket count (sanity-checked on replay).
        m: u64,
    },
    /// `append(label, value)`.
    Append {
        /// The element's label.
        label: u64,
        /// The element's value.
        value: T,
    },
    /// `update(index, value)`.
    Update {
        /// The element's (stable) index.
        index: u64,
        /// Its new value.
        value: T,
    },
}

const TAG_SEGMENT: u8 = 0xA0;
const TAG_APPEND: u8 = 0xA1;
const TAG_UPDATE: u8 = 0xA2;

/// Encode one record's payload (tag + LE fields).
pub fn encode_record<T: WireValue>(rec: &WalRecord<T>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 16 + T::WIRE_SIZE);
    match rec {
        WalRecord::Segment { base_ops, gen, m } => {
            out.push(TAG_SEGMENT);
            out.extend_from_slice(&base_ops.to_le_bytes());
            out.extend_from_slice(&gen.to_le_bytes());
            out.extend_from_slice(&m.to_le_bytes());
        }
        WalRecord::Append { label, value } => {
            out.push(TAG_APPEND);
            out.extend_from_slice(&label.to_le_bytes());
            value.wire_write(&mut out);
        }
        WalRecord::Update { index, value } => {
            out.push(TAG_UPDATE);
            out.extend_from_slice(&index.to_le_bytes());
            value.wire_write(&mut out);
        }
    }
    out
}

fn take_u64(input: &mut &[u8]) -> Option<u64> {
    if input.len() < 8 {
        return None;
    }
    let (head, rest) = input.split_at(8);
    *input = rest;
    Some(u64::from_le_bytes(head.try_into().unwrap()))
}

/// Decode one record payload; `None` on any malformation (short, bad
/// tag, trailing bytes). Total: never panics, never allocates from a
/// length field.
pub fn decode_record<T: WireValue>(payload: &[u8]) -> Option<WalRecord<T>> {
    let (&tag, mut rest) = payload.split_first()?;
    let rec = match tag {
        TAG_SEGMENT => WalRecord::Segment {
            base_ops: take_u64(&mut rest)?,
            gen: take_u64(&mut rest)?,
            m: take_u64(&mut rest)?,
        },
        TAG_APPEND => WalRecord::Append {
            label: take_u64(&mut rest)?,
            value: T::wire_read(&mut rest).ok()?,
        },
        TAG_UPDATE => WalRecord::Update {
            index: take_u64(&mut rest)?,
            value: T::wire_read(&mut rest).ok()?,
        },
        _ => return None,
    };
    if !rest.is_empty() {
        return None;
    }
    Some(rec)
}

/// Why a WAL scan stopped before the end of the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalDamage {
    /// Trailing bytes too short for a whole record — a torn final write.
    TornTail,
    /// A record failed a checksum, magic, length or decode check.
    CorruptRecord,
    /// A record's sequence number broke continuity (a vanished record).
    SequenceGap,
}

/// The result of strictly scanning a WAL segment's bytes.
#[derive(Debug)]
pub struct WalScan<T> {
    /// Every record that verified, in order.
    pub records: Vec<(u32, WalRecord<T>)>,
    /// Byte length of the verified prefix — the truncation point when
    /// damage follows.
    pub valid_len: usize,
    /// Why the scan stopped early (`None`: the whole file verified).
    pub damage: Option<WalDamage>,
}

impl<T> WalScan<T> {
    /// Sequence number the next appended record should carry.
    pub fn next_seq(&self) -> u32 {
        self.records.last().map(|(s, _)| s + 1).unwrap_or(1)
    }
}

/// Strictly scan a WAL segment: verified, in-sequence records up to the
/// first damage. Unlike the socket transport's [`FrameBuffer`] (which
/// resynchronizes and NAKs for a resend), damage here is **final** — the
/// log ends at the last whole record.
///
/// [`FrameBuffer`]: crate::shard::net::frame::FrameBuffer
pub fn scan_wal<T: WireValue>(bytes: &[u8]) -> WalScan<T> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut expected = 1u32;
    let damage = loop {
        let rem = &bytes[offset..];
        if rem.is_empty() {
            break None;
        }
        if rem.len() < HEADER_LEN {
            break Some(WalDamage::TornTail);
        }
        if rem[..4] != MAGIC {
            break Some(WalDamage::CorruptRecord);
        }
        let seq = u32::from_le_bytes(rem[4..8].try_into().unwrap());
        let len = u32::from_le_bytes(rem[8..12].try_into().unwrap());
        let hcrc = u32::from_le_bytes(rem[12..16].try_into().unwrap());
        let pcrc = u32::from_le_bytes(rem[16..20].try_into().unwrap());
        if crc32(&[&rem[4..8], &rem[8..12]]) != hcrc {
            break Some(WalDamage::CorruptRecord);
        }
        if len as usize > WAL_MAX_RECORD {
            break Some(WalDamage::CorruptRecord);
        }
        if rem.len() < HEADER_LEN + len as usize {
            break Some(WalDamage::TornTail);
        }
        let payload = &rem[HEADER_LEN..HEADER_LEN + len as usize];
        if crc32(&[payload]) != pcrc {
            break Some(WalDamage::CorruptRecord);
        }
        if seq != expected {
            break Some(WalDamage::SequenceGap);
        }
        let Some(record) = decode_record::<T>(payload) else {
            break Some(WalDamage::CorruptRecord);
        };
        records.push((seq, record));
        offset += HEADER_LEN + len as usize;
        expected += 1;
    };
    WalScan {
        records,
        valid_len: offset,
        damage,
    }
}

fn storage_err(op: &'static str, e: &std::io::Error) -> MpError {
    MpError::Storage { op, kind: e.kind() }
}

/// The append side of one WAL segment: encode, optionally fault
/// (injected torn writes / bit flips / fsync failures), write, sync.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    seq: u32,
    /// fsync after every appended record (the durability barrier an `Ok`
    /// acknowledgment stands on). Off for throughput benchmarks.
    sync_each: bool,
    chaos: Option<Arc<ChaosState>>,
    /// Set after a torn write or a failed record fsync: the segment's
    /// tail is untrustworthy (garbage, or bytes that were never
    /// acknowledged but may have reached the platter) and further appends
    /// would write unrecoverable interleavings.
    poisoned: bool,
    /// File length after the last fully-acknowledged record — the seal
    /// point a poisoned segment is truncated to, so recovery replays
    /// exactly the acknowledged prefix and never a maybe-durable tail.
    acked_len: u64,
}

impl WalWriter {
    /// Create a fresh segment at `path` and write its [`WalRecord::Segment`]
    /// header record.
    pub fn create<T: WireValue>(
        path: &Path,
        base_ops: u64,
        gen: u64,
        m: u64,
        sync_each: bool,
        chaos: Option<Arc<ChaosState>>,
    ) -> Result<WalWriter, MpError> {
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(path)
            .map_err(|e| storage_err("wal.create", &e))?;
        let mut writer = WalWriter {
            file,
            path: path.to_path_buf(),
            seq: 1,
            sync_each,
            chaos,
            poisoned: false,
            acked_len: 0,
        };
        // The header record is exempt from injected WAL faults: chaos
        // targets the op stream, and a segment whose *header* vanished is
        // just an invalid segment (covered by the corrupt-store tests).
        let frame = encode_frame(
            1,
            &encode_record(&WalRecord::<T>::Segment { base_ops, gen, m }),
        );
        writer
            .file
            .write_all(&frame)
            .map_err(|e| storage_err("wal.create", &e))?;
        writer.sync("wal.create")?;
        writer.seq = 2;
        writer.acked_len = frame.len() as u64;
        Ok(writer)
    }

    /// Reopen an existing segment for appending after recovery verified
    /// its prefix; `next_seq` continues the scan's sequence numbering.
    pub fn reopen(
        path: &Path,
        next_seq: u32,
        sync_each: bool,
        chaos: Option<Arc<ChaosState>>,
    ) -> Result<WalWriter, MpError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| storage_err("wal.reopen", &e))?;
        let acked_len = file
            .metadata()
            .map_err(|e| storage_err("wal.reopen", &e))?
            .len();
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            seq: next_seq,
            sync_each,
            chaos,
            poisoned: false,
            acked_len,
        })
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record. On `Ok` the record is durably on disk (when
    /// `sync_each`) and the operation may be acknowledged; on `Err` it
    /// must not be. An injected torn write leaves a damaged tail and
    /// poisons the writer — the caller must fail closed until a snapshot
    /// rotates to a fresh segment.
    pub fn append<T: WireValue>(&mut self, rec: &WalRecord<T>) -> Result<(), MpError> {
        if self.poisoned {
            return Err(MpError::Storage {
                op: "wal.append",
                kind: std::io::ErrorKind::Other,
            });
        }
        let mut frame = encode_frame(self.seq, &encode_record(rec));
        let fault = self.chaos.as_ref().and_then(|c| c.wal_fault());
        match fault {
            Some(WalFault::TornWrite) => {
                // The crash signature: a prefix of the record reaches the
                // platter, the ack never happens. Poison so no later
                // append writes *beyond* the tear.
                let keep = self
                    .chaos
                    .as_ref()
                    .map(|c| c.net_index(frame.len()))
                    .unwrap_or(0);
                let _ = self.file.write_all(&frame[..keep]);
                let _ = self.file.sync_data();
                self.poisoned = true;
                return Err(MpError::Storage {
                    op: "wal.append",
                    kind: std::io::ErrorKind::WriteZero,
                });
            }
            Some(WalFault::BitFlip) => {
                // Media corruption: flipped after the checksums were
                // computed, written whole, silently acknowledged. Only
                // recovery can notice.
                let bit = self
                    .chaos
                    .as_ref()
                    .map(|c| c.net_index(frame.len() * 8))
                    .unwrap_or(0);
                frame[bit / 8] ^= 1 << (bit % 8);
            }
            None => {}
        }
        if let Err(e) = self.file.write_all(&frame) {
            // A short/refused write leaves an unknowable tail, same as an
            // injected tear.
            self.poisoned = true;
            return Err(storage_err("wal.append", &e));
        }
        if self.sync_each {
            if let Err(e) = self.sync("wal.append") {
                // The record's bytes are in the file and *may* reach the
                // platter even though the op was not acknowledged. Poison
                // so the ambiguous tail is sealed off (truncated to the
                // acked length) at the next rotation, never replayed.
                self.poisoned = true;
                return Err(e);
            }
        }
        self.seq += 1;
        self.acked_len += frame.len() as u64;
        Ok(())
    }

    /// Whether a torn write or failed fsync poisoned this segment.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// File length after the last acknowledged record — the point a
    /// poisoned segment must be sealed (truncated) at.
    pub fn acked_len(&self) -> u64 {
        self.acked_len
    }

    /// fsync the segment (with injected failures when armed).
    pub fn sync(&mut self, op: &'static str) -> Result<(), MpError> {
        if let Some(chaos) = &self.chaos {
            if chaos.fsync_fault() {
                return Err(MpError::Storage {
                    op,
                    kind: std::io::ErrorKind::Interrupted,
                });
            }
        }
        self.file.sync_data().map_err(|e| storage_err(op, &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::ChaosPlan;

    fn roundtrip(rec: WalRecord<i64>) {
        let enc = encode_record(&rec);
        assert_eq!(decode_record::<i64>(&enc), Some(rec));
    }

    #[test]
    fn records_roundtrip() {
        roundtrip(WalRecord::Segment {
            base_ops: 77,
            gen: 3,
            m: 1 << 40,
        });
        roundtrip(WalRecord::Append {
            label: u64::MAX,
            value: i64::MIN,
        });
        roundtrip(WalRecord::Update {
            index: 0,
            value: -1,
        });
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert_eq!(decode_record::<i64>(&[]), None);
        assert_eq!(decode_record::<i64>(&[0xFF]), None);
        assert_eq!(decode_record::<i64>(&[TAG_APPEND, 1, 2]), None);
        // Trailing garbage after a whole record is malformation too.
        let mut enc = encode_record(&WalRecord::Append {
            label: 1,
            value: 2i64,
        });
        enc.push(0);
        assert_eq!(decode_record::<i64>(&enc), None);
    }

    fn sample_log() -> Vec<u8> {
        let records = [
            WalRecord::Segment {
                base_ops: 0,
                gen: 0,
                m: 8,
            },
            WalRecord::Append {
                label: 3,
                value: 41i64,
            },
            WalRecord::Update {
                index: 0,
                value: -5,
            },
        ];
        records
            .iter()
            .enumerate()
            .flat_map(|(i, r)| encode_frame(i as u32 + 1, &encode_record(r)))
            .collect()
    }

    #[test]
    fn clean_log_scans_whole() {
        let bytes = sample_log();
        let scan = scan_wal::<i64>(&bytes);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.damage, None);
        assert_eq!(scan.next_seq(), 4);
    }

    #[test]
    fn every_truncation_point_stops_at_a_whole_record() {
        let bytes = sample_log();
        let whole = scan_wal::<i64>(&bytes);
        // Frame boundaries: cumulative lengths of the three frames.
        for cut in 0..bytes.len() {
            let scan = scan_wal::<i64>(&bytes[..cut]);
            // The verified prefix must be a prefix of the full scan and
            // stop on a frame boundary.
            assert!(scan.records.len() <= whole.records.len());
            assert!(scan.valid_len <= cut);
            for (a, b) in scan.records.iter().zip(&whole.records) {
                assert_eq!(a, b, "cut={cut}");
            }
            if cut < bytes.len() {
                assert!(scan.damage.is_some() || scan.valid_len == cut, "cut={cut}");
            }
        }
    }

    #[test]
    fn every_bit_flip_is_contained() {
        let bytes = sample_log();
        let whole = scan_wal::<i64>(&bytes);
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let scan = scan_wal::<i64>(&bad);
            // Whatever the flip hit, every *delivered* record left of the
            // damage is genuine and the scan never runs past it.
            assert!(scan.damage.is_some(), "bit {bit} scanned clean");
            for (a, b) in scan.records.iter().zip(&whole.records) {
                assert_eq!(a, b, "bit={bit}");
            }
            assert!(scan.records.len() < whole.records.len(), "bit={bit}");
        }
    }

    #[test]
    fn sequence_gap_is_damage() {
        let r1 = encode_frame(
            1,
            &encode_record(&WalRecord::<i64>::Segment {
                base_ops: 0,
                gen: 0,
                m: 4,
            }),
        );
        let r3 = encode_frame(
            3,
            &encode_record(&WalRecord::Append {
                label: 0,
                value: 1i64,
            }),
        );
        let bytes: Vec<u8> = [r1, r3].concat();
        let scan = scan_wal::<i64>(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.damage, Some(WalDamage::SequenceGap));
    }

    #[test]
    fn writer_torn_write_poisons_and_is_recoverable() {
        let dir = std::env::temp_dir().join(format!("mpx-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.mpwl");
        let _ = std::fs::remove_file(&path);
        let chaos = ChaosPlan::seeded(11).wal_torn_write_ppm(1_000_000).arm();
        let mut w = WalWriter::create::<i64>(&path, 0, 0, 4, true, Some(chaos.clone())).unwrap();
        let err = w
            .append(&WalRecord::Append {
                label: 1,
                value: 7i64,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            MpError::Storage {
                op: "wal.append",
                ..
            }
        ));
        assert!(w.is_poisoned());
        // Subsequent appends fail closed.
        assert!(w
            .append(&WalRecord::Append {
                label: 1,
                value: 8i64,
            })
            .is_err());
        assert_eq!(chaos.wal_torn_writes_injected(), 1);
        // Recovery: the scan delivers the header record and stops at the
        // torn tail (or cleanly, if zero bytes of the tear were written).
        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_wal::<i64>(&bytes);
        assert_eq!(scan.records.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
