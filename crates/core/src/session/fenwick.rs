//! An append-friendly Fenwick (binary indexed) tree: the per-label prefix
//! structure behind the incremental session engine.
//!
//! Grounded in *An O(1) Solution to the Prefix Sum Problem on a
//! Specialized Memory Architecture* (PAPERS.md): on stock hardware the
//! specialized-memory O(1) update/query collapses to the classic O(log n)
//! Fenwick discipline, which is the right point on the curve for a
//! long-lived session — `append`, `update` and `prefix` all touch at most
//! ⌈log₂ n⌉ + 1 tree nodes, with no rescan of the history.
//!
//! The tree is 1-based internally: node `i` covers the half-open occurrence
//! range `(i − lowbit(i), i]`. Three properties matter to the session
//! layer:
//!
//! * **append is incremental** — pushing occurrence `i` computes node `i`
//!   from already-present nodes plus the new value (no rebuild);
//! * **prefix accumulation is order-preserving** — blocks are combined
//!   left-to-right, so results are *bit-identical* to a serial left fold
//!   for any associative operator (and point-update additionally requires
//!   the commutative group structure of [`InvertibleOp`]);
//! * **memory is exactly one slot per occurrence** — a million-label
//!   session pays only for labels it has touched.

use crate::error::MpError;
use crate::op::{CombineOp, InvertibleOp};
use crate::problem::Element;

/// A Fenwick tree over one label's occurrence sequence.
#[derive(Debug, Clone)]
pub struct Fenwick<T, O> {
    /// `tree[i-1]` is node `i`, covering occurrences `(i − lowbit(i), i]`.
    tree: Vec<T>,
    op: O,
}

#[inline(always)]
fn lowbit(i: usize) -> usize {
    i & i.wrapping_neg()
}

impl<T: Element, O: CombineOp<T>> Fenwick<T, O> {
    /// An empty tree for operator `op`.
    pub fn new(op: O) -> Self {
        Fenwick {
            tree: Vec::new(),
            op,
        }
    }

    /// Occurrences stored.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether no occurrence was stored yet.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Append the next occurrence's value in O(log n): node `i` is the
    /// combination of the whole nodes inside `(i − lowbit(i), i)` plus the
    /// new value, accumulated in occurrence order.
    pub fn push(&mut self, value: T) -> Result<(), MpError> {
        if self.tree.len() == self.tree.capacity() {
            // Fallible growth so a huge session degrades to a typed error
            // rather than an abort.
            let grow = self.tree.capacity().max(4);
            self.tree
                .try_reserve(grow)
                .map_err(|_| MpError::AllocationFailed {
                    bytes: grow.saturating_mul(std::mem::size_of::<T>()),
                })?;
        }
        let i = self.tree.len() + 1;
        let mut acc = value;
        let stop = i - lowbit(i);
        let mut j = i - 1;
        while j > stop {
            // Node `j` covers occurrences earlier than everything already
            // in `acc`, so it combines on the left.
            acc = self.op.combine(self.tree[j - 1], acc);
            j -= lowbit(j);
        }
        self.tree.push(acc);
        Ok(())
    }

    /// The combination of the first `k` occurrences, in occurrence order
    /// (the operator identity for `k == 0`). `k` must be ≤ [`Fenwick::len`].
    pub fn prefix(&self, mut k: usize) -> T {
        debug_assert!(k <= self.tree.len());
        let mut acc = self.op.identity();
        while k > 0 {
            // Blocks are visited from the latest backwards; each new block
            // is *earlier* than the accumulator, so it combines on the
            // left — a bit-exact left fold for associative operators.
            acc = self.op.combine(self.tree[k - 1], acc);
            k -= lowbit(k);
        }
        acc
    }

    /// The combination of every stored occurrence.
    pub fn total(&self) -> T {
        self.prefix(self.tree.len())
    }
}

impl<T: Element, O: InvertibleOp<T>> Fenwick<T, O> {
    /// Bulk-build the tree for a label's full occurrence sequence in one
    /// pass — the session-store restore path, where rebuilding a large
    /// label push-by-push costs `O(n log n)` combines against `O(n)` here.
    ///
    /// The construction is an inclusive prefix scan of the values
    /// (vectorized when the operator is a recognized kernel, see
    /// [`crate::simd`]) followed by `node_i = incl[i−1] ⊖
    /// incl[i−lowbit(i)−1]`: node `i` covers `(i − lowbit(i), i]`, and an
    /// [`InvertibleOp`] is a commutative group, so the prefix difference
    /// equals — exactly, bit for bit — the fold [`Fenwick::push`] would
    /// have computed for that range.
    pub fn from_values(op: O, values: &[T]) -> Result<Self, MpError> {
        let n = values.len();
        let bytes = n.saturating_mul(std::mem::size_of::<T>());
        let mut incl = Vec::new();
        incl.try_reserve_exact(n)
            .map_err(|_| MpError::AllocationFailed { bytes })?;
        incl.extend_from_slice(values);
        match O::KERNEL.and_then(|k| crate::simd::kernels::<T>(k, false)) {
            Some(tbl) => {
                (tbl.incl_scan_inplace)(&mut incl, op.identity());
            }
            None => {
                let mut acc = op.identity();
                for x in incl.iter_mut() {
                    acc = op.combine(acc, *x);
                    *x = acc;
                }
            }
        }
        let mut tree = Vec::new();
        tree.try_reserve_exact(n)
            .map_err(|_| MpError::AllocationFailed { bytes })?;
        for i in 1..=n {
            let stop = i - lowbit(i);
            tree.push(if stop == 0 {
                incl[i - 1]
            } else {
                op.uncombine(incl[i - 1], incl[stop - 1])
            });
        }
        Ok(Fenwick { tree, op })
    }

    /// Replace occurrence `index` (0-based) with `value`, given the value
    /// it currently holds, in O(log n). The delta `uncombine(value, old)`
    /// is folded into each covering node — exact because an
    /// [`InvertibleOp`] is a commutative group.
    pub fn assign(&mut self, index: usize, old: T, value: T) {
        debug_assert!(index < self.tree.len());
        let delta = self.op.uncombine(value, old);
        let mut i = index + 1;
        while i <= self.tree.len() {
            self.tree[i - 1] = self.op.combine(self.tree[i - 1], delta);
            i += lowbit(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Plus;

    fn oracle_prefix(values: &[i64], k: usize) -> i64 {
        values[..k].iter().fold(0i64, |a, &b| a.wrapping_add(b))
    }

    #[test]
    fn push_prefix_total_match_serial_fold() {
        let mut fw = Fenwick::new(Plus);
        let values: Vec<i64> = (0..137).map(|i| (i * 7919 + 13) % 1000 - 500).collect();
        for (i, &v) in values.iter().enumerate() {
            fw.push(v).unwrap();
            assert_eq!(fw.len(), i + 1);
            for k in 0..=i + 1 {
                assert_eq!(
                    fw.prefix(k),
                    oracle_prefix(&values[..=i], k),
                    "n={} k={k}",
                    i + 1
                );
            }
        }
        assert_eq!(fw.total(), oracle_prefix(&values, values.len()));
    }

    #[test]
    fn assign_is_exact_under_wrapping() {
        let mut fw = Fenwick::new(Plus);
        let mut values = vec![i64::MAX - 2, 5, i64::MIN + 7, 11, -3, 0, 42];
        for &v in &values {
            fw.push(v).unwrap();
        }
        // Reassign every slot (including overflow-adjacent values) and
        // re-check every prefix each time.
        let replacements = [i64::MIN, -1, i64::MAX, 0, 999, i64::MIN + 1, 7];
        for (i, &nv) in replacements.iter().enumerate() {
            fw.assign(i, values[i], nv);
            values[i] = nv;
            for k in 0..=values.len() {
                assert_eq!(
                    fw.prefix(k),
                    oracle_prefix(&values, k),
                    "after assign {i}, k={k}"
                );
            }
        }
    }

    #[test]
    fn empty_tree_yields_identity() {
        let fw: Fenwick<i64, Plus> = Fenwick::new(Plus);
        assert!(fw.is_empty());
        assert_eq!(fw.prefix(0), 0);
        assert_eq!(fw.total(), 0);
    }

    #[test]
    fn bulk_build_is_bit_identical_to_push() {
        use crate::op::Xor;
        // Lengths straddling powers of two, values straddling the wrap
        // boundary: every internal node must match the push-built tree
        // exactly (not just every queryable prefix).
        for n in [0usize, 1, 2, 3, 7, 8, 9, 63, 64, 65, 1000, 4097] {
            let values: Vec<i64> = (0..n)
                .map(|i| (i as i64).wrapping_mul(0x9E3779B97F4A7C15u64 as i64))
                .collect();
            let mut pushed = Fenwick::new(Plus);
            for &v in &values {
                pushed.push(v).unwrap();
            }
            let bulk = Fenwick::from_values(Plus, &values).unwrap();
            assert_eq!(bulk.tree, pushed.tree, "plus n={n}");

            let values: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0xDEAD_BEEF_CAFE))
                .collect();
            let mut pushed = Fenwick::new(Xor);
            for &v in &values {
                pushed.push(v).unwrap();
            }
            let bulk = Fenwick::from_values(Xor, &values).unwrap();
            assert_eq!(bulk.tree, pushed.tree, "xor n={n}");
        }
    }
}
