//! # Durable streaming multiprefix sessions
//!
//! Every engine below this module answers the multiprefix question for
//! one batch, once. A *session* turns the operation into a long-lived,
//! incrementally-maintained object — elements arrive over time
//! ([`DurableSession::append`]), values are revised
//! ([`DurableSession::update`]), and the multiprefix views
//! ([`DurableSession::prefix_query`], [`DurableSession::label_total`])
//! are answered in O(log n) from per-label Fenwick trees — and makes the
//! whole thing **crash-durable**: a write-ahead log in the MPXF frame
//! discipline acknowledges every mutation before it applies, periodic
//! checksummed snapshots bound replay length, and recovery restores
//! *exactly* the acknowledged prefix, bit for bit, or fails closed with
//! a typed [`CorruptStore`](crate::MpError::CorruptStore).
//!
//! The module splits along those lines:
//!
//! * [`fenwick`] — the per-label prefix structure (append / point-assign
//!   / prefix in O(log n), bit-exact left-fold block order);
//! * [`engine`] — [`SessionCore`], the in-memory incremental engine and
//!   the exscan-based recovery self-check;
//! * [`wal`] — checksummed, sequence-numbered records; strict
//!   truncate-at-first-damage replay scanning;
//! * [`snapshot`] — atomic generation-numbered images with independent
//!   header/payload CRCs;
//! * [`store`] — [`DurableSession`]: WAL-then-apply writes, snapshot
//!   rotation, and the recovery state machine stitching it together.
//!
//! Incremental point-update requires the operator to be a commutative
//! *group*, not just a monoid — see [`InvertibleOp`](crate::op::InvertibleOp).
//! In this tree that is integer [`Plus`](crate::op::Plus) (wrapping
//! arithmetic in Z/2ⁿ is exactly invertible); saturating ops like
//! max/min and floating-point addition are deliberately excluded.

pub mod engine;
pub mod fenwick;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use engine::SessionCore;
pub use fenwick::Fenwick;
pub use snapshot::SnapshotImage;
pub use store::{DurableSession, RecoveryReport, SessionOptions};
pub use wal::{WalDamage, WalRecord};
