//! Checksummed session snapshots: the periodic full-state images that
//! bound WAL replay length.
//!
//! A snapshot is one file, `snap-<gen>.mpss`, written atomically
//! (tmp + fsync + rename + directory fsync) so a crash at any byte leaves
//! either the previous generation or a complete new one — never a
//! half-image at the live name. The header and payload carry separate
//! IEEE CRC-32s (the same [`crc32`] the MPXF wire frames use): a reader
//! verifies the header before trusting any length field and the payload
//! before trusting any element, and every failure is a typed
//! [`MpError::CorruptStore`] the recovery ladder can catch to fall back a
//! generation.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "MPSS" | version u32 | gen u64 | ops u64 | m u64 | n u64 | hcrc u32
//! n × (label u64 | value)                                  | pcrc u32
//! ```
//!
//! `ops` is the consistency cut: the count of session operations the
//! image reflects. The WAL segment for generation `gen` opens with a
//! [`Segment`](super::wal::WalRecord::Segment) record carrying the same
//! `base_ops`, and recovery refuses to stitch a snapshot to a segment
//! whose numbers disagree.

use crate::error::MpError;
use crate::resilience::chaos::ChaosState;
use crate::shard::net::frame::crc32;
use crate::shard::net::wire::WireValue;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

const SNAP_MAGIC: &[u8; 4] = b"MPSS";
const SNAP_VERSION: u32 = 1;
/// `magic + version + gen + ops + m + n + hcrc`.
const SNAP_HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8 + 8 + 4;

/// A decoded snapshot image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotImage<T> {
    /// The snapshot generation.
    pub gen: u64,
    /// Session operations reflected by this image (the WAL cut).
    pub ops: u64,
    /// The session's bucket count.
    pub m: u64,
    /// The element log at the cut, in append order.
    pub elems: Vec<(u64, T)>,
}

fn storage_err(op: &'static str, e: &std::io::Error) -> MpError {
    MpError::Storage { op, kind: e.kind() }
}

/// Encode a snapshot image to its on-disk bytes.
pub fn encode_snapshot<T: WireValue>(image: &SnapshotImage<T>) -> Vec<u8> {
    let n = image.elems.len();
    let mut bytes = Vec::with_capacity(SNAP_HEADER_LEN + n * (8 + T::WIRE_SIZE) + 4);
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    bytes.extend_from_slice(&image.gen.to_le_bytes());
    bytes.extend_from_slice(&image.ops.to_le_bytes());
    bytes.extend_from_slice(&image.m.to_le_bytes());
    bytes.extend_from_slice(&(n as u64).to_le_bytes());
    let hcrc = crc32(&[&bytes[4..SNAP_HEADER_LEN - 4]]);
    bytes.extend_from_slice(&hcrc.to_le_bytes());
    let payload_start = bytes.len();
    for (label, value) in &image.elems {
        bytes.extend_from_slice(&label.to_le_bytes());
        value.wire_write(&mut bytes);
    }
    let pcrc = crc32(&[&bytes[payload_start..]]);
    bytes.extend_from_slice(&pcrc.to_le_bytes());
    bytes
}

/// Decode snapshot bytes, verifying both CRCs and every length before
/// use. Any damage — short file, bad magic, wrong version, CRC mismatch,
/// an element count that disagrees with the byte count — is
/// [`MpError::CorruptStore`].
pub fn decode_snapshot<T: WireValue>(bytes: &[u8]) -> Result<SnapshotImage<T>, MpError> {
    if bytes.len() < SNAP_HEADER_LEN + 4 {
        return Err(MpError::CorruptStore {
            what: "snapshot shorter than header",
        });
    }
    if &bytes[..4] != SNAP_MAGIC {
        return Err(MpError::CorruptStore {
            what: "snapshot magic mismatch",
        });
    }
    let hcrc = u32::from_le_bytes(
        bytes[SNAP_HEADER_LEN - 4..SNAP_HEADER_LEN]
            .try_into()
            .unwrap(),
    );
    if crc32(&[&bytes[4..SNAP_HEADER_LEN - 4]]) != hcrc {
        return Err(MpError::CorruptStore {
            what: "snapshot header checksum mismatch",
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(MpError::CorruptStore {
            what: "snapshot version unsupported",
        });
    }
    let gen = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let ops = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let m = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let n = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
    let elem_size = 8 + T::WIRE_SIZE;
    let expect = (n as usize)
        .checked_mul(elem_size)
        .and_then(|p| p.checked_add(SNAP_HEADER_LEN + 4));
    if expect != Some(bytes.len()) {
        return Err(MpError::CorruptStore {
            what: "snapshot element count disagrees with file size",
        });
    }
    let payload = &bytes[SNAP_HEADER_LEN..bytes.len() - 4];
    let pcrc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(&[payload]) != pcrc {
        return Err(MpError::CorruptStore {
            what: "snapshot payload checksum mismatch",
        });
    }
    let mut elems = Vec::new();
    if elems.try_reserve(n as usize).is_err() {
        return Err(MpError::AllocationFailed {
            bytes: n as usize * elem_size,
        });
    }
    let mut rest = payload;
    for _ in 0..n {
        let label = u64::from_le_bytes(rest[..8].try_into().unwrap());
        rest = &rest[8..];
        let value = T::wire_read(&mut rest).map_err(|_| MpError::CorruptStore {
            what: "snapshot element value undecodable",
        })?;
        elems.push((label, value));
    }
    Ok(SnapshotImage { gen, ops, m, elems })
}

/// Write `image` atomically to `path` (tmp + fsync + rename + directory
/// fsync). With chaos armed, a `snapshot_corrupt_ppm` draw silently
/// flips one payload bit *after* the checksums are computed — the
/// crash-consistent analogue of media corruption, surfaced only when a
/// later recovery rejects the image and falls back a generation. An
/// `fsync_fail_ppm` draw fails the write loudly with
/// [`MpError::Storage`].
pub fn write_snapshot<T: WireValue>(
    path: &Path,
    image: &SnapshotImage<T>,
    chaos: Option<&Arc<ChaosState>>,
) -> Result<(), MpError> {
    let mut bytes = encode_snapshot(image);
    if let Some(chaos) = chaos {
        if chaos.snapshot_fault() && bytes.len() > SNAP_HEADER_LEN + 4 {
            let payload_bits = (bytes.len() - SNAP_HEADER_LEN - 4) * 8;
            let bit = chaos.net_index(payload_bits) + SNAP_HEADER_LEN * 8;
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
    }
    let tmp = path.with_extension("tmp");
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| storage_err("snapshot.write", &e))?;
    file.write_all(&bytes)
        .map_err(|e| storage_err("snapshot.write", &e))?;
    if let Some(chaos) = chaos {
        if chaos.fsync_fault() {
            let _ = std::fs::remove_file(&tmp);
            return Err(MpError::Storage {
                op: "snapshot.fsync",
                kind: std::io::ErrorKind::Interrupted,
            });
        }
    }
    file.sync_data()
        .map_err(|e| storage_err("snapshot.fsync", &e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| storage_err("snapshot.rename", &e))?;
    // The rename itself must be durable before the image may be trusted
    // over its predecessor.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_data();
        }
    }
    Ok(())
}

/// Read and decode the snapshot at `path`. A missing file is
/// `Ok(None)`; damaged bytes are [`MpError::CorruptStore`].
pub fn read_snapshot<T: WireValue>(path: &Path) -> Result<Option<SnapshotImage<T>>, MpError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(storage_err("snapshot.read", &e)),
    };
    decode_snapshot(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> SnapshotImage<i64> {
        SnapshotImage {
            gen: 4,
            ops: 129,
            m: 16,
            elems: (0..100).map(|i| (i % 16, i as i64 * 13 - 600)).collect(),
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let img = image();
        let bytes = encode_snapshot(&img);
        assert_eq!(decode_snapshot::<i64>(&bytes).unwrap(), img);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let img = SnapshotImage::<i64> {
            gen: 0,
            ops: 0,
            m: 1,
            elems: Vec::new(),
        };
        let bytes = encode_snapshot(&img);
        assert_eq!(decode_snapshot::<i64>(&bytes).unwrap(), img);
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = encode_snapshot(&image());
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_snapshot::<i64>(&bad).is_err(),
                "bit {bit} decoded clean"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_snapshot(&image());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot::<i64>(&bytes[..cut]).is_err(),
                "cut {cut} decoded clean"
            );
        }
    }

    #[test]
    fn write_read_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("mpx-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap-1.mpss");
        let img = image();
        write_snapshot(&path, &img, None).unwrap();
        assert_eq!(read_snapshot::<i64>(&path).unwrap(), Some(img));
        assert_eq!(
            read_snapshot::<i64>(&dir.join("snap-none.mpss")).unwrap(),
            None
        );
        std::fs::remove_file(&path).unwrap();
    }
}
