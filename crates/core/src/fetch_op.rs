//! Deterministic fetch-and-op via multiprefix.
//!
//! §1 of the paper: "[Multiprefix] provides the functionality of the
//! fetch-and-op primitive of the NYU Ultracomputer [GLR81]. While the
//! fetch-and-op primitive is non-deterministic in its evaluation order, the
//! multiprefix operator ensures that results are computed in vector index
//! order."
//!
//! Given a memory image and a batch of `(address, increment)` requests, one
//! multiprefix call serves the whole batch *as if* the requests executed
//! one at a time in vector order: request `i` fetches
//! `memory[a_i] ⊕ (⊕ of earlier increments to a_i)` and the final memory
//! holds every cell's full combination.

use crate::api::{multiprefix, Engine};
use crate::error::MpError;
use crate::op::CombineOp;
use crate::problem::Element;

/// Result of a batched fetch-and-op.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchOpResult<T> {
    /// `fetched[i]`: the value request `i` observed — the cell content just
    /// before its own increment applied, in vector order.
    pub fetched: Vec<T>,
    /// The memory image after all requests.
    pub memory: Vec<T>,
}

/// Execute a batch of fetch-and-⊕ requests against `memory`.
///
/// `addresses[i]` must index into `memory`; `increments[i]` is combined in.
/// Equivalent to the serial loop
///
/// ```text
/// for i in 0..k { fetched[i] = mem[a[i]]; mem[a[i]] = mem[a[i]] ⊕ inc[i]; }
/// ```
///
/// but implemented as a single multiprefix over the batch (labels =
/// addresses), so any engine — including the parallel ones — serves it.
pub fn fetch_and_op<T: Element, O: CombineOp<T>>(
    memory: &[T],
    addresses: &[usize],
    increments: &[T],
    op: O,
    engine: Engine,
) -> Result<FetchOpResult<T>, MpError> {
    let out = multiprefix(increments, addresses, memory.len(), op, engine)?;
    let fetched = out
        .sums
        .iter()
        .zip(addresses)
        .map(|(&prefix, &a)| op.combine(memory[a], prefix))
        .collect();
    let new_memory = memory
        .iter()
        .zip(out.reductions.iter())
        .map(|(&base, &delta)| op.combine(base, delta))
        .collect();
    Ok(FetchOpResult {
        fetched,
        memory: new_memory,
    })
}

/// Serial oracle for [`fetch_and_op`] (the loop above, literally).
pub fn fetch_and_op_serial<T: Element, O: CombineOp<T>>(
    memory: &[T],
    addresses: &[usize],
    increments: &[T],
    op: O,
) -> FetchOpResult<T> {
    let mut mem = memory.to_vec();
    let mut fetched = Vec::with_capacity(addresses.len());
    for (&a, &inc) in addresses.iter().zip(increments) {
        fetched.push(mem[a]);
        mem[a] = op.combine(mem[a], inc);
    }
    FetchOpResult {
        fetched,
        memory: mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Plus;

    #[test]
    fn matches_serial_oracle() {
        let memory = vec![100i64, 200, 300];
        let addresses = vec![0, 1, 0, 2, 1, 0];
        let increments = vec![1i64, 2, 3, 4, 5, 6];
        let expect = fetch_and_op_serial(&memory, &addresses, &increments, Plus);
        for engine in [Engine::Serial, Engine::Spinetree, Engine::Blocked] {
            let got = fetch_and_op(&memory, &addresses, &increments, Plus, engine).unwrap();
            assert_eq!(got, expect, "{engine:?}");
        }
    }

    #[test]
    fn fetch_values_are_vector_ordered() {
        // Three increments to the same cell fetch 0, 1, 3 — strictly the
        // vector-order story, never a permuted one.
        let got = fetch_and_op(&[0i64], &[0, 0, 0], &[1, 2, 4], Plus, Engine::Serial).unwrap();
        assert_eq!(got.fetched, vec![0, 1, 3]);
        assert_eq!(got.memory, vec![7]);
    }

    #[test]
    fn untouched_cells_survive() {
        let got = fetch_and_op(&[5i64, 6, 7], &[1], &[10], Plus, Engine::Serial).unwrap();
        assert_eq!(got.memory, vec![5, 16, 7]);
    }

    #[test]
    fn empty_batch() {
        let got = fetch_and_op::<i64, _>(&[1, 2], &[], &[], Plus, Engine::Serial).unwrap();
        assert_eq!(got.fetched, Vec::<i64>::new());
        assert_eq!(got.memory, vec![1, 2]);
    }

    #[test]
    fn bad_address_is_reported() {
        let err = fetch_and_op(&[0i64], &[1], &[1], Plus, Engine::Serial).unwrap_err();
        assert!(matches!(
            err,
            MpError::LabelOutOfRange { label: 1, m: 1, .. }
        ));
    }

    #[test]
    fn ticket_counter_idiom() {
        // fetch-and-add of 1 hands out consecutive tickets.
        let got = fetch_and_op(&[0i64], &[0; 8], &[1i64; 8], Plus, Engine::Blocked).unwrap();
        assert_eq!(got.fetched, (0..8).collect::<Vec<i64>>());
        assert_eq!(got.memory, vec![8]);
    }
}
