//! Vectorized kernels for the engines' hot phases — the modern CRAY Y-MP.
//!
//! The paper's central move (§3) is recasting every `pardo` of the
//! multiprefix as vector operations on the CRAY Y-MP. This module redoes
//! that mapping on today's vector ISA: AVX2 kernels via
//! `core::arch::x86_64` intrinsics (stable Rust — no `std::simd`), with an
//! autovectorization-friendly portable kernel as the non-x86 path, behind
//! one-time runtime dispatch.
//!
//! ## Structure (per *Parallel Prefix Sum with SIMD*, Zhang/Wang/Ross)
//!
//! A prefix scan is vectorized in two steps: an **in-register inclusive
//! scan** of each lane-group (log₂ LANES shift-and-combine steps), then a
//! **carry broadcast** from the group's last lane into the next group —
//! the same shape as the chunked engine's local-scan-then-
//! `exscan_over_summaries` combine, one level down. The scan, broadcast
//! and reduce primitives here are exactly what the engines' single-label
//! (`m == 1`) fast paths, `scan.rs`'s partition sweeps and the session
//! store's bulk Fenwick rebuild consume.
//!
//! ## Eligibility and bit-exactness
//!
//! A kernel engages only when the operator declares an exact machine
//! counterpart ([`Kernel`] via [`crate::op::CombineOp::KERNEL`]: wrapping
//! `Add`, `Max`, `Min`, `Xor` over 32/64-bit lanes). Those operators are
//! associative and commutative *exactly*, so every reassociation the
//! vector form performs is bit-identical to the scalar left fold — pinned
//! by `tests/simd_differential.rs`. The one exception is `f32` addition,
//! which is only available behind [`crate::ExecConfig::simd_f32`] because
//! float addition does not reassociate exactly. Everything else —
//! unrecognized operators, odd widths, checked/saturating overflow
//! policies, sparse bucket tables — falls through to the scalar code
//! untouched.
//!
//! ## Dispatch
//!
//! [`active_level`] detects the best level once per process (cached in a
//! `OnceLock`): `MP_FORCE_SCALAR=1` pins [`SimdLevel::Scalar`], Miri runs
//! the portable kernels ([`SimdLevel::Portable`]), and an x86-64 host
//! with AVX2 gets [`SimdLevel::Avx2`]. [`ExecConfig::force_scalar`]
//! (crate::ExecConfig::force_scalar) pins a *single run* to scalar
//! without touching the process-wide level — that is what the
//! differential suite and the `bench_report --kernel` arm use to hold
//! both paths side by side in one process.

#[cfg(target_arch = "x86_64")]
mod avx2;
mod portable;

pub use crate::op::Kernel;

use crate::problem::Element;
use std::any::TypeId;
use std::sync::OnceLock;

/// The kernel implementation level a process runs at (resolved once, see
/// [`active_level`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// No vectorized fast paths at all: every engine runs its scalar
    /// inner loops (the `MP_FORCE_SCALAR=1` state).
    Scalar,
    /// The portable unrolled kernels — same left-fold association as the
    /// scalar engines, written so non-x86 targets can autovectorize the
    /// streaming passes.
    Portable,
    /// The AVX2 intrinsic kernels (x86-64 with runtime-detected AVX2).
    Avx2,
}

impl SimdLevel {
    /// The lowercase name used in obs events and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Portable => "portable",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

static LEVEL: OnceLock<SimdLevel> = OnceLock::new();

fn detect() -> SimdLevel {
    if cfg!(miri) {
        // Miri interprets no vendor intrinsics; the portable kernels are
        // the simd surface it verifies.
        return SimdLevel::Portable;
    }
    if std::env::var_os("MP_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0") {
        return SimdLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Portable
}

/// The process-wide kernel level, detected once on first use:
/// `MP_FORCE_SCALAR=1` → `Scalar`; Miri → `Portable`; x86-64 with AVX2 →
/// `Avx2`; otherwise `Portable`.
pub fn active_level() -> SimdLevel {
    *LEVEL.get_or_init(detect)
}

/// Pin the process-wide level *before first use* (the `bench_report
/// --kernel` arm). Returns the level actually active afterwards: if the
/// level was already resolved, the existing one wins; a request for
/// [`SimdLevel::Avx2`] on a host without AVX2 is clamped to `Portable`
/// rather than trusted.
pub fn pin_level(level: SimdLevel) -> SimdLevel {
    let requested = match level {
        SimdLevel::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                if !cfg!(miri) && std::arch::is_x86_feature_detected!("avx2") {
                    SimdLevel::Avx2
                } else {
                    SimdLevel::Portable
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                SimdLevel::Portable
            }
        }
        other => other,
    };
    *LEVEL.get_or_init(|| requested)
}

/// Whether this host can run the AVX2 kernels at all (used by the bench
/// harness and the CI `avx2-gate` job to refuse silent fallback).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        !cfg!(miri) && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One resolved set of vectorized kernels for a concrete element type —
/// the "function table" the engines call through after one-time dispatch.
///
/// Every function is bit-identical to the scalar left fold of the same
/// operator for the exact integer kernels; see the module docs for the
/// `f32` caveat.
pub struct Kernels<T: Element> {
    /// Exclusive scan of `values` into `out` (`out[i] = carry ⊕
    /// values[0] ⊕ … ⊕ values[i-1]`, so `out[0] == carry`); returns the
    /// outgoing carry `carry ⊕ fold(values)`. Slices must be equal
    /// length.
    pub excl_scan_into: fn(&[T], &mut [T], T) -> T,
    /// Exclusive scan in place; returns the outgoing carry.
    pub excl_scan_inplace: fn(&mut [T], T) -> T,
    /// Inclusive scan in place (`x[i] = carry ⊕ x[0] ⊕ … ⊕ x[i]`);
    /// returns the outgoing carry (the final element).
    pub incl_scan_inplace: fn(&mut [T], T) -> T,
    /// `x = acc ⊕ x` for every element — the apply pass's prepend loop.
    pub combine_broadcast: fn(T, &mut [T]),
    /// `acc ⊕ fold(xs)` — the reduce used by partition sweep 1 and the
    /// multireduce fast path.
    pub reduce: fn(T, &[T]) -> T,
}

/// The per-family scalar definition the portable kernels fold with and
/// the AVX2 remainder loops fall back to. Each zero-sized family type
/// pins one (element type, kernel) pair so the dispatch table entries
/// stay monomorphic function pointers.
pub(crate) trait ScalarFamily: 'static {
    /// The concrete lane element type.
    type Elem: Element;
    /// The operator identity (must equal the `CombineOp` identity).
    fn identity() -> Self::Elem;
    /// The scalar combine (must equal the `CombineOp` combine).
    fn op(a: Self::Elem, b: Self::Elem) -> Self::Elem;
}

macro_rules! families {
    ($(($name:ident, $t:ty, $id:expr, $op:expr)),* $(,)?) => {$(
        pub(crate) struct $name;
        impl ScalarFamily for $name {
            type Elem = $t;
            #[inline(always)]
            fn identity() -> $t { $id }
            #[inline(always)]
            fn op(a: $t, b: $t) -> $t { ($op)(a, b) }
        }
    )*};
}

families! {
    (AddI32, i32, 0, |a: i32, b: i32| a.wrapping_add(b)),
    (AddU32, u32, 0, |a: u32, b: u32| a.wrapping_add(b)),
    (AddI64, i64, 0, |a: i64, b: i64| a.wrapping_add(b)),
    (AddU64, u64, 0, |a: u64, b: u64| a.wrapping_add(b)),
    (AddF32, f32, 0.0, |a: f32, b: f32| a + b),
    (XorI32, i32, 0, |a: i32, b: i32| a ^ b),
    (XorU32, u32, 0, |a: u32, b: u32| a ^ b),
    (XorI64, i64, 0, |a: i64, b: i64| a ^ b),
    (XorU64, u64, 0, |a: u64, b: u64| a ^ b),
    (MaxI32, i32, i32::MIN, |a: i32, b: i32| a.max(b)),
    (MaxU32, u32, u32::MIN, |a: u32, b: u32| a.max(b)),
    (MaxI64, i64, i64::MIN, |a: i64, b: i64| a.max(b)),
    (MaxU64, u64, u64::MIN, |a: u64, b: u64| a.max(b)),
    (MinI32, i32, i32::MAX, |a: i32, b: i32| a.min(b)),
    (MinU32, u32, u32::MAX, |a: u32, b: u32| a.min(b)),
    (MinI64, i64, i64::MAX, |a: i64, b: i64| a.min(b)),
    (MinU64, u64, u64::MAX, |a: u64, b: u64| a.min(b)),
}

/// Reinterpret a table for `U` as a table for `T`.
///
/// Sound only when `T` and `U` are the same type (checked by the caller
/// via `TypeId` equality); the function signatures then match exactly.
fn cast_table<U: Element, T: Element>(table: &'static Kernels<U>) -> &'static Kernels<T> {
    debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<U>());
    unsafe { &*(table as *const Kernels<U> as *const Kernels<T>) }
}

macro_rules! route {
    ($T:ident, $level:ident, $t:ty, $fam:ident) => {
        if TypeId::of::<$T>() == TypeId::of::<$t>() {
            static PORT: Kernels<$t> = Kernels {
                excl_scan_into: portable::excl_scan_into::<$fam>,
                excl_scan_inplace: portable::excl_scan_inplace::<$fam>,
                incl_scan_inplace: portable::incl_scan_inplace::<$fam>,
                combine_broadcast: portable::combine_broadcast::<$fam>,
                reduce: portable::reduce::<$fam>,
            };
            #[cfg(target_arch = "x86_64")]
            {
                static VEC: Kernels<$t> = Kernels {
                    excl_scan_into: avx2::excl_scan_into::<$fam>,
                    excl_scan_inplace: avx2::excl_scan_inplace::<$fam>,
                    incl_scan_inplace: avx2::incl_scan_inplace::<$fam>,
                    combine_broadcast: avx2::combine_broadcast::<$fam>,
                    reduce: avx2::reduce::<$fam>,
                };
                if $level == SimdLevel::Avx2 {
                    return Some(cast_table::<$t, $T>(&VEC));
                }
            }
            return Some(cast_table::<$t, $T>(&PORT));
        }
    };
}

/// Resolve the kernel table for element type `T` under kernel class
/// `kernel`, or `None` when the combination must stay scalar: the
/// process level is [`SimdLevel::Scalar`], the element type has no
/// kernels (only `u32/i32/u64/i64` — and `f32` for `Add` when
/// `allow_f32` — do), or the type/kernel pair is unrecognized.
pub fn kernels<T: Element>(kernel: Kernel, allow_f32: bool) -> Option<&'static Kernels<T>> {
    let level = active_level();
    if level == SimdLevel::Scalar {
        return None;
    }
    match kernel {
        Kernel::Add => {
            route!(T, level, u64, AddU64);
            route!(T, level, i64, AddI64);
            route!(T, level, u32, AddU32);
            route!(T, level, i32, AddI32);
            if allow_f32 {
                route!(T, level, f32, AddF32);
            }
        }
        Kernel::Xor => {
            route!(T, level, u64, XorU64);
            route!(T, level, i64, XorI64);
            route!(T, level, u32, XorU32);
            route!(T, level, i32, XorI32);
        }
        Kernel::Max => {
            route!(T, level, u64, MaxU64);
            route!(T, level, i64, MaxI64);
            route!(T, level, u32, MaxU32);
            route!(T, level, i32, MaxI32);
        }
        Kernel::Min => {
            route!(T, level, u64, MinU64);
            route!(T, level, i64, MinI64);
            route!(T, level, u32, MinU32);
            route!(T, level, i32, MinI32);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    // Scalar oracles, written as the engines' left folds.
    fn excl_oracle<F: ScalarFamily>(values: &[F::Elem], carry: F::Elem) -> (Vec<F::Elem>, F::Elem)
    where
        F::Elem: PartialEq + std::fmt::Debug,
    {
        let mut out = Vec::with_capacity(values.len());
        let mut acc = carry;
        for &v in values {
            out.push(acc);
            acc = F::op(acc, v);
        }
        (out, acc)
    }

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 11
    }

    fn check_family<F: ScalarFamily>(table: &Kernels<F::Elem>, mk: impl Fn(u64) -> F::Elem)
    where
        F::Elem: PartialEq + std::fmt::Debug,
    {
        let mut seed = 0xC0FFEE;
        // Lengths straddling every lane boundary, plus empty.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 31, 64, 100, 257] {
            let values: Vec<F::Elem> = (0..n).map(|_| mk(lcg(&mut seed))).collect();
            let carry = mk(lcg(&mut seed));
            let (want, want_carry) = excl_oracle::<F>(&values, carry);

            let mut out = vec![F::identity(); n];
            let got_carry = (table.excl_scan_into)(&values, &mut out, carry);
            assert_eq!(out, want, "excl_scan_into n={n}");
            assert_eq!(got_carry, want_carry, "excl_scan_into carry n={n}");

            let mut xs = values.clone();
            let got_carry = (table.excl_scan_inplace)(&mut xs, carry);
            assert_eq!(xs, want, "excl_scan_inplace n={n}");
            assert_eq!(got_carry, want_carry, "excl_scan_inplace carry n={n}");

            let mut xs = values.clone();
            let got_carry = (table.incl_scan_inplace)(&mut xs, carry);
            let mut incl_want = Vec::with_capacity(n);
            let mut acc = carry;
            for &v in &values {
                acc = F::op(acc, v);
                incl_want.push(acc);
            }
            assert_eq!(xs, incl_want, "incl_scan_inplace n={n}");
            assert_eq!(got_carry, want_carry, "incl_scan_inplace carry n={n}");

            let mut xs = values.clone();
            let acc = mk(lcg(&mut seed));
            (table.combine_broadcast)(acc, &mut xs);
            let bwant: Vec<F::Elem> = values.iter().map(|&v| F::op(acc, v)).collect();
            assert_eq!(xs, bwant, "combine_broadcast n={n}");

            let got = (table.reduce)(carry, &values);
            assert_eq!(got, want_carry, "reduce n={n}");
        }
    }

    fn check_both_levels<F: ScalarFamily>(kernel: Kernel, mk: impl Fn(u64) -> F::Elem + Copy)
    where
        F::Elem: PartialEq + std::fmt::Debug,
    {
        // The portable table directly…
        static_check_portable::<F>(mk);
        // …and whatever the process-level dispatch resolves (AVX2 on an
        // AVX2 host, portable elsewhere/under Miri).
        if let Some(table) = kernels::<F::Elem>(kernel, true) {
            check_family::<F>(table, mk);
        }
    }

    fn static_check_portable<F: ScalarFamily>(mk: impl Fn(u64) -> F::Elem)
    where
        F::Elem: PartialEq + std::fmt::Debug,
    {
        let table = Kernels::<F::Elem> {
            excl_scan_into: portable::excl_scan_into::<F>,
            excl_scan_inplace: portable::excl_scan_inplace::<F>,
            incl_scan_inplace: portable::incl_scan_inplace::<F>,
            combine_broadcast: portable::combine_broadcast::<F>,
            reduce: portable::reduce::<F>,
        };
        check_family::<F>(&table, mk);
    }

    #[test]
    fn add_kernels_match_scalar_fold() {
        check_both_levels::<AddU64>(Kernel::Add, |r| r);
        check_both_levels::<AddI64>(Kernel::Add, |r| r as i64);
        check_both_levels::<AddU32>(Kernel::Add, |r| r as u32);
        check_both_levels::<AddI32>(Kernel::Add, |r| r as i32);
    }

    #[test]
    fn xor_kernels_match_scalar_fold() {
        check_both_levels::<XorU64>(Kernel::Xor, |r| r);
        check_both_levels::<XorI32>(Kernel::Xor, |r| r as i32);
    }

    #[test]
    fn minmax_kernels_match_scalar_fold() {
        check_both_levels::<MaxI64>(Kernel::Max, |r| r as i64);
        check_both_levels::<MaxU64>(Kernel::Max, |r| r);
        check_both_levels::<MaxI32>(Kernel::Max, |r| r as i32);
        check_both_levels::<MaxU32>(Kernel::Max, |r| r as u32);
        check_both_levels::<MinI64>(Kernel::Min, |r| r as i64);
        check_both_levels::<MinU64>(Kernel::Min, |r| r);
        check_both_levels::<MinI32>(Kernel::Min, |r| r as i32);
        check_both_levels::<MinU32>(Kernel::Min, |r| r as u32);
    }

    #[test]
    fn f32_kernel_exact_on_representable_sums() {
        // Small integers summed in f32 stay exactly representable, so
        // even the reassociated vector order must be bit-identical.
        check_both_levels::<AddF32>(Kernel::Add, |r| (r % 1024) as f32 - 512.0);
    }

    #[test]
    fn wrap_boundary_straddles_type_max() {
        // A run whose prefix crosses u64::MAX must wrap exactly like the
        // scalar fold.
        let values = vec![u64::MAX - 3, 7, u64::MAX, 1, 2, u64::MAX - 1, 5, 9, 11];
        let (want, want_carry) = excl_oracle::<AddU64>(&values, 12345);
        if let Some(table) = kernels::<u64>(Kernel::Add, false) {
            let mut out = vec![0u64; values.len()];
            let carry = (table.excl_scan_into)(&values, &mut out, 12345);
            assert_eq!(out, want);
            assert_eq!(carry, want_carry);
        }
    }

    #[test]
    fn dispatch_rejects_unkerneled_types() {
        assert!(kernels::<u8>(Kernel::Add, true).is_none());
        assert!(kernels::<u128>(Kernel::Add, true).is_none());
        assert!(kernels::<usize>(Kernel::Add, true).is_none());
        assert!(kernels::<f64>(Kernel::Add, true).is_none());
        assert!(
            kernels::<f32>(Kernel::Add, false).is_none(),
            "f32 is opt-in"
        );
        assert!(
            kernels::<f32>(Kernel::Max, true).is_none(),
            "f32 max stays scalar"
        );
    }

    #[test]
    fn level_name_roundtrip() {
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(SimdLevel::Portable.name(), "portable");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        // active_level is cached and stable across calls.
        assert_eq!(active_level(), active_level());
        assert_eq!(pin_level(SimdLevel::Scalar), active_level());
    }
}
