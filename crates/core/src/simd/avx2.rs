//! The AVX2 kernels (x86-64, runtime-detected).
//!
//! Scans use the in-register form of Zhang/Wang/Ross: an inclusive scan
//! of each 256-bit group via log₂(LANES) shift-and-combine steps
//! (cross-lane shifts built from `vperm2i128` + `vpalignr`, with the
//! operator identity shifted in), then a carry broadcast from the
//! group's last lane into the next group. 64-bit `max`/`min` have no
//! AVX2 instruction, so they are synthesized from `vpcmpgtq` +
//! `vpblendvb` (unsigned via the sign-bit bias trick). `f32` rides the
//! same drivers through bit-casts.
//!
//! Every driver is `#[target_feature(enable = "avx2")]`; the safe
//! wrappers at the bottom are only reachable through the dispatch table,
//! which hands them out strictly after `is_x86_feature_detected!("avx2")`
//! succeeded.

#![allow(unsafe_op_in_unsafe_fn)]

use super::ScalarFamily;
use core::arch::x86_64::*;

/// The vector half of a kernel family: 256-bit lane operations over the
/// family's element type. Everything is carried as `__m256i`; `f32`
/// families bit-cast around their `ps` intrinsics.
pub(crate) trait VecFamily: ScalarFamily {
    /// Elements per 256-bit vector (4 for 64-bit lanes, 8 for 32-bit).
    const LANES: usize;
    /// Broadcast a scalar into every lane.
    unsafe fn splat(x: Self::Elem) -> __m256i;
    /// The lane-parallel operator.
    unsafe fn vop(a: __m256i, b: __m256i) -> __m256i;
    /// Shift lanes up by one element, filling lane 0 from `fill`
    /// (broadcast).
    unsafe fn shift1(v: __m256i, fill: __m256i) -> __m256i;
    /// Shift lanes up by two elements.
    unsafe fn shift2(v: __m256i, fill: __m256i) -> __m256i;
    /// Shift lanes up by four elements (32-bit families only; 64-bit
    /// families never call it).
    unsafe fn shift4(v: __m256i, fill: __m256i) -> __m256i {
        let _ = v;
        fill
    }
    /// Broadcast the last lane into every lane.
    unsafe fn broadcast_last(v: __m256i) -> __m256i;
    /// Extract the last lane as a scalar.
    unsafe fn last(v: __m256i) -> Self::Elem;
}

// ---- shared shift primitives -------------------------------------------

#[inline(always)]
unsafe fn shift1_64(v: __m256i, fill: __m256i) -> __m256i {
    // t = [fill.low128, v.low128]; alignr by 8 bytes per 128-bit lane
    // yields [f, v0, v1, v2].
    let t = _mm256_permute2x128_si256::<0x20>(fill, v);
    _mm256_alignr_epi8::<8>(v, t)
}

#[inline(always)]
unsafe fn shift2_64(v: __m256i, fill: __m256i) -> __m256i {
    // [f, f, v0, v1]
    _mm256_permute2x128_si256::<0x20>(fill, v)
}

#[inline(always)]
unsafe fn shift1_32(v: __m256i, fill: __m256i) -> __m256i {
    let t = _mm256_permute2x128_si256::<0x20>(fill, v);
    _mm256_alignr_epi8::<12>(v, t)
}

#[inline(always)]
unsafe fn shift2_32(v: __m256i, fill: __m256i) -> __m256i {
    let t = _mm256_permute2x128_si256::<0x20>(fill, v);
    _mm256_alignr_epi8::<8>(v, t)
}

#[inline(always)]
unsafe fn shift4_32(v: __m256i, fill: __m256i) -> __m256i {
    _mm256_permute2x128_si256::<0x20>(fill, v)
}

#[inline(always)]
unsafe fn bcast_last_64(v: __m256i) -> __m256i {
    _mm256_permute4x64_epi64::<0xFF>(v)
}

#[inline(always)]
unsafe fn bcast_last_32(v: __m256i) -> __m256i {
    _mm256_permutevar8x32_epi32(v, _mm256_set1_epi32(7))
}

// ---- splat / extract helpers -------------------------------------------

#[inline(always)]
unsafe fn splat_i64(x: i64) -> __m256i {
    _mm256_set1_epi64x(x)
}
#[inline(always)]
unsafe fn splat_u64(x: u64) -> __m256i {
    _mm256_set1_epi64x(x as i64)
}
#[inline(always)]
unsafe fn splat_i32(x: i32) -> __m256i {
    _mm256_set1_epi32(x)
}
#[inline(always)]
unsafe fn splat_u32(x: u32) -> __m256i {
    _mm256_set1_epi32(x as i32)
}
#[inline(always)]
unsafe fn splat_f32(x: f32) -> __m256i {
    _mm256_castps_si256(_mm256_set1_ps(x))
}

#[inline(always)]
unsafe fn last_i64(v: __m256i) -> i64 {
    _mm256_extract_epi64::<3>(v)
}
#[inline(always)]
unsafe fn last_u64(v: __m256i) -> u64 {
    _mm256_extract_epi64::<3>(v) as u64
}
#[inline(always)]
unsafe fn last_i32(v: __m256i) -> i32 {
    _mm256_extract_epi32::<7>(v)
}
#[inline(always)]
unsafe fn last_u32(v: __m256i) -> u32 {
    _mm256_extract_epi32::<7>(v) as u32
}
#[inline(always)]
unsafe fn last_f32(v: __m256i) -> f32 {
    f32::from_bits(_mm256_extract_epi32::<7>(v) as u32)
}

// ---- composite lane operators ------------------------------------------

#[inline(always)]
unsafe fn max_i64(a: __m256i, b: __m256i) -> __m256i {
    _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b))
}
#[inline(always)]
unsafe fn min_i64(a: __m256i, b: __m256i) -> __m256i {
    _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b))
}
#[inline(always)]
unsafe fn max_u64(a: __m256i, b: __m256i) -> __m256i {
    let bias = _mm256_set1_epi64x(i64::MIN);
    let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias), _mm256_xor_si256(b, bias));
    _mm256_blendv_epi8(b, a, gt)
}
#[inline(always)]
unsafe fn min_u64(a: __m256i, b: __m256i) -> __m256i {
    let bias = _mm256_set1_epi64x(i64::MIN);
    let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias), _mm256_xor_si256(b, bias));
    _mm256_blendv_epi8(a, b, gt)
}
#[inline(always)]
unsafe fn add_f32(a: __m256i, b: __m256i) -> __m256i {
    _mm256_castps_si256(_mm256_add_ps(
        _mm256_castsi256_ps(a),
        _mm256_castsi256_ps(b),
    ))
}

// ---- family wiring ------------------------------------------------------

macro_rules! vec_family {
    (w64: $fam:ident, $t:ty, $splat:path, $vop:path, $last:path) => {
        impl VecFamily for super::$fam {
            const LANES: usize = 4;
            #[inline(always)]
            unsafe fn splat(x: $t) -> __m256i {
                $splat(x)
            }
            #[inline(always)]
            unsafe fn vop(a: __m256i, b: __m256i) -> __m256i {
                $vop(a, b)
            }
            #[inline(always)]
            unsafe fn shift1(v: __m256i, fill: __m256i) -> __m256i {
                shift1_64(v, fill)
            }
            #[inline(always)]
            unsafe fn shift2(v: __m256i, fill: __m256i) -> __m256i {
                shift2_64(v, fill)
            }
            #[inline(always)]
            unsafe fn broadcast_last(v: __m256i) -> __m256i {
                bcast_last_64(v)
            }
            #[inline(always)]
            unsafe fn last(v: __m256i) -> $t {
                $last(v)
            }
        }
    };
    (w32: $fam:ident, $t:ty, $splat:path, $vop:path, $last:path) => {
        impl VecFamily for super::$fam {
            const LANES: usize = 8;
            #[inline(always)]
            unsafe fn splat(x: $t) -> __m256i {
                $splat(x)
            }
            #[inline(always)]
            unsafe fn vop(a: __m256i, b: __m256i) -> __m256i {
                $vop(a, b)
            }
            #[inline(always)]
            unsafe fn shift1(v: __m256i, fill: __m256i) -> __m256i {
                shift1_32(v, fill)
            }
            #[inline(always)]
            unsafe fn shift2(v: __m256i, fill: __m256i) -> __m256i {
                shift2_32(v, fill)
            }
            #[inline(always)]
            unsafe fn shift4(v: __m256i, fill: __m256i) -> __m256i {
                shift4_32(v, fill)
            }
            #[inline(always)]
            unsafe fn broadcast_last(v: __m256i) -> __m256i {
                bcast_last_32(v)
            }
            #[inline(always)]
            unsafe fn last(v: __m256i) -> $t {
                $last(v)
            }
        }
    };
}

vec_family!(w64: AddI64, i64, splat_i64, _mm256_add_epi64, last_i64);
vec_family!(w64: AddU64, u64, splat_u64, _mm256_add_epi64, last_u64);
vec_family!(w64: XorI64, i64, splat_i64, _mm256_xor_si256, last_i64);
vec_family!(w64: XorU64, u64, splat_u64, _mm256_xor_si256, last_u64);
vec_family!(w64: MaxI64, i64, splat_i64, max_i64, last_i64);
vec_family!(w64: MaxU64, u64, splat_u64, max_u64, last_u64);
vec_family!(w64: MinI64, i64, splat_i64, min_i64, last_i64);
vec_family!(w64: MinU64, u64, splat_u64, min_u64, last_u64);
vec_family!(w32: AddI32, i32, splat_i32, _mm256_add_epi32, last_i32);
vec_family!(w32: AddU32, u32, splat_u32, _mm256_add_epi32, last_u32);
vec_family!(w32: XorI32, i32, splat_i32, _mm256_xor_si256, last_i32);
vec_family!(w32: XorU32, u32, splat_u32, _mm256_xor_si256, last_u32);
vec_family!(w32: MaxI32, i32, splat_i32, _mm256_max_epi32, last_i32);
vec_family!(w32: MaxU32, u32, splat_u32, _mm256_max_epu32, last_u32);
vec_family!(w32: MinI32, i32, splat_i32, _mm256_min_epi32, last_i32);
vec_family!(w32: MinU32, u32, splat_u32, _mm256_min_epu32, last_u32);
vec_family!(w32: AddF32, f32, splat_f32, add_f32, last_f32);

// ---- drivers ------------------------------------------------------------

/// In-register inclusive scan of one 256-bit group: log₂(LANES)
/// shift-and-combine steps, identity shifted in. Earlier lanes are
/// always the *left* operand, preserving the engines' order contract.
#[inline(always)]
unsafe fn scan_group<F: VecFamily>(v: __m256i, id: __m256i) -> __m256i {
    let mut x = F::vop(F::shift1(v, id), v);
    x = F::vop(F::shift2(x, id), x);
    if F::LANES == 8 {
        x = F::vop(F::shift4(x, id), x);
    }
    x
}

#[target_feature(enable = "avx2")]
unsafe fn excl_scan_into_v<F: VecFamily>(
    values: &[F::Elem],
    out: &mut [F::Elem],
    carry: F::Elem,
) -> F::Elem {
    debug_assert_eq!(values.len(), out.len());
    let n = values.len();
    let id = F::splat(F::identity());
    let mut c = F::splat(carry);
    let mut i = 0usize;
    while i + F::LANES <= n {
        let v = _mm256_loadu_si256(values.as_ptr().add(i) as *const __m256i);
        let incl = scan_group::<F>(v, id);
        let excl = F::vop(c, F::shift1(incl, id));
        _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, excl);
        c = F::vop(c, F::broadcast_last(incl));
        i += F::LANES;
    }
    let mut acc = F::last(c);
    while i < n {
        let v = *values.get_unchecked(i);
        *out.get_unchecked_mut(i) = acc;
        acc = F::op(acc, v);
        i += 1;
    }
    acc
}

#[target_feature(enable = "avx2")]
unsafe fn excl_scan_inplace_v<F: VecFamily>(xs: &mut [F::Elem], carry: F::Elem) -> F::Elem {
    let n = xs.len();
    let id = F::splat(F::identity());
    let mut c = F::splat(carry);
    let mut i = 0usize;
    while i + F::LANES <= n {
        let p = xs.as_mut_ptr().add(i);
        let v = _mm256_loadu_si256(p as *const __m256i);
        let incl = scan_group::<F>(v, id);
        let excl = F::vop(c, F::shift1(incl, id));
        _mm256_storeu_si256(p as *mut __m256i, excl);
        c = F::vop(c, F::broadcast_last(incl));
        i += F::LANES;
    }
    let mut acc = F::last(c);
    while i < n {
        let x = xs.get_unchecked_mut(i);
        let v = *x;
        *x = acc;
        acc = F::op(acc, v);
        i += 1;
    }
    acc
}

#[target_feature(enable = "avx2")]
unsafe fn incl_scan_inplace_v<F: VecFamily>(xs: &mut [F::Elem], carry: F::Elem) -> F::Elem {
    let n = xs.len();
    let id = F::splat(F::identity());
    let mut c = F::splat(carry);
    let mut i = 0usize;
    while i + F::LANES <= n {
        let p = xs.as_mut_ptr().add(i);
        let v = _mm256_loadu_si256(p as *const __m256i);
        let incl = scan_group::<F>(v, id);
        _mm256_storeu_si256(p as *mut __m256i, F::vop(c, incl));
        c = F::vop(c, F::broadcast_last(incl));
        i += F::LANES;
    }
    let mut acc = F::last(c);
    while i < n {
        let x = xs.get_unchecked_mut(i);
        acc = F::op(acc, *x);
        *x = acc;
        i += 1;
    }
    acc
}

#[target_feature(enable = "avx2")]
unsafe fn combine_broadcast_v<F: VecFamily>(acc: F::Elem, xs: &mut [F::Elem]) {
    let n = xs.len();
    let c = F::splat(acc);
    let mut i = 0usize;
    while i + F::LANES <= n {
        let p = xs.as_mut_ptr().add(i);
        let v = _mm256_loadu_si256(p as *const __m256i);
        _mm256_storeu_si256(p as *mut __m256i, F::vop(c, v));
        i += F::LANES;
    }
    while i < n {
        let x = xs.get_unchecked_mut(i);
        *x = F::op(acc, *x);
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn reduce_v<F: VecFamily>(init: F::Elem, xs: &[F::Elem]) -> F::Elem {
    let n = xs.len();
    let id = F::splat(F::identity());
    let mut accv = id;
    let mut i = 0usize;
    while i + F::LANES <= n {
        let v = _mm256_loadu_si256(xs.as_ptr().add(i) as *const __m256i);
        accv = F::vop(accv, v);
        i += F::LANES;
    }
    // Horizontal fold of the lane accumulators (commutative families
    // only reach this module, so lane-striding is exact for integers).
    let mut acc = F::op(init, F::last(scan_group::<F>(accv, id)));
    while i < n {
        acc = F::op(acc, *xs.get_unchecked(i));
        i += 1;
    }
    acc
}

// ---- safe wrappers for the dispatch table -------------------------------
//
// SAFETY (all five): the dispatch table in `super` hands these out only
// after `is_x86_feature_detected!("avx2")` succeeded for the process, so
// the `target_feature` contract of the inner drivers holds.

pub(crate) fn excl_scan_into<F: VecFamily>(
    values: &[F::Elem],
    out: &mut [F::Elem],
    carry: F::Elem,
) -> F::Elem {
    unsafe { excl_scan_into_v::<F>(values, out, carry) }
}

pub(crate) fn excl_scan_inplace<F: VecFamily>(xs: &mut [F::Elem], carry: F::Elem) -> F::Elem {
    unsafe { excl_scan_inplace_v::<F>(xs, carry) }
}

pub(crate) fn incl_scan_inplace<F: VecFamily>(xs: &mut [F::Elem], carry: F::Elem) -> F::Elem {
    unsafe { incl_scan_inplace_v::<F>(xs, carry) }
}

pub(crate) fn combine_broadcast<F: VecFamily>(acc: F::Elem, xs: &mut [F::Elem]) {
    unsafe { combine_broadcast_v::<F>(acc, xs) }
}

pub(crate) fn reduce<F: VecFamily>(init: F::Elem, xs: &[F::Elem]) -> F::Elem {
    unsafe { reduce_v::<F>(init, xs) }
}
