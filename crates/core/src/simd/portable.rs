//! The portable kernels: the non-x86 leg of the dispatch table and the
//! surface Miri verifies.
//!
//! Each driver keeps the **same left-fold association** as the scalar
//! engines, so results are bit-identical for every family including
//! `f32`. The streaming passes (`combine_broadcast`, `reduce`) are plain
//! element loops over an inlined operator — the shape LLVM's
//! autovectorizer handles well for the integer families — and the scans
//! are unrolled four-wide for instruction-level parallelism of the
//! load/store traffic (the carry chain itself is inherently serial).

use super::ScalarFamily;

pub(crate) fn excl_scan_into<F: ScalarFamily>(
    values: &[F::Elem],
    out: &mut [F::Elem],
    carry: F::Elem,
) -> F::Elem {
    debug_assert_eq!(values.len(), out.len());
    let mut acc = carry;
    let mut vs = values.chunks_exact(4);
    let mut os = out.chunks_exact_mut(4);
    for (v, o) in (&mut vs).zip(&mut os) {
        o[0] = acc;
        acc = F::op(acc, v[0]);
        o[1] = acc;
        acc = F::op(acc, v[1]);
        o[2] = acc;
        acc = F::op(acc, v[2]);
        o[3] = acc;
        acc = F::op(acc, v[3]);
    }
    for (&v, o) in vs.remainder().iter().zip(os.into_remainder()) {
        *o = acc;
        acc = F::op(acc, v);
    }
    acc
}

pub(crate) fn excl_scan_inplace<F: ScalarFamily>(xs: &mut [F::Elem], carry: F::Elem) -> F::Elem {
    let mut acc = carry;
    let mut chunks = xs.chunks_exact_mut(4);
    for c in &mut chunks {
        for x in c {
            let v = *x;
            *x = acc;
            acc = F::op(acc, v);
        }
    }
    for x in chunks.into_remainder() {
        let v = *x;
        *x = acc;
        acc = F::op(acc, v);
    }
    acc
}

pub(crate) fn incl_scan_inplace<F: ScalarFamily>(xs: &mut [F::Elem], carry: F::Elem) -> F::Elem {
    let mut acc = carry;
    let mut chunks = xs.chunks_exact_mut(4);
    for c in &mut chunks {
        for x in c {
            acc = F::op(acc, *x);
            *x = acc;
        }
    }
    for x in chunks.into_remainder() {
        acc = F::op(acc, *x);
        *x = acc;
    }
    acc
}

pub(crate) fn combine_broadcast<F: ScalarFamily>(acc: F::Elem, xs: &mut [F::Elem]) {
    for x in xs {
        *x = F::op(acc, *x);
    }
}

pub(crate) fn reduce<F: ScalarFamily>(init: F::Elem, xs: &[F::Elem]) -> F::Elem {
    xs.iter().fold(init, |a, &b| F::op(a, b))
}
