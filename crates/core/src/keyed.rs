//! Multiprefix over arbitrary keys: label compression.
//!
//! The paper's operation takes small-integer labels in `[0, m)`. Real
//! inputs are keyed by whatever the application has — strings, tuples,
//! sparse 64-bit ids. This module maps arbitrary hashable keys to dense
//! labels (first-occurrence order, so the mapping itself is deterministic)
//! and runs the multiprefix; the reductions come back keyed.
//!
//! This is the unsorted-label analogue of a `scan_by_key` (which existing
//! libraries only provide for *pre-sorted* keys — the point of the paper
//! is that no sort is needed).

use crate::api::{multiprefix, Engine};
use crate::error::MpError;
use crate::op::CombineOp;
use crate::problem::Element;
use std::collections::HashMap;
use std::hash::Hash;

/// Result of a keyed multiprefix.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedOutput<K, T> {
    /// Per-element exclusive prefix (same semantics as
    /// [`crate::MultiprefixOutput::sums`]).
    pub sums: Vec<T>,
    /// Distinct keys in first-occurrence order.
    pub keys: Vec<K>,
    /// `reductions[j]` is the ⊕ of all values whose key is `keys[j]`.
    pub reductions: Vec<T>,
}

impl<K: Eq + Hash + Clone, T: Copy> KeyedOutput<K, T> {
    /// The reduction for one key, if it occurred.
    pub fn reduction_for(&self, key: &K) -> Option<T> {
        self.keys
            .iter()
            .position(|k| k == key)
            .map(|j| self.reductions[j])
    }

    /// Reductions as a hash map.
    pub fn into_map(self) -> HashMap<K, T> {
        self.keys.into_iter().zip(self.reductions).collect()
    }
}

/// Compress arbitrary keys to dense labels in first-occurrence order.
/// Returns `(labels, distinct_keys)`.
pub fn compress_keys<K: Eq + Hash + Clone>(keys: &[K]) -> (Vec<usize>, Vec<K>) {
    let mut ids: HashMap<K, usize> = HashMap::new();
    let mut distinct: Vec<K> = Vec::new();
    let labels = keys
        .iter()
        .map(|k| {
            *ids.entry(k.clone()).or_insert_with(|| {
                distinct.push(k.clone());
                distinct.len() - 1
            })
        })
        .collect();
    (labels, distinct)
}

/// Multiprefix keyed by arbitrary hashable keys: for each element, the ⊕
/// of all preceding values with an equal key.
///
/// ```
/// use multiprefix::keyed::multiprefix_by_key;
/// use multiprefix::{op::Plus, Engine};
///
/// let values = [10i64, 1, 20, 2, 30];
/// let keys = ["a", "b", "a", "b", "a"];
/// let out = multiprefix_by_key(&values, &keys, Plus, Engine::Auto).unwrap();
/// assert_eq!(out.sums, vec![0, 0, 10, 1, 30]);
/// assert_eq!(out.reduction_for(&"a"), Some(60));
/// assert_eq!(out.reduction_for(&"b"), Some(3));
/// ```
pub fn multiprefix_by_key<K: Eq + Hash + Clone, T: Element, O: CombineOp<T>>(
    values: &[T],
    keys: &[K],
    op: O,
    engine: Engine,
) -> Result<KeyedOutput<K, T>, MpError> {
    if values.len() != keys.len() {
        return Err(MpError::LengthMismatch {
            values: values.len(),
            labels: keys.len(),
        });
    }
    let (labels, distinct) = compress_keys(keys);
    let out = multiprefix(values, &labels, distinct.len(), op, engine)?;
    Ok(KeyedOutput {
        sums: out.sums,
        keys: distinct,
        reductions: out.reductions,
    })
}

/// Multireduce keyed by arbitrary hashable keys ("group-by ⊕").
pub fn multireduce_by_key<K: Eq + Hash + Clone, T: Element, O: CombineOp<T>>(
    values: &[T],
    keys: &[K],
    op: O,
    engine: Engine,
) -> Result<(Vec<K>, Vec<T>), MpError> {
    if values.len() != keys.len() {
        return Err(MpError::LengthMismatch {
            values: values.len(),
            labels: keys.len(),
        });
    }
    let (labels, distinct) = compress_keys(keys);
    let red = crate::api::multireduce(values, &labels, distinct.len(), op, engine)?;
    Ok((distinct, red))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Max, Plus};

    #[test]
    fn compression_is_first_occurrence_ordered() {
        let (labels, keys) = compress_keys(&["x", "y", "x", "z", "y"]);
        assert_eq!(labels, vec![0, 1, 0, 2, 1]);
        assert_eq!(keys, vec!["x", "y", "z"]);
    }

    #[test]
    fn string_keys() {
        let values = [1i64, 2, 3, 4, 5];
        let keys = ["apple", "pear", "apple", "apple", "pear"];
        let out = multiprefix_by_key(&values, &keys, Plus, Engine::Serial).unwrap();
        assert_eq!(out.sums, vec![0, 0, 1, 4, 2]);
        assert_eq!(out.reduction_for(&"apple"), Some(8));
        assert_eq!(out.reduction_for(&"pear"), Some(7));
        assert_eq!(out.reduction_for(&"plum"), None);
    }

    #[test]
    fn tuple_keys_with_max() {
        let values = [5i64, 9, 2, 7];
        let keys = [(1, 'a'), (2, 'b'), (1, 'a'), (2, 'b')];
        let out = multiprefix_by_key(&values, &keys, Max, Engine::Serial).unwrap();
        assert_eq!(out.sums, vec![i64::MIN, i64::MIN, 5, 9]);
        assert_eq!(out.reduction_for(&(1, 'a')), Some(5));
        assert_eq!(out.reduction_for(&(2, 'b')), Some(9));
    }

    #[test]
    fn sparse_u64_ids_via_blocked_engine() {
        let n = 50_000usize;
        let values: Vec<i64> = (0..n as i64).collect();
        let keys: Vec<u64> = (0..n)
            .map(|i| ((i * 2654435761) as u64) << 13 | (i % 7) as u64)
            .collect();
        let out = multiprefix_by_key(&values, &keys, Plus, Engine::Blocked).unwrap();
        // Cross-check a few positions against a serial map.
        let mut seen: HashMap<u64, i64> = HashMap::new();
        for i in 0..n {
            let e = seen.entry(keys[i]).or_insert(0);
            assert_eq!(out.sums[i], *e, "at {i}");
            *e += values[i];
        }
    }

    #[test]
    fn reduce_by_key_groups() {
        let values = [1u64, 2, 3, 4];
        let keys = ["a", "b", "a", "b"];
        let (ks, reds) = multireduce_by_key(&values, &keys, Plus, Engine::Serial).unwrap();
        assert_eq!(ks, vec!["a", "b"]);
        assert_eq!(reds, vec![4, 6]);
    }

    #[test]
    fn into_map() {
        let out = multiprefix_by_key(&[1i64, 2], &["k", "k"], Plus, Engine::Serial).unwrap();
        let map = out.into_map();
        assert_eq!(map.get("k"), Some(&3));
    }

    #[test]
    fn length_mismatch_reported() {
        let err = multiprefix_by_key(&[1i64], &["a", "b"], Plus, Engine::Serial).unwrap_err();
        assert!(matches!(
            err,
            MpError::LengthMismatch {
                values: 1,
                labels: 2
            }
        ));
    }

    #[test]
    fn empty() {
        let out = multiprefix_by_key::<&str, i64, _>(&[], &[], Plus, Engine::Serial).unwrap();
        assert!(out.sums.is_empty());
        assert!(out.keys.is_empty());
    }
}
