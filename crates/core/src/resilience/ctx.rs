//! Deadlines, cooperative cancellation and the per-run context every
//! hardened engine threads through its loops.
//!
//! A [`RunContext`] carries three optional controls:
//!
//! * a [`Deadline`] — a wall-clock instant after which the run must stop;
//! * a [`CancelToken`] — a shared flag the caller (or another thread) can
//!   flip to abandon the run;
//! * a chaos hook ([`crate::resilience::ChaosState`]) — the fault-injection
//!   stream of the soak harness.
//!
//! Engines consult the context at **checkpoints**: once at entry, at every
//! phase boundary, and every [`CHECK_STRIDE`] iterations inside the
//! SPINETREE/ROWSUMS/SPINESUMS/MULTISUMS (and Figure-2 / chunk) loops. A
//! checkpoint that fails makes the engine unwind with a typed
//! [`MpError`] before any output buffer is returned — the caller observes
//! either a complete, correct result or an error, never a partial buffer.
//! An empty context's checkpoint is three `None` tests; the plain
//! (non-`try`) engines never checkpoint at all.

use crate::error::MpError;
use crate::obs::{phase_key, Phase, Recorder, Span};
use crate::resilience::chaos::ChaosState;
use crate::resilience::dispatcher::EngineKind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many inner-loop iterations an engine may run between two context
/// checkpoints. Small enough that a cancel/deadline is honored promptly
/// (microseconds of work per stride), large enough that the per-element
/// cost of checkpointing is unmeasurable.
pub const CHECK_STRIDE: usize = 4096;

/// Test-only instrumentation: counts, per thread, how many times a
/// [`Deadline`] method read the wall clock. The shed-scan pin test uses it
/// to prove a full-lane victim scan performs no clock reads at all (it
/// compares stored absolute instants instead).
#[cfg(test)]
pub(crate) mod clock_probe {
    use std::cell::Cell;

    thread_local! {
        static CLOCK_READS: Cell<u64> = const { Cell::new(0) };
    }

    pub(crate) fn count() -> u64 {
        CLOCK_READS.with(Cell::get)
    }

    pub(super) fn record() {
        CLOCK_READS.with(|c| c.set(c.get() + 1));
    }
}

#[cfg(test)]
fn probed_now() -> Instant {
    clock_probe::record();
    Instant::now()
}

#[cfg(not(test))]
#[inline(always)]
fn probed_now() -> Instant {
    Instant::now()
}

/// A wall-clock deadline for one run (or one dispatch attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline(Instant);

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline(Instant::now() + budget)
    }

    /// A deadline at an explicit instant.
    pub fn at(instant: Instant) -> Self {
        Deadline(instant)
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        probed_now() >= self.0
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.0.saturating_duration_since(probed_now())
    }

    /// The underlying instant.
    pub fn instant(&self) -> Instant {
        self.0
    }

    /// The earlier of two deadlines.
    pub fn min(self, other: Deadline) -> Deadline {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

struct TokenInner {
    cancelled: AtomicBool,
    /// Checkpoint fuse for deterministic testing: `u64::MAX` means "never
    /// auto-cancel"; any other value counts down one per poll and cancels
    /// when it reaches zero.
    fuse: AtomicU64,
}

/// A cooperative cancellation flag, shareable across threads.
///
/// Cloning yields another handle to the *same* flag; cancelling any handle
/// cancels every run holding one. Engines poll the token at checkpoints and
/// return [`MpError::Cancelled`], so cancellation is prompt (within one
/// [`CHECK_STRIDE`] of work) but never tears an output buffer.
///
/// ```
/// use multiprefix::resilience::CancelToken;
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                fuse: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// A token that cancels itself at the `n`-th engine checkpoint poll
    /// (`n = 0` cancels at the very first). This is the deterministic
    /// injection point of the cancellation-safety tests: it lets a test
    /// place the cancellation at *any* phase boundary or stride check
    /// without racing a second thread.
    pub fn cancel_after(n: u64) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(n == 0),
                fuse: AtomicU64::new(n),
            }),
        }
    }

    /// Flip the flag: every subsequent checkpoint fails with
    /// [`MpError::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Current state (does not consume a fuse poll).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Checkpoint-time poll: burns one fuse count, then reports the flag.
    fn poll(&self) -> bool {
        let fuse = self.inner.fuse.load(Ordering::Relaxed);
        if fuse != u64::MAX {
            let prev = self
                .inner
                .fuse
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                    if f == u64::MAX || f == 0 {
                        None
                    } else {
                        Some(f - 1)
                    }
                });
            // `Ok(f)` burned one of the remaining allowed polls; only an
            // already-exhausted fuse (`Err(0)`) trips the cancellation.
            if prev == Err(0) {
                self.cancel();
            }
        }
        self.is_cancelled()
    }
}

/// Everything a hardened engine run needs to know about *when to stop*:
/// deadline, cancellation, and (in tests) fault injection.
///
/// `RunContext::default()` is the unbounded context — every checkpoint
/// passes — and is what the plain `try_*` entry points use. Build a bounded
/// one with the `with_*` methods and pass it to the `*_ctx` entry points
/// ([`crate::try_multiprefix_ctx`]) or let a
/// [`crate::resilience::Dispatcher`] construct one per attempt.
#[derive(Debug, Clone, Default)]
pub struct RunContext {
    deadline: Option<Deadline>,
    cancel: Option<CancelToken>,
    chaos: Option<Arc<ChaosState>>,
    engine: Option<EngineKind>,
    recorder: Option<Arc<dyn Recorder>>,
}

impl RunContext {
    /// The unbounded context: no deadline, no cancellation, no chaos.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the run by `deadline`.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bound the run by a fresh deadline `budget` from now.
    pub fn with_timeout(self, budget: Duration) -> Self {
        self.with_deadline(Deadline::after(budget))
    }

    /// Attach a cancellation token (cloned; the caller keeps its handle).
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Attach a chaos fault-injection stream (testing / soak harness).
    pub fn with_chaos(mut self, chaos: Arc<ChaosState>) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Tag the context with the engine about to run it, so a targeted
    /// [`crate::resilience::ChaosPlan`] can fault one engine and spare the
    /// rest. The dispatcher sets this per attempt.
    pub fn for_engine(mut self, engine: EngineKind) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Attach an observability [`Recorder`]: engines time their phases
    /// into it (see [`crate::obs`]). With none attached — the default —
    /// every instrumentation site reduces to one `None` test and **no
    /// clock is read**, so uninstrumented runs carry no overhead.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&dyn Recorder> {
        self.recorder.as_deref()
    }

    /// A shared handle to the recorder, for components (the socket
    /// transport's connection keeper) that outlive a single borrow of the
    /// context.
    pub(crate) fn recorder_arc(&self) -> Option<Arc<dyn Recorder>> {
        self.recorder.clone()
    }

    /// Start a [`Span`] timing `phase` of the context's engine (tagged via
    /// [`Self::for_engine`]). Inert — returns `None` without reading a
    /// clock — when no recorder is attached or the engine tag is unset.
    #[inline]
    pub fn phase_span(&self, phase: Phase) -> Option<Span<'_>> {
        match (self.recorder.as_deref(), self.engine) {
            (Some(rec), Some(engine)) => Span::begin(Some(rec), phase_key(engine, phase)),
            _ => None,
        }
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// The attached chaos stream, if any — used by the chunked engine's
    /// local phase to fire per-chunk worker faults.
    pub(crate) fn chaos(&self) -> Option<&ChaosState> {
        self.chaos.as_deref()
    }

    /// A shared handle to the chaos stream, for components (the shard
    /// transport) that outlive a single borrow of the context.
    pub(crate) fn chaos_arc(&self) -> Option<Arc<ChaosState>> {
        self.chaos.clone()
    }

    /// True when every checkpoint is a no-op (no deadline, cancel or chaos).
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none() && self.chaos.is_none()
    }

    /// One cooperative checkpoint: cancellation first (an explicit user
    /// intent outranks a timer), then the deadline, then chaos injection.
    ///
    /// Engines call this at entry, at phase boundaries, and every
    /// [`CHECK_STRIDE`] inner iterations; a failure propagates out as the
    /// run's result, with no partially-written output escaping.
    #[inline]
    pub fn checkpoint(&self) -> Result<(), MpError> {
        if let Some(cancel) = &self.cancel {
            if cancel.poll() {
                return Err(MpError::Cancelled);
            }
        }
        if let Some(deadline) = &self.deadline {
            if deadline.expired() {
                return Err(MpError::DeadlineExceeded);
            }
        }
        if let Some(chaos) = &self.chaos {
            // The deadline rides along so an injected stall is clamped to
            // the attempt's remaining budget.
            chaos.inject(self.engine, self.deadline)?;
        }
        Ok(())
    }

    /// [`Self::checkpoint`] once every [`CHECK_STRIDE`] calls — the form
    /// the engines' inner loops use with their running element index.
    #[inline(always)]
    pub fn checkpoint_every(&self, i: usize) -> Result<(), MpError> {
        if i.is_multiple_of(CHECK_STRIDE) {
            self.checkpoint()
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_context_always_passes() {
        let ctx = RunContext::new();
        assert!(ctx.is_unbounded());
        for i in 0..10_000 {
            assert!(ctx.checkpoint_every(i).is_ok());
        }
    }

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let ctx = RunContext::new().with_cancel(&token);
        assert!(ctx.checkpoint().is_ok());
        token.cancel();
        assert_eq!(ctx.checkpoint(), Err(MpError::Cancelled));
        // Cancellation is sticky.
        assert_eq!(ctx.checkpoint(), Err(MpError::Cancelled));
    }

    #[test]
    fn cancel_after_fires_at_exact_poll() {
        for n in 0..5u64 {
            let ctx = RunContext::new().with_cancel(&CancelToken::cancel_after(n));
            for poll in 0..n {
                assert!(ctx.checkpoint().is_ok(), "poll {poll} of fuse {n}");
            }
            assert_eq!(ctx.checkpoint(), Err(MpError::Cancelled), "fuse {n}");
        }
    }

    #[test]
    fn expired_deadline_fails_immediately() {
        let ctx = RunContext::new().with_deadline(Deadline::at(Instant::now()));
        assert_eq!(ctx.checkpoint(), Err(MpError::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_passes() {
        let ctx = RunContext::new().with_timeout(Duration::from_secs(3600));
        assert!(ctx.checkpoint().is_ok());
        assert!(ctx.deadline().is_some_and(|d| !d.expired()));
    }

    #[test]
    fn cancellation_outranks_deadline() {
        let ctx = RunContext::new()
            .with_cancel(&CancelToken::cancel_after(0))
            .with_deadline(Deadline::at(Instant::now()));
        assert_eq!(ctx.checkpoint(), Err(MpError::Cancelled));
    }

    #[test]
    fn deadline_min_and_remaining() {
        let near = Deadline::after(Duration::from_millis(1));
        let far = Deadline::after(Duration::from_secs(100));
        assert_eq!(near.min(far), near);
        assert_eq!(far.min(near), near);
        assert!(far.remaining() > Duration::from_secs(50));
    }
}
