//! Per-engine health tracking: a small circuit breaker.
//!
//! Each engine in a [`crate::resilience::Dispatcher`] fallback chain gets an
//! [`EngineHealth`]. Repeated failures trip the breaker **open** and the
//! dispatcher stops routing requests to that engine; after a cooldown the
//! breaker admits one **half-open** probe, and the probe's outcome decides
//! whether the engine rejoins the chain or trips again. The state machine:
//!
//! ```text
//!               failure × threshold                 cooldown elapses
//!   Closed ───────────────────────────▶ Open ───────────────────────▶ HalfOpen
//!     ▲                                  ▲                               │
//!     │            success               │            failure           │
//!     └──────────────────────────────────┴───────────────────────◀──────┘
//! ```
//!
//! Only dispatcher-level *transient* failures (allocation failures, engine
//! panics, deadline blowouts) count against an engine; input-validation
//! errors say nothing about engine health and are never recorded.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning knobs for one engine's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transient failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects requests before admitting a
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// The externally observable state of one engine's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: requests flow normally.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open,
    /// Probing: one request has been admitted after cooldown; its outcome
    /// re-closes or re-opens the breaker.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed {
        failures: u32,
    },
    Open {
        until: Instant,
    },
    /// Exactly one probe is outstanding; `probe_since` is when it was
    /// admitted, so a probe that never reports back (its thread died
    /// without reaching `on_success`/`on_failure`) can be reclaimed after
    /// another cooldown instead of wedging the breaker half-open forever.
    HalfOpen {
        probe_since: Instant,
    },
}

/// One engine's circuit breaker. Interior-mutable and thread-safe; the
/// dispatcher holds one per engine kind.
#[derive(Debug)]
pub struct EngineHealth {
    cfg: BreakerConfig,
    state: Mutex<State>,
}

impl EngineHealth {
    /// A fresh, closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        EngineHealth {
            cfg,
            state: Mutex::new(State::Closed { failures: 0 }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A poisoned lock means a panic elsewhere while holding it; the
        // state is a plain Copy enum, so the value is still coherent.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// May a request be routed to this engine right now? An open breaker
    /// whose cooldown has elapsed transitions to half-open and admits the
    /// caller as **the** probe; every other caller is rejected until that
    /// probe reports its outcome. The single state transition and the
    /// admit decision happen under one lock, so concurrent callers racing
    /// the cooldown edge see exactly one winner. A probe outstanding
    /// longer than a full cooldown is presumed lost and its slot handed to
    /// the current caller.
    pub fn admit(&self) -> bool {
        let mut state = self.lock();
        let now = Instant::now();
        match *state {
            State::Closed { .. } => true,
            State::HalfOpen { probe_since } => {
                if now.saturating_duration_since(probe_since) >= self.cfg.cooldown {
                    // The previous probe went dark; take over its slot.
                    *state = State::HalfOpen { probe_since: now };
                    true
                } else {
                    false
                }
            }
            State::Open { until } => {
                if now >= until {
                    *state = State::HalfOpen { probe_since: now };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful run: the breaker closes and the failure count
    /// resets.
    pub fn on_success(&self) {
        *self.lock() = State::Closed { failures: 0 };
    }

    /// Record a transient failure. A closed breaker trips open once the
    /// consecutive-failure threshold is reached; a half-open probe failure
    /// re-opens immediately.
    pub fn on_failure(&self) {
        let mut state = self.lock();
        *state = match *state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.cfg.failure_threshold {
                    State::Open {
                        until: Instant::now() + self.cfg.cooldown,
                    }
                } else {
                    State::Closed { failures }
                }
            }
            State::HalfOpen { .. } => State::Open {
                until: Instant::now() + self.cfg.cooldown,
            },
            open @ State::Open { .. } => open,
        };
    }

    /// The current observable state (does not consume the half-open probe;
    /// an open breaker past its cooldown still reports `Open` until a
    /// request asks to be admitted).
    pub fn state(&self) -> CircuitState {
        match *self.lock() {
            State::Closed { .. } => CircuitState::Closed,
            State::Open { .. } => CircuitState::Open,
            State::HalfOpen { .. } => CircuitState::HalfOpen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(10),
        }
    }

    #[test]
    fn stays_closed_below_threshold() {
        let h = EngineHealth::new(fast_cfg());
        h.on_failure();
        h.on_failure();
        assert_eq!(h.state(), CircuitState::Closed);
        assert!(h.admit());
    }

    #[test]
    fn trips_open_at_threshold_and_rejects() {
        let h = EngineHealth::new(fast_cfg());
        for _ in 0..3 {
            h.on_failure();
        }
        assert_eq!(h.state(), CircuitState::Open);
        assert!(!h.admit());
    }

    #[test]
    fn success_resets_the_failure_count() {
        let h = EngineHealth::new(fast_cfg());
        h.on_failure();
        h.on_failure();
        h.on_success();
        h.on_failure();
        h.on_failure();
        assert_eq!(h.state(), CircuitState::Closed);
    }

    #[test]
    fn cooldown_admits_a_half_open_probe() {
        let h = EngineHealth::new(fast_cfg());
        for _ in 0..3 {
            h.on_failure();
        }
        assert!(!h.admit());
        std::thread::sleep(Duration::from_millis(15));
        assert!(h.admit());
        assert_eq!(h.state(), CircuitState::HalfOpen);
    }

    #[test]
    fn probe_success_closes() {
        let h = EngineHealth::new(fast_cfg());
        for _ in 0..3 {
            h.on_failure();
        }
        std::thread::sleep(Duration::from_millis(15));
        assert!(h.admit());
        h.on_success();
        assert_eq!(h.state(), CircuitState::Closed);
        assert!(h.admit());
    }

    #[test]
    fn probe_failure_reopens() {
        let h = EngineHealth::new(fast_cfg());
        for _ in 0..3 {
            h.on_failure();
        }
        std::thread::sleep(Duration::from_millis(15));
        assert!(h.admit());
        h.on_failure();
        assert_eq!(h.state(), CircuitState::Open);
        assert!(!h.admit());
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let h = EngineHealth::new(fast_cfg());
        for _ in 0..3 {
            h.on_failure();
        }
        std::thread::sleep(Duration::from_millis(15));
        assert!(h.admit(), "first caller wins the probe slot");
        // Losers are rejected without disturbing the breaker state.
        for _ in 0..10 {
            assert!(!h.admit());
        }
        assert_eq!(h.state(), CircuitState::HalfOpen);
        // The probe's success still closes the breaker normally.
        h.on_success();
        assert_eq!(h.state(), CircuitState::Closed);
    }

    #[test]
    fn concurrent_probes_admit_exactly_one() {
        // Interleaving check for the race the single-probe rule exists
        // for: many threads hit admit() at the same instant right after
        // the cooldown; exactly one may win, and the losers must not
        // double-transition the breaker.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::{Arc, Barrier};

        for round in 0..20 {
            let h = Arc::new(EngineHealth::new(BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_millis(1),
            }));
            h.on_failure();
            assert_eq!(h.state(), CircuitState::Open);
            std::thread::sleep(Duration::from_millis(2));

            let threads = 8;
            let barrier = Arc::new(Barrier::new(threads));
            let admitted = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let h = Arc::clone(&h);
                    let barrier = Arc::clone(&barrier);
                    let admitted = Arc::clone(&admitted);
                    std::thread::spawn(move || {
                        barrier.wait();
                        if h.admit() {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
            assert_eq!(
                admitted.load(Ordering::Relaxed),
                1,
                "round {round}: exactly one concurrent probe may be admitted"
            );
            assert_eq!(h.state(), CircuitState::HalfOpen);
        }
    }

    #[test]
    fn lost_probe_slot_is_reclaimed_after_a_cooldown() {
        let h = EngineHealth::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(5),
        });
        h.on_failure();
        std::thread::sleep(Duration::from_millis(8));
        assert!(h.admit(), "probe admitted");
        assert!(!h.admit(), "slot taken");
        // The probe never reports back; after another cooldown the slot is
        // handed to a new caller instead of wedging half-open forever.
        std::thread::sleep(Duration::from_millis(8));
        assert!(h.admit(), "dark probe's slot reclaimed");
        assert_eq!(h.state(), CircuitState::HalfOpen);
    }
}
