//! The resilient dispatcher: fallback chains, retries with jittered
//! backoff, and per-engine circuit breakers over the hardened engines.
//!
//! The paper's central observation — serial, spinetree and
//! blocked/vectorized implementations compute the *same* operation — is
//! exactly the raw material for graceful degradation: if one implementation
//! is slow, wedged or failing, another can serve the identical request. A
//! [`Dispatcher`] packages that:
//!
//! * a configurable **fallback chain** of [`EngineKind`]s, tried in order
//!   (default `Chunked → Blocked → Spinetree → Serial`);
//! * per-attempt and per-request **deadlines** and a caller-supplied
//!   [`crate::resilience::CancelToken`], threaded into every engine via
//!   [`crate::resilience::RunContext`] checkpoints;
//! * **retry with jittered exponential backoff** for *transient* failures
//!   ([`MpError::AllocationFailed`], [`MpError::EnginePanicked`], injected
//!   chaos faults) — permanent errors (validation, overflow, budgets)
//!   return immediately;
//! * a per-engine **circuit breaker** ([`crate::resilience::EngineHealth`])
//!   that trips a repeatedly failing engine out of the chain and probes it
//!   back in after a cooldown.
//!
//! Every successful dispatch returns the canonical result — bit-identical
//! to the serial (Figure 2) oracle under the configured
//! [`crate::exec::OverflowPolicy`] — no matter which engine served it; a
//! failed dispatch returns a typed [`MpError`]. Wrong answers and hangs are
//! not in the outcome space: engines are checkpoint-bounded and the
//! dispatcher contains their panics.

use crate::atomic::{
    try_multiprefix_atomic_cfg_ctx, try_multireduce_atomic_cfg_ctx, AtomicCombine,
};
use crate::blocked::{try_multiprefix_blocked_ctx, try_multireduce_blocked_ctx};
use crate::chunked::{
    try_multiprefix_chunked_cfg_ctx, try_multiprefix_chunked_ws_ctx,
    try_multireduce_chunked_cfg_ctx, try_multireduce_chunked_ws_ctx, ChunkedWorkspace,
};
use crate::error::MpError;
use crate::exec::{estimate_engine_mem, ExecConfig, TryEngineResult};
use crate::obs::Recorder;
use crate::op::TryCombineOp;
use crate::problem::{validate_slices, Element, MultiprefixOutput};
use crate::resilience::chaos::ChaosState;
use crate::resilience::ctx::{CancelToken, Deadline, RunContext};
use crate::resilience::health::{BreakerConfig, CircuitState, EngineHealth};
use crate::serial::{try_multiprefix_serial_ctx, try_multireduce_serial_ctx};
use crate::shard::{ShardConfig, ShardSupervisor};
use crate::spinetree::{try_multiprefix_spinetree_ctx, try_multireduce_spinetree_ctx};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The engines a [`Dispatcher`] chain can name.
///
/// Unlike [`crate::Engine`] (the plain API's selector), this includes the
/// `i64`-only atomic engine: the dispatcher knows per-call whether the
/// element type supports it and silently skips it (counting a fallback)
/// when it does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The genuinely concurrent CRCW-ARB engine ([`crate::atomic`];
    /// `i64` + commutative operators only).
    Atomic,
    /// The fault-tolerant sharded engine ([`crate::shard`]): chunked phases
    /// distributed across supervised shard workers with shard-loss
    /// recovery. Opt-in: skipped unless [`DispatcherConfig::shard`] is set.
    Sharded,
    /// The two-level local/combine/apply engine with compact reusable
    /// bucket tables ([`crate::chunked`]) — the default primary.
    Chunked,
    /// The chunked rayon engine ([`crate::blocked`]).
    Blocked,
    /// The paper's `O(√n)`-step spinetree engine ([`crate::spinetree`]).
    Spinetree,
    /// The Figure 2 reference loop ([`crate::serial`]) — the engine of last
    /// resort: no parallel runtime, no auxiliary structures.
    Serial,
}

impl EngineKind {
    /// All engine kinds, in default-chain preference order.
    pub const ALL: [EngineKind; 6] = [
        EngineKind::Atomic,
        EngineKind::Sharded,
        EngineKind::Chunked,
        EngineKind::Blocked,
        EngineKind::Spinetree,
        EngineKind::Serial,
    ];

    fn index(self) -> usize {
        match self {
            EngineKind::Atomic => 0,
            EngineKind::Sharded => 1,
            EngineKind::Chunked => 2,
            EngineKind::Blocked => 3,
            EngineKind::Spinetree => 4,
            EngineKind::Serial => 5,
        }
    }

    /// Static (allocation-free) instrument keys for this engine:
    /// `(attempt latency histogram, attempts counter, retries counter,
    /// breaker event stream)`.
    fn obs_keys(self) -> (&'static str, &'static str, &'static str, &'static str) {
        macro_rules! keys {
            ($name:literal) => {
                (
                    concat!("dispatch.", $name, ".attempt_ns"),
                    concat!("dispatch.", $name, ".attempts"),
                    concat!("dispatch.", $name, ".retries"),
                    concat!("dispatch.breaker.", $name),
                )
            };
        }
        match self {
            EngineKind::Atomic => keys!("atomic"),
            EngineKind::Sharded => keys!("shard"),
            EngineKind::Chunked => keys!("chunked"),
            EngineKind::Blocked => keys!("blocked"),
            EngineKind::Spinetree => keys!("spinetree"),
            EngineKind::Serial => keys!("serial"),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            EngineKind::Atomic => "atomic",
            EngineKind::Sharded => "shard",
            EngineKind::Chunked => "chunked",
            EngineKind::Blocked => "blocked",
            EngineKind::Spinetree => "spinetree",
            EngineKind::Serial => "serial",
        };
        f.write_str(name)
    }
}

/// Retry discipline for transient failures within one engine of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per engine (including the first); must be at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Ceiling on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream (each sleep lands uniformly
    /// in `[backoff/2, backoff]`). Fixed seed ⇒ reproducible schedules.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x5EED,
        }
    }
}

/// Full dispatcher configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatcherConfig {
    /// Engines to try, in order. The first healthy, admitted, type-capable
    /// engine serves the request; later entries are fallbacks.
    pub chain: Vec<EngineKind>,
    /// Hardened-execution config (overflow policy, budgets) applied to
    /// every attempt.
    pub exec: ExecConfig,
    /// Wall-clock budget for a single engine attempt (`None` = unbounded).
    pub attempt_timeout: Option<Duration>,
    /// Wall-clock budget for the whole dispatch — all engines, retries and
    /// backoff sleeps included (`None` = unbounded).
    pub request_timeout: Option<Duration>,
    /// Retry discipline per engine.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning, shared by all engines in the chain.
    pub breaker: BreakerConfig,
    /// Opt-in sharded execution: when set, the dispatcher owns a
    /// [`ShardSupervisor`] (so per-shard breaker state persists across
    /// requests) and [`EngineKind::Sharded`] chain entries participate.
    /// When `None` (the default) sharded entries are skipped as
    /// unsupported, exactly like [`EngineKind::Atomic`] for non-`i64`
    /// dispatches.
    pub shard: Option<ShardConfig>,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig {
            chain: vec![
                EngineKind::Chunked,
                EngineKind::Blocked,
                EngineKind::Spinetree,
                EngineKind::Serial,
            ],
            exec: ExecConfig::default(),
            attempt_timeout: None,
            request_timeout: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            shard: None,
        }
    }
}

/// Per-call options: cancellation, a per-request deadline, and (in tests)
/// chaos injection.
#[derive(Debug, Clone, Default)]
pub struct DispatchOpts {
    /// Cooperative cancellation handle for this request.
    pub cancel: Option<CancelToken>,
    /// A deadline for **this request** (combined, earliest-wins, with the
    /// dispatcher-wide [`DispatcherConfig::request_timeout`]). This is how
    /// a [`crate::service::Service`] propagates a caller's deadline through
    /// queueing: a request that spent its budget waiting is rejected at the
    /// first pre-attempt check — before any engine runs — rather than after
    /// a wasted execution.
    pub deadline: Option<Deadline>,
    /// Armed chaos plan faulting this request's engine checkpoints.
    pub chaos: Option<Arc<ChaosState>>,
}

/// A successful dispatch: the result plus how it was obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchOutcome<R> {
    /// The canonical result (identical to the serial oracle's).
    pub output: R,
    /// The engine that served the request.
    pub engine: EngineKind,
    /// Engine attempts actually executed (≥ 1).
    pub attempts: u32,
    /// Chain entries skipped or exhausted before the serving engine
    /// (unsupported type, open breaker, or failed out).
    pub fallbacks: u32,
}

/// The `before->after` label of a circuit-breaker transition, as recorded
/// in `dispatch.breaker.<kind>` event streams.
fn transition_name(before: CircuitState, after: CircuitState) -> &'static str {
    use CircuitState::{Closed, HalfOpen, Open};
    match (before, after) {
        (Closed, Open) => "closed->open",
        (Closed, HalfOpen) => "closed->half_open",
        (Open, Closed) => "open->closed",
        (Open, HalfOpen) => "open->half_open",
        (HalfOpen, Closed) => "half_open->closed",
        (HalfOpen, Open) => "half_open->open",
        (Closed, Closed) | (Open, Open) | (HalfOpen, HalfOpen) => "no-op",
    }
}

/// Deterministic xorshift64* stream for backoff jitter — no OS entropy, so
/// a fixed [`RetryPolicy::jitter_seed`] reproduces the schedule exactly.
struct JitterRng(u64);

impl JitterRng {
    fn new(seed: u64) -> Self {
        JitterRng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The resilient dispatch runtime. See the module docs for the model.
///
/// ```
/// use multiprefix::op::Plus;
/// use multiprefix::resilience::{Dispatcher, DispatcherConfig, DispatchOpts};
///
/// let dispatcher = Dispatcher::new(DispatcherConfig::default()).unwrap();
/// let outcome = dispatcher
///     .dispatch(&[1i64, 1, 1], &[0, 1, 0], 2, Plus, &DispatchOpts::default())
///     .unwrap();
/// assert_eq!(outcome.output.sums, vec![0, 0, 1]);
/// assert_eq!(outcome.output.reductions, vec![2, 1]);
/// ```
#[derive(Debug)]
pub struct Dispatcher {
    cfg: DispatcherConfig,
    health: [EngineHealth; 6],
    recorder: Option<Arc<dyn Recorder>>,
    /// The sharded engine's orchestrator, present iff
    /// [`DispatcherConfig::shard`] is set. Owned here so shard breaker
    /// state and loss counters persist across requests.
    shard: Option<ShardSupervisor>,
}

impl Dispatcher {
    /// Build a dispatcher, rejecting configurations that could never serve
    /// a request ([`MpError::InvalidConfig`]).
    pub fn new(cfg: DispatcherConfig) -> Result<Self, MpError> {
        if cfg.chain.is_empty() {
            return Err(MpError::InvalidConfig {
                what: "fallback chain is empty",
            });
        }
        if cfg.retry.max_attempts == 0 {
            return Err(MpError::InvalidConfig {
                what: "retry max_attempts is zero",
            });
        }
        // Element-size-independent config checks; the per-call validation
        // re-runs with the real element size.
        cfg.exec.validate_for(1)?;
        let health = [
            EngineHealth::new(cfg.breaker),
            EngineHealth::new(cfg.breaker),
            EngineHealth::new(cfg.breaker),
            EngineHealth::new(cfg.breaker),
            EngineHealth::new(cfg.breaker),
            EngineHealth::new(cfg.breaker),
        ];
        let shard = cfg.shard.map(ShardSupervisor::new);
        Ok(Dispatcher {
            cfg,
            health,
            recorder: None,
            shard,
        })
    }

    /// Install an observability [`Recorder`] (see [`crate::obs`]). Per
    /// engine, the dispatcher records an attempt-latency histogram
    /// (`dispatch.<kind>.attempt_ns`), attempt and retry counters, and
    /// circuit-breaker state transitions as events
    /// (`dispatch.breaker.<kind>`: `closed->open` etc.); per request, the
    /// `dispatch.requests` / `dispatch.fallbacks` counters. The recorder is
    /// also threaded into each attempt's [`RunContext`], so engines time
    /// their phases into it. With no recorder — the default — none of this
    /// costs anything.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The installed recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
        self.recorder.as_ref()
    }

    /// The configuration in use.
    pub fn config(&self) -> &DispatcherConfig {
        &self.cfg
    }

    /// The circuit-breaker state of one engine.
    pub fn circuit_state(&self, kind: EngineKind) -> CircuitState {
        self.health_of(kind).state()
    }

    /// The sharded engine's supervisor, when [`DispatcherConfig::shard`] is
    /// configured — exposes shard-loss/requeue/degradation counters and
    /// per-shard breaker states.
    pub fn shard_supervisor(&self) -> Option<&ShardSupervisor> {
        self.shard.as_ref()
    }

    fn health_of(&self, kind: EngineKind) -> &EngineHealth {
        &self.health[kind.index()]
    }

    /// Dispatch a multiprefix over any [`Element`] type. [`EngineKind::Atomic`]
    /// entries in the chain are skipped (the atomic engine is `i64`-only —
    /// use [`Self::dispatch_i64`] to include it).
    pub fn dispatch<T: Element, O: TryCombineOp<T>>(
        &self,
        values: &[T],
        labels: &[usize],
        m: usize,
        op: O,
        opts: &DispatchOpts,
    ) -> Result<DispatchOutcome<MultiprefixOutput<T>>, MpError> {
        self.dispatch_inner(values, labels, m, op, opts, None)
    }

    /// [`Self::dispatch`] running any [`EngineKind::Chunked`] attempt in
    /// the caller's [`ChunkedWorkspace`] instead of fresh scratch — the
    /// zero-steady-state-allocation path a [`crate::service::Service`] uses
    /// with its workspace pool. Other engines in the chain are unaffected.
    pub fn dispatch_pooled<T: Element, O: TryCombineOp<T>>(
        &self,
        values: &[T],
        labels: &[usize],
        m: usize,
        op: O,
        opts: &DispatchOpts,
        ws: &mut ChunkedWorkspace<T>,
    ) -> Result<DispatchOutcome<MultiprefixOutput<T>>, MpError> {
        self.dispatch_inner(values, labels, m, op, opts, Some(ws))
    }

    fn dispatch_inner<T: Element, O: TryCombineOp<T>>(
        &self,
        values: &[T],
        labels: &[usize],
        m: usize,
        op: O,
        opts: &DispatchOpts,
        ws: Option<&mut ChunkedWorkspace<T>>,
    ) -> Result<DispatchOutcome<MultiprefixOutput<T>>, MpError> {
        self.validate_request::<T>(values, labels, m)?;
        let policy = self.cfg.exec.overflow;
        let exec = self.cfg.exec;
        // RefCell, not &mut, because `drive` takes a Fn it may call once per
        // attempt; a retried attempt re-borrows after the previous borrow
        // (even one dropped mid-unwind) has ended.
        let ws_cell = ws.map(std::cell::RefCell::new);
        self.drive(
            opts,
            |kind| {
                kind != EngineKind::Atomic && (kind != EngineKind::Sharded || self.shard.is_some())
            },
            |kind, ctx| {
                let tried: TryEngineResult<MultiprefixOutput<T>> = match kind {
                    EngineKind::Serial => {
                        return try_multiprefix_serial_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Spinetree => {
                        try_multiprefix_spinetree_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Blocked => {
                        try_multiprefix_blocked_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Chunked => match &ws_cell {
                        Some(cell) => {
                            let mut ws = cell.borrow_mut();
                            try_multiprefix_chunked_ws_ctx(
                                values, labels, m, op, exec, &mut ws, ctx,
                            )
                        }
                        None => try_multiprefix_chunked_cfg_ctx(values, labels, m, op, exec, ctx),
                    },
                    EngineKind::Sharded => match &self.shard {
                        Some(sup) => sup.try_multiprefix(values, labels, m, op, exec, ctx),
                        None => unreachable!(
                            "invariant: Sharded is filtered out of dispatch when unconfigured"
                        ),
                    },
                    EngineKind::Atomic => unreachable!(
                        "invariant: Atomic is filtered out of generic dispatch by `supports`"
                    ),
                };
                match tried? {
                    Some(out) => Ok(out),
                    // A checked combine tripped: canonicalize via serial
                    // replay under the same policy and context.
                    None => try_multiprefix_serial_ctx(values, labels, m, op, policy, ctx),
                }
            },
        )
    }

    /// [`Self::dispatch`] for `i64` with a commutative [`AtomicCombine`]
    /// operator — the one combination the concurrent atomic engine
    /// supports, so [`EngineKind::Atomic`] chain entries participate.
    pub fn dispatch_i64<O: AtomicCombine + TryCombineOp<i64>>(
        &self,
        values: &[i64],
        labels: &[usize],
        m: usize,
        op: O,
        opts: &DispatchOpts,
    ) -> Result<DispatchOutcome<MultiprefixOutput<i64>>, MpError> {
        self.validate_request::<i64>(values, labels, m)?;
        let policy = self.cfg.exec.overflow;
        let exec = self.cfg.exec;
        self.drive(
            opts,
            |kind| kind != EngineKind::Sharded || self.shard.is_some(),
            |kind, ctx| {
                let tried: TryEngineResult<MultiprefixOutput<i64>> = match kind {
                    EngineKind::Serial => {
                        return try_multiprefix_serial_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Spinetree => {
                        try_multiprefix_spinetree_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Blocked => {
                        try_multiprefix_blocked_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Chunked => {
                        try_multiprefix_chunked_cfg_ctx(values, labels, m, op, exec, ctx)
                    }
                    EngineKind::Sharded => match &self.shard {
                        Some(sup) => sup.try_multiprefix(values, labels, m, op, exec, ctx),
                        None => unreachable!(
                            "invariant: Sharded is filtered out of dispatch when unconfigured"
                        ),
                    },
                    EngineKind::Atomic => {
                        try_multiprefix_atomic_cfg_ctx(values, labels, m, op, exec, ctx)
                    }
                };
                match tried? {
                    Some(out) => Ok(out),
                    None => try_multiprefix_serial_ctx(values, labels, m, op, policy, ctx),
                }
            },
        )
    }

    /// Dispatch a multireduce (per-label reductions only). As with
    /// [`crate::try_multireduce`], a checking overflow policy always
    /// evaluates serially — a reduce-only engine cannot certify the
    /// serial-order semantics.
    pub fn dispatch_reduce<T: Element, O: TryCombineOp<T>>(
        &self,
        values: &[T],
        labels: &[usize],
        m: usize,
        op: O,
        opts: &DispatchOpts,
    ) -> Result<DispatchOutcome<Vec<T>>, MpError> {
        self.dispatch_reduce_inner(values, labels, m, op, opts, None)
    }

    /// [`Self::dispatch_reduce`] running [`EngineKind::Chunked`] attempts
    /// in the caller's [`ChunkedWorkspace`] (see [`Self::dispatch_pooled`]).
    pub fn dispatch_reduce_pooled<T: Element, O: TryCombineOp<T>>(
        &self,
        values: &[T],
        labels: &[usize],
        m: usize,
        op: O,
        opts: &DispatchOpts,
        ws: &mut ChunkedWorkspace<T>,
    ) -> Result<DispatchOutcome<Vec<T>>, MpError> {
        self.dispatch_reduce_inner(values, labels, m, op, opts, Some(ws))
    }

    fn dispatch_reduce_inner<T: Element, O: TryCombineOp<T>>(
        &self,
        values: &[T],
        labels: &[usize],
        m: usize,
        op: O,
        opts: &DispatchOpts,
        ws: Option<&mut ChunkedWorkspace<T>>,
    ) -> Result<DispatchOutcome<Vec<T>>, MpError> {
        self.validate_request::<T>(values, labels, m)?;
        let policy = self.cfg.exec.overflow;
        let exec = self.cfg.exec;
        let checking = policy.needs_checking();
        let ws_cell = ws.map(std::cell::RefCell::new);
        // Reduce dispatches have no sharded path (the sharded engine's
        // value is distributing the three-phase prefix; a reduce is served
        // fine by the single-node engines), so Sharded is skipped like any
        // other unsupported kind.
        self.drive(
            opts,
            |kind| kind != EngineKind::Atomic && kind != EngineKind::Sharded,
            |kind, ctx| {
                let tried: TryEngineResult<Vec<T>> = match kind {
                    _ if checking => {
                        return try_multireduce_serial_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Serial => {
                        return try_multireduce_serial_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Spinetree => {
                        try_multireduce_spinetree_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Blocked => {
                        try_multireduce_blocked_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Chunked => match &ws_cell {
                        Some(cell) => {
                            let mut ws = cell.borrow_mut();
                            try_multireduce_chunked_ws_ctx(
                                values, labels, m, op, exec, &mut ws, ctx,
                            )
                        }
                        None => try_multireduce_chunked_cfg_ctx(values, labels, m, op, exec, ctx),
                    },
                    EngineKind::Atomic | EngineKind::Sharded => unreachable!(
                        "invariant: Atomic and Sharded are filtered out of reduce dispatch by `supports`"
                    ),
                };
                match tried? {
                    Some(red) => Ok(red),
                    None => try_multireduce_serial_ctx(values, labels, m, op, policy, ctx),
                }
            },
        )
    }

    /// [`Self::dispatch_reduce`] for `i64` with an [`AtomicCombine`]
    /// operator, including [`EngineKind::Atomic`] chain entries.
    pub fn dispatch_reduce_i64<O: AtomicCombine + TryCombineOp<i64>>(
        &self,
        values: &[i64],
        labels: &[usize],
        m: usize,
        op: O,
        opts: &DispatchOpts,
    ) -> Result<DispatchOutcome<Vec<i64>>, MpError> {
        self.validate_request::<i64>(values, labels, m)?;
        let policy = self.cfg.exec.overflow;
        let exec = self.cfg.exec;
        let checking = policy.needs_checking();
        self.drive(
            opts,
            |kind| kind != EngineKind::Sharded,
            |kind, ctx| {
                let tried: TryEngineResult<Vec<i64>> = match kind {
                    _ if checking => {
                        return try_multireduce_serial_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Serial => {
                        return try_multireduce_serial_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Spinetree => {
                        try_multireduce_spinetree_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Blocked => {
                        try_multireduce_blocked_ctx(values, labels, m, op, policy, ctx)
                    }
                    EngineKind::Chunked => {
                        try_multireduce_chunked_cfg_ctx(values, labels, m, op, exec, ctx)
                    }
                    EngineKind::Sharded => unreachable!(
                        "invariant: Sharded is filtered out of reduce dispatch by `supports`"
                    ),
                    EngineKind::Atomic => {
                        try_multireduce_atomic_cfg_ctx(values, labels, m, op, exec, ctx)
                    }
                };
                match tried? {
                    Some(red) => Ok(red),
                    None => try_multireduce_serial_ctx(values, labels, m, op, policy, ctx),
                }
            },
        )
    }

    /// Input validation and budget checks, once per request (these are
    /// permanent failures — they say nothing about engine health and bypass
    /// the chain entirely).
    fn validate_request<T>(&self, values: &[T], labels: &[usize], m: usize) -> Result<(), MpError> {
        validate_slices(values, labels, m)?;
        self.cfg.exec.validate_for(std::mem::size_of::<T>())?;
        self.cfg.exec.check_buckets(m)?;
        self.cfg.exec.check_mem(estimate_engine_mem(
            values.len(),
            m,
            std::mem::size_of::<T>(),
        ))
    }

    /// The attempt loop shared by every dispatch flavor: walk the chain,
    /// retry transient failures with jittered backoff, honor breakers and
    /// deadlines, contain panics.
    fn drive<R>(
        &self,
        opts: &DispatchOpts,
        supports: impl Fn(EngineKind) -> bool,
        run: impl Fn(EngineKind, &RunContext) -> Result<R, MpError>,
    ) -> Result<DispatchOutcome<R>, MpError> {
        let mut request_deadline = self.cfg.request_timeout.map(Deadline::after);
        if let Some(d) = opts.deadline {
            request_deadline = Some(match request_deadline {
                Some(r) => r.min(d),
                None => d,
            });
        }
        let rec = self.recorder.as_deref();
        if let Some(rec) = rec {
            rec.counter("dispatch.requests", 1);
        }
        let mut jitter = JitterRng::new(self.cfg.retry.jitter_seed);
        let mut attempts = 0u32;
        let mut fallbacks = 0u32;
        let mut last_transient: Option<MpError> = None;

        'chain: for &kind in &self.cfg.chain {
            let (attempt_ns_key, attempts_key, retries_key, breaker_key) = kind.obs_keys();
            // Breaker transitions (closed->open, open->half_open, ...) are
            // reported as events by diffing the state around each breaker
            // interaction — the breaker itself stays recorder-free.
            let breaker_event = |before: CircuitState| {
                if let Some(rec) = rec {
                    let after = self.health_of(kind).state();
                    if after != before {
                        rec.event(breaker_key, transition_name(before, after));
                    }
                }
            };
            let pre_admit = match rec {
                Some(_) => self.health_of(kind).state(),
                None => CircuitState::Closed,
            };
            if !supports(kind) || !self.health_of(kind).admit() {
                breaker_event(pre_admit);
                fallbacks += 1;
                if let Some(rec) = rec {
                    rec.counter("dispatch.fallbacks", 1);
                }
                continue;
            }
            breaker_event(pre_admit);
            let mut backoff = self.cfg.retry.base_backoff;
            for attempt in 0..self.cfg.retry.max_attempts {
                if let Some(d) = request_deadline {
                    if d.expired() {
                        // The *request* deadline has passed: whatever
                        // transient error preceded it, the caller's budget
                        // is what actually ended the dispatch — report it
                        // as such (and let the service count it as
                        // `expired`, not as the last engine's failure).
                        return Err(MpError::DeadlineExceeded);
                    }
                }
                attempts += 1;
                if let Some(rec) = rec {
                    rec.counter(attempts_key, 1);
                    if attempt > 0 {
                        rec.counter(retries_key, 1);
                    }
                }
                let ctx = self.attempt_ctx(kind, request_deadline, opts);
                // Contain panics from *any* engine (and from chaos
                // injection): AssertUnwindSafe is sound because `run`
                // captures only shared references to the inputs and every
                // partially built output dies inside the closure.
                let started = rec.map(|_| Instant::now());
                let result = catch_unwind(AssertUnwindSafe(|| run(kind, &ctx)))
                    .unwrap_or(Err(MpError::EnginePanicked));
                if let (Some(rec), Some(started)) = (rec, started) {
                    let nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    rec.duration_ns(attempt_ns_key, nanos);
                }
                match result {
                    Ok(output) => {
                        let before = match rec {
                            Some(_) => self.health_of(kind).state(),
                            None => CircuitState::Closed,
                        };
                        self.health_of(kind).on_success();
                        breaker_event(before);
                        return Ok(DispatchOutcome {
                            output,
                            engine: kind,
                            attempts,
                            fallbacks,
                        });
                    }
                    // Explicit user intent: stop the whole dispatch, no
                    // fallback, no breaker bookkeeping.
                    Err(MpError::Cancelled) => return Err(MpError::Cancelled),
                    Err(err) if err.is_transient() => {
                        let before = match rec {
                            Some(_) => self.health_of(kind).state(),
                            None => CircuitState::Closed,
                        };
                        self.health_of(kind).on_failure();
                        breaker_event(before);
                        let blew_deadline = matches!(err, MpError::DeadlineExceeded);
                        last_transient = Some(err);
                        if blew_deadline {
                            // The same engine under the same budget would
                            // likely blow it again — move down the chain.
                            fallbacks += 1;
                            if let Some(rec) = rec {
                                rec.counter("dispatch.fallbacks", 1);
                            }
                            continue 'chain;
                        }
                        if attempt + 1 < self.cfg.retry.max_attempts {
                            self.backoff_sleep(backoff, &mut jitter, request_deadline);
                            if let Some(rec) = rec {
                                rec.counter("dispatch.backoff_sleeps", 1);
                            }
                            // Saturating: a huge `base_backoff` (or enough
                            // doublings) must clamp to `max_backoff`, not
                            // panic in `Duration` multiplication.
                            backoff = backoff.saturating_mul(2).min(self.cfg.retry.max_backoff);
                        }
                    }
                    // Permanent: validation, overflow, budget, verification
                    // failures are properties of the request, not the
                    // engine — no retry, no fallback.
                    Err(permanent) => return Err(permanent),
                }
            }
            fallbacks += 1;
            if let Some(rec) = rec {
                rec.counter("dispatch.fallbacks", 1);
            }
        }
        Err(last_transient.unwrap_or(MpError::Unavailable))
    }

    fn attempt_ctx(
        &self,
        kind: EngineKind,
        request_deadline: Option<Deadline>,
        opts: &DispatchOpts,
    ) -> RunContext {
        let mut ctx = RunContext::new().for_engine(kind);
        if let Some(rec) = &self.recorder {
            ctx = ctx.with_recorder(Arc::clone(rec));
        }
        let mut deadline = request_deadline;
        if let Some(budget) = self.cfg.attempt_timeout {
            let attempt_deadline = Deadline::after(budget);
            deadline = Some(match deadline {
                Some(d) => d.min(attempt_deadline),
                None => attempt_deadline,
            });
        }
        if let Some(d) = deadline {
            ctx = ctx.with_deadline(d);
        }
        if let Some(cancel) = &opts.cancel {
            ctx = ctx.with_cancel(cancel);
        }
        if let Some(chaos) = &opts.chaos {
            ctx = ctx.with_chaos(Arc::clone(chaos));
        }
        ctx
    }

    /// Sleep for a jittered backoff, clipped so the sleep itself cannot
    /// blow the request deadline.
    fn backoff_sleep(
        &self,
        backoff: Duration,
        jitter: &mut JitterRng,
        request_deadline: Option<Deadline>,
    ) {
        let nanos = backoff.as_nanos().min(u64::MAX as u128) as u64;
        let half = nanos / 2;
        let jittered = Duration::from_nanos(half + jitter.next() % (half + 1));
        let capped = match request_deadline {
            Some(d) => jittered.min(d.remaining()),
            None => jittered,
        };
        if !capped.is_zero() {
            std::thread::sleep(capped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Plus;
    use crate::resilience::chaos::ChaosPlan;
    use crate::serial::multiprefix_serial;

    fn problem(n: usize, m: usize) -> (Vec<i64>, Vec<usize>) {
        let values = (0..n).map(|i| (i as i64 * 31 % 53) - 26).collect();
        let labels = (0..n).map(|i| (i * 7 + i / 5) % m).collect();
        (values, labels)
    }

    #[test]
    fn default_chain_serves_correctly() {
        let (values, labels) = problem(3000, 11);
        let d = Dispatcher::new(DispatcherConfig::default()).unwrap();
        let outcome = d
            .dispatch(&values, &labels, 11, Plus, &DispatchOpts::default())
            .unwrap();
        assert_eq!(
            outcome.output,
            multiprefix_serial(&values, &labels, 11, Plus)
        );
        assert_eq!(outcome.engine, EngineKind::Chunked);
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.fallbacks, 0);
    }

    #[test]
    fn pooled_dispatch_reuses_workspace_and_matches_oracle() {
        let (values, labels) = problem(3000, 11);
        let expect = multiprefix_serial(&values, &labels, 11, Plus);
        let d = Dispatcher::new(DispatcherConfig::default()).unwrap();
        let mut ws = ChunkedWorkspace::new();
        for _ in 0..3 {
            let outcome = d
                .dispatch_pooled(
                    &values,
                    &labels,
                    11,
                    Plus,
                    &DispatchOpts::default(),
                    &mut ws,
                )
                .unwrap();
            assert_eq!(outcome.engine, EngineKind::Chunked);
            assert_eq!(outcome.output, expect);
        }
        let reduce = d
            .dispatch_reduce_pooled(
                &values,
                &labels,
                11,
                Plus,
                &DispatchOpts::default(),
                &mut ws,
            )
            .unwrap();
        assert_eq!(reduce.engine, EngineKind::Chunked);
        assert_eq!(
            reduce.output,
            crate::serial::multireduce_serial(&values, &labels, 11, Plus)
        );
    }

    #[test]
    fn i64_chain_with_atomic_primary() {
        let (values, labels) = problem(2000, 7);
        let cfg = DispatcherConfig {
            chain: vec![EngineKind::Atomic, EngineKind::Serial],
            ..Default::default()
        };
        let d = Dispatcher::new(cfg).unwrap();
        let outcome = d
            .dispatch_i64(&values, &labels, 7, Plus, &DispatchOpts::default())
            .unwrap();
        assert_eq!(outcome.engine, EngineKind::Atomic);
        assert_eq!(
            outcome.output,
            multiprefix_serial(&values, &labels, 7, Plus)
        );
        // Generic dispatch must skip the atomic entry instead.
        let generic = d
            .dispatch(&values, &labels, 7, Plus, &DispatchOpts::default())
            .unwrap();
        assert_eq!(generic.engine, EngineKind::Serial);
        assert_eq!(generic.fallbacks, 1);
    }

    #[test]
    fn wedged_primary_falls_back_and_trips_breaker() {
        let (values, labels) = problem(1500, 5);
        let expect = multiprefix_serial(&values, &labels, 5, Plus);
        let cfg = DispatcherConfig {
            chain: vec![EngineKind::Blocked, EngineKind::Serial],
            ..Default::default()
        };
        let d = Dispatcher::new(cfg).unwrap();
        // Chaos: every blocked-engine checkpoint fails allocation; serial
        // is untouched.
        let chaos = ChaosPlan::seeded(11)
            .alloc_fail_ppm(1_000_000)
            .only(EngineKind::Blocked)
            .arm();
        let opts = DispatchOpts {
            chaos: Some(chaos),
            ..Default::default()
        };
        let outcome = d.dispatch(&values, &labels, 5, Plus, &opts).unwrap();
        assert_eq!(outcome.output, expect);
        assert_eq!(outcome.engine, EngineKind::Serial);
        assert_eq!(outcome.attempts, 4, "3 blocked attempts + 1 serial");
        assert_eq!(outcome.fallbacks, 1);
        // Three consecutive failures tripped the blocked breaker open...
        assert_eq!(d.circuit_state(EngineKind::Blocked), CircuitState::Open);
        // ...so the next request skips it without burning attempts.
        let outcome = d.dispatch(&values, &labels, 5, Plus, &opts).unwrap();
        assert_eq!(outcome.engine, EngineKind::Serial);
        assert_eq!(outcome.attempts, 1);
    }

    #[test]
    fn permanent_errors_bypass_the_chain() {
        let d = Dispatcher::new(DispatcherConfig::default()).unwrap();
        let err = d
            .dispatch(&[1i64], &[2], 2, Plus, &DispatchOpts::default())
            .unwrap_err();
        assert!(matches!(err, MpError::LabelOutOfRange { .. }));
        assert_eq!(d.circuit_state(EngineKind::Blocked), CircuitState::Closed);
    }

    #[test]
    fn invalid_configs_rejected_at_construction() {
        let empty = DispatcherConfig {
            chain: vec![],
            ..Default::default()
        };
        assert_eq!(
            Dispatcher::new(empty).unwrap_err(),
            MpError::InvalidConfig {
                what: "fallback chain is empty"
            }
        );
        let zero_retry = DispatcherConfig {
            retry: RetryPolicy {
                max_attempts: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(
            Dispatcher::new(zero_retry).unwrap_err(),
            MpError::InvalidConfig {
                what: "retry max_attempts is zero"
            }
        );
        let zero_buckets = DispatcherConfig {
            exec: ExecConfig::default().max_buckets(0),
            ..Default::default()
        };
        assert!(matches!(
            Dispatcher::new(zero_buckets).unwrap_err(),
            MpError::InvalidConfig { .. }
        ));
    }

    #[test]
    fn cancellation_stops_the_whole_dispatch() {
        let (values, labels) = problem(2000, 5);
        let d = Dispatcher::new(DispatcherConfig::default()).unwrap();
        let opts = DispatchOpts {
            cancel: Some(CancelToken::cancel_after(0)),
            ..Default::default()
        };
        assert_eq!(
            d.dispatch(&values, &labels, 5, Plus, &opts).unwrap_err(),
            MpError::Cancelled
        );
    }

    #[test]
    fn expired_request_deadline_rejected_before_any_engine_runs() {
        let (values, labels) = problem(2000, 5);
        let d = Dispatcher::new(DispatcherConfig::default()).unwrap();
        let opts = DispatchOpts {
            deadline: Some(Deadline::at(std::time::Instant::now())),
            ..Default::default()
        };
        let outcome = d.dispatch(&values, &labels, 5, Plus, &opts);
        assert_eq!(outcome.unwrap_err(), MpError::DeadlineExceeded);
        // No attempt was charged to any engine's breaker.
        assert_eq!(d.circuit_state(EngineKind::Blocked), CircuitState::Closed);
    }

    #[test]
    fn per_request_deadline_tightens_config_timeout() {
        let (values, labels) = problem(500, 3);
        // Generous config timeout, already-expired per-request deadline:
        // the earlier of the two governs.
        let cfg = DispatcherConfig {
            request_timeout: Some(Duration::from_secs(3600)),
            ..Default::default()
        };
        let d = Dispatcher::new(cfg).unwrap();
        let opts = DispatchOpts {
            deadline: Some(Deadline::at(std::time::Instant::now())),
            ..Default::default()
        };
        assert_eq!(
            d.dispatch(&values, &labels, 3, Plus, &opts).unwrap_err(),
            MpError::DeadlineExceeded
        );
        // A generous per-request deadline does not loosen anything.
        let opts = DispatchOpts {
            deadline: Some(Deadline::after(Duration::from_secs(3600))),
            ..Default::default()
        };
        let outcome = d.dispatch(&values, &labels, 3, Plus, &opts).unwrap();
        assert_eq!(
            outcome.output,
            multiprefix_serial(&values, &labels, 3, Plus)
        );
    }

    #[test]
    fn exhausted_chain_reports_last_transient() {
        let (values, labels) = problem(800, 3);
        let cfg = DispatcherConfig {
            chain: vec![EngineKind::Blocked],
            ..Default::default()
        };
        let d = Dispatcher::new(cfg).unwrap();
        let chaos = ChaosPlan::seeded(5).alloc_fail_ppm(1_000_000).arm();
        let opts = DispatchOpts {
            chaos: Some(chaos),
            ..Default::default()
        };
        assert_eq!(
            d.dispatch(&values, &labels, 3, Plus, &opts).unwrap_err(),
            MpError::AllocationFailed { bytes: 0 }
        );
    }

    #[test]
    fn type_incapable_chain_is_unavailable() {
        // Atomic-only chain + a non-i64 dispatch: nothing can serve.
        let cfg = DispatcherConfig {
            chain: vec![EngineKind::Atomic],
            ..Default::default()
        };
        let d = Dispatcher::new(cfg).unwrap();
        let err = d
            .dispatch(&[1.0f64, 2.0], &[0, 1], 2, Plus, &DispatchOpts::default())
            .unwrap_err();
        assert_eq!(err, MpError::Unavailable);
    }

    #[test]
    fn huge_base_backoff_saturates_instead_of_panicking() {
        // Regression: `backoff * 2` overflows `Duration` for extreme
        // `base_backoff`; the doubling must saturate (and the clamped
        // sleep must respect the request deadline, not block for years).
        let (values, labels) = problem(400, 3);
        let cfg = DispatcherConfig {
            chain: vec![EngineKind::Serial],
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::MAX,
                max_backoff: Duration::MAX,
                jitter_seed: 7,
            },
            request_timeout: Some(Duration::from_millis(50)),
            ..Default::default()
        };
        let d = Dispatcher::new(cfg).unwrap();
        let chaos = ChaosPlan::seeded(3).alloc_fail_ppm(1_000_000).arm();
        let opts = DispatchOpts {
            chaos: Some(chaos),
            ..Default::default()
        };
        let started = Instant::now();
        let err = d.dispatch(&values, &labels, 3, Plus, &opts).unwrap_err();
        assert_eq!(err, MpError::DeadlineExceeded);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "backoff sleep must be clamped to the deadline budget"
        );
    }

    #[test]
    fn expired_deadline_reported_as_deadline_not_last_transient() {
        // Regression: a request whose deadline expires after a transient
        // failure must settle `DeadlineExceeded` — the caller's budget ended
        // the dispatch — not the incidental error that preceded it.
        let (values, labels) = problem(400, 3);
        let cfg = DispatcherConfig {
            chain: vec![EngineKind::Blocked],
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(20),
                max_backoff: Duration::from_millis(20),
                jitter_seed: 9,
            },
            ..Default::default()
        };
        let d = Dispatcher::new(cfg).unwrap();
        let chaos = ChaosPlan::seeded(5).alloc_fail_ppm(1_000_000).arm();
        let opts = DispatchOpts {
            chaos: Some(chaos),
            deadline: Some(Deadline::after(Duration::from_millis(10))),
            ..Default::default()
        };
        let err = d.dispatch(&values, &labels, 3, Plus, &opts).unwrap_err();
        assert_eq!(err, MpError::DeadlineExceeded);
    }

    #[test]
    fn recorder_sees_attempts_retries_and_breaker_transitions() {
        let (values, labels) = problem(1500, 5);
        let rec = crate::obs::MemoryRecorder::shared();
        let cfg = DispatcherConfig {
            chain: vec![EngineKind::Blocked, EngineKind::Serial],
            ..Default::default()
        };
        let d = Dispatcher::new(cfg)
            .unwrap()
            .with_recorder(rec.clone() as Arc<dyn Recorder>);
        let chaos = ChaosPlan::seeded(11)
            .alloc_fail_ppm(1_000_000)
            .only(EngineKind::Blocked)
            .arm();
        let opts = DispatchOpts {
            chaos: Some(chaos),
            ..Default::default()
        };
        let outcome = d.dispatch(&values, &labels, 5, Plus, &opts).unwrap();
        assert_eq!(outcome.engine, EngineKind::Serial);

        assert_eq!(rec.counter_value("dispatch.requests"), 1);
        assert_eq!(rec.counter_value("dispatch.blocked.attempts"), 3);
        assert_eq!(rec.counter_value("dispatch.blocked.retries"), 2);
        assert_eq!(rec.counter_value("dispatch.backoff_sleeps"), 2);
        assert_eq!(rec.counter_value("dispatch.serial.attempts"), 1);
        assert_eq!(rec.counter_value("dispatch.fallbacks"), 1);
        // Attempt latency was histogrammed for both engines.
        assert_eq!(
            rec.histogram("dispatch.blocked.attempt_ns").unwrap().count,
            3
        );
        assert_eq!(
            rec.histogram("dispatch.serial.attempt_ns").unwrap().count,
            1
        );
        // The serial engine ran under a recorder-carrying context, so its
        // Figure 2 phase span landed too.
        assert_eq!(
            rec.histogram("engine.serial.phase.figure2").unwrap().count,
            1
        );
        // Three consecutive blocked failures → breaker closed->open event.
        let snap = rec.snapshot();
        assert!(
            snap.events
                .iter()
                .any(|e| e.name == "dispatch.breaker.blocked" && e.detail == "closed->open"),
            "events: {:?}",
            snap.events
        );
    }

    #[test]
    fn sharded_primary_serves_when_configured() {
        let (values, labels) = problem(3000, 11);
        let cfg = DispatcherConfig {
            chain: vec![EngineKind::Sharded, EngineKind::Serial],
            shard: Some(crate::shard::ShardConfig::default().shards(3)),
            ..Default::default()
        };
        let d = Dispatcher::new(cfg).unwrap();
        let outcome = d
            .dispatch(&values, &labels, 11, Plus, &DispatchOpts::default())
            .unwrap();
        assert_eq!(outcome.engine, EngineKind::Sharded);
        assert_eq!(
            outcome.output,
            multiprefix_serial(&values, &labels, 11, Plus)
        );
        assert_eq!(d.shard_supervisor().unwrap().shards_lost(), 0);
        // Reduce dispatch has no sharded path: it skips to serial.
        let reduce = d
            .dispatch_reduce(&values, &labels, 11, Plus, &DispatchOpts::default())
            .unwrap();
        assert_eq!(reduce.engine, EngineKind::Serial);
    }

    #[test]
    fn unconfigured_sharded_entry_is_skipped_as_fallback() {
        let (values, labels) = problem(800, 5);
        let cfg = DispatcherConfig {
            chain: vec![EngineKind::Sharded, EngineKind::Serial],
            ..Default::default()
        };
        let d = Dispatcher::new(cfg).unwrap();
        assert!(d.shard_supervisor().is_none());
        let outcome = d
            .dispatch(&values, &labels, 5, Plus, &DispatchOpts::default())
            .unwrap();
        assert_eq!(outcome.engine, EngineKind::Serial);
        assert_eq!(outcome.fallbacks, 1);
    }

    #[test]
    fn sharded_dispatch_survives_injected_shard_loss() {
        let (values, labels) = problem(2000, 7);
        let cfg = DispatcherConfig {
            chain: vec![EngineKind::Sharded, EngineKind::Serial],
            shard: Some(
                crate::shard::ShardConfig::default()
                    .shards(3)
                    .task_timeout(Duration::from_millis(200)),
            ),
            ..Default::default()
        };
        let d = Dispatcher::new(cfg).unwrap();
        let chaos = ChaosPlan::seeded(21)
            .shard_panic_ppm(1_000_000)
            .only_shard(0)
            .arm();
        let opts = DispatchOpts {
            chaos: Some(chaos),
            ..Default::default()
        };
        let outcome = d.dispatch(&values, &labels, 7, Plus, &opts).unwrap();
        assert_eq!(outcome.engine, EngineKind::Sharded);
        assert_eq!(
            outcome.output,
            multiprefix_serial(&values, &labels, 7, Plus)
        );
        let sup = d.shard_supervisor().unwrap();
        assert!(sup.shards_lost() >= 1);
        assert!(sup.requeues() >= 1);
    }

    #[test]
    fn reduce_dispatch_matches_oracle() {
        let (values, labels) = problem(2500, 9);
        let d = Dispatcher::new(DispatcherConfig::default()).unwrap();
        let expect = crate::serial::multireduce_serial(&values, &labels, 9, Plus);
        let outcome = d
            .dispatch_reduce(&values, &labels, 9, Plus, &DispatchOpts::default())
            .unwrap();
        assert_eq!(outcome.output, expect);
        let outcome = d
            .dispatch_reduce_i64(&values, &labels, 9, Plus, &DispatchOpts::default())
            .unwrap();
        assert_eq!(outcome.output, expect);
    }
}
