//! The resilient dispatch runtime: keep answering when an engine is slow,
//! wedged, or failing.
//!
//! PR 1's hardened layer ([`crate::exec`]) makes a *single* engine call
//! fail cleanly; this module makes a *service* built on those calls degrade
//! gracefully. The pieces:
//!
//! * [`RunContext`] / [`Deadline`] / [`CancelToken`] ([`ctx`]) — cooperative
//!   stopping: every hardened engine polls the context at phase boundaries
//!   and every [`CHECK_STRIDE`] inner iterations, so deadlines and
//!   cancellation are honored promptly and an interrupted run returns a
//!   typed error with **no partial output** (the output buffers are owned
//!   by the run and dropped on the early exit);
//! * [`Dispatcher`] ([`dispatcher`]) — a fallback chain of [`EngineKind`]s
//!   with per-attempt deadlines, retry with jittered exponential backoff
//!   for transient failures, and per-engine circuit breakers
//!   ([`EngineHealth`], [`health`]);
//! * [`ChaosPlan`] ([`chaos`]) — seeded fault injection (panics, allocation
//!   failures, stalls) at those same checkpoints, extending the `pram`
//!   crate's arbitration-fault harness to the production engines; the soak
//!   tests drive the dispatcher through it and assert every request ends in
//!   the serial-oracle answer or a typed error.
//!
//! The semantic guarantee throughout: *which* engine serves a request never
//! changes *what* it answers. Fallback and retry are invisible in the
//! output — only in [`DispatchOutcome`]'s bookkeeping.
//!
//! [`crate::service`] builds the concurrent front door on top of this
//! module: a supervised worker pool feeds submissions through a
//! [`Dispatcher`], with a bounded two-priority queue, load shedding, and
//! worker respawn driven by the same chaos checkpoints
//! ([`ChaosPlan::worker_panic_ppm`]).

pub mod chaos;
pub mod ctx;
pub mod dispatcher;
pub mod health;

pub use chaos::{ChaosPlan, ChaosState};
pub use ctx::{CancelToken, Deadline, RunContext, CHECK_STRIDE};
pub use dispatcher::{
    DispatchOpts, DispatchOutcome, Dispatcher, DispatcherConfig, EngineKind, RetryPolicy,
};
pub use health::{BreakerConfig, CircuitState, EngineHealth};
