//! The chaos harness: seeded, deterministic fault injection at engine
//! checkpoints.
//!
//! PR 1's PRAM fault layer (`pram::fault`) corrupts arbitration commits in
//! the *simulated* machine; this module generalizes the idea to the
//! production engines. A [`ChaosPlan`] describes a fault mix — engine
//! panics, allocation failures, and artificial stalls — as parts-per-
//! million probabilities over a seeded stream. Arm it ([`ChaosPlan::arm`])
//! and hang the resulting [`ChaosState`] on a
//! [`crate::resilience::RunContext`]: every engine checkpoint then draws
//! from the stream and may
//!
//! * **panic** (`panic_ppm`) — a real `panic!`, exercising the panic
//!   containment of the blocked engine and of the dispatcher;
//! * **fail an allocation** (`alloc_fail_ppm`) — returns
//!   [`MpError::AllocationFailed`] (with `bytes = 0`, marking it injected),
//!   exercising the retry path;
//! * **stall** (`stall_ppm`) — sleeps for [`ChaosPlan::stall`], exercising
//!   deadlines (the checkpoint *after* a stall observes the expired
//!   deadline).
//!
//! A second, independent fault surface targets the **service pool**
//! ([`crate::service`]): `worker_panic_ppm` / `worker_stall_ppm` fire at
//! *worker* checkpoints (between dequeuing a batch and executing it), and
//! `only_worker` scopes them to one worker index. A worker panic kills the
//! worker thread itself — upstream of the dispatcher's `catch_unwind` — so
//! it exercises supervision (respawn, `MpError::WorkerLost` resolution of
//! the in-flight tickets) rather than engine-level containment.
//!
//! The draw stream is a single atomic xorshift state, so a fixed seed gives
//! a reproducible fault *sequence* under sequential execution and a
//! reproducible fault *mix* under parallel execution (threads interleave
//! draws, but every draw comes from the same deterministic stream — no OS
//! entropy anywhere).

use crate::error::MpError;
use crate::resilience::ctx::Deadline;
use crate::resilience::dispatcher::EngineKind;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A seeded fault mix for the chaos harness. Probabilities are per
/// checkpoint, in parts per million; `1_000_000` fires on every draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed of the fault stream.
    pub seed: u64,
    /// Probability an armed checkpoint panics.
    pub panic_ppm: u32,
    /// Probability an armed checkpoint reports an (injected) allocation
    /// failure.
    pub alloc_fail_ppm: u32,
    /// Probability an armed checkpoint stalls for [`ChaosPlan::stall`].
    pub stall_ppm: u32,
    /// Length of one injected stall.
    pub stall: Duration,
    /// Restrict injection to one engine (`None` faults every engine). Lets
    /// a test wedge the primary of a fallback chain while its fallbacks
    /// stay healthy.
    pub only: Option<EngineKind>,
    /// Probability a **worker checkpoint** (drawn by a
    /// [`crate::service::Service`] pool worker between dequeuing a batch
    /// and executing it) panics, killing the worker thread itself — the
    /// injection point for supervision/respawn testing. Engine checkpoints
    /// never draw from this.
    pub worker_panic_ppm: u32,
    /// Probability a worker checkpoint stalls for [`ChaosPlan::stall`]
    /// (e.g. to let a test deterministically build up queue depth behind a
    /// slow worker).
    pub worker_stall_ppm: u32,
    /// Restrict **worker** injection to one worker index (`None` faults
    /// every worker). Lets a test kill one worker of a pool while the rest
    /// stay healthy.
    pub only_worker: Option<usize>,
    /// Probability a **shard-worker checkpoint** (drawn by a
    /// [`crate::shard::ShardSupervisor`] worker at task entry) panics,
    /// killing that shard — the injection point for shard-loss recovery
    /// testing. Engine and pool-worker checkpoints never draw from this.
    pub shard_panic_ppm: u32,
    /// Probability a shard-worker checkpoint stalls for
    /// [`ChaosPlan::stall`] (clamped to the active deadline), exercising
    /// the supervisor's task-deadline requeue path.
    pub shard_stall_ppm: u32,
    /// Probability a shard-transport **data** message is dropped at send
    /// time (protocol-critical `Shutdown`/`Crashed` messages are exempt).
    pub shard_drop_ppm: u32,
    /// Probability a shard-transport data message is duplicated at send
    /// time.
    pub shard_dup_ppm: u32,
    /// Restrict **shard** panic/stall injection to one shard index
    /// (`None` faults every shard).
    pub only_shard: Option<usize>,
    /// Probability a socket-transport **data frame** has one bit flipped
    /// after its checksum is computed (the receiver must reject it with a
    /// typed decode error and recover via NAK/resend, never deliver it).
    pub net_corrupt_ppm: u32,
    /// Probability a socket-transport data frame is truncated mid-write
    /// (the receiver must resynchronize on the next frame magic).
    pub net_truncate_ppm: u32,
    /// Probability a socket-transport data frame's write turns into a
    /// mid-message disconnect (partial write, then both stream directions
    /// shut down) — the connection-supervision / respawn trigger.
    pub net_disconnect_ppm: u32,
    /// Probability a socket-transport frame write stalls for
    /// [`ChaosPlan::stall`] first (clamped to the active deadline),
    /// exercising attempt-deadline requeues through a slow writer.
    pub net_stall_ppm: u32,
    /// Probability a durable-session WAL record write is **torn**: only a
    /// prefix of the encoded record reaches the file and the append
    /// reports [`MpError::Storage`] (the op is *not* acknowledged). The
    /// recovery path must detect the torn tail and truncate the log at
    /// the last whole record.
    pub wal_torn_write_ppm: u32,
    /// Probability one bit of a WAL record is flipped **after** its
    /// checksums were computed, then written whole and silently
    /// acknowledged — media corruption. Recovery must reject the record
    /// (and everything after it) rather than replay damage.
    pub wal_bit_flip_ppm: u32,
    /// Probability a snapshot's bytes are corrupted at write time (one
    /// flipped bit, post-checksum). Recovery must fail that generation's
    /// validation and fall back to the previous one.
    pub snapshot_corrupt_ppm: u32,
    /// Probability an `fsync` (WAL sync or snapshot durability barrier)
    /// reports failure. The session surfaces [`MpError::Storage`] and
    /// does not acknowledge the op — though the bytes may in fact have
    /// reached the disk, exactly like a real fsync failure.
    pub fsync_fail_ppm: u32,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0,
            panic_ppm: 0,
            alloc_fail_ppm: 0,
            stall_ppm: 0,
            stall: Duration::from_millis(1),
            only: None,
            worker_panic_ppm: 0,
            worker_stall_ppm: 0,
            only_worker: None,
            shard_panic_ppm: 0,
            shard_stall_ppm: 0,
            shard_drop_ppm: 0,
            shard_dup_ppm: 0,
            only_shard: None,
            net_corrupt_ppm: 0,
            net_truncate_ppm: 0,
            net_disconnect_ppm: 0,
            net_stall_ppm: 0,
            wal_torn_write_ppm: 0,
            wal_bit_flip_ppm: 0,
            snapshot_corrupt_ppm: 0,
            fsync_fail_ppm: 0,
        }
    }
}

impl ChaosPlan {
    /// A plan with `seed` and no faults; set the mix with the builders.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..Default::default()
        }
    }

    /// Set the panic probability (ppm per checkpoint).
    pub fn panic_ppm(mut self, ppm: u32) -> Self {
        self.panic_ppm = ppm;
        self
    }

    /// Set the injected-allocation-failure probability (ppm per checkpoint).
    pub fn alloc_fail_ppm(mut self, ppm: u32) -> Self {
        self.alloc_fail_ppm = ppm;
        self
    }

    /// Set the stall probability (ppm per checkpoint) and stall length.
    pub fn stall(mut self, ppm: u32, length: Duration) -> Self {
        self.stall_ppm = ppm;
        self.stall = length;
        self
    }

    /// Restrict injection to `engine`.
    pub fn only(mut self, engine: EngineKind) -> Self {
        self.only = Some(engine);
        self
    }

    /// Set the worker-checkpoint panic probability (ppm per batch).
    pub fn worker_panic_ppm(mut self, ppm: u32) -> Self {
        self.worker_panic_ppm = ppm;
        self
    }

    /// Set the worker-checkpoint stall probability (ppm per batch; stall
    /// length is [`ChaosPlan::stall`], shared with engine stalls).
    pub fn worker_stall_ppm(mut self, ppm: u32) -> Self {
        self.worker_stall_ppm = ppm;
        self
    }

    /// Restrict worker injection to the worker with index `worker`.
    pub fn only_worker(mut self, worker: usize) -> Self {
        self.only_worker = Some(worker);
        self
    }

    /// Set the shard-worker panic probability (ppm per task entry).
    pub fn shard_panic_ppm(mut self, ppm: u32) -> Self {
        self.shard_panic_ppm = ppm;
        self
    }

    /// Set the shard-worker stall probability (ppm per task entry; stall
    /// length is [`ChaosPlan::stall`], shared with engine stalls).
    pub fn shard_stall_ppm(mut self, ppm: u32) -> Self {
        self.shard_stall_ppm = ppm;
        self
    }

    /// Set the shard-transport message-drop probability (ppm per data
    /// message sent).
    pub fn shard_drop_ppm(mut self, ppm: u32) -> Self {
        self.shard_drop_ppm = ppm;
        self
    }

    /// Set the shard-transport message-duplication probability (ppm per
    /// data message sent).
    pub fn shard_dup_ppm(mut self, ppm: u32) -> Self {
        self.shard_dup_ppm = ppm;
        self
    }

    /// Restrict shard panic/stall injection to the shard with index
    /// `shard`.
    pub fn only_shard(mut self, shard: usize) -> Self {
        self.only_shard = Some(shard);
        self
    }

    /// Set the socket-frame bit-corruption probability (ppm per data
    /// frame written).
    pub fn net_corrupt_ppm(mut self, ppm: u32) -> Self {
        self.net_corrupt_ppm = ppm;
        self
    }

    /// Set the socket-frame truncation probability (ppm per data frame
    /// written).
    pub fn net_truncate_ppm(mut self, ppm: u32) -> Self {
        self.net_truncate_ppm = ppm;
        self
    }

    /// Set the socket mid-message-disconnect probability (ppm per data
    /// frame written).
    pub fn net_disconnect_ppm(mut self, ppm: u32) -> Self {
        self.net_disconnect_ppm = ppm;
        self
    }

    /// Set the socket slow-writer stall probability (ppm per data frame
    /// written; stall length is [`ChaosPlan::stall`], shared with engine
    /// stalls and clamped to the active deadline).
    pub fn net_stall_ppm(mut self, ppm: u32) -> Self {
        self.net_stall_ppm = ppm;
        self
    }

    /// Set the WAL torn-write probability (ppm per record appended).
    pub fn wal_torn_write_ppm(mut self, ppm: u32) -> Self {
        self.wal_torn_write_ppm = ppm;
        self
    }

    /// Set the WAL bit-flip probability (ppm per record appended).
    pub fn wal_bit_flip_ppm(mut self, ppm: u32) -> Self {
        self.wal_bit_flip_ppm = ppm;
        self
    }

    /// Set the snapshot-corruption probability (ppm per snapshot written).
    pub fn snapshot_corrupt_ppm(mut self, ppm: u32) -> Self {
        self.snapshot_corrupt_ppm = ppm;
        self
    }

    /// Set the fsync-failure probability (ppm per fsync issued).
    pub fn fsync_fail_ppm(mut self, ppm: u32) -> Self {
        self.fsync_fail_ppm = ppm;
        self
    }

    /// Arm the plan: the returned state carries the live draw stream and
    /// injection counters, and is what a
    /// [`crate::resilience::RunContext::with_chaos`] takes. One armed state
    /// can serve many runs; the stream continues across them.
    pub fn arm(self) -> Arc<ChaosState> {
        Arc::new(ChaosState {
            plan: self,
            rng: AtomicU64::new(self.seed | 1),
            panics: AtomicUsize::new(0),
            alloc_fails: AtomicUsize::new(0),
            stalls: AtomicUsize::new(0),
            worker_panics: AtomicUsize::new(0),
            worker_stalls: AtomicUsize::new(0),
            chunk_panics: AtomicUsize::new(0),
            chunk_stalls: AtomicUsize::new(0),
            shard_panics: AtomicUsize::new(0),
            shard_stalls: AtomicUsize::new(0),
            msg_drops: AtomicUsize::new(0),
            msg_dups: AtomicUsize::new(0),
            net_corrupts: AtomicUsize::new(0),
            net_truncates: AtomicUsize::new(0),
            net_disconnects: AtomicUsize::new(0),
            net_stalls: AtomicUsize::new(0),
            wal_torn_writes: AtomicUsize::new(0),
            wal_bit_flips: AtomicUsize::new(0),
            snapshot_corrupts: AtomicUsize::new(0),
            fsync_fails: AtomicUsize::new(0),
        })
    }
}

/// The fate of one socket-transport data frame, drawn at write time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NetFault {
    /// Flip one bit of the encoded frame (after the checksum was
    /// computed).
    Corrupt,
    /// Write only a prefix of the frame.
    Truncate,
    /// Write a partial frame, then shut both stream directions down.
    Disconnect,
    /// Sleep (clamped to the active deadline), then write normally.
    Stall,
}

/// The fate of one durable-session WAL record, drawn at write time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WalFault {
    /// Write only a prefix of the record, then report the write failed.
    TornWrite,
    /// Flip one bit (post-checksum), write whole, acknowledge silently.
    BitFlip,
}

/// The fate of one shard-transport data message, drawn at send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MessageFault {
    /// Deliver normally.
    Deliver,
    /// Silently lose the message.
    Drop,
    /// Deliver the message twice.
    Duplicate,
}

/// An armed [`ChaosPlan`]: the live draw stream plus injection counters.
#[derive(Debug)]
pub struct ChaosState {
    plan: ChaosPlan,
    rng: AtomicU64,
    panics: AtomicUsize,
    alloc_fails: AtomicUsize,
    stalls: AtomicUsize,
    worker_panics: AtomicUsize,
    worker_stalls: AtomicUsize,
    chunk_panics: AtomicUsize,
    chunk_stalls: AtomicUsize,
    shard_panics: AtomicUsize,
    shard_stalls: AtomicUsize,
    msg_drops: AtomicUsize,
    msg_dups: AtomicUsize,
    net_corrupts: AtomicUsize,
    net_truncates: AtomicUsize,
    net_disconnects: AtomicUsize,
    net_stalls: AtomicUsize,
    wal_torn_writes: AtomicUsize,
    wal_bit_flips: AtomicUsize,
    snapshot_corrupts: AtomicUsize,
    fsync_fails: AtomicUsize,
}

impl ChaosState {
    /// The plan this state was armed from.
    pub fn plan(&self) -> ChaosPlan {
        self.plan
    }

    /// Panics injected so far.
    pub fn panics_injected(&self) -> usize {
        self.panics.load(Ordering::Relaxed)
    }

    /// Allocation failures injected so far.
    pub fn alloc_fails_injected(&self) -> usize {
        self.alloc_fails.load(Ordering::Relaxed)
    }

    /// Stalls injected so far.
    pub fn stalls_injected(&self) -> usize {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Worker-thread panics injected so far (service pool supervision).
    pub fn worker_panics_injected(&self) -> usize {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Worker-thread stalls injected so far.
    pub fn worker_stalls_injected(&self) -> usize {
        self.worker_stalls.load(Ordering::Relaxed)
    }

    /// Chunk-worker panics injected so far (chunked engine local phase).
    pub fn chunk_panics_injected(&self) -> usize {
        self.chunk_panics.load(Ordering::Relaxed)
    }

    /// Chunk-worker stalls injected so far.
    pub fn chunk_stalls_injected(&self) -> usize {
        self.chunk_stalls.load(Ordering::Relaxed)
    }

    /// Shard-worker panics injected so far (shard supervisor recovery).
    pub fn shard_panics_injected(&self) -> usize {
        self.shard_panics.load(Ordering::Relaxed)
    }

    /// Shard-worker stalls injected so far.
    pub fn shard_stalls_injected(&self) -> usize {
        self.shard_stalls.load(Ordering::Relaxed)
    }

    /// Shard-transport messages dropped so far.
    pub fn msg_drops_injected(&self) -> usize {
        self.msg_drops.load(Ordering::Relaxed)
    }

    /// Shard-transport messages duplicated so far.
    pub fn msg_dups_injected(&self) -> usize {
        self.msg_dups.load(Ordering::Relaxed)
    }

    /// Socket frames bit-corrupted so far.
    pub fn net_corrupts_injected(&self) -> usize {
        self.net_corrupts.load(Ordering::Relaxed)
    }

    /// Socket frames truncated so far.
    pub fn net_truncates_injected(&self) -> usize {
        self.net_truncates.load(Ordering::Relaxed)
    }

    /// Socket mid-message disconnects injected so far.
    pub fn net_disconnects_injected(&self) -> usize {
        self.net_disconnects.load(Ordering::Relaxed)
    }

    /// Socket slow-writer stalls injected so far.
    pub fn net_stalls_injected(&self) -> usize {
        self.net_stalls.load(Ordering::Relaxed)
    }

    /// WAL torn writes injected so far.
    pub fn wal_torn_writes_injected(&self) -> usize {
        self.wal_torn_writes.load(Ordering::Relaxed)
    }

    /// WAL bit flips injected so far.
    pub fn wal_bit_flips_injected(&self) -> usize {
        self.wal_bit_flips.load(Ordering::Relaxed)
    }

    /// Snapshot corruptions injected so far.
    pub fn snapshot_corrupts_injected(&self) -> usize {
        self.snapshot_corrupts.load(Ordering::Relaxed)
    }

    /// fsync failures injected so far.
    pub fn fsync_fails_injected(&self) -> usize {
        self.fsync_fails.load(Ordering::Relaxed)
    }

    /// Total faults injected so far.
    pub fn faults_injected(&self) -> usize {
        self.panics_injected()
            + self.alloc_fails_injected()
            + self.stalls_injected()
            + self.worker_panics_injected()
            + self.worker_stalls_injected()
            + self.chunk_panics_injected()
            + self.chunk_stalls_injected()
            + self.shard_panics_injected()
            + self.shard_stalls_injected()
            + self.msg_drops_injected()
            + self.msg_dups_injected()
            + self.net_corrupts_injected()
            + self.net_truncates_injected()
            + self.net_disconnects_injected()
            + self.net_stalls_injected()
            + self.wal_torn_writes_injected()
            + self.wal_bit_flips_injected()
            + self.snapshot_corrupts_injected()
            + self.fsync_fails_injected()
    }

    /// Sleep for the plan's stall length, clamped to the remaining budget
    /// of the active deadline: an injected stall may push a run *to* its
    /// deadline (the next checkpoint observes the expiry) but never burns
    /// wall-clock past it, so a chaos soak's total runtime stays bounded by
    /// the deadlines it configures.
    pub(crate) fn stall_sleep(&self, deadline: Option<Deadline>) {
        let length = match deadline {
            Some(d) => self.plan.stall.min(d.remaining()),
            None => self.plan.stall,
        };
        if !length.is_zero() {
            std::thread::sleep(length);
        }
    }

    /// One checkpoint draw on behalf of `engine`. May panic, err, stall
    /// (clamped to `deadline`), or (usually) do nothing.
    pub(crate) fn inject(
        &self,
        engine: Option<EngineKind>,
        deadline: Option<Deadline>,
    ) -> Result<(), MpError> {
        if let Some(only) = self.plan.only {
            if engine != Some(only) {
                return Ok(());
            }
        }
        let draw = self.next_draw() % 1_000_000;
        let panic_edge = self.plan.panic_ppm as u64;
        let alloc_edge = panic_edge + self.plan.alloc_fail_ppm as u64;
        let stall_edge = alloc_edge + self.plan.stall_ppm as u64;
        if draw < panic_edge {
            self.panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected engine panic");
        } else if draw < alloc_edge {
            self.alloc_fails.fetch_add(1, Ordering::Relaxed);
            // bytes = 0 marks the failure as injected rather than a real
            // allocator refusal.
            Err(MpError::AllocationFailed { bytes: 0 })
        } else if draw < stall_edge {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            self.stall_sleep(deadline);
            Ok(())
        } else {
            Ok(())
        }
    }

    /// One **worker** checkpoint draw on behalf of pool worker `worker`
    /// ([`crate::service::Service`] calls this between dequeuing a batch
    /// and executing it). May panic — killing the worker thread and
    /// exercising the pool's supervision — or stall; never returns an
    /// error (a worker has no per-request error channel of its own; the
    /// in-flight tickets are resolved by the pool's teardown guard).
    ///
    /// A plan with no worker faults burns no draw, so arming worker faults
    /// off leaves the engine-fault sequence of a given seed untouched.
    pub(crate) fn inject_worker(&self, worker: usize, deadline: Option<Deadline>) {
        if self.plan.worker_panic_ppm == 0 && self.plan.worker_stall_ppm == 0 {
            return;
        }
        if let Some(only) = self.plan.only_worker {
            if worker != only {
                return;
            }
        }
        let draw = self.next_draw() % 1_000_000;
        let panic_edge = self.plan.worker_panic_ppm as u64;
        let stall_edge = panic_edge + self.plan.worker_stall_ppm as u64;
        if draw < panic_edge {
            self.worker_panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected worker panic (worker {worker})");
        } else if draw < stall_edge {
            self.worker_stalls.fetch_add(1, Ordering::Relaxed);
            self.stall_sleep(deadline);
        }
    }

    /// One **chunk-worker** draw on behalf of the chunked engine's local
    /// worker `worker`. Fires only for a plan explicitly scoped to the
    /// chunked engine (`only(EngineKind::Chunked)`); every other plan burns
    /// **no draw**, keeping the engine-checkpoint sequence and the service
    /// pool's worker-panic accounting (which equates its own panics with
    /// `worker_panics_injected()`) untouched. A fired panic unwinds through
    /// the scope join into the engine's `catch_unwind` and surfaces as
    /// [`MpError::EnginePanicked`] — the dispatcher's retry/fallback path.
    pub(crate) fn inject_chunk_worker(&self, worker: usize, deadline: Option<Deadline>) {
        if self.plan.only != Some(EngineKind::Chunked) {
            return;
        }
        if self.plan.worker_panic_ppm == 0 && self.plan.worker_stall_ppm == 0 {
            return;
        }
        if let Some(only) = self.plan.only_worker {
            if worker != only {
                return;
            }
        }
        let draw = self.next_draw() % 1_000_000;
        let panic_edge = self.plan.worker_panic_ppm as u64;
        let stall_edge = panic_edge + self.plan.worker_stall_ppm as u64;
        if draw < panic_edge {
            self.chunk_panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected chunk-worker panic (chunk {worker})");
        } else if draw < stall_edge {
            self.chunk_stalls.fetch_add(1, Ordering::Relaxed);
            self.stall_sleep(deadline);
        }
    }

    /// One **shard-worker** draw on behalf of shard `shard`, fired by a
    /// [`crate::shard::ShardSupervisor`] worker at task entry. A panic
    /// kills the shard (its worker loop catches the unwind, reports
    /// `Crashed`, and exits — the supervisor requeues the task); a stall
    /// (clamped to `deadline`) overruns the task's attempt deadline and
    /// exercises the timeout-requeue path.
    ///
    /// A plan with no shard faults burns **no draw**, keeping the engine-
    /// and worker-fault sequences of a given seed untouched.
    pub(crate) fn inject_shard_worker(&self, shard: usize, deadline: Option<Deadline>) {
        if self.plan.shard_panic_ppm == 0 && self.plan.shard_stall_ppm == 0 {
            return;
        }
        if let Some(only) = self.plan.only_shard {
            if shard != only {
                return;
            }
        }
        let draw = self.next_draw() % 1_000_000;
        let panic_edge = self.plan.shard_panic_ppm as u64;
        let stall_edge = panic_edge + self.plan.shard_stall_ppm as u64;
        if draw < panic_edge {
            self.shard_panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected shard-worker panic (shard {shard})");
        } else if draw < stall_edge {
            self.shard_stalls.fetch_add(1, Ordering::Relaxed);
            self.stall_sleep(deadline);
        }
    }

    /// One **shard-transport** draw for a data message about to be sent.
    /// A plan with neither drop nor duplication armed burns **no draw**.
    pub(crate) fn transport_fault(&self) -> MessageFault {
        if self.plan.shard_drop_ppm == 0 && self.plan.shard_dup_ppm == 0 {
            return MessageFault::Deliver;
        }
        let draw = self.next_draw() % 1_000_000;
        let drop_edge = self.plan.shard_drop_ppm as u64;
        let dup_edge = drop_edge + self.plan.shard_dup_ppm as u64;
        if draw < drop_edge {
            self.msg_drops.fetch_add(1, Ordering::Relaxed);
            MessageFault::Drop
        } else if draw < dup_edge {
            self.msg_dups.fetch_add(1, Ordering::Relaxed);
            MessageFault::Duplicate
        } else {
            MessageFault::Deliver
        }
    }

    /// One **socket-frame** draw for a data frame about to be written.
    /// `None` means write normally. A plan with no net faults armed burns
    /// **no draw**, keeping the engine-, worker- and shard-fault sequences
    /// of a given seed untouched. Counters are bumped here, at the draw,
    /// so an injected `Disconnect` is counted even if the stream was
    /// already gone.
    pub(crate) fn net_fault(&self) -> Option<NetFault> {
        let p = &self.plan;
        if p.net_corrupt_ppm == 0
            && p.net_truncate_ppm == 0
            && p.net_disconnect_ppm == 0
            && p.net_stall_ppm == 0
        {
            return None;
        }
        let draw = self.next_draw() % 1_000_000;
        let corrupt_edge = p.net_corrupt_ppm as u64;
        let truncate_edge = corrupt_edge + p.net_truncate_ppm as u64;
        let disconnect_edge = truncate_edge + p.net_disconnect_ppm as u64;
        let stall_edge = disconnect_edge + p.net_stall_ppm as u64;
        if draw < corrupt_edge {
            self.net_corrupts.fetch_add(1, Ordering::Relaxed);
            Some(NetFault::Corrupt)
        } else if draw < truncate_edge {
            self.net_truncates.fetch_add(1, Ordering::Relaxed);
            Some(NetFault::Truncate)
        } else if draw < disconnect_edge {
            self.net_disconnects.fetch_add(1, Ordering::Relaxed);
            Some(NetFault::Disconnect)
        } else if draw < stall_edge {
            self.net_stalls.fetch_add(1, Ordering::Relaxed);
            Some(NetFault::Stall)
        } else {
            None
        }
    }

    /// One **WAL-record** draw for a record about to be appended. `None`
    /// means write normally. A plan with no WAL faults armed burns **no
    /// draw**, keeping every other fault sequence of a seed untouched.
    pub(crate) fn wal_fault(&self) -> Option<WalFault> {
        let p = &self.plan;
        if p.wal_torn_write_ppm == 0 && p.wal_bit_flip_ppm == 0 {
            return None;
        }
        let draw = self.next_draw() % 1_000_000;
        let torn_edge = p.wal_torn_write_ppm as u64;
        let flip_edge = torn_edge + p.wal_bit_flip_ppm as u64;
        if draw < torn_edge {
            self.wal_torn_writes.fetch_add(1, Ordering::Relaxed);
            Some(WalFault::TornWrite)
        } else if draw < flip_edge {
            self.wal_bit_flips.fetch_add(1, Ordering::Relaxed);
            Some(WalFault::BitFlip)
        } else {
            None
        }
    }

    /// One **snapshot** draw for a snapshot image about to be written.
    /// `true` means corrupt one bit of the image (post-checksum). Burns no
    /// draw when unarmed.
    pub(crate) fn snapshot_fault(&self) -> bool {
        if self.plan.snapshot_corrupt_ppm == 0 {
            return false;
        }
        let fired = self.next_draw() % 1_000_000 < self.plan.snapshot_corrupt_ppm as u64;
        if fired {
            self.snapshot_corrupts.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// One **fsync** draw. `true` means report the fsync failed (the
    /// session surfaces [`MpError::Storage`] without acknowledging the
    /// op). Burns no draw when unarmed.
    pub(crate) fn fsync_fault(&self) -> bool {
        if self.plan.fsync_fail_ppm == 0 {
            return false;
        }
        let fired = self.next_draw() % 1_000_000 < self.plan.fsync_fail_ppm as u64;
        if fired {
            self.fsync_fails.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// A uniform index in `[0, bound)` from the fault stream — used to
    /// pick the corrupted bit / truncation point of a faulted frame. Only
    /// called after a fault already fired, so it never perturbs the clean
    /// sequence.
    pub(crate) fn net_index(&self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        (self.next_draw() % bound as u64) as usize
    }

    /// Advance the shared xorshift64* stream by one draw.
    fn next_draw(&self) -> u64 {
        let mut prev = self.rng.load(Ordering::Relaxed);
        loop {
            let mut x = prev;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match self
                .rng
                .compare_exchange_weak(prev, x, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return x.wrapping_mul(0x2545_F491_4F6C_DD1D),
                Err(seen) => prev = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let state = ChaosPlan::seeded(42).arm();
        for _ in 0..10_000 {
            assert!(state.inject(None, None).is_ok());
        }
        assert_eq!(state.faults_injected(), 0);
    }

    #[test]
    fn certain_alloc_failure_fires_every_draw() {
        let state = ChaosPlan::seeded(7).alloc_fail_ppm(1_000_000).arm();
        for _ in 0..100 {
            assert_eq!(
                state.inject(None, None),
                Err(MpError::AllocationFailed { bytes: 0 })
            );
        }
        assert_eq!(state.alloc_fails_injected(), 100);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let state = ChaosPlan::seeded(3).alloc_fail_ppm(250_000).arm();
        let mut fails = 0;
        for _ in 0..10_000 {
            if state.inject(None, None).is_err() {
                fails += 1;
            }
        }
        // 25% ± a generous band.
        assert!((1_500..3_500).contains(&fails), "got {fails}");
    }

    #[test]
    fn same_seed_same_sequence() {
        let a = ChaosPlan::seeded(99).alloc_fail_ppm(500_000).arm();
        let b = ChaosPlan::seeded(99).alloc_fail_ppm(500_000).arm();
        for i in 0..1000 {
            assert_eq!(a.inject(None, None), b.inject(None, None), "draw {i}");
        }
    }

    #[test]
    fn targeted_plan_spares_other_engines() {
        let state = ChaosPlan::seeded(5)
            .alloc_fail_ppm(1_000_000)
            .only(EngineKind::Blocked)
            .arm();
        assert!(state.inject(Some(EngineKind::Serial), None).is_ok());
        assert!(state.inject(None, None).is_ok());
        assert!(state.inject(Some(EngineKind::Blocked), None).is_err());
        assert_eq!(state.faults_injected(), 1);
    }

    #[test]
    fn injected_panic_is_a_real_panic() {
        let state = ChaosPlan::seeded(1).panic_ppm(1_000_000).arm();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = state.inject(None, None);
        }));
        assert!(caught.is_err());
        assert_eq!(state.panics_injected(), 1);
    }

    #[test]
    fn worker_scoped_plan_spares_other_workers() {
        let state = ChaosPlan::seeded(9)
            .worker_panic_ppm(1_000_000)
            .only_worker(2)
            .arm();
        // Untargeted workers never draw, let alone panic.
        state.inject_worker(0, None);
        state.inject_worker(1, None);
        assert_eq!(state.worker_panics_injected(), 0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.inject_worker(2, None);
        }));
        assert!(caught.is_err());
        assert_eq!(state.worker_panics_injected(), 1);
    }

    #[test]
    fn worker_faults_do_not_perturb_engine_stream() {
        // Same seed, one plan with worker faults armed (but only polled by
        // untargeted workers): the engine-fault sequences must match.
        let plain = ChaosPlan::seeded(77).alloc_fail_ppm(400_000).arm();
        let with_worker = ChaosPlan::seeded(77)
            .alloc_fail_ppm(400_000)
            .worker_panic_ppm(1_000_000)
            .only_worker(5)
            .arm();
        for i in 0..500 {
            with_worker.inject_worker(0, None); // scoped away: burns no draw
            assert_eq!(
                plain.inject(None, None),
                with_worker.inject(None, None),
                "draw {i}"
            );
        }
    }

    #[test]
    fn worker_stall_sleeps_and_counts() {
        let state = ChaosPlan::seeded(4)
            .worker_stall_ppm(1_000_000)
            .stall(0, Duration::from_millis(5))
            .arm();
        let start = std::time::Instant::now();
        state.inject_worker(7, None);
        assert!(start.elapsed() >= Duration::from_millis(4));
        assert_eq!(state.worker_stalls_injected(), 1);
        assert_eq!(state.faults_injected(), 1);
    }

    #[test]
    fn stall_actually_sleeps() {
        let state = ChaosPlan::seeded(2)
            .stall(1_000_000, Duration::from_millis(5))
            .arm();
        let start = std::time::Instant::now();
        assert!(state.inject(None, None).is_ok());
        assert!(start.elapsed() >= Duration::from_millis(4));
        assert_eq!(state.stalls_injected(), 1);
    }

    #[test]
    fn stall_is_clamped_to_the_active_deadline() {
        // Regression: a stall far longer than the attempt deadline must
        // sleep only the deadline's remaining budget, not the full stall —
        // otherwise a chaos soak's wall-clock is unbounded by its deadlines.
        let state = ChaosPlan::seeded(2)
            .stall(1_000_000, Duration::from_secs(3600))
            .arm();
        let deadline = Deadline::after(Duration::from_millis(20));
        let start = std::time::Instant::now();
        assert!(state.inject(None, Some(deadline)).is_ok());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "stall overshot the deadline budget"
        );
        assert_eq!(state.stalls_injected(), 1);
        // An already-expired deadline skips the sleep entirely.
        let start = std::time::Instant::now();
        state.inject_worker(0, Some(Deadline::at(std::time::Instant::now())));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn shard_faults_do_not_perturb_engine_stream() {
        // Arming shard faults that never fire (no shard draws happen) must
        // leave the engine-fault sequence of a seed untouched, and
        // transport draws burn nothing when drop/dup are unarmed.
        let plain = ChaosPlan::seeded(31).alloc_fail_ppm(400_000).arm();
        let with_shard = ChaosPlan::seeded(31)
            .alloc_fail_ppm(400_000)
            .shard_panic_ppm(1_000_000)
            .only_shard(9)
            .arm();
        for i in 0..500 {
            with_shard.inject_shard_worker(0, None); // scoped away: no draw
            assert_eq!(with_shard.transport_fault(), MessageFault::Deliver);
            assert_eq!(
                plain.inject(None, None),
                with_shard.inject(None, None),
                "draw {i}"
            );
        }
    }

    #[test]
    fn shard_panic_and_stall_fire_and_count() {
        let state = ChaosPlan::seeded(8).shard_panic_ppm(1_000_000).arm();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.inject_shard_worker(3, None);
        }));
        assert!(caught.is_err());
        assert_eq!(state.shard_panics_injected(), 1);

        let state = ChaosPlan::seeded(8)
            .shard_stall_ppm(1_000_000)
            .stall(0, Duration::from_millis(5))
            .arm();
        let start = std::time::Instant::now();
        state.inject_shard_worker(3, None);
        assert!(start.elapsed() >= Duration::from_millis(4));
        assert_eq!(state.shard_stalls_injected(), 1);
        assert_eq!(state.faults_injected(), 1);
    }

    #[test]
    fn net_faults_split_and_burn_no_draw_when_unarmed() {
        // Unarmed: no draw, so the engine stream of a seed is untouched.
        let plain = ChaosPlan::seeded(21).alloc_fail_ppm(400_000).arm();
        let with_net = ChaosPlan::seeded(21).alloc_fail_ppm(400_000).arm();
        for i in 0..200 {
            assert_eq!(with_net.net_fault(), None);
            assert_eq!(
                plain.inject(None, None),
                with_net.inject(None, None),
                "draw {i}"
            );
        }
        // Armed at full rate, the four classes split the draw space.
        let state = ChaosPlan::seeded(22)
            .net_corrupt_ppm(250_000)
            .net_truncate_ppm(250_000)
            .net_disconnect_ppm(250_000)
            .net_stall_ppm(250_000)
            .arm();
        for _ in 0..400 {
            assert!(state.net_fault().is_some());
        }
        assert!(state.net_corrupts_injected() > 0);
        assert!(state.net_truncates_injected() > 0);
        assert!(state.net_disconnects_injected() > 0);
        assert!(state.net_stalls_injected() > 0);
        assert_eq!(state.faults_injected(), 400);
    }

    #[test]
    fn storage_faults_split_and_burn_no_draw_when_unarmed() {
        // Unarmed storage faults burn no draw: the engine-fault sequence
        // of a seed is untouched.
        let plain = ChaosPlan::seeded(51).alloc_fail_ppm(400_000).arm();
        let with_storage = ChaosPlan::seeded(51).alloc_fail_ppm(400_000).arm();
        for i in 0..200 {
            assert_eq!(with_storage.wal_fault(), None);
            assert!(!with_storage.snapshot_fault());
            assert!(!with_storage.fsync_fault());
            assert_eq!(
                plain.inject(None, None),
                with_storage.inject(None, None),
                "draw {i}"
            );
        }
        // Armed at full rate, torn/flip split the WAL draw space and the
        // snapshot/fsync draws fire every time.
        let state = ChaosPlan::seeded(52)
            .wal_torn_write_ppm(500_000)
            .wal_bit_flip_ppm(500_000)
            .snapshot_corrupt_ppm(1_000_000)
            .fsync_fail_ppm(1_000_000)
            .arm();
        for _ in 0..200 {
            assert!(state.wal_fault().is_some());
            assert!(state.snapshot_fault());
            assert!(state.fsync_fault());
        }
        assert!(state.wal_torn_writes_injected() > 0);
        assert!(state.wal_bit_flips_injected() > 0);
        assert_eq!(
            state.wal_torn_writes_injected() + state.wal_bit_flips_injected(),
            200
        );
        assert_eq!(state.snapshot_corrupts_injected(), 200);
        assert_eq!(state.fsync_fails_injected(), 200);
        assert_eq!(state.faults_injected(), 600);
    }

    #[test]
    fn transport_faults_split_between_drop_and_dup() {
        let state = ChaosPlan::seeded(6)
            .shard_drop_ppm(500_000)
            .shard_dup_ppm(500_000)
            .arm();
        for _ in 0..200 {
            assert_ne!(state.transport_fault(), MessageFault::Deliver);
        }
        assert_eq!(state.msg_drops_injected() + state.msg_dups_injected(), 200);
        assert!(state.msg_drops_injected() > 0);
        assert!(state.msg_dups_injected() > 0);
    }
}
