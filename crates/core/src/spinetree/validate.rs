//! Mechanical checks of the paper's §3.1 correctness properties.
//!
//! These are not used on the hot path; they exist so the test suite (and
//! the PRAM simulation) can *verify* the structural theorems that make
//! phases 2–4 conflict-free, for any labeling and any arbitration policy:
//!
//! * **Theorem 1** — elements have the same parent iff they have the same
//!   label and are in the same row.
//! * **Corollary 1** — the children of a spine element are in different
//!   columns.
//! * **Theorem 2** — at most one spine element per class per row.
//! * **Corollary 2** — a spine element has at most one child that is also a
//!   spine element (the spine is a path).

use super::layout::Layout;
use std::collections::HashMap;

/// A violated structural property, with enough context to debug it.
/// Fields name the offending element indices / parent slot / class / row.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpinetreeViolation {
    /// Two elements share a parent but differ in row or label (Theorem 1 ⇒).
    SharedParentDifferentRowOrLabel { a: usize, b: usize, parent: usize },
    /// Two same-row same-label elements have different parents (Theorem 1 ⇐).
    SameRowLabelDifferentParent { a: usize, b: usize },
    /// Two children of one parent share a column (Corollary 1).
    SiblingsShareColumn { a: usize, b: usize, parent: usize },
    /// Two spine elements of one class in one row (Theorem 2).
    TwoSpinePerClassRow {
        a: usize,
        b: usize,
        label: usize,
        row: usize,
    },
    /// A spine element with two spine children (Corollary 2).
    TwoSpineChildren { parent: usize, a: usize, b: usize },
    /// A parent that is neither the element's bucket nor a same-label
    /// element in a strictly higher row.
    BadParent { element: usize, parent: usize },
}

/// Verify every §3.1 property of a built spinetree. Returns all violations
/// (empty = the structure is sound).
pub fn check_spinetree(
    labels: &[usize],
    layout: &Layout,
    spine: &[usize],
) -> Vec<SpinetreeViolation> {
    let m = layout.m;
    let n = layout.n;
    assert_eq!(labels.len(), n);
    assert_eq!(spine.len(), layout.slots());
    let mut violations = Vec::new();

    // children[parent slot] = element indices pointing at it.
    let mut children: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        let parent = spine[m + i];
        children.entry(parent).or_default().push(i);

        // Parent sanity: own bucket, or same-label element strictly above.
        if parent < m {
            if parent != labels[i] {
                violations.push(SpinetreeViolation::BadParent { element: i, parent });
            }
        } else {
            let pe = layout.elem_of_slot(parent);
            if labels[pe] != labels[i] || layout.row_of(pe) <= layout.row_of(i) {
                violations.push(SpinetreeViolation::BadParent { element: i, parent });
            }
        }
    }

    // Theorem 1 (⇒) and Corollary 1: siblings share row+label, differ in column.
    for (&parent, kids) in &children {
        for w in 0..kids.len() {
            for v in (w + 1)..kids.len() {
                let (a, b) = (kids[w], kids[v]);
                if labels[a] != labels[b] || layout.row_of(a) != layout.row_of(b) {
                    violations.push(SpinetreeViolation::SharedParentDifferentRowOrLabel {
                        a,
                        b,
                        parent,
                    });
                }
                if layout.col_of(a) == layout.col_of(b) {
                    violations.push(SpinetreeViolation::SiblingsShareColumn { a, b, parent });
                }
            }
        }
    }

    // Theorem 1 (⇐): same row + same label ⇒ same parent.
    let mut by_row_label: HashMap<(usize, usize), usize> = HashMap::new();
    for i in 0..n {
        let key = (layout.row_of(i), labels[i]);
        match by_row_label.get(&key) {
            None => {
                by_row_label.insert(key, i);
            }
            Some(&j) => {
                if spine[m + i] != spine[m + j] {
                    violations.push(SpinetreeViolation::SameRowLabelDifferentParent { a: j, b: i });
                }
            }
        }
    }

    // Spine elements = element slots with children.
    let is_spine = |i: usize| children.contains_key(&(m + i));

    // Theorem 2: ≤ 1 spine element per (class, row).
    let mut spine_seen: HashMap<(usize, usize), usize> = HashMap::new();
    for (i, &label) in labels.iter().enumerate().take(n) {
        if is_spine(i) {
            let key = (label, layout.row_of(i));
            if let Some(&j) = spine_seen.get(&key) {
                violations.push(SpinetreeViolation::TwoSpinePerClassRow {
                    a: j,
                    b: i,
                    label,
                    row: layout.row_of(i),
                });
            } else {
                spine_seen.insert(key, i);
            }
        }
    }

    // Corollary 2: each parent has ≤ 1 spine child.
    for (&parent, kids) in &children {
        let spine_kids: Vec<usize> = kids.iter().copied().filter(|&k| is_spine(k)).collect();
        if spine_kids.len() > 1 {
            violations.push(SpinetreeViolation::TwoSpineChildren {
                parent,
                a: spine_kids[0],
                b: spine_kids[1],
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spinetree::build::{build_spinetree, ArbPolicy};

    #[test]
    fn sound_for_uniform_labels() {
        let labels = vec![0usize; 100];
        let layout = Layout::square(100, 1);
        for policy in [
            ArbPolicy::LastWins,
            ArbPolicy::FirstWins,
            ArbPolicy::Seeded(5),
        ] {
            let spine = build_spinetree(&labels, &layout, policy);
            assert_eq!(check_spinetree(&labels, &layout, &spine), vec![]);
        }
    }

    #[test]
    fn sound_for_mixed_labels_ragged_grid() {
        let labels: Vec<usize> = (0..93).map(|i| (i * 5 + i / 7) % 11).collect();
        let layout = Layout::with_row_len(93, 11, 10);
        let spine = build_spinetree(&labels, &layout, ArbPolicy::Seeded(77));
        assert_eq!(check_spinetree(&labels, &layout, &spine), vec![]);
    }

    #[test]
    fn detects_forged_bad_parent() {
        let labels = vec![0usize, 0, 0, 0];
        let layout = Layout::with_row_len(4, 1, 2);
        let mut spine = build_spinetree(&labels, &layout, ArbPolicy::LastWins);
        // Forge: point element 3 (top row) at element 0 (bottom row).
        spine[1 + 3] = 1;
        let violations = check_spinetree(&labels, &layout, &spine);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, SpinetreeViolation::BadParent { element: 3, .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn detects_forged_split_parents() {
        let labels = vec![0usize; 9];
        let layout = Layout::with_row_len(9, 1, 3);
        let mut spine = build_spinetree(&labels, &layout, ArbPolicy::LastWins);
        // Elements 0..3 are the bottom row with a common parent in row 1.
        // Reroute element 1 to a *different* row-1 element.
        #[allow(clippy::identity_op)]
        let parent = spine[1 + 0];
        let other = if parent == 1 + 4 { 1 + 5 } else { 1 + 4 };
        spine[1 + 1] = other;
        let violations = check_spinetree(&labels, &layout, &spine);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, SpinetreeViolation::SameRowLabelDifferentParent { .. })),
            "{violations:?}"
        );
    }
}
