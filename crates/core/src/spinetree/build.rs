//! The SPINETREE phase: overwrite-and-test construction of the spinetree.
//!
//! ```text
//! SPINETREE:
//! for (r = √n downto 1)
//!     pardo (i = elements of row r) {
//!         temp[i].spine = bucket[label[i]].spine;   // concurrent READ
//!         bucket[label[i]].spine = &temp[i];        // concurrent ARB WRITE
//!     }
//! ```
//!
//! Rows are processed from the **top** (highest element indices) downward.
//! Within one row, every element first *tests* (reads) its bucket's current
//! spine pointer — all same-label elements of the row observe the same
//! value, which becomes their common parent — and then all of them attempt
//! to *overwrite* the pointer with their own slot address. On a CRCW-ARB
//! PRAM an arbitrary writer succeeds; the winner is the potential parent for
//! the next row down.
//!
//! On the CRAY the loop is split by the compiler into a gather followed by a
//! scatter (§4.1 loop 1); this module performs exactly that fission. The
//! scatter's "arbitrary" winner is configurable via [`ArbPolicy`] so tests
//! can demonstrate that the *results* of the algorithm are invariant under
//! the arbitration choice (the property the ARB model demands).

use super::layout::Layout;
use crate::error::MpError;
use crate::resilience::RunContext;

/// Which concurrent writer wins the bucket-pointer scatter within a row.
///
/// All policies yield identical multiprefix results (checked by property
/// tests); they differ only in the shape of the resulting spinetree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbPolicy {
    /// The element with the highest vector index in the row wins — what a
    /// sequential simulation of the scatter naturally produces (later
    /// stores overwrite earlier ones).
    LastWins,
    /// The element with the lowest vector index wins.
    FirstWins,
    /// A pseudo-random writer wins, keyed by the given seed. This is the
    /// closest model of genuine hardware arbitration.
    Seeded(u64),
}

#[inline(always)]
fn mix(seed: u64, i: u64) -> u64 {
    // splitmix64 finalizer — cheap, well distributed, deterministic.
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build the spinetree pointer array for `labels` under `layout`.
///
/// Returns the `spine` vector of length `layout.slots()`:
/// * `spine[b]` for `b < m` is the bucket's final pointer (the paper: "no
///   longer used and … not considered part of the tree" — kept for traces);
/// * `spine[m + i]` is the parent slot of element `i`: either its bucket
///   (elements of the topmost occupied row of their class) or an element
///   slot in the next occupied row *above*.
pub fn build_spinetree(labels: &[usize], layout: &Layout, policy: ArbPolicy) -> Vec<usize> {
    build_spinetree_traced(labels, layout, policy, |_, _| {})
}

/// [`build_spinetree`], invoking `on_row(row, spine)` after every row update
/// — used by the trace renderer (Figure 6) and the PRAM cross-checks.
pub fn build_spinetree_traced(
    labels: &[usize],
    layout: &Layout,
    policy: ArbPolicy,
    mut on_row: impl FnMut(usize, &[usize]),
) -> Vec<usize> {
    let mut spine: Vec<usize> = Vec::with_capacity(layout.slots());
    let built = build_rows(&mut spine, labels, layout, policy, |r, s| {
        on_row(r, s);
        Ok(())
    });
    match built {
        Ok(()) => spine,
        Err(_) => unreachable!("invariant: the infallible on_row callback never errors"),
    }
}

/// [`build_spinetree`] for the hardened engines: the `slots()` pointer
/// vector is allocated fallibly and the [`RunContext`] is polled after
/// every row of the SPINETREE sweep, so a deadline or cancellation
/// interrupts the build within one row (`O(√n)` elements) of work.
pub(crate) fn build_spinetree_ctx(
    labels: &[usize],
    layout: &Layout,
    policy: ArbPolicy,
    ctx: &RunContext,
) -> Result<Vec<usize>, MpError> {
    ctx.checkpoint()?;
    let mut spine: Vec<usize> = Vec::new();
    spine
        .try_reserve_exact(layout.slots())
        .map_err(|_| MpError::AllocationFailed {
            bytes: layout.slots().saturating_mul(std::mem::size_of::<usize>()),
        })?;
    build_rows(&mut spine, labels, layout, policy, |_, _| ctx.checkpoint())?;
    Ok(spine)
}

/// The SPINETREE row loop shared by the plain, traced and hardened builds:
/// initializes `spine` in place, then gathers/scatters row by row, calling
/// `per_row(row, spine)` after each row and aborting on its error.
fn build_rows(
    spine: &mut Vec<usize>,
    labels: &[usize],
    layout: &Layout,
    policy: ArbPolicy,
    mut per_row: impl FnMut(usize, &[usize]) -> Result<(), MpError>,
) -> Result<(), MpError> {
    debug_assert_eq!(labels.len(), layout.n);
    let m = layout.m;
    // INITIALIZATION (Figure 3): each bucket points at itself...
    spine.extend(0..m);
    // ...and each element points at its bucket.
    spine.extend(labels.iter().map(|&l| {
        debug_assert!(l < m);
        l
    }));

    // Arbitration bookkeeping for the Seeded policy: the row that last
    // stamped each bucket, and the winning key so far within that row.
    let (mut stamp, mut winner_key) = match policy {
        ArbPolicy::Seeded(_) => (vec![usize::MAX; m], vec![0u64; m]),
        _ => (Vec::new(), Vec::new()),
    };

    for r in layout.rows_top_down() {
        let range = layout.row_elements(r);

        // GATHER (the concurrent read): every element of the row reads its
        // bucket's current pointer. Loop fission keeps this a pure read
        // step — no element may observe a same-row overwrite.
        for i in range.clone() {
            spine[m + i] = spine[labels[i]];
        }

        // SCATTER (the concurrent ARB write): all elements of the row try
        // to install their own slot address in the bucket.
        match policy {
            ArbPolicy::LastWins => {
                for i in range.clone() {
                    spine[labels[i]] = m + i;
                }
            }
            ArbPolicy::FirstWins => {
                // Visiting the row in reverse makes the lowest index the
                // final (surviving) store.
                for i in range.clone().rev() {
                    spine[labels[i]] = m + i;
                }
            }
            ArbPolicy::Seeded(seed) => {
                for i in range.clone() {
                    let b = labels[i];
                    let key = mix(seed, (m + i) as u64);
                    if stamp[b] != r || key > winner_key[b] {
                        stamp[b] = r;
                        winner_key[b] = key;
                        spine[b] = m + i;
                    }
                }
            }
        }

        per_row(r, spine)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parent map from the paper's 9-elements-one-label example (§2.2,
    /// Figures 5–6): every element points at *some* same-label element of
    /// the row above; top-row elements point at the bucket.
    #[test]
    fn nine_ones_structure() {
        let labels = [2usize; 9];
        let layout = Layout::with_row_len(9, 5, 3);
        let spine = build_spinetree(&labels, &layout, ArbPolicy::LastWins);
        let m = layout.m;
        for i in 0..9 {
            let parent = spine[m + i];
            let row = layout.row_of(i);
            if row == layout.n_rows - 1 {
                assert_eq!(parent, 2, "top row parents the bucket");
            } else {
                assert!(parent >= m, "lower rows parent an element");
                let pe = parent - m;
                assert_eq!(layout.row_of(pe), row + 1, "parent one row above");
                assert_eq!(labels[pe], labels[i], "parent shares the label");
            }
        }
    }

    #[test]
    fn last_wins_bucket_points_into_bottom_row() {
        let labels = [0usize; 9];
        let layout = Layout::with_row_len(9, 1, 3);
        let spine = build_spinetree(&labels, &layout, ArbPolicy::LastWins);
        // The bottom row (r = 0) is processed last; with LastWins its final
        // element (index 2) owns the bucket pointer.
        assert_eq!(spine[0], 1 + 2);
    }

    #[test]
    fn first_wins_picks_lowest_index() {
        let labels = [0usize; 9];
        let layout = Layout::with_row_len(9, 1, 3);
        let spine = build_spinetree(&labels, &layout, ArbPolicy::FirstWins);
        #[allow(clippy::identity_op)]
        {
            assert_eq!(spine[0], 1 + 0);
        }
        // And the middle row's parents must be the first element of the top
        // row (index 6).
        for i in 3..6 {
            assert_eq!(spine[1 + i], 1 + 6);
        }
    }

    #[test]
    fn parents_always_same_label_row_above() {
        // Mixed labels, ragged grid, all policies.
        let labels = [0usize, 1, 0, 2, 1, 0, 2, 2, 1, 0, 0];
        let layout = Layout::with_row_len(labels.len(), 3, 4);
        for policy in [
            ArbPolicy::LastWins,
            ArbPolicy::FirstWins,
            ArbPolicy::Seeded(42),
            ArbPolicy::Seeded(7),
        ] {
            let spine = build_spinetree(&labels, &layout, policy);
            let m = layout.m;
            for i in 0..labels.len() {
                let parent = spine[m + i];
                if parent < m {
                    assert_eq!(parent, labels[i], "bucket parent is own bucket");
                    // must be topmost occupied row of the class
                    let my_row = layout.row_of(i);
                    for (j, &l) in labels.iter().enumerate() {
                        if l == labels[i] {
                            assert!(
                                layout.row_of(j) <= my_row,
                                "element {i} parents bucket but {j} sits higher"
                            );
                        }
                    }
                } else {
                    let pe = parent - m;
                    assert_eq!(labels[pe], labels[i]);
                    assert!(layout.row_of(pe) > layout.row_of(i));
                }
            }
        }
    }

    #[test]
    fn seeded_policies_can_differ_in_shape() {
        // With 3 same-label elements per row, different seeds should
        // (eventually) elect different winners.
        let labels = [0usize; 64];
        let layout = Layout::with_row_len(64, 1, 8);
        let a = build_spinetree(&labels, &layout, ArbPolicy::Seeded(1));
        let b = build_spinetree(&labels, &layout, ArbPolicy::Seeded(2));
        assert_ne!(a, b, "distinct seeds produced identical arbitration");
    }

    #[test]
    fn empty_input() {
        let layout = Layout::square(0, 4);
        let spine = build_spinetree(&[], &layout, ArbPolicy::LastWins);
        assert_eq!(spine, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_element() {
        let layout = Layout::square(1, 2);
        let spine = build_spinetree(&[1], &layout, ArbPolicy::Seeded(9));
        assert_eq!(spine[2], 1, "lone element parents its bucket");
        assert_eq!(spine[1], 2, "bucket points at the lone element");
        assert_eq!(spine[0], 0, "untouched bucket still points at itself");
    }
}
