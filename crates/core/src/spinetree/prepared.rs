//! A reusable spinetree: pay the SPINETREE build once, run the three
//! EREW phases many times.
//!
//! §5.2.1 observes that the multiprefix "setup time is precisely the time
//! spent in the first phase of the multiprefix algorithm building the
//! spinetree", and that applications like iterative solvers multiply by
//! the *same* matrix repeatedly. The spinetree depends only on the
//! **labels**, not the values — so for a fixed labeling it can be built
//! once and replayed against any value vector (and any operator). This
//! module packages that: [`PreparedMultiprefix::new`] builds and validates
//! the structure; [`PreparedMultiprefix::run`] executes ROWSUMS,
//! SPINESUMS and MULTISUMS against fresh values.

use super::build::{build_spinetree, ArbPolicy};
use super::layout::Layout;
use super::phases::{
    bucket_reductions, bucket_reductions_guarded, multisums, multisums_guarded, rowsums,
    rowsums_guarded, spinesums, spinesums_guarded,
};
use crate::error::MpError;
use crate::exec::{try_filled_vec, CheckGuard, OverflowPolicy};
use crate::op::{CombineOp, TryCombineOp};
use crate::problem::{validate, Element, MultiprefixOutput};
use crate::resilience::RunContext;
use std::sync::atomic::AtomicBool;

/// A spinetree built for one labeling, reusable across value vectors.
#[derive(Debug, Clone)]
pub struct PreparedMultiprefix {
    layout: Layout,
    spine: Vec<usize>,
}

impl PreparedMultiprefix {
    /// Build the spinetree for `labels` over `m` buckets (the "setup" of
    /// §5.2.1). Validates labels once; [`Self::run`] then skips the check.
    pub fn new(labels: &[usize], m: usize) -> Result<Self, MpError> {
        Self::with_policy(labels, m, ArbPolicy::LastWins)
    }

    /// [`Self::new`] with an explicit arbitration policy.
    pub fn with_policy(labels: &[usize], m: usize, policy: ArbPolicy) -> Result<Self, MpError> {
        validate(&labels.len(), labels, m)?;
        let layout = Layout::square(labels.len(), m);
        let spine = build_spinetree(labels, &layout, policy);
        Ok(PreparedMultiprefix { layout, spine })
    }

    /// Number of elements this structure serves.
    pub fn len(&self) -> usize {
        self.layout.n
    }

    /// True when built for zero elements.
    pub fn is_empty(&self) -> bool {
        self.layout.n == 0
    }

    /// Bucket count.
    pub fn buckets(&self) -> usize {
        self.layout.m
    }

    /// The grid geometry in use.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Run a full multiprefix over `values` (must match [`Self::len`]).
    /// Only the three EREW phases execute — the spinetree is reused.
    ///
    /// # Panics
    /// Panics on `values.len() != self.len()`. This is the unchecked fast
    /// path for callers that construct the value vector from the same
    /// source as the labels (e.g. the SpMV kernel, where both derive from
    /// one matrix); use [`Self::try_run`] when the length is
    /// caller-supplied data.
    pub fn run<T: Element, O: CombineOp<T>>(&self, values: &[T], op: O) -> MultiprefixOutput<T> {
        assert_eq!(values.len(), self.layout.n, "value vector length mismatch");
        let slots = self.layout.slots();
        let mut rowsum = vec![op.identity(); slots];
        let mut spinesum = vec![op.identity(); slots];
        let mut has_child = vec![false; slots];
        rowsums(
            values,
            &self.spine,
            &self.layout,
            op,
            &mut rowsum,
            &mut has_child,
        );
        spinesums(
            &self.spine,
            &self.layout,
            op,
            &rowsum,
            &has_child,
            &mut spinesum,
        );
        let reductions = bucket_reductions(&self.layout, op, &rowsum, &spinesum);
        let mut sums = vec![op.identity(); self.layout.n];
        multisums(
            values,
            &self.spine,
            &self.layout,
            op,
            &mut spinesum,
            &mut sums,
        );
        MultiprefixOutput { sums, reductions }
    }

    /// Run a multireduce over `values` (§4.2: skip MULTISUMS).
    ///
    /// # Panics
    /// Panics on `values.len() != self.len()`; see [`Self::run`] and use
    /// [`Self::try_run_reduce`] for untrusted lengths.
    pub fn run_reduce<T: Element, O: CombineOp<T>>(&self, values: &[T], op: O) -> Vec<T> {
        assert_eq!(values.len(), self.layout.n, "value vector length mismatch");
        let slots = self.layout.slots();
        let mut rowsum = vec![op.identity(); slots];
        let mut spinesum = vec![op.identity(); slots];
        let mut has_child = vec![false; slots];
        rowsums(
            values,
            &self.spine,
            &self.layout,
            op,
            &mut rowsum,
            &mut has_child,
        );
        spinesums(
            &self.spine,
            &self.layout,
            op,
            &rowsum,
            &has_child,
            &mut spinesum,
        );
        bucket_reductions(&self.layout, op, &rowsum, &spinesum)
    }

    /// [`Self::run`] for caller-supplied lengths: reports
    /// [`MpError::LengthMismatch`] instead of panicking.
    pub fn try_run<T: Element, O: CombineOp<T>>(
        &self,
        values: &[T],
        op: O,
    ) -> Result<MultiprefixOutput<T>, MpError> {
        if values.len() != self.layout.n {
            return Err(MpError::LengthMismatch {
                values: values.len(),
                labels: self.layout.n,
            });
        }
        Ok(self.run(values, op))
    }

    /// [`Self::run_reduce`] for caller-supplied lengths: reports
    /// [`MpError::LengthMismatch`] instead of panicking.
    pub fn try_run_reduce<T: Element, O: CombineOp<T>>(
        &self,
        values: &[T],
        op: O,
    ) -> Result<Vec<T>, MpError> {
        if values.len() != self.layout.n {
            return Err(MpError::LengthMismatch {
                values: values.len(),
                labels: self.layout.n,
            });
        }
        Ok(self.run_reduce(values, op))
    }

    /// [`Self::try_run`] under a [`RunContext`]: the phase temporaries are
    /// allocated fallibly and the context is polled at every phase boundary
    /// and every [`crate::resilience::CHECK_STRIDE`] elements within the
    /// sweeps, so a replayed structure honors deadlines and cancellation
    /// like the one-shot engines. Results are identical to [`Self::run`].
    pub fn try_run_ctx<T: Element, O: TryCombineOp<T>>(
        &self,
        values: &[T],
        op: O,
        ctx: &RunContext,
    ) -> Result<MultiprefixOutput<T>, MpError> {
        if values.len() != self.layout.n {
            return Err(MpError::LengthMismatch {
                values: values.len(),
                labels: self.layout.n,
            });
        }
        ctx.checkpoint()?;
        // Wrap never trips the guard, so the guarded phases compute exactly
        // what the plain phases do — the guard is only the ctx plumbing.
        let tripped = AtomicBool::new(false);
        let guard = CheckGuard::new(op, OverflowPolicy::Wrap, &tripped);
        let mut rowsum = self.layout.try_pivot_block(op.identity())?;
        let mut spinesum = self.layout.try_pivot_block(op.identity())?;
        let mut has_child = self.layout.try_pivot_block(false)?;
        let mut sums = try_filled_vec(op.identity(), self.layout.n)?;
        rowsums_guarded(
            values,
            &self.spine,
            &self.layout,
            guard,
            &mut rowsum,
            &mut has_child,
            ctx,
        )?;
        spinesums_guarded(
            &self.spine,
            &self.layout,
            guard,
            &rowsum,
            &has_child,
            &mut spinesum,
            ctx,
        )?;
        let reductions = bucket_reductions_guarded(&self.layout, guard, &rowsum, &spinesum, ctx)?;
        multisums_guarded(
            values,
            &self.spine,
            &self.layout,
            guard,
            &mut spinesum,
            &mut sums,
            ctx,
        )?;
        Ok(MultiprefixOutput { sums, reductions })
    }

    /// [`Self::try_run_reduce`] under a [`RunContext`]; see
    /// [`Self::try_run_ctx`].
    pub fn try_run_reduce_ctx<T: Element, O: TryCombineOp<T>>(
        &self,
        values: &[T],
        op: O,
        ctx: &RunContext,
    ) -> Result<Vec<T>, MpError> {
        if values.len() != self.layout.n {
            return Err(MpError::LengthMismatch {
                values: values.len(),
                labels: self.layout.n,
            });
        }
        ctx.checkpoint()?;
        let tripped = AtomicBool::new(false);
        let guard = CheckGuard::new(op, OverflowPolicy::Wrap, &tripped);
        let mut rowsum = self.layout.try_pivot_block(op.identity())?;
        let mut spinesum = self.layout.try_pivot_block(op.identity())?;
        let mut has_child = self.layout.try_pivot_block(false)?;
        rowsums_guarded(
            values,
            &self.spine,
            &self.layout,
            guard,
            &mut rowsum,
            &mut has_child,
            ctx,
        )?;
        spinesums_guarded(
            &self.spine,
            &self.layout,
            guard,
            &rowsum,
            &has_child,
            &mut spinesum,
            ctx,
        )?;
        bucket_reductions_guarded(&self.layout, guard, &rowsum, &spinesum, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Max, Plus};
    use crate::serial::{multiprefix_serial, multireduce_serial};

    #[test]
    fn replay_matches_fresh_runs() {
        let labels: Vec<usize> = (0..500).map(|i| (i * 13 + i / 3) % 17).collect();
        let prepared = PreparedMultiprefix::new(&labels, 17).unwrap();
        for seed in 0..5i64 {
            let values: Vec<i64> = (0..500).map(|i| (i as i64 * 7 + seed) % 23 - 11).collect();
            let got = prepared.run(&values, Plus);
            let expect = multiprefix_serial(&values, &labels, 17, Plus);
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    #[test]
    fn replay_supports_different_operators_and_types() {
        // One structure, two operators, two element types.
        let labels: Vec<usize> = (0..200).map(|i| i % 9).collect();
        let prepared = PreparedMultiprefix::new(&labels, 9).unwrap();
        let ints: Vec<i64> = (0..200).map(|i| i as i64 - 100).collect();
        assert_eq!(
            prepared.run(&ints, Max),
            multiprefix_serial(&ints, &labels, 9, Max)
        );
        let floats: Vec<f64> = (0..200).map(|i| i as f64 * 0.5).collect();
        assert_eq!(
            prepared.run(&floats, Plus).sums,
            multiprefix_serial(&floats, &labels, 9, Plus).sums
        );
    }

    #[test]
    fn reduce_only_replay() {
        let labels: Vec<usize> = (0..300).map(|i| (i * 5) % 11).collect();
        let prepared = PreparedMultiprefix::new(&labels, 11).unwrap();
        let values: Vec<i64> = (0..300).map(|i| i as i64).collect();
        assert_eq!(
            prepared.run_reduce(&values, Plus),
            multireduce_serial(&values, &labels, 11, Plus)
        );
    }

    #[test]
    fn validation_happens_at_build() {
        let ok = PreparedMultiprefix::new(&[0, 2], 3).unwrap();
        assert_eq!(ok.buckets(), 3);
        assert_eq!(ok.len(), 2);
        assert!(matches!(
            PreparedMultiprefix::new(&[5], 3),
            Err(MpError::LabelOutOfRange { label: 5, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_value_length_panics() {
        let prepared = PreparedMultiprefix::new(&[0, 1], 2).unwrap();
        let _ = prepared.run(&[1i64], Plus);
    }

    #[test]
    fn try_run_reports_length_mismatch() {
        let prepared = PreparedMultiprefix::new(&[0, 1], 2).unwrap();
        assert_eq!(
            prepared.try_run(&[1i64], Plus).unwrap_err(),
            MpError::LengthMismatch {
                values: 1,
                labels: 2
            }
        );
        assert_eq!(
            prepared.try_run_reduce(&[1i64, 2, 3], Plus).unwrap_err(),
            MpError::LengthMismatch {
                values: 3,
                labels: 2
            }
        );
        let ok = prepared.try_run(&[4i64, 5], Plus).unwrap();
        assert_eq!(ok.reductions, vec![4, 5]);
        assert_eq!(
            prepared.try_run_reduce(&[4i64, 5], Plus).unwrap(),
            vec![4, 5]
        );
    }

    #[test]
    fn empty_structure() {
        let prepared = PreparedMultiprefix::new(&[], 4).unwrap();
        assert!(prepared.is_empty());
        let out = prepared.run::<i64, _>(&[], Plus);
        assert_eq!(out.reductions, vec![0; 4]);
    }
}
