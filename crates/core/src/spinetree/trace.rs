//! ASCII renderings of the spinetree, in the spirit of the paper's
//! Figures 5, 6 and 9 — used by the walkthrough example and by doc tests.

use super::build::{build_spinetree_traced, ArbPolicy};
use super::layout::Layout;
use std::fmt::Write as _;

/// Render the pivot-block `spine` vector in the Figure 9 style: the bucket
/// slots, a `‖` pivot marker, then the element grid row by row (top row
/// first), each cell showing `slot→parent`.
pub fn render_spine(layout: &Layout, spine: &[usize]) -> String {
    let m = layout.m;
    let mut out = String::new();
    let _ = write!(out, "buckets:");
    for (b, &parent) in spine.iter().enumerate().take(m) {
        let _ = write!(out, " {b}→{parent}");
    }
    let _ = writeln!(out, "  ‖ pivot at {m}");
    for r in (0..layout.n_rows).rev() {
        let _ = write!(out, "row {r:>3}:");
        for i in layout.row_elements(r) {
            let _ = write!(out, " {}→{}", m + i, spine[m + i]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Reproduce the Figure 6 evolution: build the spinetree for `labels`,
/// snapshotting the rendered pointer state after every row update.
/// Returns `(snapshots, final_spine)`; `snapshots[k]` is the state after
/// the `k`-th processed row (top row first).
pub fn trace_build(
    labels: &[usize],
    layout: &Layout,
    policy: ArbPolicy,
) -> (Vec<String>, Vec<usize>) {
    let mut snaps = Vec::new();
    let spine = build_spinetree_traced(labels, layout, policy, |r, spine| {
        let mut s = format!("after row {r}:\n");
        s.push_str(&render_spine(layout, spine));
        snaps.push(s);
    });
    (snaps, spine)
}

/// One-line summary of a class's spine path, bucket-root first, e.g.
/// `bucket 2 <- e8 <- e5` (element indices, not slots). Mirrors the paper's
/// "the spine includes elements 4 and 7 and the bucket" narrative.
pub fn spine_path(layout: &Layout, spine: &[usize], labels: &[usize], class: usize) -> String {
    let m = layout.m;
    // Find spine elements of the class: elements with at least one child.
    let mut has_child = vec![false; layout.slots()];
    for i in 0..layout.n {
        has_child[spine[m + i]] = true;
    }
    // Walk from the top: the element whose parent is the bucket and has a
    // child, then follow children-of links downward via reverse lookup.
    let mut path = format!("bucket {class}");
    let mut current = class; // slot
    loop {
        // the (unique, by Corollary 2) spine child of `current`
        let next = (0..layout.n)
            .find(|&i| labels[i] == class && spine[m + i] == current && has_child[m + i]);
        match next {
            Some(i) => {
                let _ = write!(path, " <- e{i}");
                current = m + i;
            }
            None => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_6_snapshot_count() {
        let labels = [2usize; 9];
        let layout = Layout::with_row_len(9, 5, 3);
        let (snaps, spine) = trace_build(&labels, &layout, ArbPolicy::LastWins);
        assert_eq!(snaps.len(), 3, "one snapshot per row");
        assert!(snaps[0].contains("after row 2"));
        assert!(snaps[2].contains("after row 0"));
        assert_eq!(spine.len(), layout.slots());
    }

    #[test]
    fn render_mentions_pivot() {
        let labels = [0usize, 1, 0, 1];
        let layout = Layout::with_row_len(4, 2, 2);
        let spine = super::super::build::build_spinetree(&labels, &layout, ArbPolicy::LastWins);
        let text = render_spine(&layout, &spine);
        assert!(text.contains("pivot at 2"));
        assert!(text.contains("row   1"));
    }

    #[test]
    fn spine_path_for_nine_ones() {
        let labels = [2usize; 9];
        let layout = Layout::with_row_len(9, 5, 3);
        let spine = super::super::build::build_spinetree(&labels, &layout, ArbPolicy::LastWins);
        // LastWins: bucket <- e8 <- e5 (e2 has no children).
        assert_eq!(
            spine_path(&layout, &spine, &labels, 2),
            "bucket 2 <- e8 <- e5"
        );
    }

    #[test]
    fn spine_path_for_absent_class() {
        let labels = [0usize; 4];
        let layout = Layout::with_row_len(4, 2, 2);
        let spine = super::super::build::build_spinetree(&labels, &layout, ArbPolicy::LastWins);
        assert_eq!(spine_path(&layout, &spine, &labels, 1), "bucket 1");
    }
}
