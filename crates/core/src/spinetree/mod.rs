//! The paper's parallel multiprefix algorithm: the **spinetree**.
//!
//! The algorithm (Figures 3–4 of the paper) arranges the `n` elements into a
//! conceptual grid of `√n` rows × `√n` columns and runs in four phases, each
//! a sweep of `√n` parallel steps over whole rows or whole columns:
//!
//! 1. **SPINETREE** ([`build`]) — rows, top to bottom. Every element reads
//!    its bucket's `spine` pointer (concurrent read) and then all elements
//!    of the row attempt to overwrite the bucket pointer with their own
//!    address (concurrent **ARB** write — the "overwrite-and-test" idiom).
//!    The winners become candidates for parenthood; the next row down reads
//!    them back. The resulting pointers link every label class into a tree
//!    whose root is the class's bucket.
//! 2. **ROWSUMS** ([`phases::rowsums`]) — columns, left to right. Each
//!    element adds its value into its parent's `rowsum`. Theorem 1
//!    guarantees all same-parent elements sit in one row, hence in distinct
//!    columns, so a column-parallel step never has two writers per cell.
//! 3. **SPINESUMS** ([`phases::spinesums`]) — rows, bottom to top. Spine
//!    elements forward `spinesum ⊕ rowsum` to their parent, computing a
//!    recurrence along the unique spine path of each class.
//! 4. **MULTISUMS** ([`phases::multisums`]) — columns, left to right. Each
//!    element fetches its parent's `spinesum` (its multiprefix result) and
//!    appends its own value for the next same-class element on its row.
//!
//! Step complexity `S = O(√n)` (each phase is one sweep), work `W = O(n)`,
//! space `O(n + m)` — work efficient.
//!
//! ## Fidelity notes
//!
//! * Memory is laid out exactly as the CRAY implementation (§4, Figure 8):
//!   one structure-of-arrays block with buckets at slots `0..m` and element
//!   `i` at slot `m + i` (the "pivot" layout), so pointer dereferences are
//!   plain `usize` gathers/scatters. See [`layout`].
//! * The row length need not be `√n` (§4.4): [`layout::Layout`] accepts any
//!   row length and the grid may be ragged (no padding is materialized; the
//!   last row is simply short).
//! * The paper's SPINESUMS guards on `rowsum ≠ 0` to detect spine elements
//!   (§4.1 loop 3). That test is only correct when a genuine combination of
//!   values can never equal the identity. This implementation keeps an
//!   explicit `has_child` flag (set during ROWSUMS) so the algorithm is
//!   correct for *all* inputs — e.g. PLUS over values summing to zero. The
//!   `cray-sim` crate still models the `≠ 0` masked loop's *timing*
//!   (dummy-location hot spot, all-false early exit) because those effects
//!   drive the paper's Figure 10.
//! * The ARB write is modeled by an explicit, configurable
//!   [`build::ArbPolicy`]; a property test checks the theorem implicit in
//!   the paper — the final sums and reductions are independent of which
//!   writer wins arbitration.

pub mod build;
pub mod engine;
pub mod layout;
pub mod phases;
pub mod prepared;
pub mod trace;
pub mod validate;

pub use build::{build_spinetree, ArbPolicy};
pub use engine::{
    multiprefix_spinetree, multiprefix_spinetree_instrumented, multireduce_spinetree,
    try_multiprefix_spinetree, try_multiprefix_spinetree_ctx, try_multireduce_spinetree,
    try_multireduce_spinetree_ctx, PhaseStats, SpinetreeRun,
};
pub use layout::Layout;
pub use prepared::PreparedMultiprefix;
