//! The three EREW phases that run over a built spinetree: ROWSUMS,
//! SPINESUMS and MULTISUMS, plus the §4.2 multireduce shortcut.
//!
//! Theorems 1–2 of the paper (checked in [`super::validate`]) guarantee
//! that within any single column-parallel or row-parallel step of these
//! phases, no two active elements share a parent cell — so although the
//! loops below are written as sequential sweeps (the vector-simulation
//! style of §4), every inner loop body could execute concurrently with
//! exclusive reads and writes.

use super::layout::Layout;
use crate::error::MpError;
use crate::exec::CheckGuard;
use crate::op::{CombineOp, TryCombineOp};
use crate::problem::Element;
use crate::resilience::RunContext;

/// ROWSUMS (§2.2, Figure 4): sweep the **columns** left to right; every
/// element combines its value into its parent's `rowsum`.
///
/// ```text
/// for (c = 1 to √n)
///     pardo (i = elements of column c)
///         spine->rowsum += value[i];
/// ```
///
/// On exit each *spine element* holds in `rowsum` the ⊕ of its children (in
/// vector order, since children occupy one row and columns are swept left to
/// right); non-spine elements keep the identity. `has_child` is set for
/// every cell that received at least one child — the robust spine marker
/// this implementation uses instead of the paper's `rowsum ≠ 0` test.
pub fn rowsums<T: Element, O: CombineOp<T>>(
    values: &[T],
    spine: &[usize],
    layout: &Layout,
    op: O,
    rowsum: &mut [T],
    has_child: &mut [bool],
) {
    debug_assert_eq!(values.len(), layout.n);
    debug_assert_eq!(spine.len(), layout.slots());
    debug_assert_eq!(rowsum.len(), layout.slots());
    let m = layout.m;
    for c in layout.cols_left_right() {
        for i in layout.col_elements(c) {
            let parent = spine[m + i];
            rowsum[parent] = op.combine(rowsum[parent], values[i]);
            has_child[parent] = true;
        }
    }
}

/// SPINESUMS (§2.2, Figure 4): sweep the **rows** bottom to top; every spine
/// element forwards `spinesum ⊕ rowsum` to its parent.
///
/// ```text
/// for (r = 1 to √n)
///     pardo (i = elements of row r)
///         if (rowsum != 0)                  // here: if has_child[i]
///             spine->spinesum = spinesum + rowsum;
/// ```
///
/// Corollary 2 guarantees at most one spine element per class per row, so
/// the single spine path of each class is accumulated as a recurrence. On
/// exit every spine element (and every bucket) holds in `spinesum` the ⊕ of
/// all class elements *preceding any of its children*.
pub fn spinesums<T: Element, O: CombineOp<T>>(
    spine: &[usize],
    layout: &Layout,
    op: O,
    rowsum: &[T],
    has_child: &[bool],
    spinesum: &mut [T],
) {
    let m = layout.m;
    for r in layout.rows_bottom_up() {
        for i in layout.row_elements(r) {
            let slot = m + i;
            if has_child[slot] {
                let parent = spine[slot];
                // Corollary 2: `parent` has exactly one spine child, so this
                // write is exclusive; ⊕-order is (earlier rows) ⊕ (this
                // element's children's row).
                spinesum[parent] = op.combine(spinesum[slot], rowsum[slot]);
            }
        }
    }
}

/// MULTISUMS (called PREFIXSUM in §4.1): sweep the **columns** left to
/// right; every element fetches its parent's running `spinesum` — its
/// multiprefix value — then appends its own value for the next same-class
/// element of its row.
///
/// ```text
/// for (c = 1 to √n)
///     pardo (i = elements of column c) {
///         multi[i] = spine->spinesum;
///         spine->spinesum += value[i];
///     }
/// ```
pub fn multisums<T: Element, O: CombineOp<T>>(
    values: &[T],
    spine: &[usize],
    layout: &Layout,
    op: O,
    spinesum: &mut [T],
    multi: &mut [T],
) {
    debug_assert_eq!(multi.len(), layout.n);
    let m = layout.m;
    for c in layout.cols_left_right() {
        for i in layout.col_elements(c) {
            let parent = spine[m + i];
            multi[i] = spinesum[parent];
            spinesum[parent] = op.combine(spinesum[parent], values[i]);
        }
    }
}

/// Extract the per-label reductions after [`spinesums`] (§4.2): for each
/// bucket, `reduction = spinesum ⊕ rowsum` — the sums of all lower rows
/// followed by the top occupied row. "On the CRAY, this is a simple
/// addition of two vectors"; it is the basis of the cheap **multireduce**
/// operation, which skips MULTISUMS entirely.
pub fn bucket_reductions<T: Element, O: CombineOp<T>>(
    layout: &Layout,
    op: O,
    rowsum: &[T],
    spinesum: &[T],
) -> Vec<T> {
    (0..layout.m)
        .map(|b| op.combine(spinesum[b], rowsum[b]))
        .collect()
}

// ---------------------------------------------------------------------------
// Guarded variants for the hardened engine ([`crate::exec`]): identical
// sweeps with every ⊕ routed through a [`CheckGuard`], which latches a trip
// flag on overflow under a checking policy, and with the run's
// [`RunContext`] polled at phase entry and every
// [`crate::resilience::CHECK_STRIDE`] elements so deadlines/cancellation
// interrupt even a single long sweep. Kept as separate functions so the
// plain engine's hot loops stay monomorphized without the guard branch.

/// [`rowsums`] with guarded combines and context checkpoints.
pub(crate) fn rowsums_guarded<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    spine: &[usize],
    layout: &Layout,
    guard: CheckGuard<'_, O>,
    rowsum: &mut [T],
    has_child: &mut [bool],
    ctx: &RunContext,
) -> Result<(), MpError> {
    debug_assert_eq!(values.len(), layout.n);
    ctx.checkpoint()?;
    let m = layout.m;
    let mut done = 0usize;
    for c in layout.cols_left_right() {
        for i in layout.col_elements(c) {
            ctx.checkpoint_every(done)?;
            done += 1;
            let parent = spine[m + i];
            rowsum[parent] = guard.combine(rowsum[parent], values[i]);
            has_child[parent] = true;
        }
    }
    Ok(())
}

/// [`spinesums`] with guarded combines and context checkpoints.
pub(crate) fn spinesums_guarded<T: Element, O: TryCombineOp<T>>(
    spine: &[usize],
    layout: &Layout,
    guard: CheckGuard<'_, O>,
    rowsum: &[T],
    has_child: &[bool],
    spinesum: &mut [T],
    ctx: &RunContext,
) -> Result<(), MpError> {
    ctx.checkpoint()?;
    let m = layout.m;
    let mut done = 0usize;
    for r in layout.rows_bottom_up() {
        for i in layout.row_elements(r) {
            ctx.checkpoint_every(done)?;
            done += 1;
            let slot = m + i;
            if has_child[slot] {
                let parent = spine[slot];
                spinesum[parent] = guard.combine(spinesum[slot], rowsum[slot]);
            }
        }
    }
    Ok(())
}

/// [`multisums`] with guarded combines and context checkpoints.
pub(crate) fn multisums_guarded<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    spine: &[usize],
    layout: &Layout,
    guard: CheckGuard<'_, O>,
    spinesum: &mut [T],
    multi: &mut [T],
    ctx: &RunContext,
) -> Result<(), MpError> {
    debug_assert_eq!(multi.len(), layout.n);
    ctx.checkpoint()?;
    let m = layout.m;
    let mut done = 0usize;
    for c in layout.cols_left_right() {
        for i in layout.col_elements(c) {
            ctx.checkpoint_every(done)?;
            done += 1;
            let parent = spine[m + i];
            multi[i] = spinesum[parent];
            spinesum[parent] = guard.combine(spinesum[parent], values[i]);
        }
    }
    Ok(())
}

/// [`bucket_reductions`] with guarded combines and context checkpoints.
pub(crate) fn bucket_reductions_guarded<T: Element, O: TryCombineOp<T>>(
    layout: &Layout,
    guard: CheckGuard<'_, O>,
    rowsum: &[T],
    spinesum: &[T],
    ctx: &RunContext,
) -> Result<Vec<T>, MpError> {
    ctx.checkpoint()?;
    let mut out = crate::exec::try_filled_vec(guard.identity(), layout.m)?;
    for (b, slot) in out.iter_mut().enumerate() {
        ctx.checkpoint_every(b)?;
        *slot = guard.combine(spinesum[b], rowsum[b]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Plus;
    use crate::spinetree::build::{build_spinetree, ArbPolicy};

    /// Reproduces the intermediate snapshots of Figure 7 for the 9-ones
    /// example (with LastWins arbitration the spine is 2 ← 5 ← 8 ← bucket).
    #[test]
    fn figure_7_intermediates() {
        let values = [1i64; 9];
        let labels = [2usize; 9];
        let layout = Layout::with_row_len(9, 5, 3);
        let spine = build_spinetree(&labels, &layout, ArbPolicy::LastWins);
        let slots = layout.slots();
        let m = layout.m;

        let mut rowsum = vec![0i64; slots];
        let mut has_child = vec![false; slots];
        rowsums(&values, &spine, &layout, Plus, &mut rowsum, &mut has_child);
        // Spine elements 5 and 8 and the bucket each collected one row of 3.
        assert_eq!(rowsum[m + 5], 3);
        assert_eq!(rowsum[m + 8], 3);
        assert_eq!(rowsum[2], 3);
        assert_eq!(
            rowsum.iter().copied().sum::<i64>(),
            9,
            "all values accounted for exactly once"
        );
        assert!(has_child[m + 5] && has_child[m + 8] && has_child[2]);
        assert_eq!(has_child.iter().filter(|&&h| h).count(), 3);

        let mut spinesum = vec![0i64; slots];
        spinesums(&spine, &layout, Plus, &rowsum, &has_child, &mut spinesum);
        // "each spine element will have in its spinesum field the sum of
        // the elements in its class preceding any of its children."
        assert_eq!(spinesum[m + 8], 3); // children in row 1; row 0 precedes
        assert_eq!(spinesum[2], 6); // bucket: children in row 2; rows 0-1
        assert_eq!(
            bucket_reductions(&layout, Plus, &rowsum, &spinesum),
            vec![0, 0, 9, 0, 0]
        );

        let mut multi = vec![0i64; 9];
        multisums(&values, &spine, &layout, Plus, &mut spinesum, &mut multi);
        assert_eq!(multi, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn rowsum_identity_for_childless() {
        let values = [7i64, 7, 7];
        let labels = [0usize, 1, 2];
        let layout = Layout::with_row_len(3, 3, 3);
        let spine = build_spinetree(&labels, &layout, ArbPolicy::LastWins);
        let mut rowsum = vec![0i64; layout.slots()];
        let mut has_child = vec![false; layout.slots()];
        rowsums(&values, &spine, &layout, Plus, &mut rowsum, &mut has_child);
        // Single row: every element's parent is its bucket.
        assert_eq!(&rowsum[..3], &[7, 7, 7]);
        assert_eq!(&rowsum[3..], &[0, 0, 0]);
        assert!(!has_child[3] && !has_child[4] && !has_child[5]);
    }

    #[test]
    fn spinesums_skips_identity_valued_spine_elements() {
        // Values that cancel to zero: the paper's `rowsum != 0` test would
        // break here; the has_child flag must not.
        let values = [1i64, -1, 1, -1, 5, 0];
        let labels = [0usize; 6];
        let layout = Layout::with_row_len(6, 1, 2);
        let spine = build_spinetree(&labels, &layout, ArbPolicy::LastWins);
        let slots = layout.slots();
        let mut rowsum = vec![0i64; slots];
        let mut has_child = vec![false; slots];
        rowsums(&values, &spine, &layout, Plus, &mut rowsum, &mut has_child);
        let mut spinesum = vec![0i64; slots];
        spinesums(&spine, &layout, Plus, &rowsum, &has_child, &mut spinesum);
        let red = bucket_reductions(&layout, Plus, &rowsum, &spinesum);
        assert_eq!(red, vec![5]);
        let mut multi = vec![0i64; 6];
        multisums(&values, &spine, &layout, Plus, &mut spinesum, &mut multi);
        assert_eq!(multi, vec![0, 1, 0, 1, 0, 5]);
    }
}
