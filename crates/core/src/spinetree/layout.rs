//! The pivot memory layout and row/column geometry (Figure 8, §4.4).
//!
//! Temporary memory for the buckets and elements is a single conceptual
//! block "divided at the pivot point": bucket `b` lives at slot `b`
//! (`0 ≤ b < m`) and element `i` at slot `m + i`. All spine pointers are
//! plain indices into that block, so on a vector machine every pointer
//! dereference is a gather/scatter, and here it is a `usize` index.
//!
//! Elements are conceptually arranged into a grid of `n_rows` rows of
//! `row_len` elements each. Unlike the PRAM presentation, `n` need not be a
//! perfect square: the last row may be short (§2.2 "it is a simple matter to
//! pad the elements up to a square … Later, we will show how this can be
//! avoided"; §4.4 chooses the row length freely).

/// Geometry of the element grid plus the pivot split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Number of elements.
    pub n: usize,
    /// Number of buckets (labels range over `[0, m)`).
    pub m: usize,
    /// Elements per row (the paper's `p`; the stride of column access).
    pub row_len: usize,
    /// Number of rows, `ceil(n / row_len)`.
    pub n_rows: usize,
}

impl Layout {
    /// Build a layout with an explicitly chosen row length.
    ///
    /// # Panics
    /// Panics if `row_len == 0` while `n > 0`.
    pub fn with_row_len(n: usize, m: usize, row_len: usize) -> Self {
        assert!(row_len > 0 || n == 0, "row_len must be positive");
        let n_rows = if n == 0 { 0 } else { n.div_ceil(row_len) };
        Layout {
            n,
            m,
            row_len: row_len.max(1),
            n_rows,
        }
    }

    /// Build a layout with the default near-`√n` row length of
    /// [`choose_row_len`].
    pub fn square(n: usize, m: usize) -> Self {
        Self::with_row_len(n, m, choose_row_len(n))
    }

    /// Total slots in the pivot block (`m` buckets + `n` elements).
    #[inline(always)]
    pub fn slots(&self) -> usize {
        self.m + self.n
    }

    /// Allocate one `slots()`-sized pivot-block temporary **fallibly**: the
    /// spinetree engine holds several `n + m` blocks (`rowsum`, `spinesum`,
    /// `spine`, `has_child`), and the hardened path must report
    /// [`crate::MpError::AllocationFailed`] instead of aborting when the
    /// allocator refuses one.
    pub fn try_pivot_block<T: crate::problem::Element>(
        &self,
        fill: T,
    ) -> Result<Vec<T>, crate::error::MpError> {
        crate::exec::try_filled_vec(fill, self.slots())
    }

    /// Slot of bucket `b`.
    #[inline(always)]
    pub fn bucket_slot(&self, b: usize) -> usize {
        debug_assert!(b < self.m);
        b
    }

    /// Slot of element `i`.
    #[inline(always)]
    pub fn elem_slot(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        self.m + i
    }

    /// Is `slot` a bucket slot (left of the pivot)?
    #[inline(always)]
    pub fn is_bucket(&self, slot: usize) -> bool {
        slot < self.m
    }

    /// Element index of an element slot.
    #[inline(always)]
    pub fn elem_of_slot(&self, slot: usize) -> usize {
        debug_assert!(slot >= self.m);
        slot - self.m
    }

    /// Row of element `i` (row 0 holds the first, lowest-indexed elements —
    /// the paper's "bottom" row).
    #[inline(always)]
    pub fn row_of(&self, i: usize) -> usize {
        i / self.row_len
    }

    /// Column of element `i`.
    #[inline(always)]
    pub fn col_of(&self, i: usize) -> usize {
        i % self.row_len
    }

    /// The element indices of row `r`, in increasing (vector) order.
    /// The last row may be shorter than `row_len`.
    #[inline]
    pub fn row_elements(&self, r: usize) -> std::ops::Range<usize> {
        debug_assert!(r < self.n_rows);
        let start = r * self.row_len;
        let end = ((r + 1) * self.row_len).min(self.n);
        start..end
    }

    /// The element indices of column `c`, bottom row upward — a
    /// constant-stride sequence (stride = `row_len`), exactly the access
    /// pattern the CRAY vectorizes with strided gathers.
    #[inline]
    pub fn col_elements(&self, c: usize) -> impl Iterator<Item = usize> + '_ {
        debug_assert!(c < self.row_len);
        (c..self.n).step_by(self.row_len.max(1))
    }

    /// Rows from top (last elements) down to bottom — the SPINETREE sweep
    /// order (`for r = √n downto 1`).
    #[inline]
    pub fn rows_top_down(&self) -> impl Iterator<Item = usize> {
        (0..self.n_rows).rev()
    }

    /// Rows bottom-up — the SPINESUMS sweep order.
    #[inline]
    pub fn rows_bottom_up(&self) -> std::ops::Range<usize> {
        0..self.n_rows
    }

    /// Columns left to right — the ROWSUMS / MULTISUMS sweep order.
    #[inline]
    pub fn cols_left_right(&self) -> std::ops::Range<usize> {
        0..if self.n == 0 {
            0
        } else {
            self.row_len.min(self.n)
        }
    }
}

/// Default bank count used by [`choose_row_len`]'s stride hygiene (the CRAY
/// Y-MP section sizes are powers of two; 64 is a conservative stand-in).
pub const DEFAULT_BANKS: usize = 64;

/// Bank busy time in clocks on the Y-MP (§4.4: "nor of the bank cycle time
/// (4 in the case of the CRAY Y-MP)").
pub const BANK_CYCLE: usize = 4;

/// Choose a row length near `√n`.
///
/// §4.4 of the paper: the optimum for the measured loop constants is
/// `p = 0.749 √n`, but total time is within 2 % of optimal for any
/// near-square choice, and the *important* criterion is that the column
/// stride (= row length) avoids multiples of the number of memory banks and
/// of the bank cycle time. We therefore take `⌈√n⌉` and nudge it upward to
/// an odd value (odd ⇒ coprime with every power-of-two bank count and with
/// the bank cycle 4).
pub fn choose_row_len(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let mut w = (n as f64).sqrt().ceil() as usize;
    if w.is_multiple_of(2) {
        w += 1;
    }
    w
}

/// Row length skewed by the paper's optimal factor (§4.4, `p = 0.749 √n`),
/// with the same odd-stride hygiene as [`choose_row_len`]. Exposed so the
/// `row_length` ablation bench can sweep around it.
pub fn choose_row_len_skewed(n: usize, factor: f64) -> usize {
    if n <= 1 {
        return 1;
    }
    let mut w = ((n as f64).sqrt() * factor).round().max(1.0) as usize;
    if w.is_multiple_of(2) {
        w += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_layout_covers_all_elements_once() {
        for n in [0usize, 1, 2, 3, 8, 9, 10, 63, 64, 65, 100, 1000] {
            let l = Layout::square(n, 7);
            let mut seen = vec![false; n];
            for r in 0..l.n_rows {
                for i in l.row_elements(r) {
                    assert!(!seen[i], "element {i} in two rows (n={n})");
                    seen[i] = true;
                    assert_eq!(l.row_of(i), r);
                }
            }
            assert!(seen.iter().all(|&s| s), "row cover incomplete for n={n}");

            let mut seen = vec![false; n];
            for c in l.cols_left_right() {
                for i in l.col_elements(c) {
                    assert!(!seen[i], "element {i} in two columns (n={n})");
                    seen[i] = true;
                    assert_eq!(l.col_of(i), c);
                }
            }
            assert!(seen.iter().all(|&s| s), "column cover incomplete for n={n}");
        }
    }

    #[test]
    fn pivot_addressing() {
        let l = Layout::with_row_len(10, 4, 3);
        assert_eq!(l.slots(), 14);
        assert_eq!(l.bucket_slot(0), 0);
        assert_eq!(l.bucket_slot(3), 3);
        assert_eq!(l.elem_slot(0), 4);
        assert_eq!(l.elem_slot(9), 13);
        assert!(l.is_bucket(3));
        assert!(!l.is_bucket(4));
        assert_eq!(l.elem_of_slot(4), 0);
    }

    #[test]
    fn ragged_last_row() {
        let l = Layout::with_row_len(10, 0, 4);
        assert_eq!(l.n_rows, 3);
        assert_eq!(l.row_elements(0), 0..4);
        assert_eq!(l.row_elements(2), 8..10);
        let col3: Vec<_> = l.col_elements(3).collect();
        assert_eq!(col3, vec![3, 7]); // column 3 misses the short top row
    }

    #[test]
    fn sweep_orders() {
        let l = Layout::with_row_len(9, 2, 3);
        let top_down: Vec<_> = l.rows_top_down().collect();
        assert_eq!(top_down, vec![2, 1, 0]);
        assert_eq!(l.rows_bottom_up().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(l.cols_left_right().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn chosen_row_len_is_near_sqrt_and_odd() {
        for n in [2usize, 10, 100, 1000, 10_000, 1_000_000] {
            let w = choose_row_len(n);
            assert_eq!(w % 2, 1, "row length must be odd for n={n}");
            let s = (n as f64).sqrt();
            assert!((w as f64) >= s, "row len below sqrt for n={n}");
            assert!(
                (w as f64) <= s + 2.0,
                "row len too far above sqrt for n={n}"
            );
            // odd => not a multiple of any power-of-two bank count or of 4
            assert_ne!(w % BANK_CYCLE, 0);
            assert_ne!(w % DEFAULT_BANKS, 0);
        }
    }

    #[test]
    fn skewed_row_len_tracks_factor() {
        let n = 10_000;
        let w = choose_row_len_skewed(n, 0.749);
        assert!((70..=80).contains(&w), "w = {w}");
        assert_eq!(w % 2, 1);
        assert_eq!(choose_row_len_skewed(1, 0.5), 1);
    }

    #[test]
    fn degenerate_sizes() {
        let l = Layout::square(0, 3);
        assert_eq!(l.n_rows, 0);
        assert_eq!(l.cols_left_right().count(), 0);
        let l = Layout::square(1, 1);
        assert_eq!(l.n_rows, 1);
        assert_eq!(l.row_elements(0), 0..1);
    }

    #[test]
    fn single_column_layout() {
        // row_len 1 makes the grid one element per row: the spinetree
        // degenerates to a chain, which must still work.
        let l = Layout::with_row_len(5, 2, 1);
        assert_eq!(l.n_rows, 5);
        assert_eq!(l.cols_left_right().collect::<Vec<_>>(), vec![0]);
        assert_eq!(l.col_elements(0).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }
}
