//! The assembled four-phase spinetree engine, with step/work instrumentation.

use super::build::{build_spinetree, build_spinetree_ctx, ArbPolicy};
use super::layout::Layout;
use super::phases::{
    bucket_reductions, bucket_reductions_guarded, multisums, multisums_guarded, rowsums,
    rowsums_guarded, spinesums, spinesums_guarded,
};
use crate::exec::{try_filled_vec, CheckGuard, OverflowPolicy, TryEngineResult};
use crate::obs::Phase;
use crate::op::{CombineOp, TryCombineOp};
use crate::problem::{Element, MultiprefixOutput};
use crate::resilience::RunContext;
use std::sync::atomic::{AtomicBool, Ordering};

/// Parallel-step and work accounting for one phase, in the paper's §3
/// measures: `steps` is the number of `pardo` issues (parallel steps), and
/// `work` the total number of element operations across all steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of parallel steps (outer-loop iterations).
    pub steps: usize,
    /// Total elements operated on over all steps.
    pub work: usize,
}

/// A fully instrumented spinetree run: the result plus the layout used and
/// per-phase step/work counts (INIT, SPINETREE, ROWSUMS, SPINESUMS,
/// MULTISUMS in that order).
#[derive(Debug, Clone)]
pub struct SpinetreeRun<T> {
    /// The multiprefix result.
    pub output: MultiprefixOutput<T>,
    /// The grid geometry used.
    pub layout: Layout,
    /// Per-phase accounting: `[init, spinetree, rowsums, spinesums, multisums]`.
    pub phases: [PhaseStats; 5],
}

impl<T> SpinetreeRun<T> {
    /// Total parallel steps `S` over all phases.
    pub fn total_steps(&self) -> usize {
        self.phases.iter().map(|p| p.steps).sum()
    }

    /// Total work `W` over all phases.
    pub fn total_work(&self) -> usize {
        self.phases.iter().map(|p| p.work).sum()
    }
}

/// Run the paper's multiprefix algorithm with an explicit layout and
/// arbitration policy, returning full instrumentation.
///
/// Preconditions (checked by [`crate::api::multiprefix`], debug-asserted
/// here): `values.len() == labels.len() == layout.n`, labels `< layout.m`.
pub fn multiprefix_spinetree_instrumented<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    op: O,
    layout: Layout,
    policy: ArbPolicy,
) -> SpinetreeRun<T> {
    debug_assert_eq!(values.len(), labels.len());
    debug_assert_eq!(values.len(), layout.n);
    let slots = layout.slots();
    let n = layout.n;

    // INIT (Figure 3): one parallel step clears all temporaries. (We follow
    // §4's "modified initialization": buckets are cleared directly, which
    // costs O(m) work but is faster in practice whenever m ≤ n.)
    let mut rowsum = vec![op.identity(); slots];
    let mut spinesum = vec![op.identity(); slots];
    let mut has_child = vec![false; slots];
    let init = PhaseStats {
        steps: 1,
        work: slots,
    };

    // Phase 1: SPINETREE (rows, top to bottom).
    let spine = build_spinetree(labels, &layout, policy);
    let spinetree = PhaseStats {
        steps: layout.n_rows,
        work: n,
    };

    // Phase 2: ROWSUMS (columns, left to right).
    rowsums(values, &spine, &layout, op, &mut rowsum, &mut has_child);
    let rowsums_stats = PhaseStats {
        steps: layout.cols_left_right().len(),
        work: n,
    };

    // Phase 3: SPINESUMS (rows, bottom to top).
    spinesums(&spine, &layout, op, &rowsum, &has_child, &mut spinesum);
    let spinesums_stats = PhaseStats {
        steps: layout.n_rows,
        work: n,
    };

    // The reductions are already available here — §4.2's multireduce exit.
    let reductions = bucket_reductions(&layout, op, &rowsum, &spinesum);

    // Phase 4: MULTISUMS (columns, left to right).
    let mut sums = vec![op.identity(); n];
    multisums(values, &spine, &layout, op, &mut spinesum, &mut sums);
    let multisums_stats = PhaseStats {
        steps: layout.cols_left_right().len(),
        work: n,
    };

    SpinetreeRun {
        output: MultiprefixOutput { sums, reductions },
        layout,
        phases: [
            init,
            spinetree,
            rowsums_stats,
            spinesums_stats,
            multisums_stats,
        ],
    }
}

/// Run the spinetree multiprefix with default geometry (near-`√n` rows) and
/// `LastWins` arbitration.
pub fn multiprefix_spinetree<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
) -> MultiprefixOutput<T> {
    let layout = Layout::square(values.len(), m);
    multiprefix_spinetree_instrumented(values, labels, op, layout, ArbPolicy::LastWins).output
}

/// The multireduce operation (§4.2): per-label reductions only, skipping
/// MULTISUMS. "Compared to the PREFIXSUM phase, which requires almost 7
/// clock ticks per element, this is a substantial savings in time."
pub fn multireduce_spinetree<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
) -> Vec<T> {
    let layout = Layout::square(values.len(), m);
    let slots = layout.slots();
    let mut rowsum = vec![op.identity(); slots];
    let mut spinesum = vec![op.identity(); slots];
    let mut has_child = vec![false; slots];
    let spine = build_spinetree(labels, &layout, ArbPolicy::LastWins);
    rowsums(values, &spine, &layout, op, &mut rowsum, &mut has_child);
    spinesums(&spine, &layout, op, &rowsum, &has_child, &mut spinesum);
    bucket_reductions(&layout, op, &rowsum, &spinesum)
}

/// Hardened spinetree multiprefix (see [`crate::exec`] for the contract):
/// the four `n + m` pivot-block temporaries are allocated fallibly via
/// [`Layout::try_pivot_block`], and under a checking [`OverflowPolicy`]
/// every ⊕ runs through a trip guard. MULTISUMS performs the literal serial
/// combine `prefix_i ⊕ value_i` for every element, so a clean (untripped)
/// run certifies that the serial evaluation cannot overflow either.
pub fn try_multiprefix_spinetree<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
) -> TryEngineResult<MultiprefixOutput<T>> {
    try_multiprefix_spinetree_ctx(values, labels, m, op, policy, &RunContext::new())
}

/// [`try_multiprefix_spinetree`] under a [`RunContext`]: the context is
/// polled at every phase boundary, after every SPINETREE row, and every
/// [`crate::resilience::CHECK_STRIDE`] elements inside the
/// ROWSUMS/SPINESUMS/MULTISUMS sweeps, so deadlines and cancellation
/// interrupt the run promptly and no partial output escapes.
pub fn try_multiprefix_spinetree_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
    ctx: &RunContext,
) -> TryEngineResult<MultiprefixOutput<T>> {
    debug_assert_eq!(values.len(), labels.len());
    ctx.checkpoint()?;
    let layout = Layout::square(values.len(), m);
    let tripped = AtomicBool::new(false);
    let guard = CheckGuard::new(op, policy, &tripped);

    let (mut rowsum, mut spinesum, mut has_child, mut sums) = {
        let _span = ctx.phase_span(Phase::Init);
        (
            layout.try_pivot_block(op.identity())?,
            layout.try_pivot_block(op.identity())?,
            layout.try_pivot_block(false)?,
            try_filled_vec(op.identity(), layout.n)?,
        )
    };

    let spine = {
        let _span = ctx.phase_span(Phase::Spinetree);
        build_spinetree_ctx(labels, &layout, ArbPolicy::LastWins, ctx)?
    };
    {
        let _span = ctx.phase_span(Phase::Rowsums);
        rowsums_guarded(
            values,
            &spine,
            &layout,
            guard,
            &mut rowsum,
            &mut has_child,
            ctx,
        )?;
    }
    let reductions = {
        let _span = ctx.phase_span(Phase::Spinesums);
        spinesums_guarded(
            &spine,
            &layout,
            guard,
            &rowsum,
            &has_child,
            &mut spinesum,
            ctx,
        )?;
        bucket_reductions_guarded(&layout, guard, &rowsum, &spinesum, ctx)?
    };
    {
        let _span = ctx.phase_span(Phase::Multisums);
        multisums_guarded(
            values,
            &spine,
            &layout,
            guard,
            &mut spinesum,
            &mut sums,
            ctx,
        )?;
    }

    if tripped.load(Ordering::Relaxed) {
        Ok(None)
    } else {
        Ok(Some(MultiprefixOutput { sums, reductions }))
    }
}

/// Hardened spinetree multireduce. Same contract as
/// [`try_multiprefix_spinetree`].
pub fn try_multireduce_spinetree<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
) -> TryEngineResult<Vec<T>> {
    try_multireduce_spinetree_ctx(values, labels, m, op, policy, &RunContext::new())
}

/// [`try_multireduce_spinetree`] under a [`RunContext`] (see
/// [`try_multiprefix_spinetree_ctx`] for the checkpoint contract).
pub fn try_multireduce_spinetree_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
    ctx: &RunContext,
) -> TryEngineResult<Vec<T>> {
    debug_assert_eq!(values.len(), labels.len());
    ctx.checkpoint()?;
    let layout = Layout::square(values.len(), m);
    let tripped = AtomicBool::new(false);
    let guard = CheckGuard::new(op, policy, &tripped);

    let mut rowsum = layout.try_pivot_block(op.identity())?;
    let mut spinesum = layout.try_pivot_block(op.identity())?;
    let mut has_child = layout.try_pivot_block(false)?;

    let spine = build_spinetree_ctx(labels, &layout, ArbPolicy::LastWins, ctx)?;
    rowsums_guarded(
        values,
        &spine,
        &layout,
        guard,
        &mut rowsum,
        &mut has_child,
        ctx,
    )?;
    spinesums_guarded(
        &spine,
        &layout,
        guard,
        &rowsum,
        &has_child,
        &mut spinesum,
        ctx,
    )?;
    let reductions = bucket_reductions_guarded(&layout, guard, &rowsum, &spinesum, ctx)?;

    if tripped.load(Ordering::Relaxed) {
        Ok(None)
    } else {
        Ok(Some(reductions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{FirstLast, Max, Plus, FIRST_LAST_IDENTITY};
    use crate::serial::{multiprefix_serial, multireduce_serial};

    #[test]
    fn matches_figure_1() {
        let values = [1i64, 3, 2, 1, 1, 2, 3, 1];
        let labels = [1usize, 2, 1, 1, 2, 2, 1, 1];
        let out = multiprefix_spinetree(&values, &labels, 4, Plus);
        assert_eq!(out.sums, vec![0, 0, 1, 3, 3, 4, 4, 7]);
        assert_eq!(out.reductions, vec![0, 8, 6, 0]);
    }

    #[test]
    fn matches_serial_on_mixed_input() {
        let values: Vec<i64> = (0..257).map(|i| (i * 37 % 19) - 9).collect();
        let labels: Vec<usize> = (0..257).map(|i| (i * i + 3 * i) % 13).collect();
        let expect = multiprefix_serial(&values, &labels, 13, Plus);
        let got = multiprefix_spinetree(&values, &labels, 13, Plus);
        assert_eq!(got.sums, expect.sums);
        assert_eq!(got.reductions, expect.reductions);
    }

    #[test]
    fn arbitration_independence() {
        // The ARB model promises an *arbitrary* winner; the result must not
        // depend on which. Different policies give different trees but the
        // same sums — the key soundness property of the paper's §3.1.
        let values: Vec<i64> = (0..500).map(|i| i % 23).collect();
        let labels: Vec<usize> = (0..500).map(|i| (i * 7 + i / 11) % 9).collect();
        let layout = Layout::square(500, 9);
        let reference =
            multiprefix_spinetree_instrumented(&values, &labels, Plus, layout, ArbPolicy::LastWins)
                .output;
        for policy in [
            ArbPolicy::FirstWins,
            ArbPolicy::Seeded(1),
            ArbPolicy::Seeded(0xDEADBEEF),
        ] {
            let run = multiprefix_spinetree_instrumented(&values, &labels, Plus, layout, policy);
            assert_eq!(run.output.sums, reference.sums, "{policy:?}");
            assert_eq!(run.output.reductions, reference.reductions, "{policy:?}");
        }
    }

    #[test]
    fn step_complexity_is_order_sqrt_n() {
        // §3: each of the four phases executes exactly √n parallel steps.
        for n in [100usize, 1024, 4096, 10_000] {
            let values = vec![1i64; n];
            let labels = vec![0usize; n];
            let layout = Layout::square(n, 1);
            let run = multiprefix_spinetree_instrumented(
                &values,
                &labels,
                Plus,
                layout,
                ArbPolicy::LastWins,
            );
            let sqrt_n = (n as f64).sqrt();
            let s = run.total_steps() as f64;
            assert!(
                s <= 4.5 * sqrt_n + 10.0,
                "S = {s} not O(sqrt n) for n = {n}"
            );
            // Work efficiency: W = O(n) — 4 phases of n plus O(n+m) init.
            assert!(run.total_work() <= 5 * n + layout.m + 8);
        }
    }

    #[test]
    fn extreme_row_lengths_still_correct() {
        let values: Vec<i64> = (0..40).map(|i| i as i64).collect();
        let labels: Vec<usize> = (0..40).map(|i| i % 3).collect();
        let expect = multiprefix_serial(&values, &labels, 3, Plus);
        for row_len in [1usize, 2, 5, 7, 39, 40, 64] {
            let layout = Layout::with_row_len(40, 3, row_len);
            let run = multiprefix_spinetree_instrumented(
                &values,
                &labels,
                Plus,
                layout,
                ArbPolicy::Seeded(3),
            );
            assert_eq!(run.output.sums, expect.sums, "row_len = {row_len}");
            assert_eq!(run.output.reductions, expect.reductions);
        }
    }

    #[test]
    fn noncommutative_operator_preserved() {
        let values: Vec<(i32, i32)> = (0..100).map(|i| (i, i)).collect();
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let expect = multiprefix_serial(&values, &labels, 4, FirstLast);
        let got = multiprefix_spinetree(&values, &labels, 4, FirstLast);
        assert_eq!(got.sums, expect.sums);
        assert_eq!(got.reductions, expect.reductions);
        // Spot check: element 4 (label 0) should see (0, previous=0).
        assert_eq!(got.sums[0], FIRST_LAST_IDENTITY);
        assert_eq!(got.sums[4], (0, 0));
    }

    #[test]
    fn max_operator_through_engine() {
        let values = [3i64, 7, 2, 9, 1, 4];
        let labels = [0usize, 1, 0, 1, 0, 1];
        let expect = multiprefix_serial(&values, &labels, 2, Max);
        let got = multiprefix_spinetree(&values, &labels, 2, Max);
        assert_eq!(got, expect);
    }

    #[test]
    fn multireduce_agrees() {
        let values: Vec<i64> = (0..321).map(|i| (i * 31 % 17) as i64 - 8).collect();
        let labels: Vec<usize> = (0..321).map(|i| (i * 13) % 29).collect();
        assert_eq!(
            multireduce_spinetree(&values, &labels, 29, Plus),
            multireduce_serial(&values, &labels, 29, Plus)
        );
    }

    #[test]
    fn empty_and_tiny() {
        let out = multiprefix_spinetree::<i64, _>(&[], &[], 3, Plus);
        assert!(out.sums.is_empty());
        assert_eq!(out.reductions, vec![0, 0, 0]);
        let out = multiprefix_spinetree(&[5i64], &[0], 1, Plus);
        assert_eq!(out.sums, vec![0]);
        assert_eq!(out.reductions, vec![5]);
    }
}
