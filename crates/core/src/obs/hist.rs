//! Lock-free fixed-bucket latency histograms.
//!
//! The bucket layout is a base-2 geometric grid with four sub-buckets per
//! octave (the top two mantissa bits), the classic HDR-style compromise:
//! recording is a handful of integer instructions and one relaxed atomic
//! increment — no locks, no floating point, no allocation — while quantile
//! estimates stay within ~12 % of the true value everywhere on the grid.
//!
//! The grid spans `[2^8, 2^39)` nanoseconds (256 ns to ≈ 9.2 minutes),
//! which covers everything from a single checkpointed stride to a soak-test
//! stall. Samples outside the grid land in dedicated **underflow** and
//! **overflow** buckets so they are never silently dropped and a snapshot
//! can report that the grid was exceeded.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lowest exponent on the grid: bucket 0 starts at `2^MIN_EXP` ns.
const MIN_EXP: u32 = 8;
/// Highest exponent on the grid: the last regular bucket ends at
/// `2^(MAX_EXP + 1)` ns.
const MAX_EXP: u32 = 38;
/// Sub-buckets per octave (quarter-octave resolution).
const SUBDIV: usize = 4;
/// Regular (on-grid) bucket count.
pub const GRID_BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize * SUBDIV;
/// Total bucket count: the grid plus underflow and overflow.
pub const NUM_BUCKETS: usize = GRID_BUCKETS + 2;

/// Index of the underflow bucket (samples `< 2^MIN_EXP` ns).
pub const UNDERFLOW: usize = GRID_BUCKETS;
/// Index of the overflow bucket (samples `>= 2^(MAX_EXP+1)` ns).
pub const OVERFLOW: usize = GRID_BUCKETS + 1;

/// The bucket a sample of `nanos` falls into.
#[inline]
pub fn bucket_index(nanos: u64) -> usize {
    if nanos < (1u64 << MIN_EXP) {
        return UNDERFLOW;
    }
    let exp = 63 - nanos.leading_zeros();
    if exp > MAX_EXP {
        return OVERFLOW;
    }
    // Top two mantissa bits below the leading bit select the sub-bucket.
    let frac = ((nanos >> (exp - 2)) & 0b11) as usize;
    (exp - MIN_EXP) as usize * SUBDIV + frac
}

/// The half-open range `[lo, hi)` of nanoseconds covered by grid bucket
/// `index`. Panics if `index` is the underflow or overflow bucket (their
/// ranges are unbounded on one side).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < GRID_BUCKETS, "bucket {index} is not on the grid");
    let exp = MIN_EXP + (index / SUBDIV) as u32;
    let frac = (index % SUBDIV) as u64;
    let lo = (1u64 << exp) + (frac << (exp - 2));
    let hi = if frac + 1 == SUBDIV as u64 {
        1u64 << (exp + 1)
    } else {
        (1u64 << exp) + ((frac + 1) << (exp - 2))
    };
    (lo, hi)
}

/// A lock-free fixed-bucket latency histogram.
///
/// All mutation is relaxed atomic increments; `snapshot` reads the buckets
/// without stopping writers, so a snapshot taken concurrently with
/// recording is a coherent *approximation* (each bucket individually
/// up-to-date at its read instant) — exactly the semantics metric scrapes
/// expect.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample of `nanos`.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts and aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive count/sum from the aggregate cells; under concurrent
        // writers they may disagree with the bucket total by in-flight
        // samples, so clamp count to what the buckets actually hold.
        let bucket_total: u64 = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed).min(bucket_total),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`]'s state, with quantile
/// estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts ([`NUM_BUCKETS`] entries; the last two are
    /// underflow and overflow).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds (for the mean).
    pub sum: u64,
    /// Largest single sample seen.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: locate
    /// the bucket holding the `ceil(q·count)`-th sample, then interpolate
    /// within it assuming samples spread uniformly — the `r`-th of `c`
    /// samples in `[lo, hi)` reports `lo + (hi−lo)·(2r−1)/(2c)`. Distinct
    /// ranks thus give distinct estimates even when they share a bucket
    /// (a one-sample bucket still reports the midpoint, and the unbounded
    /// underflow/overflow buckets keep their fixed midpoint estimates).
    /// Before this interpolation, nearby quantiles collapsed to one
    /// midpoint whenever few samples landed in a wide bucket — the
    /// `p95 == p99` artifact in low-sample bench reports. `None` on an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 && seen + c >= rank {
                return Some(bucket_value(i, rank - seen, c));
            }
            seen += c;
        }
        // Unreachable when count <= sum of buckets; be safe anyway.
        Some(self.max)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Mean sample in nanoseconds (`None` on empty).
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Samples below the grid (`< 256` ns).
    pub fn underflow(&self) -> u64 {
        self.buckets[UNDERFLOW]
    }

    /// Samples beyond the grid (`>= 2^39` ns).
    pub fn overflow(&self) -> u64 {
        self.buckets[OVERFLOW]
    }
}

/// Quantile estimate for the `r`-th (1-based) of `c` samples in bucket
/// `i`, interpolated assuming uniform spread within the bucket.
fn bucket_value(i: usize, r: u64, c: u64) -> u64 {
    if i == UNDERFLOW {
        // The underflow bucket spans [0, 2^MIN_EXP); report its midpoint.
        return 1u64 << (MIN_EXP - 1);
    }
    if i == OVERFLOW {
        // Unbounded above; report the grid's end as a floor estimate.
        return 1u64 << (MAX_EXP + 1);
    }
    let (lo, hi) = bucket_bounds(i);
    debug_assert!(1 <= r && r <= c);
    // lo + (hi−lo)·(2r−1)/(2c); u128 keeps the widest bucket (2^37 ns)
    // times any count exact. For c == 1 this is exactly the midpoint.
    let span = (hi - lo) as u128;
    lo + (span * (2 * r as u128 - 1) / (2 * c as u128)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        // Below the grid: underflow.
        assert_eq!(bucket_index(0), UNDERFLOW);
        assert_eq!(bucket_index(255), UNDERFLOW);
        // First grid bucket starts exactly at 256 ns.
        assert_eq!(bucket_index(256), 0);
        let (lo, hi) = bucket_bounds(0);
        assert_eq!((lo, hi), (256, 320));
        // Last value of bucket 0 / first of bucket 1.
        assert_eq!(bucket_index(319), 0);
        assert_eq!(bucket_index(320), 1);
        // Octave boundary: 511 is the last sub-bucket of exp 8, 512 opens
        // exp 9.
        assert_eq!(bucket_index(511), 3);
        assert_eq!(bucket_index(512), 4);
        // Top of the grid: 2^39 - 1 is the last regular bucket, 2^39
        // overflows.
        assert_eq!(bucket_index((1u64 << 39) - 1), GRID_BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 39), OVERFLOW);
        assert_eq!(bucket_index(u64::MAX), OVERFLOW);
    }

    #[test]
    fn bounds_tile_the_grid_exactly() {
        // Every bucket's hi equals the next bucket's lo: no gaps, no
        // overlaps — and every lo maps back to its own index.
        for i in 0..GRID_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo < hi, "bucket {i}");
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi - 1), i, "hi-1 of bucket {i}");
            if i + 1 < GRID_BUCKETS {
                assert_eq!(hi, bucket_bounds(i + 1).0, "tiling at bucket {i}");
            }
        }
    }

    #[test]
    fn quantiles_on_empty_and_single_sample() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), None);
        assert_eq!(s.p99(), None);
        assert_eq!(s.mean(), None);

        h.record(1_000);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        // Every quantile of a single-sample histogram is that sample's
        // bucket midpoint.
        let mid = s.p50().unwrap();
        assert_eq!(s.p99(), Some(mid));
        assert_eq!(s.quantile(0.0), Some(mid));
        assert_eq!(s.quantile(1.0), Some(mid));
        let (lo, hi) = bucket_bounds(bucket_index(1_000));
        assert!((lo..hi).contains(&mid), "{lo} <= {mid} < {hi}");
        assert_eq!(s.mean(), Some(1_000));
        assert_eq!(s.max, 1_000);
    }

    #[test]
    fn under_and_overflow_are_counted_not_dropped() {
        let h = LatencyHistogram::new();
        h.record(10); // below the grid
        h.record(u64::MAX); // far beyond the grid
        let s = h.snapshot();
        assert_eq!(s.underflow(), 1);
        assert_eq!(s.overflow(), 1);
        assert_eq!(s.count, 2);
        // p50 lands in the underflow bucket, p99 in overflow; both report
        // usable (clamped) estimates rather than panicking.
        assert_eq!(s.p50(), Some(128));
        assert_eq!(s.p99(), Some(1u64 << 39));
    }

    #[test]
    fn quantile_estimate_within_bucket_resolution() {
        let h = LatencyHistogram::new();
        for v in 1..=1_000u64 {
            h.record(v * 1_000); // 1µs .. 1ms uniform
        }
        let s = h.snapshot();
        let p50 = s.p50().unwrap() as f64;
        let p99 = s.p99().unwrap() as f64;
        // Quarter-octave buckets: estimates within ~13% of truth.
        assert!((p50 / 500_000.0 - 1.0).abs() < 0.15, "p50 = {p50}");
        assert!((p99 / 990_000.0 - 1.0).abs() < 0.15, "p99 = {p99}");
        assert_eq!(s.count, 1_000);
    }

    #[test]
    fn nearby_quantiles_stay_distinct_within_one_bucket() {
        // 20 samples in a single bucket: rank(p95) = 19, rank(p99) = 20.
        // The old midpoint estimator collapsed both to one value; the
        // interpolated estimator keeps them ordered and in-bucket.
        let h = LatencyHistogram::new();
        for _ in 0..20 {
            h.record(1_000);
        }
        let s = h.snapshot();
        let (lo, hi) = bucket_bounds(bucket_index(1_000));
        let p50 = s.p50().unwrap();
        let p95 = s.p95().unwrap();
        let p99 = s.p99().unwrap();
        assert!(p50 < p95 && p95 < p99, "{p50} < {p95} < {p99}");
        for v in [p50, p95, p99] {
            assert!((lo..hi).contains(&v), "{lo} <= {v} < {hi}");
        }
    }

    #[test]
    fn interpolation_tracks_rank_position_across_buckets() {
        // 3 samples low bucket + 1 sample high bucket: p50 interpolates
        // the 2nd-of-3 inside the low bucket (its exact midpoint), p99
        // lands in the high bucket.
        let h = LatencyHistogram::new();
        h.record(1_000);
        h.record(1_000);
        h.record(1_000);
        h.record(100_000);
        let s = h.snapshot();
        let (lo, hi) = bucket_bounds(bucket_index(1_000));
        let p50 = s.p50().unwrap();
        assert_eq!(p50, lo + (hi - lo) * 3 / 6, "2nd of 3: (2·2−1)/(2·3)");
        let (lo_hi, hi_hi) = bucket_bounds(bucket_index(100_000));
        let p99 = s.p99().unwrap();
        assert!((lo_hi..hi_hi).contains(&p99));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(300 + t * 1_000 + i % 7);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 40_000);
    }
}
