//! # Observability
//!
//! A zero-dependency metrics and phase-tracing subsystem.
//!
//! The paper's entire evaluation (§4–§5) rests on *measuring* the four
//! spinetree phases — SPINETREE, ROWSUMS, SPINESUMS, MULTISUMS — and on
//! tuning the row length `p ≈ 0.749√n` from those measurements. This
//! module is how that measurement happens in-tree:
//!
//! * [`Recorder`] — the sink trait: monotonic counters, gauges, latency
//!   histograms, and discrete events. Everything in the library records
//!   through an `Option<Arc<dyn Recorder>>`; when none is installed the
//!   instrumented code paths reduce to a single branch and **no clock
//!   reads happen at all** (pinned by the differential tests).
//! * [`MemoryRecorder`] — the in-tree implementation: lock-free
//!   fixed-bucket [`LatencyHistogram`]s (quarter-octave geometric grid,
//!   256 ns – ~9 min, p50/p95/p99 from snapshots) behind a name registry,
//!   with [`ObsSnapshot`] export as JSON ([`ObsSnapshot::to_json`]) or
//!   aligned text (`Display`).
//! * [`Phase`] / [`phase_key`] — the span taxonomy. Engine phases map
//!   one-to-one onto the paper's §4 breakdown so a bench report reads
//!   like the paper's tables.
//! * [`Span`] — a drop guard that times a region into a histogram, only
//!   when a recorder is installed.
//!
//! ## Instrument naming
//!
//! Names are `scope.metric` strings, always `&'static str` on hot paths
//! (no per-call allocation):
//!
//! | scope | instruments |
//! |---|---|
//! | `engine.<kind>.phase.<phase>` | histogram: per-phase wall time |
//! | `dispatch.<kind>` | `attempt_ns` histogram, `attempts`, `retries`, `backoff_sleeps` counters |
//! | `dispatch` | `requests`, `fallbacks` counters; `breaker.<kind>` transition events |
//! | `service.queue` | `depth` gauge, `wait_ns` histogram |
//! | `service.exec` | `exec_ns` histogram |
//! | `service` | `admitted`, `completed`, `shed`, `expired`, `cancelled`, `worker_lost`, `failed` counters (mirrors [`ServiceMetrics`](crate::service::ServiceMetrics)) |
//! | `shard.supervisor` | `shard_lost`, `requeued`, `degraded` counters; `reconnects` counts socket-transport worker revivals (respawn + re-handshake) by the connection keeper |

mod hist;
mod record;

pub use hist::{bucket_bounds, bucket_index, HistogramSnapshot, LatencyHistogram, NUM_BUCKETS};
pub use record::{MemoryRecorder, ObsEvent, ObsSnapshot, Recorder};

use crate::resilience::EngineKind;
use std::time::Instant;

/// An algorithm phase, named after the paper's §4 cost breakdown.
///
/// The spinetree engines ([`EngineKind::Spinetree`], [`EngineKind::Atomic`])
/// run `Init → Spinetree → Rowsums → Spinesums → Multisums`; the blocked
/// and chunked engines' three passes are `Local → Combine → Apply`; the
/// serial engine is the single `Figure2` bucket loop. The sharded engine
/// distributes the same three passes across shard workers as
/// `Local → Exscan → Apply`, with `Recover` timing any shard-loss
/// requeue/degradation work in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Workspace allocation / layout choice before the first parallel step.
    Init,
    /// Build the spinetree (the paper's SPINETREE phase).
    Spinetree,
    /// Per-row segmented sums (ROWSUMS).
    Rowsums,
    /// Scan across row summaries along the spine (SPINESUMS).
    Spinesums,
    /// Final per-element combination (MULTISUMS).
    Multisums,
    /// Blocked engine pass 1: chunk-local buckets.
    Local,
    /// Blocked engine pass 2: per-label scan across chunk summaries.
    Combine,
    /// Blocked engine pass 3: replay chunk-local order with carry-ins.
    Apply,
    /// The serial engine's Figure 2 loop (one undivided phase).
    Figure2,
    /// Sharded engine: exclusive scan over shard summaries (the distributed
    /// form of [`Phase::Combine`]).
    Exscan,
    /// Sharded engine: shard-loss recovery work — requeues and the
    /// single-node degradation fallback.
    Recover,
}

impl Phase {
    /// The lowercase name used in instrument keys and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Init => "init",
            Phase::Spinetree => "spinetree",
            Phase::Rowsums => "rowsums",
            Phase::Spinesums => "spinesums",
            Phase::Multisums => "multisums",
            Phase::Local => "local",
            Phase::Combine => "combine",
            Phase::Apply => "apply",
            Phase::Figure2 => "figure2",
            Phase::Exscan => "exscan",
            Phase::Recover => "recover",
        }
    }

    /// The phases an engine reports, in execution order.
    ///
    /// `Recover` appears in the sharded taxonomy but only records samples
    /// when shard loss actually occurs; report consumers must tolerate a
    /// zero-sample phase.
    pub fn for_engine(engine: EngineKind) -> &'static [Phase] {
        match engine {
            EngineKind::Spinetree | EngineKind::Atomic => &[
                Phase::Init,
                Phase::Spinetree,
                Phase::Rowsums,
                Phase::Spinesums,
                Phase::Multisums,
            ],
            EngineKind::Blocked | EngineKind::Chunked => {
                &[Phase::Local, Phase::Combine, Phase::Apply]
            }
            EngineKind::Sharded => &[Phase::Local, Phase::Exscan, Phase::Recover, Phase::Apply],
            EngineKind::Serial => &[Phase::Figure2],
        }
    }
}

/// The histogram key for one engine phase, e.g.
/// `engine.spinetree.phase.rowsums`.
///
/// Returns a `&'static str` (no allocation) for every valid
/// (engine, phase) pair; pairs outside [`Phase::for_engine`] still get a
/// stable key so ad-hoc instrumentation cannot panic.
pub fn phase_key(engine: EngineKind, phase: Phase) -> &'static str {
    macro_rules! keys {
        ($($eng:ident / $engname:literal => [$($ph:ident / $phname:literal),+ $(,)?]),+ $(,)?) => {
            match (engine, phase) {
                $($((EngineKind::$eng, Phase::$ph) =>
                    concat!("engine.", $engname, ".phase.", $phname),)+)+
            }
        };
    }
    keys! {
        Atomic / "atomic" => [
            Init / "init", Spinetree / "spinetree", Rowsums / "rowsums",
            Spinesums / "spinesums", Multisums / "multisums",
            Local / "local", Combine / "combine", Apply / "apply", Figure2 / "figure2",
            Exscan / "exscan", Recover / "recover",
        ],
        Sharded / "shard" => [
            Init / "init", Spinetree / "spinetree", Rowsums / "rowsums",
            Spinesums / "spinesums", Multisums / "multisums",
            Local / "local", Combine / "combine", Apply / "apply", Figure2 / "figure2",
            Exscan / "exscan", Recover / "recover",
        ],
        Chunked / "chunked" => [
            Init / "init", Spinetree / "spinetree", Rowsums / "rowsums",
            Spinesums / "spinesums", Multisums / "multisums",
            Local / "local", Combine / "combine", Apply / "apply", Figure2 / "figure2",
            Exscan / "exscan", Recover / "recover",
        ],
        Blocked / "blocked" => [
            Init / "init", Spinetree / "spinetree", Rowsums / "rowsums",
            Spinesums / "spinesums", Multisums / "multisums",
            Local / "local", Combine / "combine", Apply / "apply", Figure2 / "figure2",
            Exscan / "exscan", Recover / "recover",
        ],
        Spinetree / "spinetree" => [
            Init / "init", Spinetree / "spinetree", Rowsums / "rowsums",
            Spinesums / "spinesums", Multisums / "multisums",
            Local / "local", Combine / "combine", Apply / "apply", Figure2 / "figure2",
            Exscan / "exscan", Recover / "recover",
        ],
        Serial / "serial" => [
            Init / "init", Spinetree / "spinetree", Rowsums / "rowsums",
            Spinesums / "spinesums", Multisums / "multisums",
            Local / "local", Combine / "combine", Apply / "apply", Figure2 / "figure2",
            Exscan / "exscan", Recover / "recover",
        ],
    }
}

/// A drop guard that times a region into the histogram `name`.
///
/// [`Span::begin`] returns `None` — and reads no clock — when no recorder
/// is installed, so the idiom
///
/// ```
/// # use multiprefix::obs::{Recorder, Span};
/// # fn work(rec: Option<&dyn Recorder>) {
/// let _span = Span::begin(rec, "engine.serial.phase.figure2");
/// // ... timed region ...
/// # }
/// ```
///
/// costs exactly one branch in the uninstrumented case.
#[derive(Debug)]
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    name: &'static str,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Start timing `name`, if a recorder is installed.
    #[inline]
    pub fn begin(rec: Option<&'a dyn Recorder>, name: &'static str) -> Option<Span<'a>> {
        rec.map(|rec| Span {
            rec,
            name,
            start: Instant::now(),
        })
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.rec.duration_ns(self.name, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_keys_are_static_and_distinct_per_engine() {
        let mut seen = std::collections::HashSet::new();
        for engine in EngineKind::ALL {
            for &phase in Phase::for_engine(engine) {
                let key = phase_key(engine, phase);
                assert!(key.starts_with("engine."), "{key}");
                assert!(key.contains(phase.name()), "{key}");
                assert!(seen.insert(key), "duplicate key {key}");
            }
        }
        // Off-taxonomy pairs still resolve without panicking.
        assert_eq!(
            phase_key(EngineKind::Serial, Phase::Rowsums),
            "engine.serial.phase.rowsums"
        );
    }

    #[test]
    fn span_records_exactly_one_sample() {
        let rec = MemoryRecorder::new();
        {
            let _span = Span::begin(Some(&rec as &dyn Recorder), "t.span");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let h = rec.histogram("t.span").expect("span recorded");
        assert_eq!(h.count, 1);
        assert!(h.max >= 1_000_000, "slept >= 1ms, saw {}ns", h.max);
    }

    #[test]
    fn span_without_recorder_is_inert() {
        assert!(Span::begin(None, "t.none").is_none());
    }
}
