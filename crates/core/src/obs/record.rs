//! The [`Recorder`] trait, the in-memory implementation, and snapshot
//! export (JSON and human-readable text).

use super::hist::{HistogramSnapshot, LatencyHistogram};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// A sink for observability signals.
///
/// The library never requires a recorder: every instrumented site takes an
/// `Option<&dyn Recorder>` (usually via
/// [`RunContext`](crate::resilience::RunContext)) and compiles down to one
/// branch when none is installed — the differential tests pin that an
/// instrumented run is bit-for-bit identical to an uninstrumented one.
///
/// Implementations must be cheap and non-blocking on the hot path; the
/// in-tree [`MemoryRecorder`] uses lock-free atomics for every update after
/// first registration of a name.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Add `delta` to the monotonic counter `name`.
    fn counter(&self, name: &str, delta: u64);

    /// Set the gauge `name` to `value`.
    fn gauge(&self, name: &str, value: i64);

    /// Record one latency/duration sample for histogram `name`.
    fn duration_ns(&self, name: &str, nanos: u64);

    /// Record a discrete event (e.g. a circuit-breaker state transition).
    fn event(&self, name: &str, detail: &str);
}

/// Maximum retained events; the buffer is a ring — once full, the
/// *oldest* event is evicted for each new arrival (count preserved in
/// `events_dropped`), so a snapshot always shows the most recent window.
const EVENT_CAP: usize = 1024;

/// One recorded [`Recorder::event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Event stream name (e.g. `breaker.blocked`).
    pub name: String,
    /// Event payload (e.g. `closed->open`).
    pub detail: String,
}

/// The in-memory [`Recorder`]: named counters, gauges and
/// [`LatencyHistogram`]s behind a registry, snapshotted on demand.
///
/// Registration (first use of a name) takes a write lock; every subsequent
/// update is a read-lock + relaxed atomic, and histogram recording is
/// lock-free after lookup. Counter/gauge/histogram *names* should be
/// low-cardinality (`scope.metric` style) — this is a metrics registry,
/// not a tracing store.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    hists: RwLock<BTreeMap<String, Arc<LatencyHistogram>>>,
    events: Mutex<VecDeque<ObsEvent>>,
    events_dropped: AtomicU64,
}

impl MemoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh recorder behind an `Arc<dyn Recorder>`, ready to install.
    pub fn shared() -> Arc<MemoryRecorder> {
        Arc::new(Self::new())
    }

    fn instrument<I>(registry: &RwLock<BTreeMap<String, Arc<I>>>, name: &str) -> Arc<I>
    where
        I: Default,
    {
        if let Some(found) = registry
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return Arc::clone(found);
        }
        let mut reg = registry.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            reg.entry(name.to_owned())
                .or_insert_with(|| Arc::new(I::default())),
        )
    }

    /// The current value of counter `name` (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map(|c| c.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// The current value of gauge `name` (`None` if never set).
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map(|g| g.load(Ordering::Acquire))
    }

    /// Snapshot of histogram `name` (`None` if never recorded to).
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.hists
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map(|h| h.snapshot())
    }

    /// A coherent point-in-time copy of every instrument.
    pub fn snapshot(&self) -> ObsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Acquire)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Acquire)))
            .collect();
        let histograms = self
            .hists
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let events = self
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect();
        ObsSnapshot {
            counters,
            gauges,
            histograms,
            events,
            events_dropped: self.events_dropped.load(Ordering::Acquire),
        }
    }
}

impl Recorder for MemoryRecorder {
    fn counter(&self, name: &str, delta: u64) {
        Self::instrument(&self.counters, name).fetch_add(delta, Ordering::Release);
    }

    fn gauge(&self, name: &str, value: i64) {
        Self::instrument(&self.gauges, name).store(value, Ordering::Release);
    }

    fn duration_ns(&self, name: &str, nanos: u64) {
        Self::instrument(&self.hists, name).record(nanos);
    }

    fn event(&self, name: &str, detail: &str) {
        let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if events.len() >= EVENT_CAP {
            // Ring semantics: evict the oldest so late-run events (the
            // ones a post-mortem actually wants) are always retained.
            events.pop_front();
            self.events_dropped.fetch_add(1, Ordering::Release);
        }
        events.push_back(ObsEvent {
            name: name.to_owned(),
            detail: detail.to_owned(),
        });
    }
}

/// A point-in-time copy of a [`MemoryRecorder`]'s instruments, exportable
/// as JSON ([`ObsSnapshot::to_json`]) or human-readable text (`Display`).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Retained discrete events, in arrival order.
    pub events: Vec<ObsEvent>,
    /// Events discarded after the retention cap filled.
    pub events_dropped: u64,
}

/// Append `s` to `out` as a JSON string literal (quotes + escapes).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_hist_json(out: &mut String, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"underflow\":{},\"overflow\":{}}}",
        h.count,
        h.sum,
        h.max,
        h.mean().unwrap_or(0),
        h.p50().unwrap_or(0),
        h.p95().unwrap_or(0),
        h.p99().unwrap_or(0),
        h.underflow(),
        h.overflow(),
    ));
}

impl ObsSnapshot {
    /// Serialize the snapshot as a self-contained JSON object (no external
    /// dependencies; keys are sorted, so output is deterministic for a
    /// given state).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            push_hist_json(&mut out, h);
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &e.name);
            out.push_str(",\"detail\":");
            push_json_string(&mut out, &e.detail);
            out.push('}');
        }
        out.push_str(&format!("],\"events_dropped\":{}}}", self.events_dropped));
        out
    }
}

fn fmt_ns(nanos: u64) -> String {
    match nanos {
        n if n >= 1_000_000_000 => format!("{:.2}s", n as f64 / 1e9),
        n if n >= 1_000_000 => format!("{:.2}ms", n as f64 / 1e6),
        n if n >= 1_000 => format!("{:.2}µs", n as f64 / 1e3),
        n => format!("{n}ns"),
    }
}

impl fmt::Display for ObsSnapshot {
    /// The human-readable sink: one aligned line per instrument.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (k, v) in &self.counters {
                writeln!(f, "  {k:<44} {v}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (k, v) in &self.gauges {
                writeln!(f, "  {k:<44} {v}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for (k, h) in &self.histograms {
                writeln!(
                    f,
                    "  {k:<44} n={} mean={} p50={} p95={} p99={} max={}",
                    h.count,
                    h.mean().map(fmt_ns).unwrap_or_else(|| "-".into()),
                    h.p50().map(fmt_ns).unwrap_or_else(|| "-".into()),
                    h.p95().map(fmt_ns).unwrap_or_else(|| "-".into()),
                    h.p99().map(fmt_ns).unwrap_or_else(|| "-".into()),
                    fmt_ns(h.max),
                )?;
            }
        }
        if !self.events.is_empty() {
            writeln!(f, "events:")?;
            for e in &self.events {
                writeln!(f, "  {} {}", e.name, e.detail)?;
            }
        }
        if self.events_dropped > 0 {
            writeln!(f, "  ({} events dropped)", self.events_dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let rec = MemoryRecorder::new();
        rec.counter("a.count", 2);
        rec.counter("a.count", 3);
        rec.gauge("q.depth", 7);
        rec.gauge("q.depth", 4);
        rec.duration_ns("lat", 1_000);
        rec.duration_ns("lat", 2_000);
        rec.event("breaker.blocked", "closed->open");

        assert_eq!(rec.counter_value("a.count"), 5);
        assert_eq!(rec.counter_value("never"), 0);
        assert_eq!(rec.gauge_value("q.depth"), Some(4));
        assert_eq!(rec.gauge_value("never"), None);
        assert_eq!(rec.histogram("lat").unwrap().count, 2);
        assert!(rec.histogram("never").is_none());

        let snap = rec.snapshot();
        assert_eq!(snap.counters["a.count"], 5);
        assert_eq!(snap.gauges["q.depth"], 4);
        assert_eq!(snap.histograms["lat"].count, 2);
        assert_eq!(
            snap.events,
            vec![ObsEvent {
                name: "breaker.blocked".into(),
                detail: "closed->open".into()
            }]
        );
    }

    #[test]
    fn json_export_is_well_formed() {
        let rec = MemoryRecorder::new();
        rec.counter("c\"tricky\\name", 1);
        rec.duration_ns("lat", 5_000);
        rec.event("e", "line\nbreak");
        let json = rec.snapshot().to_json();
        // Structural sanity: balanced braces/brackets, escaped specials.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\\\"tricky\\\\name"));
        assert!(json.contains("line\\nbreak"));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn text_export_mentions_every_instrument() {
        let rec = MemoryRecorder::new();
        rec.counter("done", 9);
        rec.gauge("depth", 3);
        rec.duration_ns("lat", 123_456);
        let text = rec.snapshot().to_string();
        assert!(text.contains("done"));
        assert!(text.contains("depth"));
        assert!(text.contains("lat"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn event_retention_is_capped() {
        let rec = MemoryRecorder::new();
        for i in 0..(EVENT_CAP + 10) {
            rec.event("e", &format!("{i}"));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAP);
        assert_eq!(snap.events_dropped, 10);
    }

    #[test]
    fn event_ring_evicts_oldest_keeps_newest() {
        // Regression: the buffer used to stop accepting once full, so a
        // long run's snapshot showed only its *first* EVENT_CAP events and
        // silently discarded everything recent. The ring must retain the
        // last EVENT_CAP events in arrival order.
        let rec = MemoryRecorder::new();
        let total = EVENT_CAP + 37;
        for i in 0..total {
            rec.event("e", &format!("{i}"));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAP);
        assert_eq!(snap.events_dropped, 37);
        assert_eq!(snap.events.first().unwrap().detail, format!("{}", 37));
        assert_eq!(snap.events.last().unwrap().detail, format!("{}", total - 1));
        // Still in arrival order across the eviction boundary.
        for (k, e) in snap.events.iter().enumerate() {
            assert_eq!(e.detail, format!("{}", 37 + k));
        }
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let rec = Arc::new(MemoryRecorder::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        rec.counter("hits", 1);
                        rec.duration_ns("lat", 500);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.counter_value("hits"), 8_000);
        assert_eq!(rec.histogram("lat").unwrap().count, 8_000);
    }
}
