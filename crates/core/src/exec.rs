//! The hardened execution layer: overflow policies, resource budgets and
//! fallible allocation.
//!
//! The plain [`crate::multiprefix`] API follows the paper's conventions —
//! integer `PLUS` wraps, memory is allocated infallibly, a panicking
//! operator unwinds through the engine. [`crate::try_multiprefix`] takes an
//! [`ExecConfig`] instead and turns each of those hazards into an
//! [`MpError`]:
//!
//! * **overflow** — [`OverflowPolicy::Checked`] reports
//!   [`MpError::ArithmeticOverflow`]; [`OverflowPolicy::Saturating`] clamps;
//!   [`OverflowPolicy::Wrap`] keeps the paper's two's-complement semantics;
//! * **capacity** — `max_buckets` / `max_mem_bytes` reject oversized
//!   requests with [`MpError::CapacityOverflow`] *before* any allocation;
//! * **allocation** — the engines' large blocks are reserved with
//!   `Vec::try_reserve_exact`, so a refusal surfaces as
//!   [`MpError::AllocationFailed`] instead of an abort;
//! * **panics** — the blocked engine contains operator panics and returns
//!   [`MpError::EnginePanicked`].
//!
//! ## Why checked/saturating semantics are defined by serial order
//!
//! Checked and saturating arithmetic are **not associative**: with 64-bit
//! values, `(2⁶² + 2⁶²) + (−2⁶²)` trips where `2⁶² + (2⁶² + (−2⁶²))` does
//! not. A parallel engine regroups the combination tree, so naively checked
//! engines would disagree about *whether* and *where* an overflow occurs.
//! This crate therefore defines the `Checked` and `Saturating` results as
//! those of the serial (Figure 2) evaluation order, and parallel engines
//! guarantee agreement by construction:
//!
//! 1. the engine runs with checked combines; if **no** combine trips, every
//!    serially-observed intermediate was computed somewhere in the engine
//!    (each output `sums[i]` and reduction *is* such an intermediate), so
//!    the serial run cannot trip either and the wrap/checked/saturating
//!    results all coincide — the engine's answer is returned as-is;
//! 2. if **any** combine trips, the engine's grouping diverged (or serial
//!    would trip too); the input is re-evaluated by the serial engine under
//!    the policy, and *its* canonical result — `Ok`, or
//!    `ArithmeticOverflow` with the serial-order index — is returned.
//!
//! The replay costs one serial pass, only on inputs that actually overflow
//! somewhere; overflow-free inputs (the overwhelmingly common case) run at
//! full engine speed.

use crate::error::MpError;
use crate::op::TryCombineOp;
use crate::problem::Element;
use std::sync::atomic::{AtomicBool, Ordering};

/// What integer combines do when the mathematical result does not fit the
/// element type. See the module docs for the evaluation-order contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Two's-complement wraparound — the behavior of the plain API and of
    /// the paper's FORTRAN. Never fails.
    #[default]
    Wrap,
    /// Report [`MpError::ArithmeticOverflow`] at the first element whose
    /// serial-order combine overflows.
    Checked,
    /// Clamp to the representable range (serial evaluation order). Never
    /// fails.
    Saturating,
}

impl OverflowPolicy {
    /// Whether engines must run their checked-combining path (anything but
    /// `Wrap`).
    #[inline(always)]
    pub(crate) fn needs_checking(self) -> bool {
        !matches!(self, OverflowPolicy::Wrap)
    }
}

/// Execution limits and overflow discipline for [`crate::try_multiprefix`] /
/// [`crate::try_multireduce`].
///
/// `Default` is permissive: wraparound arithmetic, no budgets — the plain
/// API's semantics plus panic containment and fallible allocation.
///
/// ```
/// use multiprefix::exec::{ExecConfig, OverflowPolicy};
/// let cfg = ExecConfig::default()
///     .overflow(OverflowPolicy::Checked)
///     .max_buckets(1 << 20)
///     .max_mem_bytes(1 << 30);
/// assert_eq!(cfg.overflow, OverflowPolicy::Checked);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecConfig {
    /// Overflow discipline for integer combines.
    pub overflow: OverflowPolicy,
    /// Maximum admissible bucket count `m` (`None` = unlimited). Guards the
    /// `O(m)` reduction/bucket tables against `m = 10¹²`-style requests.
    pub max_buckets: Option<usize>,
    /// Maximum estimated engine working memory in bytes (`None` =
    /// unlimited), checked against [`estimate_engine_mem`] before any
    /// allocation happens.
    pub max_mem_bytes: Option<usize>,
    /// Worker-thread count for the parallel engines (`None` = the machine's
    /// available parallelism). The `chunked` engine spawns exactly this
    /// many scoped workers; the `atomic` engine runs inside a scoped rayon
    /// pool of this size instead of the global pool — so embeddings (like
    /// the [`crate::service::Service`] worker pool) can cap per-request
    /// parallelism and avoid oversubscribing the machine.
    pub threads: Option<usize>,
    /// Pin this run to the scalar inner loops even when the operator is a
    /// recognized SIMD kernel ([`crate::op::CombineOp::KERNEL`]) and the
    /// host supports it. Chaos, Miri and differential-test runs use this
    /// to hold the reference path fixed; the `MP_FORCE_SCALAR=1`
    /// environment variable forces the same thing process-wide (see
    /// [`crate::simd`]).
    pub force_scalar: bool,
    /// Opt into the `f32` addition kernel. Float addition is not
    /// associative, so the vectorized lane order is **not** bit-identical
    /// to the scalar left fold — off by default, and integer kernels are
    /// unaffected (they are exact under every reassociation).
    pub simd_f32: bool,
}

impl ExecConfig {
    /// Set the overflow policy.
    pub fn overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Set the bucket-count budget.
    pub fn max_buckets(mut self, m: usize) -> Self {
        self.max_buckets = Some(m);
        self
    }

    /// Set the working-memory budget.
    pub fn max_mem_bytes(mut self, bytes: usize) -> Self {
        self.max_mem_bytes = Some(bytes);
        self
    }

    /// Set the worker-thread count for the parallel engines (clamped to at
    /// least 1 at use).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Pin this run to the scalar inner loops (see
    /// [`ExecConfig::force_scalar`]).
    pub fn force_scalar(mut self, force: bool) -> Self {
        self.force_scalar = force;
        self
    }

    /// Opt into the non-bit-exact `f32` addition kernel (see
    /// [`ExecConfig::simd_f32`]).
    pub fn simd_f32(mut self, enable: bool) -> Self {
        self.simd_f32 = enable;
        self
    }

    /// The worker-thread count to run with: [`ExecConfig::threads`] when
    /// set, otherwise the machine's available parallelism; never zero.
    pub fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1)
    }

    /// Reject configurations that can never admit a request: a bucket
    /// budget of zero (every multiprefix needs `m ≥ 1`... and even `m = 0`
    /// requests pass `check_buckets(0)` only to produce empty outputs — a
    /// zero budget is always a misconfiguration, not a policy) or a memory
    /// budget smaller than a single element of the requested type.
    ///
    /// Called by [`crate::resilience::Dispatcher::new`] at construction and
    /// by the `ctx` entry points per request, so a nonsensical config
    /// surfaces as [`MpError::InvalidConfig`] instead of rejecting every
    /// request with a confusing capacity error.
    pub fn validate_for(&self, elem_size: usize) -> Result<(), MpError> {
        if self.max_buckets == Some(0) {
            return Err(MpError::InvalidConfig {
                what: "max_buckets is zero; no request can be admitted",
            });
        }
        if let Some(limit) = self.max_mem_bytes {
            if limit < elem_size.max(1) {
                return Err(MpError::InvalidConfig {
                    what: "max_mem_bytes is smaller than one element; no request can be admitted",
                });
            }
        }
        Ok(())
    }

    /// Enforce the bucket budget.
    pub(crate) fn check_buckets(&self, m: usize) -> Result<(), MpError> {
        match self.max_buckets {
            Some(limit) if m > limit => Err(MpError::CapacityOverflow {
                what: "buckets",
                requested: m,
                limit,
            }),
            _ => Ok(()),
        }
    }

    /// Enforce the memory budget against an estimate in bytes.
    pub(crate) fn check_mem(&self, estimated: usize) -> Result<(), MpError> {
        match self.max_mem_bytes {
            Some(limit) if estimated > limit => Err(MpError::CapacityOverflow {
                what: "engine memory",
                requested: estimated,
                limit,
            }),
            _ => Ok(()),
        }
    }
}

/// Upper-bound estimate of an engine's working memory in bytes for a
/// problem of `n` elements over `m` buckets with `elem_size`-byte elements.
/// Deliberately conservative (the pivot block of §4.1 is `O(n + m)`): the
/// spinetree engine's four `n + m` temporaries dominate every engine, so
/// one bound serves all of them. Saturates instead of overflowing `usize`.
pub fn estimate_engine_mem(n: usize, m: usize, elem_size: usize) -> usize {
    let slots = n.saturating_add(m);
    // sums (n) + rowsum/spinesum (2 slots) of T, spine (slots) of usize,
    // has_child (slots) bytes.
    let elems = n
        .saturating_add(slots.saturating_mul(2))
        .saturating_mul(elem_size.max(1));
    let spine = slots.saturating_mul(std::mem::size_of::<usize>());
    elems.saturating_add(spine).saturating_add(slots)
}

/// Outcome of a hardened parallel-engine run.
///
/// * `Ok(Some(out))` — the engine completed and **no** checked combine
///   tripped: by the argument in the module docs, `out` is bit-identical to
///   the serial result under any policy.
/// * `Ok(None)` — at least one checked combine tripped; the engine's result
///   is not canonical and the caller must replay the serial engine under
///   the policy.
/// * `Err(e)` — a hard failure (budget, allocation, panic) to propagate.
pub type TryEngineResult<T> = Result<Option<T>, MpError>;

/// A combine wrapper the parallel engines thread through their hot loops:
/// under `Wrap` it is the plain operator (no branch taken on the identity
/// comparison path, `checking` is a loop-invariant bool); otherwise every
/// combine is checked, and a trip latches the shared flag and falls back to
/// the wrapping result so the engine completes without early-exit plumbing.
/// Whether the output is usable is decided once, at the end, from the flag.
pub(crate) struct CheckGuard<'a, O> {
    op: O,
    checking: bool,
    tripped: &'a AtomicBool,
    /// Whether the vectorized fast paths may engage for this run: only
    /// under `Wrap` (checked/saturating combines must observe the serial
    /// trip order element by element) and not when the caller pinned the
    /// scalar path via [`ExecConfig::force_scalar`].
    simd_ok: bool,
    /// Whether the non-bit-exact `f32` kernel is opted in
    /// ([`ExecConfig::simd_f32`]).
    allow_f32: bool,
}

impl<O: Copy> Clone for CheckGuard<'_, O> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<O: Copy> Copy for CheckGuard<'_, O> {}

impl<'a, O: Copy> CheckGuard<'a, O> {
    pub(crate) fn new(op: O, policy: OverflowPolicy, tripped: &'a AtomicBool) -> Self {
        CheckGuard {
            op,
            checking: policy.needs_checking(),
            tripped,
            simd_ok: !policy.needs_checking(),
            allow_f32: false,
        }
    }

    /// Apply the config's SIMD knobs: `force_scalar` pins the scalar
    /// loops, `simd_f32` opts floats in (only meaningful when SIMD is
    /// engaged at all).
    pub(crate) fn with_simd_opts(mut self, force_scalar: bool, allow_f32: bool) -> Self {
        if force_scalar {
            self.simd_ok = false;
        }
        self.allow_f32 = allow_f32 && self.simd_ok;
        self
    }

    /// Whether the vectorized fast paths may engage for this run.
    #[inline(always)]
    pub(crate) fn simd_ok(&self) -> bool {
        self.simd_ok
    }

    /// Whether the `f32` kernel is opted in for this run.
    #[inline(always)]
    pub(crate) fn allow_f32(&self) -> bool {
        self.allow_f32
    }

    /// The wrapped operator's identity (policies do not change it).
    #[inline(always)]
    pub(crate) fn identity<T: Element>(&self) -> T
    where
        O: crate::op::CombineOp<T>,
    {
        self.op.identity()
    }

    #[inline(always)]
    pub(crate) fn combine<T: Element>(&self, a: T, b: T) -> T
    where
        O: TryCombineOp<T>,
    {
        if self.checking {
            match self.op.checked_combine(a, b) {
                Some(r) => r,
                None => {
                    self.tripped.store(true, Ordering::Relaxed);
                    self.op.combine(a, b)
                }
            }
        } else {
            self.op.combine(a, b)
        }
    }
}

/// Allocate a `len`-element vector filled with `fill`, failing with
/// [`MpError::AllocationFailed`] instead of aborting when the allocator
/// refuses. The engines use this for every block whose size depends on
/// caller input (`n + m` pivot temporaries, per-chunk tables).
pub fn try_filled_vec<T: Element>(fill: T, len: usize) -> Result<Vec<T>, MpError> {
    let mut v: Vec<T> = Vec::new();
    v.try_reserve_exact(len)
        .map_err(|_| MpError::AllocationFailed {
            bytes: len.saturating_mul(std::mem::size_of::<T>()),
        })?;
    v.resize(len, fill);
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_permissive() {
        let cfg = ExecConfig::default();
        assert_eq!(cfg.overflow, OverflowPolicy::Wrap);
        assert!(cfg.check_buckets(usize::MAX).is_ok());
        assert!(cfg.check_mem(usize::MAX).is_ok());
    }

    #[test]
    fn bucket_budget_enforced() {
        let cfg = ExecConfig::default().max_buckets(100);
        assert!(cfg.check_buckets(100).is_ok());
        assert_eq!(
            cfg.check_buckets(101),
            Err(MpError::CapacityOverflow {
                what: "buckets",
                requested: 101,
                limit: 100
            })
        );
    }

    #[test]
    fn mem_budget_enforced() {
        let cfg = ExecConfig::default().max_mem_bytes(1 << 20);
        assert!(cfg.check_mem(1 << 20).is_ok());
        assert!(matches!(
            cfg.check_mem((1 << 20) + 1),
            Err(MpError::CapacityOverflow {
                what: "engine memory",
                ..
            })
        ));
    }

    #[test]
    fn validate_for_rejects_degenerate_budgets() {
        assert!(ExecConfig::default().validate_for(8).is_ok());
        assert!(ExecConfig::default()
            .max_buckets(1)
            .max_mem_bytes(8)
            .validate_for(8)
            .is_ok());
        assert!(matches!(
            ExecConfig::default().max_buckets(0).validate_for(8),
            Err(MpError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ExecConfig::default().max_mem_bytes(7).validate_for(8),
            Err(MpError::InvalidConfig { .. })
        ));
        // Zero-sized elements still need a nonzero budget to be meaningful.
        assert!(matches!(
            ExecConfig::default().max_mem_bytes(0).validate_for(0),
            Err(MpError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn estimate_monotone_and_saturating() {
        assert!(estimate_engine_mem(1000, 10, 8) < estimate_engine_mem(2000, 10, 8));
        assert!(estimate_engine_mem(1000, 10, 8) < estimate_engine_mem(1000, 10_000, 8));
        // Absurd sizes saturate rather than wrapping around to something small.
        assert_eq!(estimate_engine_mem(usize::MAX, usize::MAX, 8), usize::MAX);
    }

    #[test]
    fn try_filled_vec_small_succeeds() {
        assert_eq!(try_filled_vec(7i64, 3).unwrap(), vec![7, 7, 7]);
        assert_eq!(try_filled_vec(0u8, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn try_filled_vec_absurd_size_errors() {
        // An allocation near the address-space size must be refused by the
        // allocator and surface as an error, not an abort. (isize::MAX is
        // the hard Vec capacity ceiling, so this cannot succeed anywhere.)
        let len = (isize::MAX as usize) / 8;
        assert!(matches!(
            try_filled_vec(0u64, len),
            Err(MpError::AllocationFailed { .. })
        ));
    }
}
