//! The supervised worker pool: dequeue, coalesce, execute, resolve — and
//! survive worker death.
//!
//! Supervision is structured around two drop guards rather than a separate
//! monitor thread, so there is no window where a dead worker goes
//! unnoticed:
//!
//! * [`InFlight`] owns the batch a worker is executing. Every entry it
//!   still holds when it drops *during a panic unwind* is resolved
//!   [`MpError::WorkerLost`] — a dying worker pays out its tickets on the
//!   way down, so no admitted request can leak no matter where the panic
//!   fired.
//! * [`DeathNotice`] is thread-level. When the worker thread unwinds, it
//!   spawns a replacement with the same index (unless the service is
//!   aborting) and wakes all sleepers so nobody waits on a corpse. Queued
//!   requests are untouched by the death — they simply get served by the
//!   replacement.
//!
//! The worker checkpoint ([`ChaosState::inject_worker`]) sits between
//! dequeue and execution, *after* [`InFlight`] takes ownership: an injected
//! worker panic therefore exercises exactly the teardown path above.

use crate::chunked::WorkspacePool;
use crate::error::MpError;
use crate::op::TryCombineOp;
use crate::problem::Element;
use crate::resilience::dispatcher::{DispatchOpts, Dispatcher};
use crate::service::coalesce::{fuse, split};
use crate::service::ingress::Ingress;
use crate::service::queue::{Entry, JobKind, QueuePhase, Reply, Request};
use crate::service::{ServiceConfig, ServiceStats};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Worker index used by the shutdown path's inline drain (which runs on the
/// caller's thread, skips worker-level chaos, and can't meaningfully "die").
pub(crate) const INLINE_WORKER: usize = usize::MAX;

/// Everything the pool's threads share.
#[derive(Debug)]
pub(crate) struct Shared<T: Element, O> {
    /// The sharded submission front door: per-shard locks, global atomics
    /// for depth/phase, and both condvar pairs (see [`Ingress`]).
    pub(crate) ingress: Ingress<T>,
    /// Join handles of every worker ever spawned (replacements included).
    pub(crate) handles: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) dispatcher: Dispatcher,
    /// Reusable chunked-engine workspaces, one per worker in steady state:
    /// a request served by the chunked primary allocates nothing large
    /// after warm-up (pinned by the `service_workspace_alloc` test).
    pub(crate) workspaces: WorkspacePool<T>,
    pub(crate) op: O,
    pub(crate) cfg: ServiceConfig,
    pub(crate) stats: ServiceStats,
    /// Durable sessions opened on this service (see
    /// [`super::session_api`]). Batch traffic never touches this lock.
    pub(crate) sessions: Mutex<super::session_api::SessionRegistry<T, O>>,
}

/// Spawn the worker with index `idx` (initial spawn and respawn share this).
pub(crate) fn spawn_worker<T, O>(shared: &Arc<Shared<T, O>>, idx: usize)
where
    T: Element,
    O: TryCombineOp<T>,
{
    let for_thread = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name(format!("mp-service-{idx}"))
        .spawn(move || {
            let _notice = DeathNotice {
                shared: Arc::clone(&for_thread),
                idx,
            };
            worker_loop(&for_thread, idx);
        });
    // A spawn refusal (resource exhaustion) shrinks the pool instead of
    // panicking — the remaining workers and the shutdown-time inline drain
    // still guarantee every ticket resolves.
    if let Ok(handle) = spawned {
        shared
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }
}

/// Thread-level supervision guard: respawns the worker if its thread dies
/// by panic.
struct DeathNotice<T: Element, O: TryCombineOp<T>> {
    shared: Arc<Shared<T, O>>,
    idx: usize,
}

impl<T: Element, O: TryCombineOp<T>> Drop for DeathNotice<T, O> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return; // normal exit (drain/abort): the pool is winding down
        }
        self.shared.stats.bump_worker_panics();
        let respawn = self.shared.ingress.phase() != QueuePhase::Aborting;
        if respawn {
            self.shared.stats.bump_respawns();
            spawn_worker(&self.shared, self.idx);
        }
        // Wake sleepers unconditionally: if this was the last worker, a
        // blocked submitter or drainer must re-evaluate rather than wait on
        // a corpse.
        self.shared.ingress.wake_all();
    }
}

/// The batch a worker currently owns. Dropping it mid-unwind resolves every
/// unresolved entry with [`MpError::WorkerLost`].
struct InFlight<'a, T> {
    slots: Vec<Option<Entry<T>>>,
    worker: usize,
    stats: &'a ServiceStats,
}

impl<T> InFlight<'_, T> {
    fn resolve(&mut self, i: usize, outcome: Result<Reply<T>, MpError>) {
        if let Some(entry) = self.slots[i].take() {
            entry.resolver.resolve(self.stats, outcome);
        }
    }

    fn live(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| self.slots[i].is_some())
            .collect()
    }
}

impl<T> Drop for InFlight<'_, T> {
    fn drop(&mut self) {
        let worker = self.worker;
        for slot in self.slots.iter_mut() {
            if let Some(entry) = slot.take() {
                entry
                    .resolver
                    .resolve(self.stats, Err(MpError::WorkerLost { worker }));
            }
        }
    }
}

fn worker_loop<T, O>(shared: &Arc<Shared<T, O>>, idx: usize)
where
    T: Element,
    O: TryCombineOp<T>,
{
    // The ingress handles sleeping, stealing and coalescing; the pool adds
    // the steal accounting and the depth gauges — both emitted here, after
    // every shard lock has been released (no recorder work under a lock).
    while let Some((batch, meta)) = shared.ingress.next_batch(idx, shared.cfg.coalesce.as_ref()) {
        if meta.stolen {
            shared.stats.bump_steals();
        }
        if let Some(rec) = shared.stats.recorder() {
            rec.gauge("service.queue.depth", shared.ingress.depth() as i64);
            rec.gauge(
                shared.ingress.shard_gauge_name(meta.shard),
                meta.shard_depth as i64,
            );
        }
        run_batch(shared, Some(idx), batch);
    }
}

/// Execute one dequeued batch and resolve every ticket in it. `worker` is
/// `None` on the shutdown path's inline drain (no worker chaos checkpoint).
pub(crate) fn run_batch<T, O>(shared: &Shared<T, O>, worker: Option<usize>, batch: Vec<Entry<T>>)
where
    T: Element,
    O: TryCombineOp<T>,
{
    // Queue-wait split: admitted→dequeued, measured before any chaos or
    // execution time is charged. `admitted_at` is `Some` exactly when a
    // recorder is installed.
    if let Some(rec) = shared.stats.recorder() {
        let now = Instant::now();
        for entry in &batch {
            if let Some(at) = entry.admitted_at {
                rec.duration_ns(
                    "service.queue.wait_ns",
                    now.saturating_duration_since(at).as_nanos() as u64,
                );
            }
        }
    }
    let mut inflight = InFlight {
        slots: batch.into_iter().map(Some).collect(),
        worker: worker.unwrap_or(INLINE_WORKER),
        stats: &shared.stats,
    };
    // The worker checkpoint: fires *after* InFlight owns the tickets, so an
    // injected panic here unwinds through the guard and every ticket in the
    // batch resolves WorkerLost — the supervised-teardown scenario. An
    // injected stall is clamped to the batch's earliest request deadline.
    if let (Some(idx), Some(chaos)) = (worker, &shared.cfg.chaos) {
        let nearest = inflight
            .slots
            .iter()
            .flatten()
            .filter_map(|entry| entry.request.deadline)
            .reduce(|a, b| a.min(b));
        chaos.inject_worker(idx, nearest);
    }
    // Pre-execution triage: requests that no longer need an engine are
    // settled for the cost of a flag/clock read. A deadline that expired
    // between dequeue and this point (e.g. across the worker checkpoint)
    // settles here, exactly once: `resolve` takes the entry out of its
    // slot, so no later path can touch the ticket again.
    for i in 0..inflight.slots.len() {
        let entry = inflight.slots[i].as_ref().expect("untouched slot");
        if entry.cancel.is_cancelled() {
            inflight.resolve(i, Err(MpError::Cancelled));
        } else if entry.request.deadline.is_some_and(|d| d.expired()) {
            inflight.resolve(i, Err(MpError::DeadlineExceeded));
        }
    }
    let live = inflight.live();
    if live.is_empty() {
        return;
    }
    let exec_started = shared.stats.recorder().map(|_| Instant::now());
    match live.as_slice() {
        [only] => run_single(shared, &mut inflight, *only),
        _ => run_fused(shared, &mut inflight, &live),
    }
    if let (Some(rec), Some(started)) = (shared.stats.recorder(), exec_started) {
        rec.duration_ns("service.exec_ns", started.elapsed().as_nanos() as u64);
    }
}

/// Run one request through the dispatcher with its own cancel token and
/// deadline, and resolve its ticket.
fn run_single<T, O>(shared: &Shared<T, O>, inflight: &mut InFlight<'_, T>, i: usize)
where
    T: Element,
    O: TryCombineOp<T>,
{
    let outcome = {
        let entry = inflight.slots[i].as_ref().expect("live slot");
        let opts = DispatchOpts {
            cancel: Some(entry.cancel.clone()),
            deadline: entry.request.deadline,
            chaos: shared.cfg.chaos.clone(),
        };
        let r = &entry.request;
        let mut ws = shared.workspaces.checkout();
        match r.kind {
            JobKind::Prefix => shared
                .dispatcher
                .dispatch_pooled(&r.values, &r.labels, r.m, shared.op, &opts, &mut ws)
                .map(|o| Reply::Prefix(o.output)),
            JobKind::Reduce => shared
                .dispatcher
                .dispatch_reduce_pooled(&r.values, &r.labels, r.m, shared.op, &opts, &mut ws)
                .map(|o| Reply::Reduce(o.output)),
        }
    };
    inflight.resolve(i, outcome);
}

/// Run `live` members as one fused multiprefix call. A fused failure (the
/// most urgent member's deadline, an exhausted chain, a fused-size budget)
/// must not take innocent members down with it, so on any error the members
/// fall back to individual execution.
fn run_fused<T, O>(shared: &Shared<T, O>, inflight: &mut InFlight<'_, T>, live: &[usize])
where
    T: Element,
    O: TryCombineOp<T>,
{
    let replies = {
        let members: Vec<&Request<T>> = live
            .iter()
            .map(|&i| &inflight.slots[i].as_ref().expect("live slot").request)
            .collect();
        let (values, labels, layout) = fuse(&members);
        let opts = DispatchOpts {
            cancel: None,
            // The batch runs under its most urgent member's deadline; a
            // blown fused deadline falls back to individual runs below,
            // where each member is judged by its own clock.
            deadline: members.iter().filter_map(|r| r.deadline).min(),
            chaos: shared.cfg.chaos.clone(),
        };
        let mut ws = shared.workspaces.checkout();
        shared
            .dispatcher
            .dispatch_pooled(&values, &labels, layout.m, shared.op, &opts, &mut ws)
            .map(|o| split(&members, &o.output, &layout))
    };
    match replies {
        Ok(replies) => {
            shared.stats.bump_coalesced(live.len());
            for (&i, reply) in live.iter().zip(replies) {
                inflight.resolve(i, Ok(reply));
            }
        }
        Err(_) => {
            for &i in live {
                // Re-triage: the fused attempt took time; a member may have
                // expired or been cancelled during it.
                let settled = {
                    let entry = inflight.slots[i].as_ref().expect("live slot");
                    if entry.cancel.is_cancelled() {
                        Some(Err(MpError::Cancelled))
                    } else if entry.request.deadline.is_some_and(|d| d.expired()) {
                        Some(Err(MpError::DeadlineExceeded))
                    } else {
                        None
                    }
                };
                match settled {
                    Some(outcome) => inflight.resolve(i, outcome),
                    None => run_single(shared, inflight, i),
                }
            }
        }
    }
}
