//! An overload-safe concurrent service layer over the resilient
//! [`Dispatcher`]: supervised worker pool,
//! admission control, backpressure, and opt-in micro-batching.
//!
//! A [`Service`] accepts concurrent multiprefix/multireduce submissions
//! from any number of threads and executes them on a pool of supervised
//! workers, each request flowing through the dispatcher's fallback chain,
//! retry policy and circuit breakers. The layer adds the *service-level*
//! guarantees the dispatcher alone cannot give:
//!
//! * **Bounded queue + backpressure** — the submission queue holds at most
//!   [`ServiceConfig`]`::queue_capacity` requests. [`Service::try_submit`]
//!   fails fast with [`MpError::Overloaded`]; [`Service::submit`] blocks for
//!   space; [`Service::submit_within`] blocks with a deadline.
//! * **Admission control + load shedding** — two priority classes
//!   ([`Priority::Interactive`] is served before [`Priority::Batch`]). When
//!   the queue is full, an arriving interactive request sheds the batch
//!   entry with the earliest deadline (oldest first among deadline-less
//!   entries); the victim's ticket resolves [`MpError::Overloaded`], so
//!   nothing is silently dropped.
//! * **Worker supervision** — a worker that panics (including injected
//!   [`ChaosPlan`](crate::resilience::ChaosPlan) worker faults) resolves
//!   its in-flight tickets [`MpError::WorkerLost`] and is respawned;
//!   queued requests survive the death untouched.
//! * **Deadline propagation** — a request's deadline covers queue wait and
//!   execution: expired requests are failed cheaply before any engine runs,
//!   and the residue is enforced inside the engines via
//!   [`RunContext`](crate::resilience::RunContext) checkpoints.
//! * **Micro-batching** — with [`ServiceConfig::coalesce`] set, small
//!   same-op requests are fused into one multiprefix call with disjoint
//!   label ranges and split exactly afterwards (see [`CoalesceConfig`] for
//!   why the split is bit-for-bit equal to per-request execution).
//!
//! The accounting invariant that ties it together: **every admitted request
//! resolves** — to a [`Reply`] or a typed [`MpError`] — through exactly one
//! code path, so `admitted == completed + errored` once the queue drains.
//! [`Service::metrics`] exposes the counters; the service tests and the
//! property harness assert the invariant under submit/cancel/chaos storms.

pub(crate) mod coalesce;
pub(crate) mod ingress;
pub(crate) mod pool;
pub(crate) mod queue;
pub(crate) mod session_api;
pub(crate) mod shed;

pub use coalesce::CoalesceConfig;
pub use queue::{Priority, Reply, Request, Ticket};
pub use session_api::SessionId;

use crate::chunked::WorkspacePool;
use crate::error::MpError;
use crate::obs::Recorder;
use crate::op::TryCombineOp;
use crate::problem::{validate_slices, Element};
use crate::resilience::chaos::ChaosState;
use crate::resilience::ctx::{CancelToken, Deadline};
use crate::resilience::dispatcher::{Dispatcher, DispatcherConfig};
use ingress::{Admit, Ingress, ShedSwap};
use pool::{run_batch, spawn_worker, Shared};
use queue::{Entry, QueuePhase};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Configuration for a [`Service`].
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Worker threads executing requests. Default 4.
    pub workers: Option<usize>,
    /// Bound on queued (admitted but not yet executing) requests. Default
    /// 64. Submissions beyond it shed lower-priority work or exert
    /// backpressure.
    pub queue_capacity: Option<usize>,
    /// Ingress shard count. Default `workers.next_power_of_two()`: enough
    /// shards that submitters rarely contend pairwise, few enough that a
    /// worker's steal scan stays short. `Some(1)` reproduces the old
    /// single-mutex front door exactly (the benchmark baseline).
    pub ingress_shards: Option<usize>,
    /// The dispatcher every worker executes through (fallback chain, retry,
    /// breakers, timeouts).
    pub dispatcher: DispatcherConfig,
    /// Enable micro-batch coalescing of small requests. Off by default.
    pub coalesce: Option<CoalesceConfig>,
    /// Seeded fault injection, shared with the dispatcher layer. Worker
    /// faults ([`ChaosPlan::worker_panic_ppm`]) fire at the worker
    /// checkpoint; engine faults fire inside engines as before.
    ///
    /// [`ChaosPlan::worker_panic_ppm`]: crate::resilience::ChaosPlan::worker_panic_ppm
    pub chaos: Option<Arc<ChaosState>>,
    /// Metrics/tracing sink, threaded through every layer: the service
    /// mirrors its counters under `service.*` and times queue wait vs
    /// execution, the dispatcher reports attempts/retries/breaker events,
    /// and the engines report per-phase timings. `None` (the default) is
    /// the zero-overhead path — no clock reads, no instrument lookups.
    pub recorder: Option<Arc<dyn Recorder>>,
}

impl ServiceConfig {
    fn workers(&self) -> usize {
        self.workers.unwrap_or(4)
    }

    fn queue_capacity(&self) -> usize {
        self.queue_capacity.unwrap_or(64)
    }

    fn ingress_shards(&self) -> usize {
        self.ingress_shards
            .unwrap_or_else(|| self.workers().next_power_of_two())
    }
}

/// Monotonic service counters. Interior-mutable so workers and submitters
/// update them lock-free; snapshot with [`ServiceStats::metrics`].
///
/// The invariant-bearing counters (`admitted`, `completed`, `errored` and
/// the per-cause breakdown) move with `Release` and are read with
/// `Acquire`, in an order chosen so a concurrent snapshot can never
/// *overstate* a derived quantity — see [`ServiceStats::metrics`] for the
/// argument.
#[derive(Debug, Default)]
pub(crate) struct ServiceStats {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    errored: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    expired: AtomicU64,
    worker_lost: AtomicU64,
    coalesced_batches: AtomicU64,
    coalesced_requests: AtomicU64,
    worker_panics: AtomicU64,
    respawns: AtomicU64,
    steals: AtomicU64,
    /// Mirror sink: every counter movement is also forwarded here under
    /// `service.*` names, so an external observer sees the same accounting
    /// a [`ServiceMetrics`] snapshot reports.
    recorder: Option<Arc<dyn Recorder>>,
}

impl ServiceStats {
    pub(crate) fn recorder(&self) -> Option<&dyn Recorder> {
        self.recorder.as_deref()
    }

    fn mirror(&self, name: &str) {
        if let Some(rec) = &self.recorder {
            rec.counter(name, 1);
        }
    }

    /// Count one resolution. Called from exactly one place
    /// ([`queue::Resolver::resolve`]) so the accounting invariant is
    /// enforced structurally, not by discipline at call sites.
    ///
    /// Write order matters: `errored` moves *before* its cause counter,
    /// and [`ServiceStats::metrics`] reads the causes first, so no
    /// snapshot can show the causes summing past `errored`.
    pub(crate) fn record_resolution<T>(&self, outcome: &Result<Reply<T>, MpError>) {
        match outcome {
            Ok(_) => {
                self.completed.fetch_add(1, Ordering::Release);
                self.mirror("service.completed");
            }
            Err(err) => {
                self.errored.fetch_add(1, Ordering::Release);
                self.mirror("service.errored");
                match err {
                    MpError::Overloaded { .. } => {
                        self.shed.fetch_add(1, Ordering::Release);
                        self.mirror("service.shed");
                    }
                    MpError::Cancelled => {
                        self.cancelled.fetch_add(1, Ordering::Release);
                        self.mirror("service.cancelled");
                    }
                    MpError::DeadlineExceeded => {
                        self.expired.fetch_add(1, Ordering::Release);
                        self.mirror("service.expired");
                    }
                    MpError::WorkerLost { .. } => {
                        self.worker_lost.fetch_add(1, Ordering::Release);
                        self.mirror("service.worker_lost");
                    }
                    _ => {}
                }
            }
        }
    }

    pub(crate) fn bump_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Release);
        self.mirror("service.admitted");
    }

    pub(crate) fn bump_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.mirror("service.rejected");
    }

    pub(crate) fn bump_worker_panics(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
        self.mirror("service.worker_panics");
    }

    pub(crate) fn bump_respawns(&self) {
        self.respawns.fetch_add(1, Ordering::Relaxed);
        self.mirror("service.respawns");
    }

    pub(crate) fn bump_steals(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
        self.mirror("service.steals");
    }

    pub(crate) fn bump_coalesced(&self, members: usize) {
        self.coalesced_batches.fetch_add(1, Ordering::Relaxed);
        self.coalesced_requests
            .fetch_add(members as u64, Ordering::Relaxed);
        if let Some(rec) = &self.recorder {
            rec.counter("service.coalesced.batches", 1);
            rec.counter("service.coalesced.requests", members as u64);
        }
    }

    /// Snapshot the counters under a consistent partial order.
    ///
    /// The snapshot is not one atomic cut, but the load order guarantees
    /// the documented invariants can only be *under*-counted by a racing
    /// read, never violated:
    ///
    /// * the cause counters (`shed`, `cancelled`, `expired`,
    ///   `worker_lost`) are read before `errored` — paired with the writer
    ///   moving `errored` first in [`ServiceStats::record_resolution`] —
    ///   so `errored` ≥ their sum in every snapshot;
    /// * `admitted` is read last — paired with admission
    ///   happening-before resolution (the ticket travels through the queue
    ///   mutex) — so `admitted` ≥ `completed + errored` in every snapshot.
    ///
    /// The `Acquire` loads pair with the `Release` increments: observing a
    /// resolution makes the admission that preceded it (and the `errored`
    /// move that preceded a cause move) visible to the later loads. With
    /// all-`Relaxed` loads the compiler or a weakly-ordered machine could
    /// hoist the `admitted` load above the others and tear the invariant.
    pub(crate) fn metrics(&self) -> ServiceMetrics {
        let shed = self.shed.load(Ordering::Acquire);
        let cancelled = self.cancelled.load(Ordering::Acquire);
        let expired = self.expired.load(Ordering::Acquire);
        let worker_lost = self.worker_lost.load(Ordering::Acquire);
        let completed = self.completed.load(Ordering::Acquire);
        let errored = self.errored.load(Ordering::Acquire);
        let admitted = self.admitted.load(Ordering::Acquire);
        ServiceMetrics {
            admitted,
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            errored,
            shed,
            cancelled,
            expired,
            worker_lost,
            coalesced_batches: self.coalesced_batches.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced_requests.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the service counters
/// ([`Service::metrics`]).
///
/// Once the service has quiesced (queue drained, no request in flight),
/// `admitted == completed + errored` — the no-leaked-tickets invariant —
/// and `errored == `(dispatch errors)` + shed + cancelled + expired +
/// worker_lost` where the four named counters break out the service-level
/// error causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceMetrics {
    /// Requests accepted into the queue (each owns exactly one ticket).
    pub admitted: u64,
    /// Submissions refused at the door (fail-fast overload, stopped
    /// service); these never got a ticket and are *not* part of the
    /// accounting invariant.
    pub rejected: u64,
    /// Tickets resolved with a [`Reply`].
    pub completed: u64,
    /// Tickets resolved with any [`MpError`].
    pub errored: u64,
    /// Errored with [`MpError::Overloaded`]: admitted, then evicted by the
    /// load shedder.
    pub shed: u64,
    /// Errored with [`MpError::Cancelled`].
    pub cancelled: u64,
    /// Errored with [`MpError::DeadlineExceeded`].
    pub expired: u64,
    /// Errored with [`MpError::WorkerLost`]: in flight on a worker that
    /// died.
    pub worker_lost: u64,
    /// Fused multi-request batches executed.
    pub coalesced_batches: u64,
    /// Requests served through a fused batch (≥ 2 per batch).
    pub coalesced_requests: u64,
    /// Worker threads that died by panic.
    pub worker_panics: u64,
    /// Replacement workers spawned by supervision.
    pub respawns: u64,
    /// Batches a worker took from a non-home ingress shard (work stealing;
    /// see [`ServiceConfig::ingress_shards`]).
    pub steals: u64,
}

impl ServiceMetrics {
    /// Total tickets resolved so far (`completed + errored`).
    pub fn resolved(&self) -> u64 {
        self.completed + self.errored
    }
}

/// How long an admission attempt may wait for queue space.
#[derive(Clone, Copy)]
enum AdmissionWait {
    FailFast,
    Block,
    Until(Deadline),
}

/// A concurrent multiprefix/multireduce service: supervised workers over a
/// shared [`Dispatcher`], behind a bounded
/// two-priority queue.
///
/// ```
/// use multiprefix::op::Plus;
/// use multiprefix::service::{Request, Service, ServiceConfig};
///
/// let service = Service::new(Plus, ServiceConfig::default()).unwrap();
/// let ticket = service
///     .submit(Request::multiprefix(vec![1i64, 2, 3, 4], vec![0, 1, 0, 1], 2))
///     .unwrap();
/// let reply = ticket.wait().unwrap();
/// assert_eq!(reply.reductions(), &[4, 6]);
/// service.shutdown();
/// ```
#[derive(Debug)]
pub struct Service<T: Element, O: TryCombineOp<T>> {
    shared: Arc<Shared<T, O>>,
}

impl<T: Element, O: TryCombineOp<T>> Service<T, O> {
    /// Start the service: validate the configuration, build the dispatcher,
    /// spawn the workers.
    pub fn new(op: O, cfg: ServiceConfig) -> Result<Self, MpError> {
        if cfg.workers() == 0 {
            return Err(MpError::InvalidConfig {
                what: "service worker count is zero",
            });
        }
        if cfg.queue_capacity() == 0 {
            return Err(MpError::InvalidConfig {
                what: "service queue capacity is zero",
            });
        }
        if let Some(cc) = cfg.coalesce {
            if cc.max_requests == 0 || cc.max_fused_elements == 0 {
                return Err(MpError::InvalidConfig {
                    what: "coalesce limits must be nonzero",
                });
            }
        }
        if cfg.ingress_shards() == 0 {
            return Err(MpError::InvalidConfig {
                what: "service ingress shard count is zero",
            });
        }
        let mut dispatcher = Dispatcher::new(cfg.dispatcher.clone())?;
        if let Some(rec) = &cfg.recorder {
            dispatcher = dispatcher.with_recorder(Arc::clone(rec));
        }
        let stats = ServiceStats {
            recorder: cfg.recorder.clone(),
            ..ServiceStats::default()
        };
        let workers = cfg.workers();
        let shared = Arc::new(Shared {
            ingress: Ingress::new(cfg.ingress_shards(), cfg.queue_capacity()),
            handles: Mutex::new(Vec::new()),
            dispatcher,
            workspaces: WorkspacePool::new(workers),
            op,
            cfg,
            stats,
            sessions: session_api::new_registry(),
        });
        for idx in 0..shared.cfg.workers() {
            spawn_worker(&shared, idx);
        }
        Ok(Service { shared })
    }

    /// Submit without waiting: admitted immediately (possibly by shedding
    /// lower-priority work), or refused with [`MpError::Overloaded`].
    pub fn try_submit(&self, request: Request<T>) -> Result<Ticket<T>, MpError> {
        self.admit(request, AdmissionWait::FailFast)
    }

    /// Submit, blocking until the queue has room (backpressure).
    pub fn submit(&self, request: Request<T>) -> Result<Ticket<T>, MpError> {
        self.admit(request, AdmissionWait::Block)
    }

    /// Submit, blocking at most `wait` for room; refused with
    /// [`MpError::Overloaded`] if the queue is still full at the deadline.
    pub fn submit_within(&self, request: Request<T>, wait: Duration) -> Result<Ticket<T>, MpError> {
        self.admit(request, AdmissionWait::Until(Deadline::after(wait)))
    }

    /// Emit the global and per-shard depth gauges — called after every
    /// lock involved in the transition has been released, so recorder work
    /// never executes inside a queue critical section.
    fn emit_depth_gauges(&self, shard: usize, shard_depth: usize) {
        if let Some(rec) = self.shared.stats.recorder() {
            rec.gauge("service.queue.depth", self.shared.ingress.depth() as i64);
            rec.gauge(
                self.shared.ingress.shard_gauge_name(shard),
                shard_depth as i64,
            );
        }
    }

    fn admit(&self, request: Request<T>, wait: AdmissionWait) -> Result<Ticket<T>, MpError> {
        // Malformed requests fail at the submission site, not on a worker.
        validate_slices(&request.values, &request.labels, request.m)?;
        let stats = &self.shared.stats;
        let ing = &self.shared.ingress;
        let capacity = ing.capacity();
        let cancel = CancelToken::new();
        let (ticket, resolver) = queue::ticket::<T>(cancel.clone());
        let shard = ing.route(&request);
        // The admission timestamp is read here — before any lock is taken
        // (it used to be an `Instant::now()` inside the queue critical
        // section). `Some` exactly when a recorder is installed.
        let mut entry = Entry {
            request,
            cancel,
            resolver,
            seq: ing.alloc_seq(),
            admitted_at: stats.recorder().map(|_| Instant::now()),
        };
        loop {
            entry = match ing.try_admit(shard, entry, || stats.bump_admitted()) {
                Admit::Admitted { shard, shard_depth } => {
                    self.emit_depth_gauges(shard, shard_depth);
                    return Ok(ticket);
                }
                Admit::Stopped { entry } => {
                    drop(entry); // never admitted: its resolver never counts
                    stats.bump_rejected();
                    return Err(MpError::Unavailable);
                }
                Admit::Refused { entry, .. } => {
                    // Full queue: an interactive arrival may evict the
                    // globally best batch victim and take its slot.
                    match ing.try_shed_swap(shard, entry, || stats.bump_admitted()) {
                        ShedSwap::Swapped {
                            victim,
                            shard,
                            shard_depth,
                            victim_shard,
                            victim_shard_depth,
                        } => {
                            // The depth is read at resolution time — not a
                            // value captured before the scan — so every
                            // victim of a multi-eviction sequence sees the
                            // queue state that actually held when its
                            // ticket settled.
                            victim.resolver.resolve(
                                stats,
                                Err(MpError::Overloaded {
                                    queue_depth: ing.depth(),
                                    capacity,
                                }),
                            );
                            self.emit_depth_gauges(victim_shard, victim_shard_depth);
                            self.emit_depth_gauges(shard, shard_depth);
                            return Ok(ticket);
                        }
                        ShedSwap::Stopped { victim, entry } => {
                            if let Some(victim) = victim {
                                victim.resolver.resolve(
                                    stats,
                                    Err(MpError::Overloaded {
                                        queue_depth: ing.depth(),
                                        capacity,
                                    }),
                                );
                            }
                            drop(entry);
                            stats.bump_rejected();
                            return Err(MpError::Unavailable);
                        }
                        ShedSwap::NoVictim { entry } => entry,
                    }
                }
            };
            // No room and nothing sheddable: wait for space or refuse,
            // reporting the depth observed at refusal time.
            match wait {
                AdmissionWait::FailFast => {
                    drop(entry);
                    stats.bump_rejected();
                    return Err(MpError::Overloaded {
                        queue_depth: ing.depth(),
                        capacity,
                    });
                }
                AdmissionWait::Block => {
                    ing.wait_for_space(shard, None);
                }
                AdmissionWait::Until(deadline) => {
                    if !ing.wait_for_space(shard, Some(deadline)) {
                        drop(entry);
                        stats.bump_rejected();
                        return Err(MpError::Overloaded {
                            queue_depth: ing.depth(),
                            capacity,
                        });
                    }
                }
            }
        }
    }

    /// Snapshot the service counters.
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared.stats.metrics()
    }

    /// Requests currently queued (admitted, not yet taken by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.ingress.depth()
    }

    /// Ingress shard count in effect ([`ServiceConfig::ingress_shards`]).
    pub fn ingress_shards(&self) -> usize {
        self.shared.ingress.shard_count()
    }

    /// Graceful shutdown: refuse new submissions, finish every queued
    /// request, join the workers. Returns the final metrics snapshot.
    pub fn shutdown(&self) -> ServiceMetrics {
        self.stop(true)
    }

    /// Immediate shutdown: refuse new submissions, resolve every queued
    /// request [`MpError::Cancelled`] without executing it, join the
    /// workers. In-flight requests still finish (workers are never killed
    /// mid-request). Returns the final metrics snapshot.
    pub fn abort(&self) -> ServiceMetrics {
        self.stop(false)
    }

    fn stop(&self, graceful: bool) -> ServiceMetrics {
        let ing = &self.shared.ingress;
        let aborted = {
            let drained = ing.begin_stop(graceful);
            let aborted = !drained.is_empty() || ing.phase() == QueuePhase::Aborting;
            for entry in drained {
                entry
                    .resolver
                    .resolve(&self.shared.stats, Err(MpError::Cancelled));
            }
            aborted
        };
        if aborted {
            if let Some(rec) = self.shared.stats.recorder() {
                rec.gauge("service.queue.depth", ing.depth() as i64);
            }
        }
        ing.wake_all();
        // Join the whole worker lineage. A replacement pushes its handle
        // before its predecessor's thread exits, so looping until the vec
        // is empty catches every respawn generation.
        loop {
            let handle = self
                .shared
                .handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop();
            match handle {
                Some(h) => {
                    let _ = h.join(); // panics already handled by supervision
                }
                None => break,
            }
        }
        // Defensive sweep: if the last worker died and its respawn failed
        // (spawn refusal under resource exhaustion), queued entries could
        // outlive the pool. Resolve them inline rather than leak tickets.
        let leftovers = ing.drain_all();
        if !leftovers.is_empty() {
            run_batch(&self.shared, None, leftovers);
        }
        self.shared.stats.metrics()
    }
}

impl<T: Element, O: TryCombineOp<T>> Drop for Service<T, O> {
    fn drop(&mut self) {
        // Idempotent: a no-op beyond joining if shutdown()/abort() already
        // ran. Default drop policy is abort — don't hold the caller hostage
        // to a deep backlog.
        self.stop(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Plus;
    use crate::resilience::chaos::ChaosPlan;
    use crate::serial::{multiprefix_serial, multireduce_serial};

    fn small_cfg(workers: usize, capacity: usize) -> ServiceConfig {
        ServiceConfig {
            workers: Some(workers),
            queue_capacity: Some(capacity),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(matches!(
            Service::<i64, Plus>::new(Plus, small_cfg(0, 8)),
            Err(MpError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Service::<i64, Plus>::new(Plus, small_cfg(2, 0)),
            Err(MpError::InvalidConfig { .. })
        ));
        let bad_coalesce = ServiceConfig {
            coalesce: Some(CoalesceConfig {
                max_requests: 0,
                ..CoalesceConfig::default()
            }),
            ..ServiceConfig::default()
        };
        assert!(matches!(
            Service::<i64, Plus>::new(Plus, bad_coalesce),
            Err(MpError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn submissions_resolve_with_oracle_results() {
        let service = Service::new(Plus, small_cfg(2, 8)).unwrap();
        let values = vec![1i64, 3, 2, 1, 1, 2, 3, 1];
        let labels = vec![1usize, 2, 1, 1, 2, 2, 1, 1];
        let prefix = service
            .submit(Request::multiprefix(values.clone(), labels.clone(), 4))
            .unwrap();
        let reduce = service
            .submit(Request::multireduce(values.clone(), labels.clone(), 4))
            .unwrap();
        assert_eq!(
            prefix.wait().unwrap().into_prefix().unwrap(),
            multiprefix_serial(&values, &labels, 4, Plus)
        );
        assert_eq!(
            reduce.wait().unwrap(),
            Reply::Reduce(multireduce_serial(&values, &labels, 4, Plus))
        );
        let m = service.shutdown();
        assert_eq!(m.admitted, 2);
        assert_eq!(m.completed, 2);
        assert_eq!(m.errored, 0);
    }

    #[test]
    fn invalid_requests_fail_at_the_submission_site() {
        let service = Service::new(Plus, small_cfg(1, 4)).unwrap();
        // Label out of range.
        let err = service
            .submit(Request::multiprefix(vec![1i64], vec![5], 2))
            .unwrap_err();
        assert!(matches!(err, MpError::LabelOutOfRange { .. }));
        let m = service.shutdown();
        assert_eq!(m.admitted, 0);
    }

    #[test]
    fn cancelled_before_execution_resolves_cancelled() {
        // One worker wedged on a stall keeps the queue backed up long
        // enough to cancel a queued request deterministically.
        let chaos = ChaosPlan::seeded(7)
            .worker_stall_ppm(1_000_000)
            .stall(0, Duration::from_millis(30))
            .arm();
        let cfg = ServiceConfig {
            workers: Some(1),
            queue_capacity: Some(8),
            chaos: Some(chaos),
            ..ServiceConfig::default()
        };
        let service = Service::new(Plus, cfg).unwrap();
        let first = service
            .submit(Request::multiprefix(vec![1i64, 2], vec![0, 1], 2))
            .unwrap();
        let victim = service
            .submit(Request::multiprefix(vec![3i64, 4], vec![0, 1], 2))
            .unwrap();
        victim.cancel();
        assert_eq!(victim.wait(), Err(MpError::Cancelled));
        assert!(first.wait().is_ok());
        let m = service.shutdown();
        assert_eq!(m.admitted, m.completed + m.errored);
        assert_eq!(m.cancelled, 1);
    }

    #[test]
    fn try_submit_sheds_batch_work_for_interactive_arrivals() {
        // No workers draining: wedge the single worker with a long stall so
        // the queue state is fully under test control.
        let chaos = ChaosPlan::seeded(3)
            .worker_stall_ppm(1_000_000)
            .stall(0, Duration::from_millis(50))
            .arm();
        let cfg = ServiceConfig {
            workers: Some(1),
            queue_capacity: Some(2),
            chaos: Some(chaos),
            ..ServiceConfig::default()
        };
        let service = Service::new(Plus, cfg).unwrap();
        // First submission is grabbed by the (stalling) worker; the next
        // two fill the queue.
        let mut batch = Vec::new();
        for _ in 0..3 {
            batch.push(
                service
                    .submit(Request::multireduce(vec![1i64], vec![0], 1))
                    .unwrap(),
            );
        }
        // Queue full with batch work: a batch arrival is refused...
        let refused = service
            .try_submit(Request::multireduce(vec![1i64], vec![0], 1))
            .unwrap_err();
        assert!(matches!(refused, MpError::Overloaded { capacity: 2, .. }));
        // ...but an interactive arrival sheds a queued batch entry.
        let vip = service
            .try_submit(
                Request::multireduce(vec![2i64], vec![0], 1).priority(Priority::Interactive),
            )
            .unwrap();
        assert!(vip.wait().is_ok());
        let shed_count = batch
            .iter()
            .filter(|t| matches!(t.wait(), Err(MpError::Overloaded { .. })))
            .count();
        assert_eq!(shed_count, 1);
        let m = service.shutdown();
        assert_eq!(m.shed, 1);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.admitted, m.completed + m.errored);
    }

    #[test]
    fn worker_death_resolves_inflight_and_respawns() {
        // Worker 0 panics on every batch it picks up; the respawned
        // replacements keep panicking (same index), so every request
        // submitted resolves WorkerLost — and the service stays alive.
        let chaos = ChaosPlan::seeded(11)
            .worker_panic_ppm(1_000_000)
            .only_worker(0)
            .arm();
        let cfg = ServiceConfig {
            workers: Some(1),
            queue_capacity: Some(8),
            chaos: Some(chaos.clone()),
            ..ServiceConfig::default()
        };
        let service = Service::new(Plus, cfg).unwrap();
        let t = service
            .submit(Request::multiprefix(vec![1i64, 2], vec![0, 0], 1))
            .unwrap();
        assert_eq!(t.wait(), Err(MpError::WorkerLost { worker: 0 }));
        // A second request can only be picked up by the *replacement*
        // worker, so its resolution proves the first death's supervision
        // (panic count, respawn) fully ran.
        let t2 = service
            .submit(Request::multiprefix(vec![3i64], vec![0], 1))
            .unwrap();
        assert_eq!(t2.wait(), Err(MpError::WorkerLost { worker: 0 }));
        let m = service.metrics();
        assert_eq!(m.worker_lost, 2);
        assert!(m.worker_panics >= 1);
        assert!(m.respawns >= 1);
        // After shutdown every worker thread is joined, so the chaos-side
        // and service-side panic counters must agree exactly.
        let final_m = service.shutdown();
        assert_eq!(final_m.admitted, final_m.completed + final_m.errored);
        assert_eq!(chaos.worker_panics_injected() as u64, final_m.worker_panics);
    }

    #[test]
    fn expired_queued_requests_fail_cheaply() {
        let chaos = ChaosPlan::seeded(5)
            .worker_stall_ppm(1_000_000)
            .stall(0, Duration::from_millis(25))
            .arm();
        let cfg = ServiceConfig {
            workers: Some(1),
            queue_capacity: Some(8),
            chaos: Some(chaos),
            ..ServiceConfig::default()
        };
        let service = Service::new(Plus, cfg).unwrap();
        let _wedge = service
            .submit(Request::multireduce(vec![1i64], vec![0], 1))
            .unwrap();
        let doomed = service
            .submit(Request::multireduce(vec![1i64], vec![0], 1).timeout(Duration::ZERO))
            .unwrap();
        assert_eq!(doomed.wait(), Err(MpError::DeadlineExceeded));
        let m = service.shutdown();
        assert_eq!(m.expired, 1);
        assert_eq!(m.admitted, m.completed + m.errored);
    }

    #[test]
    fn coalescing_preserves_oracle_results() {
        // Wedge the single worker briefly so several small requests queue
        // up and get fused by the next dequeue.
        let chaos = ChaosPlan::seeded(13)
            .worker_stall_ppm(1_000_000)
            .stall(0, Duration::from_millis(20))
            .arm();
        let cfg = ServiceConfig {
            workers: Some(1),
            queue_capacity: Some(32),
            coalesce: Some(CoalesceConfig::default()),
            chaos: Some(chaos),
            ..ServiceConfig::default()
        };
        let service = Service::new(Plus, cfg).unwrap();
        let mut expected = Vec::new();
        let mut tickets = Vec::new();
        for i in 0..12i64 {
            let values = vec![i, i + 1, i + 2];
            let labels = vec![0usize, 1, (i as usize) % 2];
            let m = 2;
            expected.push(multiprefix_serial(&values, &labels, m, Plus));
            tickets.push(
                service
                    .submit(Request::multiprefix(values, labels, m))
                    .unwrap(),
            );
        }
        for (t, want) in tickets.into_iter().zip(expected) {
            assert_eq!(t.wait().unwrap().into_prefix().unwrap(), want);
        }
        let m = service.shutdown();
        assert_eq!(m.completed, 12);
        // The stall guarantees at least one dequeue saw a multi-entry
        // backlog to fuse.
        assert!(m.coalesced_batches >= 1, "metrics: {m:?}");
        assert!(m.coalesced_requests >= 2);
    }

    #[test]
    fn abort_cancels_backlog_and_submissions_after_stop_are_refused() {
        let chaos = ChaosPlan::seeded(17)
            .worker_stall_ppm(1_000_000)
            .stall(0, Duration::from_millis(25))
            .arm();
        let cfg = ServiceConfig {
            workers: Some(1),
            queue_capacity: Some(8),
            chaos: Some(chaos),
            ..ServiceConfig::default()
        };
        let service = Service::new(Plus, cfg).unwrap();
        let mut tickets = Vec::new();
        for _ in 0..4 {
            tickets.push(
                service
                    .submit(Request::multireduce(vec![1i64], vec![0], 1))
                    .unwrap(),
            );
        }
        let m = service.abort();
        assert_eq!(m.admitted, 4);
        assert_eq!(m.admitted, m.completed + m.errored);
        for t in &tickets {
            assert!(t.is_resolved());
        }
        assert!(matches!(
            service.submit(Request::multireduce(vec![1i64], vec![0], 1)),
            Err(MpError::Unavailable)
        ));
    }

    #[test]
    fn expiry_between_dequeue_and_checkpoint_settles_exactly_once() {
        // The stall fires at the worker checkpoint — after dequeue, before
        // triage — so the deadline expires while a worker already owns the
        // ticket. It must settle DeadlineExceeded exactly once, be counted
        // in `expired`, and leave the accounting invariant intact.
        let chaos = ChaosPlan::seeded(23)
            .worker_stall_ppm(1_000_000)
            .stall(0, Duration::from_millis(30))
            .arm();
        let cfg = ServiceConfig {
            workers: Some(1),
            queue_capacity: Some(4),
            chaos: Some(chaos),
            ..ServiceConfig::default()
        };
        let service = Service::new(Plus, cfg).unwrap();
        let doomed = service
            .submit(Request::multireduce(vec![1i64], vec![0], 1).timeout(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(doomed.wait(), Err(MpError::DeadlineExceeded));
        let m = service.shutdown();
        assert_eq!(m.expired, 1);
        assert_eq!(m.errored, 1);
        assert_eq!(m.admitted, m.completed + m.errored);
    }

    #[test]
    fn metrics_snapshot_never_overstates_resolutions() {
        // A dedicated observer hammers `metrics()` while submitters and
        // workers race; no snapshot may show completed + errored > admitted
        // or the cause breakdown summing past errored (the torn reads the
        // Acquire/Release ordering in ServiceStats rules out).
        use std::sync::atomic::AtomicBool;
        let service = Arc::new(Service::new(Plus, small_cfg(4, 16)).unwrap());
        let stop = Arc::new(AtomicBool::new(false));
        let observer = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut torn = 0u32;
                while !stop.load(Ordering::Acquire) {
                    let m = service.metrics();
                    if m.completed + m.errored > m.admitted {
                        torn += 1;
                    }
                    if m.shed + m.cancelled + m.expired + m.worker_lost > m.errored {
                        torn += 1;
                    }
                }
                torn
            })
        };
        let submitters: Vec<_> = (0..4i64)
            .map(|s| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let t = service
                            .submit(Request::multireduce(vec![s, i], vec![0, 0], 1))
                            .unwrap();
                        let _ = t.wait();
                    }
                })
            })
            .collect();
        for h in submitters {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        assert_eq!(observer.join().unwrap(), 0, "torn metrics snapshots seen");
        let m = service.shutdown();
        assert_eq!(m.admitted, 400);
        assert_eq!(m.admitted, m.completed + m.errored);
    }

    #[test]
    fn recorder_mirrors_service_metrics_and_times_the_pipeline() {
        let rec = crate::obs::MemoryRecorder::shared();
        let cfg = ServiceConfig {
            workers: Some(2),
            queue_capacity: Some(8),
            recorder: Some(rec.clone() as Arc<dyn Recorder>),
            ..ServiceConfig::default()
        };
        let service = Service::new(Plus, cfg).unwrap();
        for i in 0..6i64 {
            let t = service
                .submit(Request::multiprefix(vec![i, i + 1], vec![0, 1], 2))
                .unwrap();
            assert!(t.wait().is_ok());
        }
        let m = service.shutdown();
        assert_eq!(m.completed, 6);
        // The recorder's counters and the ServiceMetrics snapshot are two
        // views of the same accounting.
        assert_eq!(rec.counter_value("service.admitted"), m.admitted);
        assert_eq!(rec.counter_value("service.completed"), m.completed);
        assert_eq!(rec.counter_value("service.errored"), m.errored);
        // Every request flowed through the (instrumented) dispatcher.
        assert_eq!(rec.counter_value("dispatch.requests"), m.admitted);
        // Queue-wait was timed for every admitted request; execution for
        // at least one dequeue.
        let wait = rec
            .histogram("service.queue.wait_ns")
            .expect("queue-wait histogram");
        assert_eq!(wait.count, m.admitted);
        let exec = rec.histogram("service.exec_ns").expect("exec histogram");
        assert!(exec.count >= 1 && exec.count <= m.admitted);
        // The depth gauge was maintained and ended at zero (queue drained).
        assert_eq!(rec.gauge_value("service.queue.depth"), Some(0));
    }

    #[test]
    fn shed_victims_see_resolution_time_depth_across_multi_eviction() {
        // Regression pin for the stale-depth bug: the old admission loop
        // captured `depth` once before shedding and stamped that snapshot
        // into every victim's `Overloaded{queue_depth}`. Two interactive
        // arrivals against the same full queue each evict one batch entry;
        // each victim must report the depth that actually held when its
        // ticket settled (the slot transfers, so that is the full capacity).
        let chaos = ChaosPlan::seeded(17)
            .worker_stall_ppm(1_000_000)
            .stall(0, Duration::from_millis(120))
            .arm();
        let cfg = ServiceConfig {
            workers: Some(1),
            queue_capacity: Some(2),
            ingress_shards: Some(1),
            chaos: Some(chaos),
            ..ServiceConfig::default()
        };
        let service = Service::new(Plus, cfg).unwrap();
        // First submission is taken by the (stalled) worker; give it time
        // to leave the queue so the next two fill it exactly.
        let first = service
            .submit(Request::multireduce(vec![1i64], vec![0], 1))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let batch: Vec<_> = (0..2)
            .map(|_| {
                service
                    .submit(Request::multireduce(vec![1i64], vec![0], 1))
                    .unwrap()
            })
            .collect();
        assert_eq!(service.queue_depth(), 2);
        let vips: Vec<_> = (0..2)
            .map(|_| {
                service
                    .try_submit(
                        Request::multireduce(vec![2i64], vec![0], 1)
                            .priority(Priority::Interactive),
                    )
                    .unwrap()
            })
            .collect();
        for victim in batch {
            match victim.wait() {
                Err(MpError::Overloaded {
                    queue_depth,
                    capacity,
                }) => {
                    assert_eq!(capacity, 2);
                    assert_eq!(
                        queue_depth, 2,
                        "victim must see the live depth at resolution time"
                    );
                }
                other => panic!("expected both batch entries shed, got {other:?}"),
            }
        }
        assert!(first.wait().is_ok());
        for vip in vips {
            assert!(vip.wait().is_ok());
        }
        let m = service.shutdown();
        assert_eq!(m.shed, 2);
        assert_eq!(m.admitted, m.completed + m.errored);
    }

    #[test]
    fn depth_gauge_is_emitted_on_every_transition_including_shed() {
        // Regression pin for the missing-gauge bug: the old shed path
        // resolved its victim without touching `service.queue.depth`, and
        // pushes emitted the gauge from inside the queue critical section.
        // Poisoning the gauge with a sentinel right before each transition
        // proves the transition itself re-emits it.
        let rec = crate::obs::MemoryRecorder::shared();
        let chaos = ChaosPlan::seeded(23)
            .worker_stall_ppm(1_000_000)
            .stall(0, Duration::from_millis(120))
            .arm();
        let cfg = ServiceConfig {
            workers: Some(1),
            queue_capacity: Some(2),
            ingress_shards: Some(1),
            chaos: Some(chaos),
            recorder: Some(rec.clone() as Arc<dyn Recorder>),
            ..ServiceConfig::default()
        };
        let service = Service::new(Plus, cfg).unwrap();
        // Worker takes the first request and stalls mid-batch (it emits its
        // pop-side gauge before the stall), leaving the queue to the test.
        let first = service
            .submit(Request::multireduce(vec![1i64], vec![0], 1))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        // Push transitions: each admission re-emits the live depth.
        rec.gauge("service.queue.depth", -1);
        let _b1 = service
            .submit(Request::multireduce(vec![1i64], vec![0], 1))
            .unwrap();
        assert_eq!(rec.gauge_value("service.queue.depth"), Some(1));
        let _b2 = service
            .submit(Request::multireduce(vec![1i64], vec![0], 1))
            .unwrap();
        assert_eq!(rec.gauge_value("service.queue.depth"), Some(2));
        // Shed transition: poison both gauges, then let an interactive
        // arrival evict a batch entry — the swap must re-emit them even
        // though the global depth is unchanged (slot transfer).
        rec.gauge("service.queue.depth", -1);
        rec.gauge("service.queue.shard.0.depth", -1);
        let vip = service
            .try_submit(
                Request::multireduce(vec![2i64], vec![0], 1).priority(Priority::Interactive),
            )
            .unwrap();
        assert_eq!(
            rec.gauge_value("service.queue.depth"),
            Some(2),
            "shed must re-emit the global depth gauge"
        );
        assert_eq!(
            rec.gauge_value("service.queue.shard.0.depth"),
            Some(2),
            "shed must re-emit the per-shard depth gauge"
        );
        assert!(first.wait().is_ok());
        assert!(vip.wait().is_ok());
        // Drain transitions: the workers' pops walk the gauge back to zero.
        let m = service.shutdown();
        assert_eq!(rec.gauge_value("service.queue.depth"), Some(0));
        assert_eq!(m.shed, 1);
        assert_eq!(m.admitted, m.completed + m.errored);
    }

    #[test]
    fn graceful_shutdown_completes_the_backlog() {
        let service = Service::new(Plus, small_cfg(2, 16)).unwrap();
        let tickets: Vec<_> = (0..10i64)
            .map(|i| {
                service
                    .submit(Request::multireduce(vec![i, i], vec![0, 0], 1))
                    .unwrap()
            })
            .collect();
        let m = service.shutdown();
        assert_eq!(m.completed, 10);
        for (i, t) in tickets.iter().enumerate() {
            assert_eq!(
                t.try_result().unwrap().unwrap().reductions(),
                &[2 * i as i64]
            );
        }
    }
}
