//! The bounded two-priority submission queue and the ticket/resolver pair
//! that carries every request's outcome.
//!
//! Accounting is the load-bearing invariant of this module: each admitted
//! request owns exactly one [`Resolver`], every resolver is consumed by
//! value to deliver exactly one `Result`, and [`super::ServiceStats`]
//! counts at that single point — so `admitted == completed + errored` holds
//! by construction once the queue drains, and a leaked ticket would show up
//! as a counting gap rather than a silent hang.

use crate::error::MpError;
use crate::problem::MultiprefixOutput;
use crate::resilience::ctx::{CancelToken, Deadline};
use crate::service::ServiceStats;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Priority class of a submission. The queue serves all queued
/// [`Priority::Interactive`] work before any [`Priority::Batch`] work, and
/// the load shedder evicts batch work first (never the other way around).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive: served first, shed last.
    Interactive,
    /// Throughput work: served after interactive, shed first, and the
    /// natural candidate for micro-batch coalescing.
    Batch,
}

/// Which operation a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobKind {
    /// Full multiprefix: per-element exclusive sums + per-label reductions.
    Prefix,
    /// Multireduce: per-label reductions only.
    Reduce,
}

/// One multiprefix/multireduce submission, built with
/// [`Request::multiprefix`] / [`Request::multireduce`] and the chained
/// option setters.
///
/// ```
/// use multiprefix::service::{Priority, Request};
/// use std::time::Duration;
///
/// let req = Request::multiprefix(vec![1i64, 2, 3], vec![0, 1, 0], 2)
///     .priority(Priority::Interactive)
///     .timeout(Duration::from_millis(50));
/// assert_eq!(req.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Request<T> {
    pub(crate) values: Vec<T>,
    pub(crate) labels: Vec<usize>,
    pub(crate) m: usize,
    pub(crate) kind: JobKind,
    pub(crate) priority: Priority,
    pub(crate) deadline: Option<Deadline>,
}

impl<T> Request<T> {
    /// A full multiprefix request (sums + reductions), batch priority by
    /// default.
    pub fn multiprefix(values: Vec<T>, labels: Vec<usize>, m: usize) -> Self {
        Request {
            values,
            labels,
            m,
            kind: JobKind::Prefix,
            priority: Priority::Batch,
            deadline: None,
        }
    }

    /// A multireduce request (per-label reductions only), batch priority by
    /// default.
    pub fn multireduce(values: Vec<T>, labels: Vec<usize>, m: usize) -> Self {
        Request {
            kind: JobKind::Reduce,
            ..Request::multiprefix(values, labels, m)
        }
    }

    /// Set the priority class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Bound the request by `deadline` — covering queue wait *and*
    /// execution. A request still queued at expiry is failed cheaply with
    /// [`MpError::DeadlineExceeded`] before any engine runs.
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// [`Request::deadline`] with a fresh deadline `budget` from now.
    pub fn timeout(self, budget: Duration) -> Self {
        self.deadline(Deadline::after(budget))
    }

    /// Number of elements in the request.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Is the request empty (zero elements)?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A successful service reply: what the request's job kind asked for.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply<T> {
    /// Reply to a [`Request::multiprefix`] submission.
    Prefix(MultiprefixOutput<T>),
    /// Reply to a [`Request::multireduce`] submission.
    Reduce(Vec<T>),
}

impl<T> Reply<T> {
    /// The full multiprefix output, if this was a multiprefix request.
    pub fn into_prefix(self) -> Option<MultiprefixOutput<T>> {
        match self {
            Reply::Prefix(out) => Some(out),
            Reply::Reduce(_) => None,
        }
    }

    /// The per-label reductions — present for both request kinds.
    pub fn reductions(&self) -> &[T] {
        match self {
            Reply::Prefix(out) => &out.reductions,
            Reply::Reduce(red) => red,
        }
    }
}

/// The state cell a [`Ticket`] waits on and a [`Resolver`] fills exactly
/// once.
#[derive(Debug)]
struct TicketShared<T> {
    outcome: Mutex<Option<Result<Reply<T>, MpError>>>,
    cond: Condvar,
}

fn lock_outcome<T>(
    shared: &TicketShared<T>,
) -> std::sync::MutexGuard<'_, Option<Result<Reply<T>, MpError>>> {
    // A poisoning panic can only have happened *outside* the short
    // store/clone critical sections; the Option value is still coherent.
    shared
        .outcome
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// The caller's handle to one admitted request.
///
/// A ticket always resolves: to a [`Reply`] or to a typed [`MpError`]
/// (`Overloaded` if shed, `Cancelled`, `DeadlineExceeded`, `WorkerLost`, or
/// a dispatch error). Dropping a ticket does not cancel the request — use
/// [`Ticket::cancel`] for that.
#[derive(Debug)]
pub struct Ticket<T> {
    shared: Arc<TicketShared<T>>,
    cancel: CancelToken,
}

impl<T: Clone> Ticket<T> {
    /// Block until the request resolves.
    pub fn wait(&self) -> Result<Reply<T>, MpError> {
        let mut slot = lock_outcome(&self.shared);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self
                .shared
                .cond
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block for at most `budget`; `None` means still pending.
    pub fn wait_for(&self, budget: Duration) -> Option<Result<Reply<T>, MpError>> {
        let deadline = Deadline::after(budget);
        let mut slot = lock_outcome(&self.shared);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Some(outcome.clone());
            }
            let left = deadline.remaining();
            if left.is_zero() {
                return None;
            }
            slot = self
                .shared
                .cond
                .wait_timeout(slot, left)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// The outcome if already resolved, without blocking.
    pub fn try_result(&self) -> Option<Result<Reply<T>, MpError>> {
        lock_outcome(&self.shared).clone()
    }
}

impl<T> Ticket<T> {
    /// Block until the request resolves and move the outcome out,
    /// consuming the ticket.
    ///
    /// Unlike [`Ticket::wait`] this clones nothing: the reply's buffers
    /// are handed over as-is, so a steady-state caller pays zero
    /// allocations for retrieval (pinned by the `service_workspace_alloc`
    /// test). Requires neither `T: Clone` nor a resolved slot afterwards —
    /// the outcome can only be taken once, which consuming `self`
    /// guarantees statically.
    pub fn take(self) -> Result<Reply<T>, MpError> {
        let mut slot = lock_outcome(&self.shared);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .shared
                .cond
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Has the request resolved yet?
    pub fn is_resolved(&self) -> bool {
        lock_outcome(&self.shared).is_some()
    }

    /// Ask the service to abandon the request. Cooperative: a request still
    /// queued resolves [`MpError::Cancelled`] without executing; one already
    /// running is stopped at the next engine checkpoint; one that slips
    /// through (e.g. mid-coalesced-batch) may still resolve with its result.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }
}

/// The service's half of a ticket: consumed by value to deliver the one and
/// only outcome.
#[derive(Debug)]
pub(crate) struct Resolver<T> {
    shared: Arc<TicketShared<T>>,
}

impl<T> Resolver<T> {
    /// Deliver the outcome, wake all waiters, and count the resolution in
    /// `stats`. This is the *only* place a ticket is filled and the only
    /// place completed/errored counters move, which is what makes the
    /// `admitted == completed + errored` invariant auditable.
    pub(crate) fn resolve(self, stats: &ServiceStats, outcome: Result<Reply<T>, MpError>) {
        stats.record_resolution(&outcome);
        let mut slot = lock_outcome(&self.shared);
        debug_assert!(slot.is_none(), "invariant: a ticket resolves exactly once");
        *slot = Some(outcome);
        self.shared.cond.notify_all();
    }
}

/// Build a connected ticket/resolver pair around `cancel`.
pub(crate) fn ticket<T>(cancel: CancelToken) -> (Ticket<T>, Resolver<T>) {
    let shared = Arc::new(TicketShared {
        outcome: Mutex::new(None),
        cond: Condvar::new(),
    });
    (
        Ticket {
            shared: Arc::clone(&shared),
            cancel,
        },
        Resolver { shared },
    )
}

/// One admitted request as it sits in the queue: the job plus its control
/// surfaces and its resolver.
#[derive(Debug)]
pub(crate) struct Entry<T> {
    pub(crate) request: Request<T>,
    pub(crate) cancel: CancelToken,
    pub(crate) resolver: Resolver<T>,
    /// Admission order, for oldest-first tie-breaking in the shed policy.
    pub(crate) seq: u64,
    /// Admission instant, feeding the `service.queue.wait_ns` histogram.
    /// Captured only when a recorder is installed so the uninstrumented
    /// path stays clock-free.
    pub(crate) admitted_at: Option<Instant>,
}

/// Lifecycle phase of the service's ingress (and so of the whole service).
/// Stored as an atomic in [`super::ingress::Ingress`]; submitters re-check
/// it inside their shard lock so no push can race a shutdown drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueuePhase {
    /// Normal operation: submissions admitted, workers draining.
    Accepting,
    /// Graceful shutdown: no new submissions; workers finish the backlog.
    Draining,
    /// Immediate shutdown: no new submissions; the backlog is resolved
    /// [`MpError::Cancelled`] without executing.
    Aborting,
}

/// One ingress shard's queue state: two FIFO lanes under that shard's
/// mutex (held in [`super::ingress::Ingress`]). Phase and the admission
/// sequence counter are service-global atomics, not per-shard state.
#[derive(Debug)]
pub(crate) struct Lanes<T> {
    pub(crate) interactive: VecDeque<Entry<T>>,
    pub(crate) batch: VecDeque<Entry<T>>,
}

impl<T> Lanes<T> {
    pub(crate) fn new() -> Self {
        Lanes {
            interactive: VecDeque::new(),
            batch: VecDeque::new(),
        }
    }

    /// Total queued requests across both lanes.
    pub(crate) fn depth(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    /// Push an admitted entry into its lane.
    pub(crate) fn push(&mut self, entry: Entry<T>) {
        match entry.request.priority {
            Priority::Interactive => self.interactive.push_back(entry),
            Priority::Batch => self.batch.push_back(entry),
        }
    }

    /// The next entry a worker would take, without removing it.
    pub(crate) fn peek(&self) -> Option<&Entry<T>> {
        self.interactive.front().or_else(|| self.batch.front())
    }

    /// Dequeue in service order: all interactive work before any batch work.
    pub(crate) fn pop(&mut self) -> Option<Entry<T>> {
        self.interactive
            .pop_front()
            .or_else(|| self.batch.pop_front())
    }

    /// Drain every queued entry (shutdown paths).
    pub(crate) fn drain_all(&mut self) -> Vec<Entry<T>> {
        self.interactive
            .drain(..)
            .chain(self.batch.drain(..))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceStats;

    fn stats() -> ServiceStats {
        ServiceStats::default()
    }

    fn entry(q: &mut Lanes<i64>, seq: &mut u64, priority: Priority) -> Ticket<i64> {
        let cancel = CancelToken::new();
        let (t, resolver) = ticket::<i64>(cancel.clone());
        let seq = {
            let s = *seq;
            *seq += 1;
            s
        };
        q.push(Entry {
            request: Request::multiprefix(vec![1], vec![0], 1).priority(priority),
            cancel,
            resolver,
            seq,
            admitted_at: None,
        });
        t
    }

    #[test]
    fn ticket_resolves_exactly_once_and_wakes_waiters() {
        let s = stats();
        let (t, r) = ticket::<i64>(CancelToken::new());
        assert!(!t.is_resolved());
        assert!(t.try_result().is_none());
        assert!(t.wait_for(Duration::from_millis(1)).is_none());
        r.resolve(&s, Ok(Reply::Reduce(vec![7])));
        assert!(t.is_resolved());
        assert_eq!(t.wait(), Ok(Reply::Reduce(vec![7])));
        // Waiting again returns the same settled outcome.
        assert_eq!(t.wait(), Ok(Reply::Reduce(vec![7])));
        let m = s.metrics();
        assert_eq!((m.completed, m.errored), (1, 0));
    }

    #[test]
    fn ticket_wait_blocks_across_threads() {
        let s = Arc::new(stats());
        let (t, r) = ticket::<i64>(CancelToken::new());
        let s2 = Arc::clone(&s);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            r.resolve(&s2, Err(MpError::Cancelled));
        });
        assert_eq!(t.wait(), Err(MpError::Cancelled));
        handle.join().unwrap();
        assert_eq!(s.metrics().cancelled, 1);
    }

    #[test]
    fn error_resolutions_are_counted_by_kind() {
        let s = stats();
        for err in [
            MpError::Overloaded {
                queue_depth: 1,
                capacity: 1,
            },
            MpError::Cancelled,
            MpError::DeadlineExceeded,
            MpError::WorkerLost { worker: 0 },
            MpError::EnginePanicked,
        ] {
            let (_t, r) = ticket::<i64>(CancelToken::new());
            r.resolve(&s, Err(err));
        }
        let m = s.metrics();
        assert_eq!(m.errored, 5);
        assert_eq!(m.shed, 1);
        assert_eq!(m.cancelled, 1);
        assert_eq!(m.expired, 1);
        assert_eq!(m.worker_lost, 1);
        assert_eq!(m.completed, 0);
    }

    #[test]
    fn service_order_is_interactive_before_batch_fifo_within_class() {
        let mut q = Lanes::<i64>::new();
        let mut next_seq = 0u64;
        let _b0 = entry(&mut q, &mut next_seq, Priority::Batch);
        let _i0 = entry(&mut q, &mut next_seq, Priority::Interactive);
        let _b1 = entry(&mut q, &mut next_seq, Priority::Batch);
        let _i1 = entry(&mut q, &mut next_seq, Priority::Interactive);
        assert_eq!(q.depth(), 4);
        let order: Vec<(Priority, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.request.priority, e.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                (Priority::Interactive, 1),
                (Priority::Interactive, 3),
                (Priority::Batch, 0),
                (Priority::Batch, 2),
            ]
        );
    }

    #[test]
    fn ticket_cancel_flips_the_shared_token() {
        let cancel = CancelToken::new();
        let (t, _r) = ticket::<i64>(cancel.clone());
        assert!(!cancel.is_cancelled());
        t.cancel();
        assert!(cancel.is_cancelled());
    }
}
