//! Load shedding: who gets evicted when the queue is full and
//! higher-priority work arrives.
//!
//! The policy is deliberate and narrow:
//!
//! * a victim must be of **strictly lower priority** than the incoming
//!   request — the shedder never churns work to admit a peer (an incoming
//!   batch request against a full queue is simply refused);
//! * among candidates, the one with the **earliest deadline** goes first —
//!   under sustained overload it is the request most likely to miss its
//!   deadline anyway, so evicting it destroys the least expected value;
//!   deadline-less requests are "infinitely patient" and are only shed
//!   after every deadline-bearing candidate, oldest admission first;
//! * a shed request is **resolved**, not dropped: its ticket gets
//!   [`crate::MpError::Overloaded`] with the queue depth and capacity
//!   observed at resolution time, so the submitter can observe the shed
//!   and resubmit.
//!
//! The scan compares stored **absolute** deadline instants
//! ([`crate::resilience::Deadline::instant`]), never durations-remaining:
//! subtracting the same `now` from every candidate cannot change which
//! deadline is earliest, so a full-lane scan under a shard lock performs
//! **zero clock reads** (pinned by `full_scan_reads_the_clock_at_most_once`).
//! Across shards, [`super::ingress::Ingress`] runs the same comparison in
//! two phases: pick the globally best key lock-by-lock, then re-lock the
//! winning shard and remove the victim by `seq` (re-scanning if a worker
//! raced it away) — no global lock, same single-queue policy.

use crate::service::queue::{Entry, Lanes, Priority};
use std::time::Instant;

/// Total order over shed candidates: smallest is shed first. Earlier
/// absolute deadline first; deadline-less after every deadline-bearing
/// entry, oldest admission (`seq`) breaking ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct VictimKey {
    /// `Some(instant)` sorts before `None` via the `no_deadline` flag.
    no_deadline: bool,
    deadline: Option<Instant>,
    pub(crate) seq: u64,
}

impl VictimKey {
    fn for_entry<T>(entry: &Entry<T>) -> Self {
        let deadline = entry.request.deadline.map(|d| d.instant());
        VictimKey {
            no_deadline: deadline.is_none(),
            deadline,
            seq: entry.seq,
        }
    }
}

/// Index (into the batch lane) and sort key of the entry to evict so that
/// an `incoming` request can be admitted, or `None` if nothing may be shed
/// for it. Pure comparison of stored state: no clock is read.
pub(crate) fn pick_victim<T>(lanes: &Lanes<T>, incoming: Priority) -> Option<(usize, VictimKey)> {
    // Only interactive arrivals may shed, and only from the batch lane.
    if incoming != Priority::Interactive {
        return None;
    }
    let mut best: Option<(usize, VictimKey)> = None;
    for (i, entry) in lanes.batch.iter().enumerate() {
        let key = VictimKey::for_entry(entry);
        if best.as_ref().is_none_or(|(_, k)| key < *k) {
            best = Some((i, key));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::ctx::{clock_probe, CancelToken, Deadline};
    use crate::service::queue::{ticket, Entry, Request, Ticket};
    use std::time::Duration;

    fn push(
        q: &mut Lanes<i64>,
        next_seq: &mut u64,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Ticket<i64> {
        let cancel = CancelToken::new();
        let (t, resolver) = ticket::<i64>(cancel.clone());
        let mut request = Request::multiprefix(vec![1], vec![0], 1).priority(priority);
        if let Some(budget) = deadline {
            request = request.deadline(Deadline::after(budget));
        }
        let seq = *next_seq;
        *next_seq += 1;
        q.push(Entry {
            request,
            cancel,
            resolver,
            seq,
            admitted_at: None,
        });
        t
    }

    fn victim_index(lanes: &Lanes<i64>, incoming: Priority) -> Option<usize> {
        pick_victim(lanes, incoming).map(|(i, _)| i)
    }

    #[test]
    fn batch_arrivals_never_shed() {
        let mut q = Lanes::<i64>::new();
        let mut seq = 0;
        let _a = push(
            &mut q,
            &mut seq,
            Priority::Batch,
            Some(Duration::from_millis(1)),
        );
        assert_eq!(victim_index(&q, Priority::Batch), None);
    }

    #[test]
    fn interactive_work_is_never_a_victim() {
        let mut q = Lanes::<i64>::new();
        let mut seq = 0;
        let _a = push(
            &mut q,
            &mut seq,
            Priority::Interactive,
            Some(Duration::ZERO),
        );
        let _b = push(&mut q, &mut seq, Priority::Interactive, None);
        assert_eq!(victim_index(&q, Priority::Interactive), None);
    }

    #[test]
    fn earliest_deadline_goes_first() {
        let mut q = Lanes::<i64>::new();
        let mut seq = 0;
        let _far = push(
            &mut q,
            &mut seq,
            Priority::Batch,
            Some(Duration::from_secs(500)),
        );
        let _near = push(
            &mut q,
            &mut seq,
            Priority::Batch,
            Some(Duration::from_millis(1)),
        );
        let _none = push(&mut q, &mut seq, Priority::Batch, None);
        assert_eq!(victim_index(&q, Priority::Interactive), Some(1));
    }

    #[test]
    fn deadline_less_work_is_shed_last_oldest_first() {
        let mut q = Lanes::<i64>::new();
        let mut seq = 0;
        let _old = push(&mut q, &mut seq, Priority::Batch, None);
        let _new = push(&mut q, &mut seq, Priority::Batch, None);
        assert_eq!(victim_index(&q, Priority::Interactive), Some(0));
        let _dated = push(
            &mut q,
            &mut seq,
            Priority::Batch,
            Some(Duration::from_secs(900)),
        );
        // Any deadline at all outranks "infinitely patient".
        assert_eq!(victim_index(&q, Priority::Interactive), Some(2));
    }

    #[test]
    fn empty_batch_lane_means_no_victim() {
        let q = Lanes::<i64>::new();
        assert_eq!(victim_index(&q, Priority::Interactive), None);
    }

    #[test]
    fn full_scan_reads_the_clock_at_most_once() {
        // Regression pin: the old scan called `Deadline::remaining()` — an
        // `Instant::now()` — once per scanned entry while holding the queue
        // lock. The keyed scan compares stored absolute instants, so even a
        // long lane costs at most one clock read (in fact zero).
        let mut q = Lanes::<i64>::new();
        let mut seq = 0;
        for i in 0..256u64 {
            let budget = Duration::from_millis(500 + (i * 37) % 400);
            let dl = if i % 3 == 0 { None } else { Some(budget) };
            let _t = push(&mut q, &mut seq, Priority::Batch, dl);
        }
        let before = clock_probe::count();
        let picked = pick_victim(&q, Priority::Interactive);
        let reads = clock_probe::count() - before;
        assert!(picked.is_some());
        assert!(reads <= 1, "full-lane scan performed {reads} clock reads");
    }

    #[test]
    fn victim_key_orders_like_the_policy() {
        let now = Instant::now();
        let near = VictimKey {
            no_deadline: false,
            deadline: Some(now),
            seq: 9,
        };
        let far = VictimKey {
            no_deadline: false,
            deadline: Some(now + Duration::from_secs(5)),
            seq: 1,
        };
        let patient_old = VictimKey {
            no_deadline: true,
            deadline: None,
            seq: 0,
        };
        let patient_new = VictimKey {
            no_deadline: true,
            deadline: None,
            seq: 4,
        };
        assert!(near < far, "earlier deadline sheds first");
        assert!(far < patient_old, "any deadline outranks none");
        assert!(patient_old < patient_new, "oldest first among patient");
    }
}
