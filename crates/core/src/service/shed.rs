//! Load shedding: who gets evicted when the queue is full and
//! higher-priority work arrives.
//!
//! The policy is deliberate and narrow:
//!
//! * a victim must be of **strictly lower priority** than the incoming
//!   request — the shedder never churns work to admit a peer (an incoming
//!   batch request against a full queue is simply refused);
//! * among candidates, the one with the **earliest deadline** goes first —
//!   under sustained overload it is the request most likely to miss its
//!   deadline anyway, so evicting it destroys the least expected value;
//!   deadline-less requests are "infinitely patient" and are only shed
//!   after every deadline-bearing candidate, oldest admission first;
//! * a shed request is **resolved**, not dropped: its ticket gets
//!   [`crate::MpError::Overloaded`] with the queue depth and capacity that
//!   condemned it, so the submitter can observe the shed and resubmit.

use crate::service::queue::{Priority, QueueState};

/// Index (into the batch lane) of the entry to evict so that an `incoming`
/// request can be admitted, or `None` if nothing may be shed for it.
pub(crate) fn pick_victim<T>(queue: &QueueState<T>, incoming: Priority) -> Option<usize> {
    // Only interactive arrivals may shed, and only from the batch lane.
    if incoming != Priority::Interactive {
        return None;
    }
    let mut best: Option<(usize, (u128, u64))> = None;
    for (i, entry) in queue.batch.iter().enumerate() {
        // Sort key: deadline (as nanos-remaining; none = +inf), then
        // admission order. Smallest key is shed first.
        let key = (
            entry
                .request
                .deadline
                .map_or(u128::MAX, |d| d.remaining().as_nanos()),
            entry.seq,
        );
        if best.as_ref().is_none_or(|(_, k)| key < *k) {
            best = Some((i, key));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::ctx::{CancelToken, Deadline};
    use crate::service::queue::{ticket, Entry, Request, Ticket};
    use std::time::Duration;

    fn push(
        q: &mut QueueState<i64>,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Ticket<i64> {
        let cancel = CancelToken::new();
        let (t, resolver) = ticket::<i64>(cancel.clone());
        let mut request = Request::multiprefix(vec![1], vec![0], 1).priority(priority);
        if let Some(budget) = deadline {
            request = request.deadline(Deadline::after(budget));
        }
        let seq = q.next_seq;
        q.next_seq += 1;
        q.push(Entry {
            request,
            cancel,
            resolver,
            seq,
            admitted_at: None,
        });
        t
    }

    #[test]
    fn batch_arrivals_never_shed() {
        let mut q = QueueState::<i64>::new();
        let _a = push(&mut q, Priority::Batch, Some(Duration::from_millis(1)));
        assert_eq!(pick_victim(&q, Priority::Batch), None);
    }

    #[test]
    fn interactive_work_is_never_a_victim() {
        let mut q = QueueState::<i64>::new();
        let _a = push(&mut q, Priority::Interactive, Some(Duration::ZERO));
        let _b = push(&mut q, Priority::Interactive, None);
        assert_eq!(pick_victim(&q, Priority::Interactive), None);
    }

    #[test]
    fn earliest_deadline_goes_first() {
        let mut q = QueueState::<i64>::new();
        let _far = push(&mut q, Priority::Batch, Some(Duration::from_secs(500)));
        let _near = push(&mut q, Priority::Batch, Some(Duration::from_millis(1)));
        let _none = push(&mut q, Priority::Batch, None);
        assert_eq!(pick_victim(&q, Priority::Interactive), Some(1));
    }

    #[test]
    fn deadline_less_work_is_shed_last_oldest_first() {
        let mut q = QueueState::<i64>::new();
        let _old = push(&mut q, Priority::Batch, None);
        let _new = push(&mut q, Priority::Batch, None);
        assert_eq!(pick_victim(&q, Priority::Interactive), Some(0));
        let _dated = push(&mut q, Priority::Batch, Some(Duration::from_secs(900)));
        // Any deadline at all outranks "infinitely patient".
        assert_eq!(pick_victim(&q, Priority::Interactive), Some(2));
    }

    #[test]
    fn empty_batch_lane_means_no_victim() {
        let q = QueueState::<i64>::new();
        assert_eq!(pick_victim(&q, Priority::Interactive), None);
    }
}
