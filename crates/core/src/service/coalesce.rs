//! Micro-batch coalescing: pack many small same-op requests into one fused
//! multiprefix call, then split the fused output back per request.
//!
//! This is the paper's §4.4 row-length economics applied to a service: the
//! engines' fixed costs (phase startup, spinetree build, chunk scheduling)
//! dominate at small `n`, so `k` requests of `n` elements each cost nearly
//! `k` full startups when run separately but only one when fused. Fusion is
//! exact, not approximate: member `i`'s labels are offset by the cumulative
//! bucket count of the members before it, so label spaces are disjoint and
//! the fused result *restricted to member `i`'s ranges* is bit-identical to
//! running member `i` alone —
//!
//! * `fused.sums[elem_range_i] == member_i.sums` (no cross-member element
//!   shares a label, so no cross-member prefix contaminates another), and
//! * `fused.reductions[label_range_i] == member_i.reductions`.
//!
//! The tests in this module and the service-level property tests hold that
//! equality against the serial (Figure 2) oracle bit-for-bit.

use crate::problem::MultiprefixOutput;
use crate::service::queue::{JobKind, Reply, Request};
use std::ops::Range;

/// Tuning for the opt-in micro-batching coalescer
/// ([`super::ServiceConfig::coalesce`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Most requests fused into one call.
    pub max_requests: usize,
    /// Ceiling on the fused element count (`Σ nᵢ`).
    pub max_fused_elements: usize,
    /// Only requests with at most this many elements coalesce — larger
    /// requests already amortize the engines' fixed costs on their own.
    pub max_request_elements: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            max_requests: 16,
            // Past a few thousand elements the fixed costs are amortized
            // (§4.4: the vector loops approach their asymptotic clk/elt
            // rates); fusing bigger batches buys little and delays results.
            max_fused_elements: 4096,
            max_request_elements: 512,
        }
    }
}

impl CoalesceConfig {
    /// May `request` participate in a fused batch at all?
    pub(crate) fn admits<T>(&self, request: &Request<T>) -> bool {
        request.values.len() <= self.max_request_elements
    }
}

/// Where each member landed inside the fused problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FusedLayout {
    /// Member `i`'s slice of the fused value/label vectors.
    pub(crate) elem_ranges: Vec<Range<usize>>,
    /// Member `i`'s slice of the fused label space (its `m` buckets).
    pub(crate) label_ranges: Vec<Range<usize>>,
    /// Total fused bucket count (`Σ mᵢ`).
    pub(crate) m: usize,
}

/// Pack `requests` into one fused problem: concatenated values, labels
/// offset into disjoint per-member bucket ranges.
pub(crate) fn fuse<T: Copy>(requests: &[&Request<T>]) -> (Vec<T>, Vec<usize>, FusedLayout) {
    let total_elems: usize = requests.iter().map(|r| r.values.len()).sum();
    let mut values = Vec::with_capacity(total_elems);
    let mut labels = Vec::with_capacity(total_elems);
    let mut elem_ranges = Vec::with_capacity(requests.len());
    let mut label_ranges = Vec::with_capacity(requests.len());
    let mut m_off = 0usize;
    for request in requests {
        let elem_start = values.len();
        values.extend_from_slice(&request.values);
        labels.extend(request.labels.iter().map(|&l| l + m_off));
        elem_ranges.push(elem_start..values.len());
        label_ranges.push(m_off..m_off + request.m);
        m_off += request.m;
    }
    (
        values,
        labels,
        FusedLayout {
            elem_ranges,
            label_ranges,
            m: m_off,
        },
    )
}

/// Split a fused output back into per-member replies, honoring each
/// member's [`JobKind`].
pub(crate) fn split<T: Copy>(
    requests: &[&Request<T>],
    fused: &MultiprefixOutput<T>,
    layout: &FusedLayout,
) -> Vec<Reply<T>> {
    debug_assert_eq!(requests.len(), layout.elem_ranges.len());
    requests
        .iter()
        .zip(&layout.elem_ranges)
        .zip(&layout.label_ranges)
        .map(|((request, elems), buckets)| {
            let reductions = fused.reductions[buckets.clone()].to_vec();
            match request.kind {
                JobKind::Reduce => Reply::Reduce(reductions),
                JobKind::Prefix => Reply::Prefix(MultiprefixOutput {
                    sums: fused.sums[elems.clone()].to_vec(),
                    reductions,
                }),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Plus;
    use crate::serial::{multiprefix_serial, multireduce_serial};

    fn request(n: usize, m: usize, salt: u64, kind: usize) -> Request<i64> {
        let values = (0..n as u64)
            .map(|i| (i.wrapping_mul(salt | 1) % 97) as i64 - 48)
            .collect();
        let labels = (0..n as u64)
            .map(|i| (i.wrapping_mul(salt.wrapping_add(3)) % m.max(1) as u64) as usize)
            .collect();
        if kind.is_multiple_of(2) {
            Request::multiprefix(values, labels, m)
        } else {
            Request::multireduce(values, labels, m)
        }
    }

    #[test]
    fn fused_layout_is_disjoint_and_exhaustive() {
        let reqs: Vec<Request<i64>> = (0..5)
            .map(|i| request(10 + i, 3 + i, i as u64, i))
            .collect();
        let refs: Vec<&Request<i64>> = reqs.iter().collect();
        let (values, labels, layout) = fuse(&refs);
        assert_eq!(values.len(), reqs.iter().map(|r| r.len()).sum::<usize>());
        assert_eq!(labels.len(), values.len());
        assert_eq!(layout.m, reqs.iter().map(|r| r.m).sum::<usize>());
        // Every fused label lies inside its member's bucket range.
        for (i, elems) in layout.elem_ranges.iter().enumerate() {
            let buckets = &layout.label_ranges[i];
            assert_eq!(elems.len(), reqs[i].len());
            assert!(labels[elems.clone()].iter().all(|l| buckets.contains(l)));
        }
    }

    #[test]
    fn split_results_match_per_request_serial_oracle_bit_for_bit() {
        let reqs: Vec<Request<i64>> = (0..7)
            .map(|i| request(1 + 13 * i, 1 + (i * 2) % 5, 41 * i as u64 + 1, i))
            .collect();
        let refs: Vec<&Request<i64>> = reqs.iter().collect();
        let (values, labels, layout) = fuse(&refs);
        let fused = multiprefix_serial(&values, &labels, layout.m, Plus);
        let replies = split(&refs, &fused, &layout);
        for (req, reply) in reqs.iter().zip(replies) {
            match reply {
                Reply::Prefix(out) => {
                    assert_eq!(
                        out,
                        multiprefix_serial(&req.values, &req.labels, req.m, Plus)
                    );
                }
                Reply::Reduce(red) => {
                    assert_eq!(
                        red,
                        multireduce_serial(&req.values, &req.labels, req.m, Plus)
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_zero_bucket_members_fuse_cleanly() {
        let reqs = [
            Request::<i64>::multiprefix(vec![], vec![], 0),
            request(6, 2, 9, 0),
            Request::<i64>::multireduce(vec![], vec![], 3),
        ];
        let refs: Vec<&Request<i64>> = reqs.iter().collect();
        let (values, labels, layout) = fuse(&refs);
        let fused = multiprefix_serial(&values, &labels, layout.m, Plus);
        let replies = split(&refs, &fused, &layout);
        assert_eq!(
            replies[0],
            Reply::Prefix(multiprefix_serial::<i64, Plus>(&[], &[], 0, Plus))
        );
        assert_eq!(replies[2], Reply::Reduce(vec![0, 0, 0]));
    }

    #[test]
    fn admits_respects_the_size_gate() {
        let cfg = CoalesceConfig {
            max_request_elements: 4,
            ..CoalesceConfig::default()
        };
        assert!(cfg.admits(&request(4, 2, 1, 0)));
        assert!(!cfg.admits(&request(5, 2, 1, 0)));
    }
}
