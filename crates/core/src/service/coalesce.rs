//! Micro-batch coalescing: pack many small same-op requests into one fused
//! multiprefix call, then split the fused output back per request.
//!
//! This is the paper's §4.4 row-length economics applied to a service: the
//! engines' fixed costs (phase startup, spinetree build, chunk scheduling)
//! dominate at small `n`, so `k` requests of `n` elements each cost nearly
//! `k` full startups when run separately but only one when fused. Fusion is
//! exact, not approximate: member `i`'s labels are offset by the cumulative
//! bucket count of the members before it, so label spaces are disjoint and
//! the fused result *restricted to member `i`'s ranges* is bit-identical to
//! running member `i` alone —
//!
//! * `fused.sums[elem_range_i] == member_i.sums` (no cross-member element
//!   shares a label, so no cross-member prefix contaminates another), and
//! * `fused.reductions[label_range_i] == member_i.reductions`.
//!
//! The tests in this module and the service-level property tests hold that
//! equality against the serial (Figure 2) oracle bit-for-bit.

use crate::problem::MultiprefixOutput;
use crate::service::queue::{JobKind, Reply, Request};
use std::ops::Range;

/// The measured §4.4 sweet-spot coefficient: across the engine benchmarks
/// (`bench_report`'s row-length sweep) throughput peaks when the row
/// length sits near `0.749·√n` of the problem size — equivalently, a
/// problem of `(rows/0.749)²` elements is the smallest one that amortizes
/// the per-call fixed costs at that row length. The adaptive coalescer
/// inverts this to pick a fused-size target from the head request's size.
pub(crate) const ROW_SWEET_FACTOR: f64 = 0.749;

/// Cap on fused members per batch in adaptive mode. Higher than the static
/// default's 16: adaptive fusion only ever consumes already-queued
/// entries, so a deep backlog (exactly when fusion pays most) may drain in
/// bigger gulps without adding any latency for a shallow one.
const ADAPTIVE_MAX_REQUESTS: usize = 64;

/// Floor on the adaptive fused-element target. For very small heads the
/// `(n/0.749)²` inversion collapses toward the head's own size, but tiny
/// requests are precisely the ones whose fixed costs need amortizing —
/// so the target never drops below this (one quarter of the default
/// `max_fused_elements`).
const ADAPTIVE_MIN_FUSED: usize = 1024;

/// Tuning for the opt-in micro-batching coalescer
/// ([`super::ServiceConfig::coalesce`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Most requests fused into one call (static mode; adaptive mode
    /// derives its own member budget per dequeue).
    pub max_requests: usize,
    /// Ceiling on the fused element count (`Σ nᵢ`) in both modes.
    pub max_fused_elements: usize,
    /// Only requests with at most this many elements coalesce — larger
    /// requests already amortize the engines' fixed costs on their own.
    pub max_request_elements: usize,
    /// §4.4 adaptive batch sizing (the default). Instead of the static
    /// `max_requests` limit, each dequeue derives its member/element
    /// budget from the observed shard depth and the measured `0.749·√n`
    /// sweet spot — fusing deeply when a backlog has formed, passing
    /// single requests through untouched when the queue is shallow. Set
    /// `false` to pin the static limits (benchmark baselines, exact-batch
    /// tests).
    pub adaptive: bool,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            max_requests: 16,
            // Past a few thousand elements the fixed costs are amortized
            // (§4.4: the vector loops approach their asymptotic clk/elt
            // rates); fusing bigger batches buys little and delays results.
            max_fused_elements: 4096,
            max_request_elements: 512,
            adaptive: true,
        }
    }
}

impl CoalesceConfig {
    /// May `request` participate in a fused batch at all?
    pub(crate) fn admits<T>(&self, request: &Request<T>) -> bool {
        request.values.len() <= self.max_request_elements
    }

    /// The (member, fused-element) budget for one dequeue whose head
    /// request has `head_len` elements, taken from a shard currently
    /// `shard_depth` deep (head included).
    ///
    /// Static mode returns the configured limits. Adaptive mode targets
    /// the fused size at which the head's row length sits at the measured
    /// `0.749·√n` sweet spot — `(head_len / 0.749)²` — clamped between
    /// [`ADAPTIVE_MIN_FUSED`] and `max_fused_elements`; the member budget
    /// is the observed shard depth (adaptive fusion never waits for future
    /// arrivals, so a depth-1 shard passes its head through unfused),
    /// capped at [`ADAPTIVE_MAX_REQUESTS`].
    pub(crate) fn take_budget(&self, head_len: usize, shard_depth: usize) -> (usize, usize) {
        if !self.adaptive {
            return (self.max_requests, self.max_fused_elements);
        }
        let head = head_len.max(1) as f64;
        let target = (head / ROW_SWEET_FACTOR).powi(2) as usize;
        let ceiling = self.max_fused_elements.max(1);
        let fused = target.clamp(ADAPTIVE_MIN_FUSED.min(ceiling), ceiling);
        let members = shard_depth.clamp(1, ADAPTIVE_MAX_REQUESTS);
        (members, fused)
    }
}

/// Where each member landed inside the fused problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FusedLayout {
    /// Member `i`'s slice of the fused value/label vectors.
    pub(crate) elem_ranges: Vec<Range<usize>>,
    /// Member `i`'s slice of the fused label space (its `m` buckets).
    pub(crate) label_ranges: Vec<Range<usize>>,
    /// Total fused bucket count (`Σ mᵢ`).
    pub(crate) m: usize,
}

/// Pack `requests` into one fused problem: concatenated values, labels
/// offset into disjoint per-member bucket ranges.
pub(crate) fn fuse<T: Copy>(requests: &[&Request<T>]) -> (Vec<T>, Vec<usize>, FusedLayout) {
    let total_elems: usize = requests.iter().map(|r| r.values.len()).sum();
    let mut values = Vec::with_capacity(total_elems);
    let mut labels = Vec::with_capacity(total_elems);
    let mut elem_ranges = Vec::with_capacity(requests.len());
    let mut label_ranges = Vec::with_capacity(requests.len());
    let mut m_off = 0usize;
    for request in requests {
        let elem_start = values.len();
        values.extend_from_slice(&request.values);
        labels.extend(request.labels.iter().map(|&l| l + m_off));
        elem_ranges.push(elem_start..values.len());
        label_ranges.push(m_off..m_off + request.m);
        m_off += request.m;
    }
    (
        values,
        labels,
        FusedLayout {
            elem_ranges,
            label_ranges,
            m: m_off,
        },
    )
}

/// Split a fused output back into per-member replies, honoring each
/// member's [`JobKind`].
pub(crate) fn split<T: Copy>(
    requests: &[&Request<T>],
    fused: &MultiprefixOutput<T>,
    layout: &FusedLayout,
) -> Vec<Reply<T>> {
    debug_assert_eq!(requests.len(), layout.elem_ranges.len());
    requests
        .iter()
        .zip(&layout.elem_ranges)
        .zip(&layout.label_ranges)
        .map(|((request, elems), buckets)| {
            let reductions = fused.reductions[buckets.clone()].to_vec();
            match request.kind {
                JobKind::Reduce => Reply::Reduce(reductions),
                JobKind::Prefix => Reply::Prefix(MultiprefixOutput {
                    sums: fused.sums[elems.clone()].to_vec(),
                    reductions,
                }),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Plus;
    use crate::serial::{multiprefix_serial, multireduce_serial};

    fn request(n: usize, m: usize, salt: u64, kind: usize) -> Request<i64> {
        let values = (0..n as u64)
            .map(|i| (i.wrapping_mul(salt | 1) % 97) as i64 - 48)
            .collect();
        let labels = (0..n as u64)
            .map(|i| (i.wrapping_mul(salt.wrapping_add(3)) % m.max(1) as u64) as usize)
            .collect();
        if kind.is_multiple_of(2) {
            Request::multiprefix(values, labels, m)
        } else {
            Request::multireduce(values, labels, m)
        }
    }

    #[test]
    fn fused_layout_is_disjoint_and_exhaustive() {
        let reqs: Vec<Request<i64>> = (0..5)
            .map(|i| request(10 + i, 3 + i, i as u64, i))
            .collect();
        let refs: Vec<&Request<i64>> = reqs.iter().collect();
        let (values, labels, layout) = fuse(&refs);
        assert_eq!(values.len(), reqs.iter().map(|r| r.len()).sum::<usize>());
        assert_eq!(labels.len(), values.len());
        assert_eq!(layout.m, reqs.iter().map(|r| r.m).sum::<usize>());
        // Every fused label lies inside its member's bucket range.
        for (i, elems) in layout.elem_ranges.iter().enumerate() {
            let buckets = &layout.label_ranges[i];
            assert_eq!(elems.len(), reqs[i].len());
            assert!(labels[elems.clone()].iter().all(|l| buckets.contains(l)));
        }
    }

    #[test]
    fn split_results_match_per_request_serial_oracle_bit_for_bit() {
        let reqs: Vec<Request<i64>> = (0..7)
            .map(|i| request(1 + 13 * i, 1 + (i * 2) % 5, 41 * i as u64 + 1, i))
            .collect();
        let refs: Vec<&Request<i64>> = reqs.iter().collect();
        let (values, labels, layout) = fuse(&refs);
        let fused = multiprefix_serial(&values, &labels, layout.m, Plus);
        let replies = split(&refs, &fused, &layout);
        for (req, reply) in reqs.iter().zip(replies) {
            match reply {
                Reply::Prefix(out) => {
                    assert_eq!(
                        out,
                        multiprefix_serial(&req.values, &req.labels, req.m, Plus)
                    );
                }
                Reply::Reduce(red) => {
                    assert_eq!(
                        red,
                        multireduce_serial(&req.values, &req.labels, req.m, Plus)
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_zero_bucket_members_fuse_cleanly() {
        let reqs = [
            Request::<i64>::multiprefix(vec![], vec![], 0),
            request(6, 2, 9, 0),
            Request::<i64>::multireduce(vec![], vec![], 3),
        ];
        let refs: Vec<&Request<i64>> = reqs.iter().collect();
        let (values, labels, layout) = fuse(&refs);
        let fused = multiprefix_serial(&values, &labels, layout.m, Plus);
        let replies = split(&refs, &fused, &layout);
        assert_eq!(
            replies[0],
            Reply::Prefix(multiprefix_serial::<i64, Plus>(&[], &[], 0, Plus))
        );
        assert_eq!(replies[2], Reply::Reduce(vec![0, 0, 0]));
    }

    #[test]
    fn admits_respects_the_size_gate() {
        let cfg = CoalesceConfig {
            max_request_elements: 4,
            ..CoalesceConfig::default()
        };
        assert!(cfg.admits(&request(4, 2, 1, 0)));
        assert!(!cfg.admits(&request(5, 2, 1, 0)));
    }

    #[test]
    fn adaptive_budget_tracks_depth_and_the_sweet_spot() {
        let cc = CoalesceConfig::default();
        // Static mode pins the configured limits regardless of depth.
        let fixed = CoalesceConfig {
            adaptive: false,
            ..cc
        };
        assert_eq!(fixed.take_budget(8, 100), (16, 4096));
        // A depth-1 shard passes its head through unfused; deeper shards
        // get a member budget equal to the depth, capped at 64.
        assert_eq!(cc.take_budget(64, 1).0, 1);
        assert_eq!(cc.take_budget(64, 9).0, 9);
        assert_eq!(cc.take_budget(64, 1000).0, 64);
        // Fused-element target: (n/0.749)² clamped into [1024, max_fused].
        assert_eq!(cc.take_budget(1, 10).1, 1024);
        assert_eq!(cc.take_budget(512, 10).1, 4096);
        let (_, mid) = cc.take_budget(48, 10);
        assert!((1024..=4096).contains(&mid), "mid-range target: {mid}");
    }
}
