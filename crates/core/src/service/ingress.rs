//! The sharded MPMC front door: N submission shards, label-affinity
//! routing, work-stealing pops, and a two-phase shed protocol — no global
//! queue lock anywhere on the hot path.
//!
//! The old ingress was one `Mutex<QueueState>` plus one condvar pair; at
//! 64+ submitter threads the lock convoy dominated before any engine ran.
//! This module splits the queue into [`Ingress::shard_count`] shards, each
//! a [`Lanes`] (two-priority FIFO pair) under its own mutex, and keeps the
//! *global* facts — total depth, queued-interactive count, lifecycle
//! phase, admission sequence — in atomics:
//!
//! * **Routing** — [`Ingress::route`] hashes the request's dominant label
//!   (a Boyer–Moore majority vote over ≤8 sampled labels, mixed with `m`)
//!   so submissions touching the same label range land on the same shard
//!   and stay FIFO relative to each other; label-less requests round-robin.
//! * **Capacity** — a single `depth` atomic bounds admissions across all
//!   shards: a submitter reserves a slot with a CAS loop *before* locking
//!   its shard, so `queued ≤ capacity` holds globally without any lock.
//! * **Work stealing** — a worker pops from its home shard (`worker mod
//!   shards`) first and scans the others in ring order, so a hot shard
//!   never idles workers. Interactive work is drained from *any* shard
//!   before batch work from the home shard (a cheap `interactive_depth`
//!   atomic gates the extra pass).
//! * **Two-phase shed** — when the queue is full and an interactive
//!   request arrives, phase 1 scans the shards lock-by-lock for the
//!   globally best victim key (earliest stored deadline instant, oldest
//!   first — zero clock reads, see [`super::shed`]); phase 2 re-locks the
//!   winning shard and removes the victim by `seq`, re-scanning if a
//!   worker raced it away. The victim's reserved slot transfers directly
//!   to the incoming request, so no concurrent submitter can steal it.
//! * **Phase vs. push race** — shutdown stores the phase atomic *before*
//!   draining any shard, and submitters re-check the phase *inside* their
//!   shard lock before pushing; the shard mutex orders the two, so either
//!   the drain sees the pushed entry or the submitter sees the flipped
//!   phase. No entry can be pushed into an already-drained shard.
//!
//! Wakeups are **per shard**: each shard owns a sleep mutex + condvar pair
//! per direction (workers wait for work homed on their shard, submitters
//! wait for space homed on theirs), guarded by per-shard waiter counters so
//! the uncontended path performs no syscalls. A notifier prefers its own
//! shard's sleepers and falls back to scanning the others, so every
//! notification wakes at least one waiter whenever one exists anywhere —
//! but a busy shard's traffic never thunders the whole fleet awake the way
//! the old global condvar pair did. The waiter re-checks the (global)
//! condition *after* registering itself (both sides are SeqCst), which
//! rules out the lost-wakeup interleaving without putting either atomic
//! under a lock.
//!
//! The accounting invariant is untouched by all of this: entries still
//! carry their [`super::queue::Resolver`] and every resolution still flows
//! through `Resolver::resolve`, the single counting point.

use crate::resilience::ctx::Deadline;
use crate::service::coalesce::CoalesceConfig;
use crate::service::queue::{Entry, Lanes, Priority, QueuePhase, Request};
use crate::service::shed::{pick_victim, VictimKey};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Defensive park bound for both condvars: a missed wakeup (which the
/// protocol rules out, but cheap insurance survives refactors) costs at
/// most one park interval, never a hang.
const MAX_PARK: Duration = Duration::from_millis(50);

const PHASE_ACCEPTING: u8 = 0;
const PHASE_DRAINING: u8 = 1;
const PHASE_ABORTING: u8 = 2;

fn phase_of(raw: u8) -> QueuePhase {
    match raw {
        PHASE_ACCEPTING => QueuePhase::Accepting,
        PHASE_DRAINING => QueuePhase::Draining,
        _ => QueuePhase::Aborting,
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Critical sections are pure queue manipulation; a poisoning panic can
    // only have originated outside them. Stay robust regardless.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// splitmix64 finalizer: cheap, well-mixed, dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The dominant label of a request, by Boyer–Moore majority vote over at
/// most 8 evenly spaced samples — O(1) work per request regardless of
/// length, and exact whenever one label truly dominates the sample.
fn dominant_label(labels: &[usize]) -> Option<usize> {
    let first = *labels.first()?;
    let stride = (labels.len() / 8).max(1);
    let mut candidate = first;
    let mut votes = 0i32;
    let mut idx = 0;
    while idx < labels.len() {
        let label = labels[idx];
        if votes == 0 {
            candidate = label;
            votes = 1;
        } else if label == candidate {
            votes += 1;
        } else {
            votes -= 1;
        }
        idx += stride;
    }
    Some(candidate)
}

/// Outcome of a non-shedding admission attempt.
pub(crate) enum Admit<T> {
    /// Pushed; `shard_depth` is the shard's depth just after the push (for
    /// the per-shard gauge — emitted by the caller, outside every lock).
    Admitted { shard: usize, shard_depth: usize },
    /// Queue full; the entry is handed back (the caller reads depth at
    /// whatever moment it reports, never a stale pre-scan snapshot).
    Refused { entry: Entry<T> },
    /// The service is draining or aborting.
    Stopped { entry: Entry<T> },
}

/// Outcome of a two-phase shed-and-admit attempt.
pub(crate) enum ShedSwap<T> {
    /// `victim` was evicted and the incoming entry admitted in its slot.
    Swapped {
        victim: Entry<T>,
        shard: usize,
        shard_depth: usize,
        victim_shard: usize,
        victim_shard_depth: usize,
    },
    /// Nothing sheddable (or the scan was contended away); entry returned.
    NoVictim { entry: Entry<T> },
    /// The service stopped between eviction and re-admission: the victim
    /// (if one was already removed) and the entry are both handed back.
    Stopped {
        victim: Option<Entry<T>>,
        entry: Entry<T>,
    },
}

/// What a worker dequeued, and from where.
pub(crate) struct BatchMeta {
    pub(crate) shard: usize,
    /// True when the batch came from a non-home shard.
    pub(crate) stolen: bool,
    /// The shard's depth just after the take (per-shard gauge).
    pub(crate) shard_depth: usize,
}

/// One ingress shard: a two-lane FIFO under its own lock, plus the
/// shard's own condvar pair (workers homed here park on `work`,
/// submitters routed here park on `space`). Keeping the sleep state per
/// shard means a notification wakes only the sleepers that can actually
/// use it instead of thundering every parked thread in the process.
#[derive(Debug)]
struct Shard<T> {
    lanes: Mutex<Lanes<T>>,
    /// Workers registered as sleeping on this shard's `work` condvar.
    idle_workers: AtomicUsize,
    sleep_lock: Mutex<()>,
    work: Condvar,
    /// Submitters registered as sleeping on this shard's `space` condvar.
    space_waiters: AtomicUsize,
    space_lock: Mutex<()>,
    space: Condvar,
}

impl<T> Shard<T> {
    fn new() -> Self {
        Shard {
            lanes: Mutex::new(Lanes::new()),
            idle_workers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            work: Condvar::new(),
            space_waiters: AtomicUsize::new(0),
            space_lock: Mutex::new(()),
            space: Condvar::new(),
        }
    }
}

/// The sharded submission front door. See the module docs for the
/// protocol; [`super::pool::Shared`] holds one per service.
#[derive(Debug)]
pub(crate) struct Ingress<T> {
    shards: Box<[Shard<T>]>,
    capacity: usize,
    /// Global queued-entry count, bounding admission across shards. A
    /// reservation (`fetch_add` before the shard push) counts here, so the
    /// value can briefly overstate the sum of shard depths — always in the
    /// safe (conservative) direction for the capacity bound.
    depth: AtomicUsize,
    /// Queued interactive entries, gating the workers' cross-shard
    /// interactive-first pass.
    interactive_depth: AtomicUsize,
    /// Admission order, global across shards (the shed tie-breaker).
    next_seq: AtomicU64,
    /// Round-robin cursor for label-less requests.
    rr: AtomicUsize,
    phase: AtomicU8,
    /// Precomputed per-shard gauge names (`service.queue.shard.N.depth`),
    /// so gauge emission allocates nothing.
    gauge_names: Box<[String]>,
}

impl<T> Ingress<T> {
    pub(crate) fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        Ingress {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            capacity,
            depth: AtomicUsize::new(0),
            interactive_depth: AtomicUsize::new(0),
            next_seq: AtomicU64::new(0),
            rr: AtomicUsize::new(0),
            phase: AtomicU8::new(PHASE_ACCEPTING),
            gauge_names: (0..shards)
                .map(|i| format!("service.queue.shard.{i}.depth"))
                .collect(),
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total queued entries (reservations included).
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    pub(crate) fn phase(&self) -> QueuePhase {
        phase_of(self.phase.load(Ordering::SeqCst))
    }

    /// The per-shard depth gauge name for `shard`.
    pub(crate) fn shard_gauge_name(&self, shard: usize) -> &str {
        &self.gauge_names[shard]
    }

    /// Allocate the next admission sequence number.
    pub(crate) fn alloc_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Pick the shard for `request`: dominant-label affinity when the
    /// request has labels, round-robin otherwise.
    pub(crate) fn route(&self, request: &Request<T>) -> usize {
        let s = self.shards.len();
        if s == 1 {
            return 0;
        }
        match dominant_label(&request.labels) {
            Some(label) => (mix(label as u64 ^ ((request.m as u64) << 24)) % s as u64) as usize,
            None => self.rr.fetch_add(1, Ordering::Relaxed) % s,
        }
    }

    /// Wake one idle worker, preferring those homed on `shard` (the shard
    /// that just gained work) and falling back to a ring scan so the
    /// notification is never dropped while any worker anywhere sleeps.
    fn notify_work(&self, shard: usize) {
        let s = self.shards.len();
        for k in 0..s {
            let sh = &self.shards[(shard + k) % s];
            if sh.idle_workers.load(Ordering::SeqCst) > 0 {
                let _guard = lock(&sh.sleep_lock);
                sh.work.notify_one();
                return;
            }
        }
    }

    /// Wake up to `freed` parked submitters, preferring the ones parked on
    /// `shard` (the shard whose pop freed the slots) and ring-scanning the
    /// rest — capacity is global, so any release can satisfy any waiter,
    /// but a targeted wake avoids the notify-all herd the old global
    /// condvar paid on every release.
    fn notify_space(&self, shard: usize, freed: usize) {
        if freed == 0 {
            return;
        }
        let s = self.shards.len();
        let mut budget = freed;
        for k in 0..s {
            let sh = &self.shards[(shard + k) % s];
            let waiting = sh.space_waiters.load(Ordering::SeqCst);
            if waiting == 0 {
                continue;
            }
            let _guard = lock(&sh.space_lock);
            if budget >= waiting {
                sh.space.notify_all();
                budget -= waiting;
            } else {
                for _ in 0..budget {
                    sh.space.notify_one();
                }
                budget = 0;
            }
            if budget == 0 {
                return;
            }
        }
    }

    /// Wake every sleeper on every shard's condvars (shutdown, worker
    /// death).
    pub(crate) fn wake_all(&self) {
        for sh in self.shards.iter() {
            {
                let _guard = lock(&sh.sleep_lock);
                sh.work.notify_all();
            }
            let _guard = lock(&sh.space_lock);
            sh.space.notify_all();
        }
    }

    /// Reserve one queue slot against the global capacity.
    fn reserve(&self) -> Result<(), usize> {
        let mut current = self.depth.load(Ordering::SeqCst);
        loop {
            if current >= self.capacity {
                return Err(current);
            }
            match self.depth.compare_exchange_weak(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Ok(()),
                Err(now) => current = now,
            }
        }
    }

    /// Give a reserved (or inherited) slot back. `shard` is the shard the
    /// slot was destined for, used only as the wakeup starting point.
    fn release_slot(&self, shard: usize) {
        self.depth.fetch_sub(1, Ordering::SeqCst);
        self.notify_space(shard, 1);
    }

    /// Try to admit `entry` into `shard` without shedding: reserve a slot,
    /// then push under the shard lock (re-checking the phase there — see
    /// the module docs for why that closes the push-vs-drain race).
    ///
    /// `on_admit` runs just before the push, still under the shard lock:
    /// the service bumps its `admitted` counter there, so the bump is
    /// ordered before the entry can be popped — which is what lets a
    /// metrics snapshot never observe `completed + errored > admitted`.
    pub(crate) fn try_admit(
        &self,
        shard: usize,
        entry: Entry<T>,
        on_admit: impl FnOnce(),
    ) -> Admit<T> {
        if self.reserve().is_err() {
            return match self.phase() {
                QueuePhase::Accepting => Admit::Refused { entry },
                _ => Admit::Stopped { entry },
            };
        }
        let interactive = entry.request.priority == Priority::Interactive;
        let shard_depth = {
            let mut lanes = lock(&self.shards[shard].lanes);
            if self.phase.load(Ordering::SeqCst) != PHASE_ACCEPTING {
                drop(lanes);
                self.release_slot(shard);
                return Admit::Stopped { entry };
            }
            on_admit();
            lanes.push(entry);
            lanes.depth()
        };
        if interactive {
            self.interactive_depth.fetch_add(1, Ordering::SeqCst);
        }
        self.notify_work(shard);
        Admit::Admitted { shard, shard_depth }
    }

    /// Two-phase shed: evict the globally best batch victim and admit
    /// `entry` in its slot. Only meaningful for interactive arrivals
    /// against a full queue; anything else reports [`ShedSwap::NoVictim`].
    /// `on_admit` is as in [`Ingress::try_admit`].
    pub(crate) fn try_shed_swap(
        &self,
        shard: usize,
        entry: Entry<T>,
        mut on_admit: impl FnMut(),
    ) -> ShedSwap<T> {
        if entry.request.priority != Priority::Interactive {
            return ShedSwap::NoVictim { entry };
        }
        // Bounded retries: a candidate can be raced away by a worker or a
        // concurrent shedder; if that keeps happening the backlog is
        // moving, and the caller's admission loop will get another turn.
        for _ in 0..(2 * self.shards.len()).max(4) {
            // Phase 1: find the globally best victim key, one shard lock
            // at a time (zero clock reads — keys are stored instants).
            let mut best: Option<(usize, VictimKey)> = None;
            for (i, sh) in self.shards.iter().enumerate() {
                let lanes = lock(&sh.lanes);
                if let Some((_, key)) = pick_victim(&lanes, Priority::Interactive) {
                    if best.as_ref().is_none_or(|(_, k)| key < *k) {
                        best = Some((i, key));
                    }
                }
            }
            let Some((victim_shard, key)) = best else {
                return ShedSwap::NoVictim { entry };
            };
            // Phase 2: re-lock the winner and remove the victim by seq.
            let (victim, victim_shard_depth) = {
                let mut lanes = lock(&self.shards[victim_shard].lanes);
                match lanes.batch.iter().position(|e| e.seq == key.seq) {
                    Some(pos) => {
                        let victim = lanes
                            .batch
                            .remove(pos)
                            .expect("invariant: position() index is in range");
                        (victim, lanes.depth())
                    }
                    None => continue, // raced away; rescan
                }
            };
            // The victim's slot transfers to `entry`: the global depth is
            // deliberately not decremented, so no concurrent submitter can
            // take the freed capacity between eviction and re-admission.
            let shard_depth = {
                let mut lanes = lock(&self.shards[shard].lanes);
                if self.phase.load(Ordering::SeqCst) != PHASE_ACCEPTING {
                    drop(lanes);
                    self.release_slot(shard);
                    return ShedSwap::Stopped {
                        victim: Some(victim),
                        entry,
                    };
                }
                on_admit();
                lanes.push(entry);
                lanes.depth()
            };
            self.interactive_depth.fetch_add(1, Ordering::SeqCst);
            self.notify_work(shard);
            return ShedSwap::Swapped {
                victim,
                shard,
                shard_depth,
                victim_shard,
                victim_shard_depth,
            };
        }
        ShedSwap::NoVictim { entry }
    }

    /// Park the calling submitter on its routed shard's `space` condvar
    /// until space may exist (or `deadline` passes). Returns `false` only
    /// on a deadline expiry observed here; `true` means "re-attempt
    /// admission".
    pub(crate) fn wait_for_space(&self, shard: usize, deadline: Option<Deadline>) -> bool {
        let sh = &self.shards[shard];
        let guard = lock(&sh.space_lock);
        sh.space_waiters.fetch_add(1, Ordering::SeqCst);
        // Re-check after registering: pairs with notify_space()'s waiter
        // scan, closing the lost-wakeup window (the releaser decrements the
        // global depth before scanning the per-shard counters, so either it
        // sees us registered or we see its freed slot here).
        if self.depth.load(Ordering::SeqCst) < self.capacity
            || self.phase.load(Ordering::SeqCst) != PHASE_ACCEPTING
        {
            sh.space_waiters.fetch_sub(1, Ordering::SeqCst);
            return true;
        }
        let park = match deadline {
            Some(d) => {
                let left = d.remaining();
                if left.is_zero() {
                    sh.space_waiters.fetch_sub(1, Ordering::SeqCst);
                    return false;
                }
                left.min(MAX_PARK)
            }
            None => MAX_PARK,
        };
        let _ = sh.space.wait_timeout(guard, park);
        sh.space_waiters.fetch_sub(1, Ordering::SeqCst);
        true
    }

    /// Block for the next unit of work for worker `worker`: one entry, or
    /// — when `coalesce` allows — a run of small entries from the same
    /// shard fused into one batch. `None` means the service is stopping
    /// and the worker should exit.
    pub(crate) fn next_batch(
        &self,
        worker: usize,
        coalesce: Option<&CoalesceConfig>,
    ) -> Option<(Vec<Entry<T>>, BatchMeta)> {
        loop {
            match self.phase() {
                QueuePhase::Aborting => return None,
                QueuePhase::Draining if self.depth.load(Ordering::SeqCst) == 0 => return None,
                _ => {}
            }
            if self.depth.load(Ordering::SeqCst) > 0 {
                if let Some(found) = self.scan_pop(worker, coalesce) {
                    return Some(found);
                }
                // The observed entries were reservations not yet pushed, or
                // another worker drained them: fall through to the
                // registered rescan below. Spinning here burns the
                // timeslice the reserver needs to finish its push; yielding
                // sends us behind every runnable submitter. Parking (with
                // the rescan closing the race) does neither.
            }
            // Sleep path: park on the home shard's condvar. Register as
            // idle *before* rescanning, so a pusher either sees us idle
            // (its ring scan finds this shard's counter and notifies) or
            // pushed before the rescan (and the rescan finds the entry) —
            // never neither.
            let home = &self.shards[worker % self.shards.len()];
            let guard = lock(&home.sleep_lock);
            home.idle_workers.fetch_add(1, Ordering::SeqCst);
            if self.phase.load(Ordering::SeqCst) != PHASE_ACCEPTING {
                home.idle_workers.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            if let Some(found) = self.scan_pop(worker, coalesce) {
                home.idle_workers.fetch_sub(1, Ordering::SeqCst);
                return Some(found);
            }
            let _ = home.work.wait_timeout(guard, MAX_PARK);
            home.idle_workers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// One scan over the shards in ring order from the worker's home
    /// shard: an interactive-first pass across all shards (gated by the
    /// cheap `interactive_depth` test), then an any-lane pass.
    fn scan_pop(
        &self,
        worker: usize,
        coalesce: Option<&CoalesceConfig>,
    ) -> Option<(Vec<Entry<T>>, BatchMeta)> {
        let s = self.shards.len();
        let home = worker % s;
        if self.interactive_depth.load(Ordering::SeqCst) > 0 {
            for k in 0..s {
                let i = (home + k) % s;
                let mut lanes = lock(&self.shards[i].lanes);
                if !lanes.interactive.is_empty() {
                    return Some(self.finish_take(i, home, &mut lanes, coalesce));
                }
            }
        }
        for k in 0..s {
            let i = (home + k) % s;
            let mut lanes = lock(&self.shards[i].lanes);
            if lanes.depth() > 0 {
                return Some(self.finish_take(i, home, &mut lanes, coalesce));
            }
        }
        None
    }

    /// Take the head of `lanes` (plus a coalesced run, §4.4) and do the
    /// global bookkeeping. Called with the shard lock held; the returned
    /// batch is fully owned by the caller once the guard drops.
    fn finish_take(
        &self,
        shard: usize,
        home: usize,
        lanes: &mut Lanes<T>,
        coalesce: Option<&CoalesceConfig>,
    ) -> (Vec<Entry<T>>, BatchMeta) {
        let shard_depth_before = lanes.depth();
        let first = lanes.pop().expect("invariant: shard depth > 0 under lock");
        let mut batch = vec![first];
        if let Some(cc) = coalesce {
            if cc.admits(&batch[0].request) {
                // §4.4 adaptive batch sizing: the budget is derived from
                // the head's row length, the observed shard depth, and the
                // measured 0.749·√n sweet spot (see CoalesceConfig).
                let (max_requests, max_fused) =
                    cc.take_budget(batch[0].request.len(), shard_depth_before);
                let mut fused_elems = batch[0].request.len();
                while batch.len() < max_requests {
                    let Some(next) = lanes.peek() else { break };
                    if !cc.admits(&next.request) || fused_elems + next.request.len() > max_fused {
                        break;
                    }
                    fused_elems += next.request.len();
                    batch.push(lanes.pop().expect("invariant: peeked entry exists"));
                }
            }
        }
        let shard_depth = lanes.depth();
        let interactive_taken = batch
            .iter()
            .filter(|e| e.request.priority == Priority::Interactive)
            .count();
        // Atomics while holding the shard lock are fine (no second lock is
        // taken), and doing them here keeps depth() an overestimate only
        // on the reservation side.
        self.depth.fetch_sub(batch.len(), Ordering::SeqCst);
        if interactive_taken > 0 {
            self.interactive_depth
                .fetch_sub(interactive_taken, Ordering::SeqCst);
        }
        self.notify_space(shard, batch.len());
        (
            batch,
            BatchMeta {
                shard,
                stolen: shard != home,
                shard_depth,
            },
        )
    }

    /// Advance the lifecycle phase (stores the phase *before* any drain —
    /// the ordering the push-vs-drain argument rests on) and return the
    /// drained backlog when the target phase is `Aborting`.
    pub(crate) fn begin_stop(&self, graceful: bool) -> Vec<Entry<T>> {
        let mut current = self.phase.load(Ordering::SeqCst);
        loop {
            let target = match (phase_of(current), graceful) {
                (QueuePhase::Accepting, true) => PHASE_DRAINING,
                (QueuePhase::Accepting, false) | (QueuePhase::Draining, false) => PHASE_ABORTING,
                _ => break, // already stopping at least as strongly
            };
            match self
                .phase
                .compare_exchange(current, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(now) => current = now,
            }
        }
        let drained = if self.phase() == QueuePhase::Aborting {
            self.drain_all()
        } else {
            Vec::new()
        };
        self.wake_all();
        drained
    }

    /// Drain every queued entry across all shards (shutdown paths),
    /// keeping the global counters consistent.
    pub(crate) fn drain_all(&self) -> Vec<Entry<T>> {
        let mut out = Vec::new();
        for sh in self.shards.iter() {
            out.extend(lock(&sh.lanes).drain_all());
        }
        if !out.is_empty() {
            let interactive = out
                .iter()
                .filter(|e| e.request.priority == Priority::Interactive)
                .count();
            self.depth.fetch_sub(out.len(), Ordering::SeqCst);
            if interactive > 0 {
                self.interactive_depth
                    .fetch_sub(interactive, Ordering::SeqCst);
            }
            self.notify_space(0, out.len());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::ctx::CancelToken;
    use crate::service::queue::{ticket, Request, Ticket};
    use crate::service::ServiceStats;

    fn make_entry(
        ing: &Ingress<i64>,
        priority: Priority,
        labels: Vec<usize>,
        m: usize,
    ) -> (Entry<i64>, Ticket<i64>) {
        let cancel = CancelToken::new();
        let (t, resolver) = ticket::<i64>(cancel.clone());
        let values = vec![1i64; labels.len()];
        let entry = Entry {
            request: Request::multiprefix(values, labels, m).priority(priority),
            cancel,
            resolver,
            seq: ing.alloc_seq(),
            admitted_at: None,
        };
        (entry, t)
    }

    fn admit(ing: &Ingress<i64>, priority: Priority, labels: Vec<usize>, m: usize) -> Ticket<i64> {
        let (entry, t) = make_entry(ing, priority, labels, m);
        let shard = ing.route(&entry.request);
        match ing.try_admit(shard, entry, || {}) {
            Admit::Admitted { .. } => t,
            _ => panic!("admission refused in test setup"),
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ing = Ingress::<i64>::new(8, 64);
        for m in 1..20usize {
            for label in 0..20usize {
                let req = Request::<i64>::multiprefix(vec![1; 4], vec![label % m; 4], m);
                let a = ing.route(&req);
                let b = ing.route(&req);
                assert_eq!(a, b, "routing must be deterministic");
                assert!(a < 8);
            }
        }
    }

    #[test]
    fn label_less_requests_round_robin_across_shards() {
        let ing = Ingress::<i64>::new(4, 64);
        let req = Request::<i64>::multiprefix(vec![], vec![], 0);
        let shards: Vec<usize> = (0..8).map(|_| ing.route(&req)).collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn dominant_label_majority_vote() {
        assert_eq!(dominant_label(&[]), None);
        assert_eq!(dominant_label(&[3]), Some(3));
        assert_eq!(dominant_label(&[7, 7, 7, 2, 7]), Some(7));
        // Long input: sampled at a stride, still O(1) comparisons.
        let long: Vec<usize> = (0..10_000).map(|_| 5).collect();
        assert_eq!(dominant_label(&long), Some(5));
    }

    #[test]
    fn capacity_is_a_global_bound_across_shards() {
        let ing = Ingress::<i64>::new(4, 3);
        let stats = ServiceStats::default();
        let _t1 = admit(&ing, Priority::Batch, vec![0], 1);
        let _t2 = admit(&ing, Priority::Batch, vec![1], 2);
        let _t3 = admit(&ing, Priority::Batch, vec![2], 3);
        assert_eq!(ing.depth(), 3);
        let (entry, _t4) = make_entry(&ing, Priority::Batch, vec![3], 4);
        let shard = ing.route(&entry.request);
        match ing.try_admit(shard, entry, || {}) {
            Admit::Refused { entry } => {
                assert_eq!(ing.depth(), 3, "refusal leaves the depth untouched");
                entry
                    .resolver
                    .resolve(&stats, Err(crate::MpError::Cancelled));
            }
            _ => panic!("expected refusal at capacity"),
        }
        for e in ing.drain_all() {
            e.resolver.resolve(&stats, Err(crate::MpError::Cancelled));
        }
        assert_eq!(ing.depth(), 0);
    }

    #[test]
    fn per_lane_fifo_is_preserved_within_a_shard() {
        // Same labels → same shard; pops must observe per-lane FIFO order
        // (interactive first, then batch, seq order within each lane).
        let ing = Ingress::<i64>::new(4, 64);
        let stats = ServiceStats::default();
        let mut expect_interactive = Vec::new();
        let mut expect_batch = Vec::new();
        let mut tickets = Vec::new();
        for i in 0..12u64 {
            let pr = if i % 3 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            };
            let (entry, t) = make_entry(&ing, pr, vec![5, 5, 5], 7);
            tickets.push(t);
            match pr {
                Priority::Interactive => expect_interactive.push(entry.seq),
                Priority::Batch => expect_batch.push(entry.seq),
            }
            let shard = ing.route(&entry.request);
            assert!(matches!(
                ing.try_admit(shard, entry, || {}),
                Admit::Admitted { .. }
            ));
        }
        let expected: Vec<u64> = expect_interactive.into_iter().chain(expect_batch).collect();
        let mut got = Vec::new();
        while let Some(found) = ing.scan_pop(0, None) {
            let (batch, meta) = found;
            assert!(!meta.stolen || meta.shard != 0);
            for e in batch {
                got.push(e.seq);
                e.resolver.resolve(&stats, Err(crate::MpError::Cancelled));
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn shed_swap_transfers_the_slot_and_reports_fresh_depths() {
        let ing = Ingress::<i64>::new(2, 2);
        let stats = ServiceStats::default();
        let _b1 = admit(&ing, Priority::Batch, vec![0], 1);
        let _b2 = admit(&ing, Priority::Batch, vec![1], 2);
        assert_eq!(ing.depth(), 2);
        let (entry, vip) = make_entry(&ing, Priority::Interactive, vec![0], 1);
        let shard = ing.route(&entry.request);
        // Full queue: plain admission refuses...
        let entry = match ing.try_admit(shard, entry, || {}) {
            Admit::Refused { entry } => {
                assert_eq!(ing.depth(), 2, "refusal leaves the depth untouched");
                entry
            }
            _ => panic!("expected refusal at capacity"),
        };
        // ...and the two-phase swap evicts the oldest batch entry while
        // keeping the global depth constant (the slot is inherited).
        match ing.try_shed_swap(shard, entry, || {}) {
            ShedSwap::Swapped { victim, .. } => {
                assert_eq!(victim.seq, 0, "oldest deadline-less batch entry");
                assert_eq!(ing.depth(), 2, "slot transferred, not freed");
                victim.resolver.resolve(
                    &stats,
                    Err(crate::MpError::Overloaded {
                        queue_depth: ing.depth(),
                        capacity: ing.capacity(),
                    }),
                );
            }
            _ => panic!("expected a successful swap"),
        }
        drop(vip);
        for e in ing.drain_all() {
            e.resolver.resolve(&stats, Err(crate::MpError::Cancelled));
        }
    }

    #[test]
    fn begin_stop_refuses_new_pushes_and_drains_on_abort() {
        let ing = Ingress::<i64>::new(2, 8);
        let stats = ServiceStats::default();
        let _t = admit(&ing, Priority::Batch, vec![0], 1);
        let drained = ing.begin_stop(false);
        assert_eq!(drained.len(), 1);
        assert_eq!(ing.depth(), 0);
        for e in drained {
            e.resolver.resolve(&stats, Err(crate::MpError::Cancelled));
        }
        let (entry, _t2) = make_entry(&ing, Priority::Batch, vec![0], 1);
        assert!(matches!(
            ing.try_admit(0, entry, || {}),
            Admit::Stopped { .. }
        ));
        // Idempotent: a second abort drains nothing.
        assert!(ing.begin_stop(false).is_empty());
    }

    #[test]
    fn workers_exit_on_abort_and_after_drain() {
        let ing = Ingress::<i64>::new(2, 8);
        ing.begin_stop(true);
        assert_eq!(ing.phase(), QueuePhase::Draining);
        assert!(ing.next_batch(0, None).is_none(), "drained + empty → exit");
        ing.begin_stop(false);
        assert!(ing.next_batch(1, None).is_none(), "aborting → exit");
    }

    #[test]
    fn stealing_serves_a_hot_shard_from_any_worker() {
        let ing = Ingress::<i64>::new(4, 64);
        let stats = ServiceStats::default();
        // All traffic lands on one shard (same labels); workers homed on
        // other shards must steal it.
        let (probe, _t0) = make_entry(&ing, Priority::Batch, vec![9, 9], 11);
        let hot = ing.route(&probe.request);
        assert!(matches!(
            ing.try_admit(hot, probe, || {}),
            Admit::Admitted { .. }
        ));
        for _ in 0..3 {
            let _t = admit(&ing, Priority::Batch, vec![9, 9], 11);
        }
        let far_worker = hot + 1; // homed on a different shard
        let mut taken = 0;
        while let Some((batch, meta)) = ing.scan_pop(far_worker, None) {
            assert_eq!(meta.shard, hot);
            assert!(meta.stolen);
            for e in batch {
                taken += 1;
                e.resolver.resolve(&stats, Err(crate::MpError::Cancelled));
            }
        }
        assert_eq!(taken, 4);
    }
}
