//! The [`Service`] session API: durable streaming sessions routed
//! through the service's deadline and circuit-breaker discipline.
//!
//! A [`Service`] built over an invertible operator can host any number of
//! [`DurableSession`] stores alongside its batch traffic:
//! [`Service::open_session`] runs the recovery state machine and
//! registers the store, the per-session calls
//! ([`Service::session_append`], [`Service::session_update`],
//! [`Service::session_query`], [`Service::session_total`],
//! [`Service::session_snapshot`]) operate on it, and
//! [`Service::session_close`] seals and unregisters it.
//!
//! Each session carries its own **storage breaker** (the same
//! [`BreakerConfig`](crate::resilience::BreakerConfig) the dispatcher
//! uses for engines): consecutive storage failures open it, and while it
//! is open every storage-touching call fails fast with
//! [`MpError::Unavailable`] instead of hammering a sick disk — queries,
//! which touch only memory, keep being served, and
//! [`Service::session_snapshot`] is still admitted because it is the
//! remediation path out of a poisoned store. The service's
//! [`DispatcherConfig::request_timeout`] is applied to every session
//! call as a fail-fast deadline check, and the session inherits the
//! service's chaos plan and recorder unless the
//! [`SessionOptions`] override them.
//!
//! [`DispatcherConfig::request_timeout`]: crate::resilience::DispatcherConfig::request_timeout

use super::queue::QueuePhase;
use super::Service;
use crate::error::MpError;
use crate::op::{InvertibleOp, TryCombineOp};
use crate::problem::Element;
use crate::resilience::ctx::Deadline;
use crate::resilience::health::EngineHealth;
use crate::session::{DurableSession, RecoveryReport, SessionOptions};
use crate::shard::net::wire::WireValue;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// Handle to a session opened on a [`Service`] — see
/// [`Service::open_session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u64);

pub(crate) struct SessionSlot<T, O> {
    store: DurableSession<T, O>,
    /// Storage circuit breaker: opened by consecutive storage failures,
    /// half-opened after the cooldown, closed again by a success.
    health: EngineHealth,
}

/// The open-session registry hanging off the service's `Shared` state.
pub(crate) struct SessionRegistry<T, O> {
    next_id: u64,
    open: HashMap<u64, SessionSlot<T, O>>,
}

impl<T, O> std::fmt::Debug for SessionRegistry<T, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRegistry")
            .field("open", &self.open.len())
            .finish()
    }
}

impl<T, O> Default for SessionRegistry<T, O> {
    fn default() -> Self {
        SessionRegistry {
            next_id: 0,
            open: HashMap::new(),
        }
    }
}

pub(crate) fn new_registry<T, O>() -> Mutex<SessionRegistry<T, O>> {
    Mutex::new(SessionRegistry::default())
}

impl<T, O> Service<T, O>
where
    T: Element + WireValue + PartialEq,
    O: TryCombineOp<T> + InvertibleOp<T>,
{
    /// Open (or create, or recover) the durable session store at `dir`
    /// for `m` buckets, and register it on this service.
    ///
    /// Unset [`SessionOptions`] fields inherit the service's wiring: the
    /// chaos plan and the recorder. The store's operator is the
    /// service's operator. Returns the handle the other `session_*`
    /// calls take.
    pub fn open_session(
        &self,
        dir: &Path,
        m: usize,
        mut opts: SessionOptions,
    ) -> Result<SessionId, MpError> {
        if self.shared.ingress.phase() != QueuePhase::Accepting {
            return Err(MpError::Unavailable);
        }
        if opts.chaos.is_none() {
            opts.chaos = self.shared.cfg.chaos.clone();
        }
        if opts.recorder.is_none() {
            opts.recorder = self.shared.cfg.recorder.clone();
        }
        let store = DurableSession::open(dir, m, self.shared.op, opts)?;
        let mut reg = self.lock_sessions();
        let id = reg.next_id;
        reg.next_id += 1;
        reg.open.insert(
            id,
            SessionSlot {
                store,
                health: EngineHealth::new(self.shared.cfg.dispatcher.breaker),
            },
        );
        if let Some(rec) = self.shared.stats.recorder() {
            rec.counter("session.open", 1);
            rec.gauge("session.open_count", reg.open.len() as i64);
        }
        Ok(SessionId(id))
    }

    /// What recovery did when session `id` was opened.
    pub fn session_recovery_report(&self, id: SessionId) -> Result<RecoveryReport, MpError> {
        let reg = self.lock_sessions();
        let slot = reg
            .open
            .get(&id.0)
            .ok_or(MpError::UnknownSession { id: id.0 })?;
        Ok(slot.store.recovery_report())
    }

    /// Durably append `(label, value)` to session `id`; `Ok(index)` is a
    /// durability acknowledgment (the record is fsynced in the WAL).
    pub fn session_append(&self, id: SessionId, label: usize, value: T) -> Result<u64, MpError> {
        self.with_session_storage(id, |slot| slot.store.append(label, value))
    }

    /// Durably re-assign element `index` of session `id` to `value`.
    pub fn session_update(&self, id: SessionId, index: u64, value: T) -> Result<(), MpError> {
        self.with_session_storage(id, |slot| slot.store.update(index, value))
    }

    /// The multiprefix sum of element `index` in session `id` — the
    /// ⊕-combination of every earlier same-label element. Memory-only:
    /// served even while the session's storage breaker is open.
    pub fn session_query(&self, id: SessionId, index: u64) -> Result<T, MpError> {
        self.deadline_guard()?;
        let reg = self.lock_sessions();
        let slot = reg
            .open
            .get(&id.0)
            .ok_or(MpError::UnknownSession { id: id.0 })?;
        slot.store.prefix_query(index)
    }

    /// The ⊕-reduction of every element of session `id` with `label`.
    /// Memory-only, like [`Service::session_query`].
    pub fn session_total(&self, id: SessionId, label: usize) -> Result<T, MpError> {
        self.deadline_guard()?;
        let reg = self.lock_sessions();
        let slot = reg
            .open
            .get(&id.0)
            .ok_or(MpError::UnknownSession { id: id.0 })?;
        slot.store.label_total(label)
    }

    /// Cut a snapshot of session `id` (rotate the WAL, write the image
    /// atomically, reap old generations). Also the recovery path out of
    /// a poisoned session — and therefore admitted even while the
    /// storage breaker is open: fast-failing the one call that can cure
    /// the fault would wedge the session permanently. Success closes the
    /// breaker. Returns the new generation.
    pub fn session_snapshot(&self, id: SessionId) -> Result<u64, MpError> {
        self.session_storage_call(id, false, |slot| slot.store.snapshot())
    }

    /// Seal session `id` (final fsync) and unregister it. The store
    /// directory remains on disk and can be reopened later.
    pub fn session_close(&self, id: SessionId) -> Result<(), MpError> {
        let slot = {
            let mut reg = self.lock_sessions();
            let slot = reg
                .open
                .remove(&id.0)
                .ok_or(MpError::UnknownSession { id: id.0 })?;
            if let Some(rec) = self.shared.stats.recorder() {
                rec.counter("session.close", 1);
                rec.gauge("session.open_count", reg.open.len() as i64);
            }
            slot
        };
        slot.store.close()
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, SessionRegistry<T, O>> {
        self.shared
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Fail fast when the service-wide request timeout is already
    /// unmeetable (a zero/near-zero [`request_timeout`] under test, or a
    /// clock that jumped). Session calls are synchronous and short; the
    /// deadline is checked at entry like the worker loop checks queued
    /// requests before running them.
    ///
    /// [`request_timeout`]: crate::resilience::DispatcherConfig::request_timeout
    fn deadline_guard(&self) -> Result<(), MpError> {
        if let Some(timeout) = self.shared.cfg.dispatcher.request_timeout {
            if Deadline::after(timeout).expired() {
                return Err(MpError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    #[cfg(test)]
    pub(crate) fn session_breaker_state(
        &self,
        id: SessionId,
    ) -> Result<crate::resilience::CircuitState, MpError> {
        let reg = self.lock_sessions();
        let slot = reg
            .open
            .get(&id.0)
            .ok_or(MpError::UnknownSession { id: id.0 })?;
        Ok(slot.health.state())
    }

    /// Common path for storage-touching session calls: deadline check,
    /// breaker admission, the operation, breaker bookkeeping. Transient
    /// storage failures trip the breaker; permanent request errors
    /// (label/index out of range) are the caller's problem and leave it
    /// untouched.
    fn with_session_storage<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut SessionSlot<T, O>) -> Result<R, MpError>,
    ) -> Result<R, MpError> {
        self.session_storage_call(id, true, f)
    }

    /// [`with_session_storage`](Self::with_session_storage) with the
    /// breaker's admission gate optional: remediation calls (snapshot)
    /// run even while the breaker is open, but still report their
    /// outcome so a successful cure closes it.
    fn session_storage_call<R>(
        &self,
        id: SessionId,
        gated: bool,
        f: impl FnOnce(&mut SessionSlot<T, O>) -> Result<R, MpError>,
    ) -> Result<R, MpError> {
        self.deadline_guard()?;
        let mut reg = self.lock_sessions();
        let slot = reg
            .open
            .get_mut(&id.0)
            .ok_or(MpError::UnknownSession { id: id.0 })?;
        if gated && !slot.health.admit() {
            if let Some(rec) = self.shared.stats.recorder() {
                rec.counter("session.breaker.fast_fail", 1);
            }
            return Err(MpError::Unavailable);
        }
        match f(slot) {
            Ok(out) => {
                slot.health.on_success();
                Ok(out)
            }
            Err(e) => {
                if e.is_transient() {
                    slot.health.on_failure();
                }
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Plus;
    use crate::resilience::{BreakerConfig, ChaosPlan, CircuitState};
    use crate::service::ServiceConfig;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mpx-svc-session-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn service() -> Service<i64, Plus> {
        Service::new(
            Plus,
            ServiceConfig {
                workers: Some(1),
                ..ServiceConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn session_lifecycle_through_service() {
        let dir = tmpdir("lifecycle");
        let svc = service();
        let sid = svc
            .open_session(&dir, 8, SessionOptions::default())
            .unwrap();
        for i in 0..40i64 {
            let idx = svc.session_append(sid, (i % 8) as usize, i).unwrap();
            assert_eq!(idx, i as u64);
        }
        svc.session_update(sid, 9, -100).unwrap();
        // Element 17 has label 1; earlier label-1 elements are 1 and the
        // updated 9 (-100).
        assert_eq!(svc.session_query(sid, 17).unwrap(), 1 - 100);
        assert_eq!(svc.session_total(sid, 1).unwrap(), 1 - 100 + 17 + 25 + 33);
        let gen = svc.session_snapshot(sid).unwrap();
        assert_eq!(gen, 1);
        svc.session_close(sid).unwrap();
        // Closed: the id no longer resolves.
        assert!(matches!(
            svc.session_query(sid, 0),
            Err(MpError::UnknownSession { id }) if id == sid.0
        ));
        // Reopen recovers from the snapshot.
        let sid2 = svc
            .open_session(&dir, 8, SessionOptions::default())
            .unwrap();
        assert_ne!(sid2, sid);
        let rep = svc.session_recovery_report(sid2).unwrap();
        assert_eq!(rep.snapshot_ops, 41);
        assert_eq!(svc.session_query(sid2, 17).unwrap(), 1 - 100);
        svc.session_close(sid2).unwrap();
        svc.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn storage_breaker_opens_and_spares_queries() {
        let dir = tmpdir("breaker");
        let svc = Service::<i64, Plus>::new(
            Plus,
            ServiceConfig {
                workers: Some(1),
                dispatcher: crate::resilience::DispatcherConfig {
                    breaker: BreakerConfig {
                        failure_threshold: 2,
                        ..BreakerConfig::default()
                    },
                    ..Default::default()
                },
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        // Open clean, get some durable state, then arm 100% fsync faults.
        let sid = svc
            .open_session(&dir, 4, SessionOptions::default())
            .unwrap();
        svc.session_append(sid, 0, 5).unwrap();
        svc.session_append(sid, 0, 7).unwrap();
        svc.session_close(sid).unwrap();
        let chaos = ChaosPlan::seeded(3).fsync_fail_ppm(1_000_000).arm();
        let opts = SessionOptions {
            chaos: Some(chaos),
            ..SessionOptions::default()
        };
        let sid = svc.open_session(&dir, 4, opts).unwrap();
        // Two consecutive storage failures trip the breaker…
        assert!(matches!(
            svc.session_append(sid, 1, 1),
            Err(MpError::Storage { .. })
        ));
        assert!(matches!(
            svc.session_append(sid, 1, 2),
            Err(MpError::Storage { .. })
        ));
        assert_eq!(svc.session_breaker_state(sid).unwrap(), CircuitState::Open);
        // …after which storage calls fail fast without touching the disk…
        assert!(matches!(
            svc.session_append(sid, 1, 3),
            Err(MpError::Unavailable)
        ));
        // …while memory-only queries keep being served.
        assert_eq!(svc.session_query(sid, 1).unwrap(), 5);
        assert_eq!(svc.session_total(sid, 0).unwrap(), 12);
        // Permanent request errors never trip or trigger the breaker.
        assert!(matches!(
            svc.session_query(sid, 99),
            Err(MpError::IndexOutOfRange { .. })
        ));
        // Snapshot — the cure for a poisoned store — is admitted past
        // the open breaker: it reaches the disk (and here fails there,
        // 100% fsync faults) instead of fast-failing Unavailable.
        assert!(matches!(
            svc.session_snapshot(sid),
            Err(MpError::Storage { .. })
        ));
        svc.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_and_shutdown_sessions_are_typed() {
        let dir = tmpdir("unknown");
        let svc = service();
        assert!(matches!(
            svc.session_append(SessionId(99), 0, 1),
            Err(MpError::UnknownSession { id: 99 })
        ));
        svc.shutdown();
        // A stopped service refuses new sessions like it refuses requests.
        assert!(matches!(
            svc.open_session(&dir, 4, SessionOptions::default()),
            Err(MpError::Unavailable)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
