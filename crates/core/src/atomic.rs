//! A genuinely concurrent CRCW-ARB spinetree engine for `i64`.
//!
//! The [`crate::spinetree`] module executes the paper's algorithm in the
//! vector-simulation style (each `pardo` is one sequential loop). This
//! module runs the *same* four phases with real threads:
//!
//! * the SPINETREE scatter is an honest data race — every element of a row
//!   issues a relaxed atomic store to its bucket's pointer cell, and
//!   whichever store the memory system orders last wins. That is precisely
//!   the CRCW-ARB contract ("of multiple processors writing to the same
//!   location, an arbitrary one succeeds"), realized without UB because the
//!   cells are atomics;
//! * ROWSUMS exploits commutativity: one parallel sweep of *all* elements
//!   with `fetch_add`-style RMWs (for a commutative ⊕, row/column
//!   discipline is unnecessary for this phase);
//! * SPINESUMS and MULTISUMS keep the paper's sweep order; within a sweep
//!   the §3.1 theorems guarantee exclusive access, so plain relaxed
//!   load/store pairs suffice — the atomics only rule out UB, the theorems
//!   rule out lost updates. Each `pardo` is a rayon parallel iterator, and
//!   the barrier between steps is the iterator's completion.
//!
//! Restricted to `i64` with a commutative [`AtomicCombine`] operator
//! (`Plus`, `Max`, `Min`, `And`, `Or`) — the price of lock-free child
//! accumulation.

use crate::error::MpError;
use crate::exec::{CheckGuard, ExecConfig, OverflowPolicy, TryEngineResult};
use crate::obs::Phase;
use crate::op::{And, CombineOp, Max, Min, Or, Plus, TryCombineOp};
use crate::problem::MultiprefixOutput;
use crate::resilience::RunContext;
use crate::spinetree::layout::Layout;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering::Relaxed};

/// A commutative operator on `i64` with a lock-free read-modify-write.
pub trait AtomicCombine: CombineOp<i64> {
    /// Atomically `cell ← cell ⊕ v`.
    fn fetch_combine(&self, cell: &AtomicI64, v: i64);

    /// [`AtomicCombine::fetch_combine`] for the hardened path: latch
    /// `tripped` if the combine is unrepresentable, then commit the
    /// wrapping result so the phase completes (the tripped output is
    /// discarded by the caller). The default is the plain RMW — correct
    /// for every total operator (`Max`, `Min`, `And`, `Or`); only
    /// operators that can overflow (`Plus`) need an override.
    #[inline(always)]
    fn fetch_combine_checked(&self, cell: &AtomicI64, v: i64, _tripped: &AtomicBool) {
        self.fetch_combine(cell, v);
    }
}

impl AtomicCombine for Plus {
    #[inline(always)]
    fn fetch_combine(&self, cell: &AtomicI64, v: i64) {
        cell.fetch_add(v, Relaxed);
    }

    #[inline(always)]
    fn fetch_combine_checked(&self, cell: &AtomicI64, v: i64, tripped: &AtomicBool) {
        // CAS loop: detect overflow on the actual committed pair, which a
        // post-hoc inspection of a wrapped `fetch_add` result cannot do.
        let mut cur = cell.load(Relaxed);
        loop {
            let next = match cur.checked_add(v) {
                Some(next) => next,
                None => {
                    tripped.store(true, Relaxed);
                    cur.wrapping_add(v)
                }
            };
            match cell.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl AtomicCombine for Max {
    #[inline(always)]
    fn fetch_combine(&self, cell: &AtomicI64, v: i64) {
        cell.fetch_max(v, Relaxed);
    }
}

impl AtomicCombine for Min {
    #[inline(always)]
    fn fetch_combine(&self, cell: &AtomicI64, v: i64) {
        cell.fetch_min(v, Relaxed);
    }
}

impl AtomicCombine for And {
    #[inline(always)]
    fn fetch_combine(&self, cell: &AtomicI64, v: i64) {
        cell.fetch_and(v, Relaxed);
    }
}

impl AtomicCombine for Or {
    #[inline(always)]
    fn fetch_combine(&self, cell: &AtomicI64, v: i64) {
        cell.fetch_or(v, Relaxed);
    }
}

/// Concurrent spinetree multiprefix over `i64`.
///
/// Preconditions: `values.len() == labels.len()`, labels `< m` (validated
/// by [`crate::api::multiprefix`]'s callers; debug-asserted here).
pub fn multiprefix_atomic<O: AtomicCombine>(
    values: &[i64],
    labels: &[usize],
    m: usize,
    op: O,
) -> MultiprefixOutput<i64> {
    debug_assert_eq!(values.len(), labels.len());
    let layout = Layout::square(values.len(), m);
    multiprefix_atomic_with(values, labels, op, &layout)
}

/// [`multiprefix_atomic`] with an explicit layout.
pub fn multiprefix_atomic_with<O: AtomicCombine>(
    values: &[i64],
    labels: &[usize],
    op: O,
    layout: &Layout,
) -> MultiprefixOutput<i64> {
    let n = layout.n;
    let m = layout.m;
    let slots = layout.slots();
    let id = op.identity();

    // INIT — one (parallel) step clears the temporaries and aims every
    // element's pointer at its bucket, every bucket at itself.
    let spine: Vec<AtomicUsize> = (0..slots)
        .into_par_iter()
        .map(|s| AtomicUsize::new(if s < m { s } else { labels[s - m] }))
        .collect();
    let rowsum: Vec<AtomicI64> = (0..slots)
        .into_par_iter()
        .map(|_| AtomicI64::new(id))
        .collect();
    let spinesum: Vec<AtomicI64> = (0..slots)
        .into_par_iter()
        .map(|_| AtomicI64::new(id))
        .collect();
    let has_child: Vec<AtomicBool> = (0..slots)
        .into_par_iter()
        .map(|_| AtomicBool::new(false))
        .collect();

    // Phase 1 — SPINETREE, rows top to bottom; gather then racing scatter.
    for r in layout.rows_top_down() {
        let range = layout.row_elements(r);
        range.clone().into_par_iter().for_each(|i| {
            // Concurrent READ of the bucket pointer: every same-label
            // element of this row observes the same value.
            let parent = spine[labels[i]].load(Relaxed);
            spine[m + i].store(parent, Relaxed);
        });
        range.into_par_iter().for_each(|i| {
            // Concurrent ARB WRITE: the overwrite-and-test race. Any one
            // of the same-label stores survives — which one is up to the
            // scheduler and the memory system, exactly the ARB model.
            spine[labels[i]].store(m + i, Relaxed);
        });
    }

    // Phase 2 — ROWSUMS. ⊕ is commutative here, so children may combine
    // into their parents in any order: a single parallel sweep of all
    // elements with lock-free RMWs replaces the column discipline.
    (0..n).into_par_iter().for_each(|i| {
        let parent = spine[m + i].load(Relaxed);
        op.fetch_combine(&rowsum[parent], values[i]);
        has_child[parent].store(true, Relaxed);
    });

    // Phase 3 — SPINESUMS, rows bottom to top. Corollary 2: at most one
    // spine child per parent, so the store is exclusive within the step.
    for r in layout.rows_bottom_up() {
        layout.row_elements(r).into_par_iter().for_each(|i| {
            let slot = m + i;
            if has_child[slot].load(Relaxed) {
                let parent = spine[slot].load(Relaxed);
                let v = op.combine(spinesum[slot].load(Relaxed), rowsum[slot].load(Relaxed));
                spinesum[parent].store(v, Relaxed);
            }
        });
    }

    // Reductions (§4.2) — available before MULTISUMS.
    let reductions: Vec<i64> = (0..m)
        .into_par_iter()
        .map(|b| op.combine(spinesum[b].load(Relaxed), rowsum[b].load(Relaxed)))
        .collect();

    // Phase 4 — MULTISUMS, columns left to right. Theorem 1 + Corollary 1:
    // within one column no two elements share a parent, so the read-modify-
    // write below is exclusive within the step; the inter-column barrier is
    // the end of each par_iter.
    let multi: Vec<AtomicI64> = (0..n).into_par_iter().map(|_| AtomicI64::new(id)).collect();
    for c in layout.cols_left_right() {
        let col: Vec<usize> = layout.col_elements(c).collect();
        col.into_par_iter().for_each(|i| {
            let parent = spine[m + i].load(Relaxed);
            let prefix = spinesum[parent].load(Relaxed);
            multi[i].store(prefix, Relaxed);
            spinesum[parent].store(op.combine(prefix, values[i]), Relaxed);
        });
    }

    let sums = multi.into_iter().map(AtomicI64::into_inner).collect();
    MultiprefixOutput { sums, reductions }
}

/// Fallibly allocate a `len`-vector of non-`Clone` cells (atomics), built
/// per index. Sequential init; the capacity is what can actually fail.
fn try_cell_vec<C>(len: usize, make: impl Fn(usize) -> C) -> Result<Vec<C>, MpError> {
    let mut v: Vec<C> = Vec::new();
    v.try_reserve_exact(len)
        .map_err(|_| MpError::AllocationFailed {
            bytes: len.saturating_mul(std::mem::size_of::<C>()),
        })?;
    v.extend((0..len).map(make));
    Ok(v)
}

/// Hardened concurrent spinetree multiprefix (see [`crate::exec`] for the
/// `Ok(None)` trip contract): the atomic cell blocks are allocated
/// fallibly, ROWSUMS uses [`AtomicCombine::fetch_combine_checked`], and the
/// sweep-ordered phases route ⊕ through a trip guard. MULTISUMS commits the
/// literal serial step `prefix_i ⊕ value_i` for every element, so an
/// untripped run certifies the serial evaluation is overflow-free.
pub fn try_multiprefix_atomic<O: AtomicCombine + TryCombineOp<i64>>(
    values: &[i64],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
) -> TryEngineResult<MultiprefixOutput<i64>> {
    try_multiprefix_atomic_ctx(values, labels, m, op, policy, &RunContext::new())
}

/// [`try_multiprefix_atomic`] under a [`RunContext`]: the context is polled
/// at every phase boundary and between the `O(√n)` row/column steps of the
/// swept phases — never inside a racing parallel closure, so a cancelled
/// run stops at a step barrier and simply drops its private cell blocks.
pub fn try_multiprefix_atomic_ctx<O: AtomicCombine + TryCombineOp<i64>>(
    values: &[i64],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
    ctx: &RunContext,
) -> TryEngineResult<MultiprefixOutput<i64>> {
    debug_assert_eq!(values.len(), labels.len());
    ctx.checkpoint()?;
    let layout = Layout::square(values.len(), m);
    let n = layout.n;
    let slots = layout.slots();
    let id = op.identity();
    let tripped = AtomicBool::new(false);
    let guard = CheckGuard::new(op, policy, &tripped);
    let checking = policy.needs_checking();

    let init_span = ctx.phase_span(Phase::Init);
    let spine = try_cell_vec(slots, |s| {
        AtomicUsize::new(if s < m { s } else { labels[s - m] })
    })?;
    let rowsum = try_cell_vec(slots, |_| AtomicI64::new(id))?;
    let spinesum = try_cell_vec(slots, |_| AtomicI64::new(id))?;
    let has_child = try_cell_vec(slots, |_| AtomicBool::new(false))?;
    let multi = try_cell_vec(n, |_| AtomicI64::new(id))?;
    drop(init_span);

    // Phase 1 — SPINETREE (identical to the plain engine: pointer writes
    // only, nothing to check).
    let spinetree_span = ctx.phase_span(Phase::Spinetree);
    for r in layout.rows_top_down() {
        ctx.checkpoint()?;
        let range = layout.row_elements(r);
        range.clone().into_par_iter().for_each(|i| {
            let parent = spine[labels[i]].load(Relaxed);
            spine[m + i].store(parent, Relaxed);
        });
        range.into_par_iter().for_each(|i| {
            spine[labels[i]].store(m + i, Relaxed);
        });
    }

    drop(spinetree_span);

    // Phase 2 — ROWSUMS with checked RMWs when a checking policy is active.
    ctx.checkpoint()?;
    let rowsums_span = ctx.phase_span(Phase::Rowsums);
    (0..n).into_par_iter().for_each(|i| {
        let parent = spine[m + i].load(Relaxed);
        if checking {
            op.fetch_combine_checked(&rowsum[parent], values[i], &tripped);
        } else {
            op.fetch_combine(&rowsum[parent], values[i]);
        }
        has_child[parent].store(true, Relaxed);
    });

    drop(rowsums_span);

    // Phase 3 — SPINESUMS.
    let spinesums_span = ctx.phase_span(Phase::Spinesums);
    for r in layout.rows_bottom_up() {
        ctx.checkpoint()?;
        layout.row_elements(r).into_par_iter().for_each(|i| {
            let slot = m + i;
            if has_child[slot].load(Relaxed) {
                let parent = spine[slot].load(Relaxed);
                let v = guard.combine(spinesum[slot].load(Relaxed), rowsum[slot].load(Relaxed));
                spinesum[parent].store(v, Relaxed);
            }
        });
    }

    ctx.checkpoint()?;
    let mut reductions: Vec<i64> = Vec::new();
    reductions
        .try_reserve_exact(m)
        .map_err(|_| MpError::AllocationFailed {
            bytes: m.saturating_mul(std::mem::size_of::<i64>()),
        })?;
    reductions
        .extend((0..m).map(|b| guard.combine(spinesum[b].load(Relaxed), rowsum[b].load(Relaxed))));
    drop(spinesums_span);

    // Phase 4 — MULTISUMS.
    let _multisums_span = ctx.phase_span(Phase::Multisums);
    for c in layout.cols_left_right() {
        ctx.checkpoint()?;
        let col: Vec<usize> = layout.col_elements(c).collect();
        col.into_par_iter().for_each(|i| {
            let parent = spine[m + i].load(Relaxed);
            let prefix = spinesum[parent].load(Relaxed);
            multi[i].store(prefix, Relaxed);
            spinesum[parent].store(guard.combine(prefix, values[i]), Relaxed);
        });
    }

    if tripped.load(Relaxed) {
        return Ok(None);
    }
    let sums = multi.into_iter().map(AtomicI64::into_inner).collect();
    Ok(Some(MultiprefixOutput { sums, reductions }))
}

/// [`try_multiprefix_atomic`] with the canonical serial-order semantics of
/// [`crate::try_multiprefix`] applied: validates inputs, and when a checked
/// combine trips, replays the serial engine under `policy` so the result —
/// `Ok`, or [`MpError::ArithmeticOverflow`] with the serial-order index —
/// is identical to every other engine's. The atomic engine sits outside
/// [`crate::Engine`] (it constrains the element type to `i64`), so it gets
/// its own canonical entry point instead of a dispatch arm.
pub fn multiprefix_atomic_hardened<O: AtomicCombine + TryCombineOp<i64>>(
    values: &[i64],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
) -> Result<MultiprefixOutput<i64>, MpError> {
    multiprefix_atomic_hardened_ctx(values, labels, m, op, policy, &RunContext::new())
}

/// [`multiprefix_atomic_hardened`] under a [`RunContext`]; the serial
/// replay after a trip runs under the same context, so a deadline covers
/// the whole canonicalized request.
pub fn multiprefix_atomic_hardened_ctx<O: AtomicCombine + TryCombineOp<i64>>(
    values: &[i64],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
    ctx: &RunContext,
) -> Result<MultiprefixOutput<i64>, MpError> {
    crate::problem::validate_slices(values, labels, m)?;
    match try_multiprefix_atomic_ctx(values, labels, m, op, policy, ctx)? {
        Some(out) => Ok(out),
        None => crate::serial::try_multiprefix_serial_ctx(values, labels, m, op, policy, ctx),
    }
}

/// Hardened concurrent multireduce: fallible bucket allocation plus checked
/// RMWs. Note that even an untripped checked run certifies only "no
/// overflow under *this* combining order" — reduce-only engines never
/// observe the per-element serial steps, so [`crate::try_multireduce`]
/// canonicalizes checking policies through the serial engine instead.
pub fn try_multireduce_atomic<O: AtomicCombine + TryCombineOp<i64>>(
    values: &[i64],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
) -> TryEngineResult<Vec<i64>> {
    try_multireduce_atomic_ctx(values, labels, m, op, policy, &RunContext::new())
}

/// Run `f` on a scoped rayon pool of `cfg.threads` workers when that field
/// is set; on the global pool otherwise. A pool-construction failure (the
/// OS refusing threads) is transient [`MpError::Unavailable`] — the
/// dispatcher retries or falls back.
fn with_thread_scope<R>(
    cfg: ExecConfig,
    f: impl FnOnce() -> TryEngineResult<R> + Send,
) -> TryEngineResult<R>
where
    R: Send,
{
    match cfg.threads {
        None => f(),
        Some(t) => rayon::ThreadPoolBuilder::new()
            .num_threads(t.max(1))
            .build()
            .map_err(|_| MpError::Unavailable)?
            .install(f),
    }
}

/// [`try_multiprefix_atomic_ctx`] with the overflow policy *and* thread
/// count taken from an [`ExecConfig`]: when [`ExecConfig::threads`] is set
/// the engine's parallel sweeps run on a scoped rayon pool of that size
/// instead of the global pool, so embeddings can cap per-request
/// parallelism.
pub fn try_multiprefix_atomic_cfg_ctx<O: AtomicCombine + TryCombineOp<i64>>(
    values: &[i64],
    labels: &[usize],
    m: usize,
    op: O,
    cfg: ExecConfig,
    ctx: &RunContext,
) -> TryEngineResult<MultiprefixOutput<i64>> {
    with_thread_scope(cfg, || {
        try_multiprefix_atomic_ctx(values, labels, m, op, cfg.overflow, ctx)
    })
}

/// [`try_multireduce_atomic_ctx`] with policy and threads from an
/// [`ExecConfig`] (see [`try_multiprefix_atomic_cfg_ctx`]).
pub fn try_multireduce_atomic_cfg_ctx<O: AtomicCombine + TryCombineOp<i64>>(
    values: &[i64],
    labels: &[usize],
    m: usize,
    op: O,
    cfg: ExecConfig,
    ctx: &RunContext,
) -> TryEngineResult<Vec<i64>> {
    with_thread_scope(cfg, || {
        try_multireduce_atomic_ctx(values, labels, m, op, cfg.overflow, ctx)
    })
}

/// [`try_multireduce_atomic`] under a [`RunContext`], polled before and
/// after the single combining sweep (the sweep itself is one lock-free
/// parallel step and is not interruptible mid-flight).
pub fn try_multireduce_atomic_ctx<O: AtomicCombine + TryCombineOp<i64>>(
    values: &[i64],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
    ctx: &RunContext,
) -> TryEngineResult<Vec<i64>> {
    debug_assert_eq!(values.len(), labels.len());
    ctx.checkpoint()?;
    let tripped = AtomicBool::new(false);
    let checking = policy.needs_checking();
    let buckets = try_cell_vec(m, |_| AtomicI64::new(op.identity()))?;
    values
        .par_iter()
        .zip(labels.par_iter())
        .for_each(|(&v, &l)| {
            if checking {
                op.fetch_combine_checked(&buckets[l], v, &tripped);
            } else {
                op.fetch_combine(&buckets[l], v);
            }
        });
    ctx.checkpoint()?;
    if tripped.load(Relaxed) {
        return Ok(None);
    }
    Ok(Some(
        buckets.into_iter().map(AtomicI64::into_inner).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::multiprefix_serial;

    fn mixed(n: usize, m: usize) -> (Vec<i64>, Vec<usize>) {
        let values = (0..n).map(|i| (i as i64 * 131 % 97) - 48).collect();
        let labels = (0..n).map(|i| (i * 31 + i / 17) % m).collect();
        (values, labels)
    }

    #[test]
    fn plus_matches_serial() {
        let (values, labels) = mixed(5000, 13);
        let got = multiprefix_atomic(&values, &labels, 13, Plus);
        let expect = multiprefix_serial(&values, &labels, 13, Plus);
        assert_eq!(got, expect);
    }

    #[test]
    fn max_matches_serial() {
        let (values, labels) = mixed(3000, 7);
        let got = multiprefix_atomic(&values, &labels, 7, Max);
        let expect = multiprefix_serial(&values, &labels, 7, Max);
        assert_eq!(got, expect);
    }

    #[test]
    fn min_matches_serial() {
        let (values, labels) = mixed(3000, 7);
        let got = multiprefix_atomic(&values, &labels, 7, Min);
        let expect = multiprefix_serial(&values, &labels, 7, Min);
        assert_eq!(got, expect);
    }

    #[test]
    fn or_matches_serial() {
        let values: Vec<i64> = (0..2000).map(|i| 1i64 << (i % 60)).collect();
        let labels: Vec<usize> = (0..2000).map(|i| i % 5).collect();
        let got = multiprefix_atomic(&values, &labels, 5, Or);
        let expect = multiprefix_serial(&values, &labels, 5, Or);
        assert_eq!(got, expect);
    }

    #[test]
    fn and_matches_serial() {
        let values: Vec<i64> = (0..2000).map(|i| !(1i64 << (i % 60))).collect();
        let labels: Vec<usize> = (0..2000).map(|i| i % 3).collect();
        let got = multiprefix_atomic(&values, &labels, 3, And);
        let expect = multiprefix_serial(&values, &labels, 3, And);
        assert_eq!(got, expect);
    }

    #[test]
    fn all_same_label_heavy_load() {
        // Heavy load (§4.3): every element in one class — the maximally
        // contended arbitration case.
        let values: Vec<i64> = (0..4096).map(|i| i as i64).collect();
        let labels = vec![0usize; 4096];
        let got = multiprefix_atomic(&values, &labels, 1, Plus);
        let expect = multiprefix_serial(&values, &labels, 1, Plus);
        assert_eq!(got, expect);
    }

    #[test]
    fn one_label_each_light_load() {
        let n = 2048;
        let values: Vec<i64> = (0..n as i64).collect();
        let labels: Vec<usize> = (0..n).collect();
        let got = multiprefix_atomic(&values, &labels, n, Plus);
        let expect = multiprefix_serial(&values, &labels, n, Plus);
        assert_eq!(got, expect);
    }

    #[test]
    fn repeated_runs_are_deterministic_in_value() {
        // The tree shape may differ run to run (true arbitration); the
        // output must not.
        let (values, labels) = mixed(20_000, 101);
        let first = multiprefix_atomic(&values, &labels, 101, Plus);
        for _ in 0..5 {
            assert_eq!(multiprefix_atomic(&values, &labels, 101, Plus), first);
        }
    }

    #[test]
    fn empty() {
        let got = multiprefix_atomic(&[], &[], 2, Plus);
        assert!(got.sums.is_empty());
        assert_eq!(got.reductions, vec![0, 0]);
    }
}

/// Concurrent multireduce: one lock-free parallel sweep — every element
/// fetch-combines straight into its bucket. This is the Connection
/// Machine's *combining send* (§1) realized with atomics; no spinetree is
/// needed because only the reductions are wanted and ⊕ is commutative.
pub fn multireduce_atomic<O: AtomicCombine>(
    values: &[i64],
    labels: &[usize],
    m: usize,
    op: O,
) -> Vec<i64> {
    debug_assert_eq!(values.len(), labels.len());
    let buckets: Vec<AtomicI64> = (0..m).map(|_| AtomicI64::new(op.identity())).collect();
    values
        .par_iter()
        .zip(labels.par_iter())
        .for_each(|(&v, &l)| {
            op.fetch_combine(&buckets[l], v);
        });
    buckets.into_iter().map(AtomicI64::into_inner).collect()
}

#[cfg(test)]
mod reduce_tests {
    use super::*;
    use crate::serial::multireduce_serial;

    #[test]
    fn atomic_reduce_matches_serial() {
        let n = 100_000;
        let values: Vec<i64> = (0..n as i64).map(|i| i % 1001 - 500).collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 31) % 257).collect();
        assert_eq!(
            multireduce_atomic(&values, &labels, 257, Plus),
            multireduce_serial(&values, &labels, 257, Plus)
        );
        assert_eq!(
            multireduce_atomic(&values, &labels, 257, Max),
            multireduce_serial(&values, &labels, 257, Max)
        );
    }

    #[test]
    fn single_bucket_contention() {
        let values: Vec<i64> = vec![1; 500_000];
        let labels = vec![0usize; 500_000];
        assert_eq!(multireduce_atomic(&values, &labels, 1, Plus), vec![500_000]);
    }

    #[test]
    fn empty_and_absent_labels() {
        assert_eq!(multireduce_atomic(&[], &[], 3, Plus), vec![0, 0, 0]);
        assert_eq!(
            multireduce_atomic(&[7], &[1], 3, Min),
            vec![i64::MAX, 7, i64::MAX]
        );
    }
}
