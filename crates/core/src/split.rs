//! Stable split and pack — the permutation primitives multiprefix yields
//! for free.
//!
//! A **split** stably partitions a vector by a boolean (or small-integer)
//! key: all the 0-keyed elements first, then the 1-keyed, each group in
//! original order. It is the building block of radix sorting and of the
//! Connection Machine's packing idioms, and it is exactly one multiprefix
//! over the keys: each element's target position is
//! `(preceding equal keys) + (total count of smaller keys)` — the same
//! rank arithmetic as the paper's Figure 11, restricted to tiny `m`.
//!
//! A **pack** compacts the flagged elements of a vector, preserving order
//! — a split that keeps only one side.

use crate::api::{multiprefix, Engine};
use crate::error::MpError;
use crate::op::Plus;
use crate::problem::Element;
use crate::scan::exclusive_scan_serial;

/// Stable multi-way split: reorder `items` so elements with smaller `keys`
/// come first, ties in input order. Returns `(reordered items, group
/// offsets)` where `offsets[k]` is the first index of key-`k` elements in
/// the output (length `m + 1`, last entry = `n`).
pub fn split_stable<T: Element>(
    items: &[T],
    keys: &[usize],
    m: usize,
    engine: Engine,
) -> Result<(Vec<T>, Vec<usize>), MpError> {
    let ones = vec![1i64; items.len()];
    let mp = multiprefix(&ones, keys, m, Plus, engine)?;
    let (starts, total) = exclusive_scan_serial(&mp.reductions, Plus);
    debug_assert_eq!(total as usize, items.len());
    let mut offsets: Vec<usize> = starts.iter().map(|&s| s as usize).collect();
    offsets.push(items.len());
    let Some(&fill) = items.first() else {
        return Ok((Vec::new(), offsets));
    };
    // Scatter via ranks; the positions form a permutation, so every slot
    // is overwritten and the fill value never survives.
    let mut out: Vec<T> = vec![fill; items.len()];
    for (i, (&item, &k)) in items.iter().zip(keys).enumerate() {
        let pos = (mp.sums[i] + starts[k]) as usize;
        out[pos] = item;
    }
    Ok((out, offsets))
}

/// Two-way stable split by boolean flags: `false`-flagged elements first.
/// Returns `(reordered, boundary)` — `boundary` is where the `true` group
/// starts.
pub fn split_by_flag<T: Element>(
    items: &[T],
    flags: &[bool],
    engine: Engine,
) -> Result<(Vec<T>, usize), MpError> {
    let keys: Vec<usize> = flags.iter().map(|&f| f as usize).collect();
    let (out, offsets) = split_stable(items, &keys, 2, engine)?;
    Ok((out, offsets[1]))
}

/// Pack: keep only the flagged elements, in order. (The scan-based
/// "stream compaction".)
pub fn pack<T: Element>(items: &[T], flags: &[bool], engine: Engine) -> Result<Vec<T>, MpError> {
    let (split, boundary) = split_by_flag(items, flags, engine)?;
    Ok(split[boundary..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_way_split_is_stable() {
        let items = [10i32, 11, 12, 13, 14, 15];
        let flags = [true, false, true, false, false, true];
        let (out, boundary) = split_by_flag(&items, &flags, Engine::Serial).unwrap();
        assert_eq!(out, vec![11, 13, 14, 10, 12, 15]);
        assert_eq!(boundary, 3);
    }

    #[test]
    fn multiway_split_matches_stable_sort() {
        let items: Vec<i32> = (0..200).collect();
        let keys: Vec<usize> = (0..200).map(|i| (i * 7 + i / 11) % 5).collect();
        let (out, offsets) = split_stable(&items, &keys, 5, Engine::Spinetree).unwrap();
        let mut expect: Vec<i32> = items.clone();
        expect.sort_by_key(|&x| keys[x as usize]); // stable
        assert_eq!(out, expect);
        assert_eq!(offsets.len(), 6);
        assert_eq!(offsets[5], 200);
        // Offsets delimit constant-key runs.
        for k in 0..5 {
            for &x in &out[offsets[k]..offsets[k + 1]] {
                assert_eq!(keys[x as usize], k);
            }
        }
    }

    #[test]
    fn pack_keeps_flagged_in_order() {
        let items = ['a', 'b', 'c', 'd'];
        let flags = [true, false, false, true];
        assert_eq!(
            pack(&items, &flags, Engine::Serial).unwrap(),
            vec!['a', 'd']
        );
    }

    #[test]
    fn empty_inputs() {
        let (out, boundary) = split_by_flag::<i64>(&[], &[], Engine::Serial).unwrap();
        assert!(out.is_empty());
        assert_eq!(boundary, 0);
        assert!(pack::<i64>(&[], &[], Engine::Serial).unwrap().is_empty());
    }

    #[test]
    fn all_one_side() {
        let items = [1, 2, 3];
        let (out, b) = split_by_flag(&items, &[true; 3], Engine::Serial).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(b, 0);
        let (out, b) = split_by_flag(&items, &[false; 3], Engine::Serial).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(b, 3);
    }

    proptest! {
        #[test]
        fn split_is_a_stable_partition(
            pairs in proptest::collection::vec((any::<i32>(), 0usize..4), 0..300),
        ) {
            let items: Vec<i32> = pairs.iter().map(|&(v, _)| v).collect();
            let keys: Vec<usize> = pairs.iter().map(|&(_, k)| k).collect();
            for engine in [Engine::Serial, Engine::Blocked] {
                let (out, offsets) = split_stable(&items, &keys, 4, engine).unwrap();
                // Same multiset.
                let mut a = items.clone();
                let mut b = out.clone();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(&a, &b);
                // Stability: the subsequence of each key equals the
                // original subsequence of that key.
                for k in 0..4 {
                    let original: Vec<i32> = items
                        .iter()
                        .zip(&keys)
                        .filter(|&(_, &kk)| kk == k)
                        .map(|(&v, _)| v)
                        .collect();
                    prop_assert_eq!(&out[offsets[k]..offsets[k + 1]], &original[..]);
                }
            }
        }

        #[test]
        fn pack_equals_filter(flags in proptest::collection::vec(any::<bool>(), 0..200)) {
            let items: Vec<usize> = (0..flags.len()).collect();
            let packed = pack(&items, &flags, Engine::Serial).unwrap();
            let filtered: Vec<usize> =
                items.iter().zip(&flags).filter(|&(_, &f)| f).map(|(&i, _)| i).collect();
            prop_assert_eq!(packed, filtered);
        }
    }
}
