//! Histogramming: multireduce specialized to counting.
//!
//! §1 of the paper: "The multireduce operation occurs most frequently as
//! histogram computation which is important enough that a special 'Vector
//! Update Loop' compiler directive has been suggested to identify this
//! procedure." Here the procedure is just multireduce with unit values —
//! no compiler heroics required.

use crate::api::{multireduce, Engine};
use crate::error::MpError;
use crate::op::{CombineOp, Plus};
use crate::problem::Element;

/// Count the occurrences of each key in `[0, m)`.
///
/// ```
/// use multiprefix::{histogram::histogram, Engine};
/// let counts = histogram(&[2, 0, 2, 2, 1], 4, Engine::Serial).unwrap();
/// assert_eq!(counts, vec![1, 1, 3, 0]);
/// ```
pub fn histogram(keys: &[usize], m: usize, engine: Engine) -> Result<Vec<u64>, MpError> {
    // A histogram is the multireduce of a vector of ones — the paper's
    // "Vector Update Loop" in one call. The unit values are materialized
    // lazily per engine call; for the sizes involved this is dominated by
    // the reduce itself.
    let ones = vec![1u64; keys.len()];
    multireduce(&ones, keys, m, Plus, engine)
}

/// Weighted histogram: `out[k] = ⊕ of weights whose key is k`.
pub fn histogram_weighted<T: Element, O: CombineOp<T>>(
    keys: &[usize],
    weights: &[T],
    m: usize,
    op: O,
    engine: Engine,
) -> Result<Vec<T>, MpError> {
    multireduce(weights, keys, m, op, engine)
}

/// Serial reference histogram for tests.
pub fn histogram_serial(keys: &[usize], m: usize) -> Vec<u64> {
    let mut counts = vec![0u64; m];
    for &k in keys {
        counts[k] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Max;

    #[test]
    fn counts_match_reference() {
        let keys: Vec<usize> = (0..10_000).map(|i| (i * i) % 31).collect();
        let expect = histogram_serial(&keys, 31);
        for engine in [
            Engine::Serial,
            Engine::Spinetree,
            Engine::Blocked,
            Engine::Auto,
        ] {
            assert_eq!(histogram(&keys, 31, engine).unwrap(), expect, "{engine:?}");
        }
    }

    #[test]
    fn empty_keys() {
        assert_eq!(histogram(&[], 3, Engine::Serial).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn weighted_by_max() {
        let keys = [0usize, 1, 0, 1, 2];
        let weights = [3i64, 10, 7, 2, 5];
        let got = histogram_weighted(&keys, &weights, 3, Max, Engine::Serial).unwrap();
        assert_eq!(got, vec![7, 10, 5]);
    }

    #[test]
    fn out_of_range_key_errors() {
        let err = histogram(&[5], 3, Engine::Serial).unwrap_err();
        assert!(matches!(
            err,
            MpError::LabelOutOfRange { label: 5, m: 3, .. }
        ));
    }
}
