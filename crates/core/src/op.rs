//! Binary associative operators for the general multiprefix operation.
//!
//! §1 of the paper: "The general multiprefix operator … extends the summing
//! operation to any binary associative operator on values of arbitrary type.
//! Typical operators are MAX, MIN, PLUS, MULT, AND and OR on data types
//! INTEGER, FLOATING and BOOLEAN" — "as long as 0 is replaced with the
//! appropriate identity element for the operator chosen."
//!
//! [`CombineOp`] captures exactly that contract: an associative `combine`
//! with a two-sided `identity`. Operators additionally declare whether they
//! are commutative ([`CombineOp::COMMUTATIVE`]); the spinetree and blocked
//! engines preserve vector order and therefore work for *non*-commutative
//! operators too, but the lock-free atomic engine requires commutativity
//! (it accumulates children with fetch-and-op in nondeterministic order).

use crate::problem::Element;

/// The vectorizable kernel classes the [`crate::simd`] module recognizes.
///
/// An operator that declares `KERNEL = Some(...)` promises that its
/// `combine` over the declaring element type is **exactly** the named
/// machine operation (wrapping add, max, min, bitwise xor), so a SIMD
/// kernel may evaluate it lane-parallel and reassociate freely with a
/// bit-identical result. Operators without an exact machine counterpart
/// keep the default `None` and always run the scalar path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Wrapping addition (`Plus` under [`crate::OverflowPolicy::Wrap`]).
    Add,
    /// Maximum selection.
    Max,
    /// Minimum selection.
    Min,
    /// Bitwise exclusive-or.
    Xor,
}

/// A binary associative operator with identity, over element type `T`.
///
/// Laws (checked by property tests in this module and relied on by every
/// engine):
///
/// * associativity: `combine(a, combine(b, c)) == combine(combine(a, b), c)`
/// * identity: `combine(identity(), a) == a == combine(a, identity())`
/// * if [`Self::COMMUTATIVE`] is `true`: `combine(a, b) == combine(b, a)`
pub trait CombineOp<T: Element>: Copy + Send + Sync + 'static {
    /// Whether `combine` is commutative. Engines that reorder reductions
    /// (e.g. the atomic spinetree engine) are only offered for commutative
    /// operators; the order-preserving engines ignore this flag.
    const COMMUTATIVE: bool;

    /// The SIMD kernel class this operator maps onto for this element
    /// type, if any (see [`Kernel`]). `None` — the default — means the
    /// engines never attempt a vectorized fast path for it.
    const KERNEL: Option<Kernel> = None;

    /// The identity element (the "0" of the paper, generalized).
    fn identity(&self) -> T;

    /// Apply the operator. The left argument always corresponds to
    /// *earlier* vector positions.
    fn combine(&self, a: T, b: T) -> T;
}

/// A [`CombineOp`] that can also combine under an overflow discipline —
/// the operator-level half of the hardened execution layer
/// ([`crate::try_multiprefix`]).
///
/// Two extra contracts, mirroring `checked_add` / `saturating_add`:
///
/// * `checked_combine(a, b)` is `Some(combine(a, b))` exactly when the
///   mathematical result is representable in `T`, `None` otherwise;
/// * `saturating_combine(a, b)` clamps an unrepresentable result to the
///   nearest representable value (and equals `combine` otherwise).
///
/// Operators that can never overflow (`Max`, `Min`, `And`, `Or`, floats —
/// IEEE arithmetic saturates to ±∞ on its own) implement both as plain
/// `combine`.
///
/// **Non-associativity warning**: checked and saturating arithmetic are
/// *not* associative — `(a ⊕ b) ⊕ c` may saturate or trip where
/// `a ⊕ (b ⊕ c)` does not. The engines therefore define the semantics of
/// `Checked` / `Saturating` by **serial (Figure 2) evaluation order**;
/// parallel engines detect a possible divergence and canonicalize through
/// the serial engine (see `crate::exec`).
pub trait TryCombineOp<T: Element>: CombineOp<T> {
    /// `combine`, or `None` if the result is not representable in `T`.
    fn checked_combine(&self, a: T, b: T) -> Option<T>;

    /// `combine` with an unrepresentable result clamped to the nearest
    /// representable value.
    fn saturating_combine(&self, a: T, b: T) -> T;
}

/// Addition (`PLUS`). Identity: `0` / `0.0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Plus;

/// Multiplication (`MULT`). Identity: `1` / `1.0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mult;

/// Maximum (`MAX`). Identity: the type's minimum value / `-∞`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Max;

/// Minimum (`MIN`). Identity: the type's maximum value / `+∞`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Min;

/// Conjunction: bitwise `AND` on integers, logical `AND` on `bool`.
/// Identity: all-ones / `true`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct And;

/// Disjunction: bitwise `OR` on integers, logical `OR` on `bool`.
/// Identity: `0` / `false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Or;

/// Bitwise exclusive-or (`XOR`) on integers. Identity: `0`.
///
/// `XOR` is its own inverse (`a ^ b ^ b == a`), so it is the one
/// lossy-looking operator that still implements [`InvertibleOp`]: each
/// element of Z/2ⁿ is its own negation under the xor group structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Xor;

// `$kerneled` is `true` for the element widths the `simd` module carries
// AVX2/portable kernels for (32- and 64-bit lanes); every other width
// keeps `KERNEL = None` and stays on the scalar path.
macro_rules! impl_int_ops {
    ($(($t:ty, $kerneled:expr)),* $(,)?) => {$(
        impl CombineOp<$t> for Plus {
            const COMMUTATIVE: bool = true;
            const KERNEL: Option<Kernel> =
                if $kerneled { Some(Kernel::Add) } else { None };
            #[inline(always)]
            fn identity(&self) -> $t { 0 }
            #[inline(always)]
            fn combine(&self, a: $t, b: $t) -> $t { a.wrapping_add(b) }
        }
        impl CombineOp<$t> for Mult {
            const COMMUTATIVE: bool = true;
            #[inline(always)]
            fn identity(&self) -> $t { 1 }
            #[inline(always)]
            fn combine(&self, a: $t, b: $t) -> $t { a.wrapping_mul(b) }
        }
        impl CombineOp<$t> for Max {
            const COMMUTATIVE: bool = true;
            const KERNEL: Option<Kernel> =
                if $kerneled { Some(Kernel::Max) } else { None };
            #[inline(always)]
            fn identity(&self) -> $t { <$t>::MIN }
            #[inline(always)]
            fn combine(&self, a: $t, b: $t) -> $t { a.max(b) }
        }
        impl CombineOp<$t> for Min {
            const COMMUTATIVE: bool = true;
            const KERNEL: Option<Kernel> =
                if $kerneled { Some(Kernel::Min) } else { None };
            #[inline(always)]
            fn identity(&self) -> $t { <$t>::MAX }
            #[inline(always)]
            fn combine(&self, a: $t, b: $t) -> $t { a.min(b) }
        }
        impl CombineOp<$t> for And {
            const COMMUTATIVE: bool = true;
            #[inline(always)]
            fn identity(&self) -> $t { !0 }
            #[inline(always)]
            fn combine(&self, a: $t, b: $t) -> $t { a & b }
        }
        impl CombineOp<$t> for Or {
            const COMMUTATIVE: bool = true;
            #[inline(always)]
            fn identity(&self) -> $t { 0 }
            #[inline(always)]
            fn combine(&self, a: $t, b: $t) -> $t { a | b }
        }
        impl CombineOp<$t> for Xor {
            const COMMUTATIVE: bool = true;
            const KERNEL: Option<Kernel> =
                if $kerneled { Some(Kernel::Xor) } else { None };
            #[inline(always)]
            fn identity(&self) -> $t { 0 }
            #[inline(always)]
            fn combine(&self, a: $t, b: $t) -> $t { a ^ b }
        }
    )*};
}

impl_int_ops!(
    (i8, false),
    (i16, false),
    (i32, true),
    (i64, true),
    (i128, false),
    (u8, false),
    (u16, false),
    (u32, true),
    (u64, true),
    (u128, false),
    (usize, false),
    (isize, false),
);

/// A commutative [`CombineOp`] with an exact inverse — the structural
/// requirement for O(log n) *point-assignment* in the incremental session
/// engine's per-label Fenwick trees ([`crate::session`]).
///
/// Laws, on top of the [`CombineOp`] laws:
///
/// * inverse: `combine(uncombine(a, b), b) == a` for every `a`, `b`;
/// * commutativity (`COMMUTATIVE == true`), so a point delta may be folded
///   into interior tree nodes in tree order rather than vector order.
///
/// Only *exactly* invertible operators qualify: integer `Plus` under the
/// wrapping discipline forms a group (`wrapping_sub` is the exact inverse
/// of `wrapping_add` in Z/2ⁿ), so an incremental session is bit-identical
/// to a batch engine replay. Floating-point addition is **not** exactly
/// invertible (`(a + b) - b ≠ a` after rounding) and `Max`/`Min`/`And`/`Or`
/// destroy information, so none of them implement this trait.
pub trait InvertibleOp<T: Element>: CombineOp<T> {
    /// The exact inverse of [`CombineOp::combine`] in its right argument:
    /// `combine(uncombine(a, b), b) == a`.
    fn uncombine(&self, a: T, b: T) -> T;
}

macro_rules! impl_int_invertible {
    ($($t:ty),*) => {$(
        impl InvertibleOp<$t> for Plus {
            #[inline(always)]
            fn uncombine(&self, a: $t, b: $t) -> $t { a.wrapping_sub(b) }
        }
        impl InvertibleOp<$t> for Xor {
            #[inline(always)]
            fn uncombine(&self, a: $t, b: $t) -> $t { a ^ b }
        }
    )*};
}

impl_int_invertible!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

macro_rules! impl_int_try_ops {
    ($($t:ty),*) => {$(
        impl TryCombineOp<$t> for Plus {
            #[inline(always)]
            fn checked_combine(&self, a: $t, b: $t) -> Option<$t> { a.checked_add(b) }
            #[inline(always)]
            fn saturating_combine(&self, a: $t, b: $t) -> $t { a.saturating_add(b) }
        }
        impl TryCombineOp<$t> for Mult {
            #[inline(always)]
            fn checked_combine(&self, a: $t, b: $t) -> Option<$t> { a.checked_mul(b) }
            #[inline(always)]
            fn saturating_combine(&self, a: $t, b: $t) -> $t { a.saturating_mul(b) }
        }
        // MAX / MIN / AND / OR select or mask bits — they can never leave
        // the representable range.
        impl TryCombineOp<$t> for Max {
            #[inline(always)]
            fn checked_combine(&self, a: $t, b: $t) -> Option<$t> { Some(self.combine(a, b)) }
            #[inline(always)]
            fn saturating_combine(&self, a: $t, b: $t) -> $t { self.combine(a, b) }
        }
        impl TryCombineOp<$t> for Min {
            #[inline(always)]
            fn checked_combine(&self, a: $t, b: $t) -> Option<$t> { Some(self.combine(a, b)) }
            #[inline(always)]
            fn saturating_combine(&self, a: $t, b: $t) -> $t { self.combine(a, b) }
        }
        impl TryCombineOp<$t> for And {
            #[inline(always)]
            fn checked_combine(&self, a: $t, b: $t) -> Option<$t> { Some(self.combine(a, b)) }
            #[inline(always)]
            fn saturating_combine(&self, a: $t, b: $t) -> $t { self.combine(a, b) }
        }
        impl TryCombineOp<$t> for Or {
            #[inline(always)]
            fn checked_combine(&self, a: $t, b: $t) -> Option<$t> { Some(self.combine(a, b)) }
            #[inline(always)]
            fn saturating_combine(&self, a: $t, b: $t) -> $t { self.combine(a, b) }
        }
        impl TryCombineOp<$t> for Xor {
            #[inline(always)]
            fn checked_combine(&self, a: $t, b: $t) -> Option<$t> { Some(self.combine(a, b)) }
            #[inline(always)]
            fn saturating_combine(&self, a: $t, b: $t) -> $t { self.combine(a, b) }
        }
    )*};
}

impl_int_try_ops!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

// Only f32 `Plus` declares a kernel, and even that one is additionally
// gated behind an explicit runtime opt-in (`ExecConfig::simd_f32`):
// float addition is not associative, so the vectorized evaluation order
// is *not* bit-identical to the scalar left fold. `Max`/`Min` stay
// scalar outright — `_mm256_max_ps` NaN/-0.0 semantics differ from
// Rust's `f32::max`.
macro_rules! impl_float_ops {
    ($(($t:ty, $kerneled:expr)),* $(,)?) => {$(
        impl CombineOp<$t> for Plus {
            const COMMUTATIVE: bool = true;
            const KERNEL: Option<Kernel> =
                if $kerneled { Some(Kernel::Add) } else { None };
            #[inline(always)]
            fn identity(&self) -> $t { 0.0 }
            #[inline(always)]
            fn combine(&self, a: $t, b: $t) -> $t { a + b }
        }
        impl CombineOp<$t> for Mult {
            const COMMUTATIVE: bool = true;
            #[inline(always)]
            fn identity(&self) -> $t { 1.0 }
            #[inline(always)]
            fn combine(&self, a: $t, b: $t) -> $t { a * b }
        }
        impl CombineOp<$t> for Max {
            const COMMUTATIVE: bool = true;
            #[inline(always)]
            fn identity(&self) -> $t { <$t>::NEG_INFINITY }
            #[inline(always)]
            fn combine(&self, a: $t, b: $t) -> $t { a.max(b) }
        }
        impl CombineOp<$t> for Min {
            const COMMUTATIVE: bool = true;
            #[inline(always)]
            fn identity(&self) -> $t { <$t>::INFINITY }
            #[inline(always)]
            fn combine(&self, a: $t, b: $t) -> $t { a.min(b) }
        }
    )*};
}

impl_float_ops!((f32, true), (f64, false));

// IEEE float arithmetic never traps: overflow saturates to ±∞ by the
// standard itself, so checked and saturating collapse to plain combine.
macro_rules! impl_float_try_ops {
    ($($op:ty),*) => {$(
        impl TryCombineOp<f32> for $op {
            #[inline(always)]
            fn checked_combine(&self, a: f32, b: f32) -> Option<f32> { Some(self.combine(a, b)) }
            #[inline(always)]
            fn saturating_combine(&self, a: f32, b: f32) -> f32 { self.combine(a, b) }
        }
        impl TryCombineOp<f64> for $op {
            #[inline(always)]
            fn checked_combine(&self, a: f64, b: f64) -> Option<f64> { Some(self.combine(a, b)) }
            #[inline(always)]
            fn saturating_combine(&self, a: f64, b: f64) -> f64 { self.combine(a, b) }
        }
    )*};
}

impl_float_try_ops!(Plus, Mult, Max, Min);

impl CombineOp<bool> for And {
    const COMMUTATIVE: bool = true;
    #[inline(always)]
    fn identity(&self) -> bool {
        true
    }
    #[inline(always)]
    fn combine(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

impl CombineOp<bool> for Or {
    const COMMUTATIVE: bool = true;
    #[inline(always)]
    fn identity(&self) -> bool {
        false
    }
    #[inline(always)]
    fn combine(&self, a: bool, b: bool) -> bool {
        a || b
    }
}

impl TryCombineOp<bool> for And {
    #[inline(always)]
    fn checked_combine(&self, a: bool, b: bool) -> Option<bool> {
        Some(self.combine(a, b))
    }
    #[inline(always)]
    fn saturating_combine(&self, a: bool, b: bool) -> bool {
        self.combine(a, b)
    }
}

impl TryCombineOp<bool> for Or {
    #[inline(always)]
    fn checked_combine(&self, a: bool, b: bool) -> Option<bool> {
        Some(self.combine(a, b))
    }
    #[inline(always)]
    fn saturating_combine(&self, a: bool, b: bool) -> bool {
        self.combine(a, b)
    }
}

/// Arg-max over `(value, index)` pairs: the combination keeps the pair
/// with the larger value, breaking ties toward the **smaller index**
/// (the earlier occurrence), which makes the operator commutative and
/// the multiprefix deterministic. Identity: `(i64::MIN, i64::MAX)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArgMax;

impl CombineOp<(i64, i64)> for ArgMax {
    const COMMUTATIVE: bool = true;
    #[inline(always)]
    fn identity(&self) -> (i64, i64) {
        (i64::MIN, i64::MAX)
    }
    #[inline(always)]
    fn combine(&self, a: (i64, i64), b: (i64, i64)) -> (i64, i64) {
        match a.0.cmp(&b.0) {
            std::cmp::Ordering::Greater => a,
            std::cmp::Ordering::Less => b,
            std::cmp::Ordering::Equal => {
                if a.1 <= b.1 {
                    a
                } else {
                    b
                }
            }
        }
    }
}

/// Arg-min over `(value, index)` pairs, ties toward the smaller index.
/// Identity: `(i64::MAX, i64::MAX)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArgMin;

impl CombineOp<(i64, i64)> for ArgMin {
    const COMMUTATIVE: bool = true;
    #[inline(always)]
    fn identity(&self) -> (i64, i64) {
        (i64::MAX, i64::MAX)
    }
    #[inline(always)]
    fn combine(&self, a: (i64, i64), b: (i64, i64)) -> (i64, i64) {
        match a.0.cmp(&b.0) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal => {
                if a.1 <= b.1 {
                    a
                } else {
                    b
                }
            }
        }
    }
}

/// String-like concatenation over fixed-width "first/last" pairs — a
/// deliberately **non-commutative** associative operator used by the test
/// suite to prove the order-preserving engines do not silently assume
/// commutativity.
///
/// `combine((a_first, a_last), (b_first, b_last))` keeps the first element
/// of the left side and the last element of the right side, except that the
/// identity `(i32::MIN, i32::MIN)` is transparent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstLast;

/// Sentinel used by [`FirstLast`] as its identity marker.
pub const FIRST_LAST_IDENTITY: (i32, i32) = (i32::MIN, i32::MIN);

impl CombineOp<(i32, i32)> for FirstLast {
    const COMMUTATIVE: bool = false;
    #[inline(always)]
    fn identity(&self) -> (i32, i32) {
        FIRST_LAST_IDENTITY
    }
    #[inline(always)]
    fn combine(&self, a: (i32, i32), b: (i32, i32)) -> (i32, i32) {
        if a == FIRST_LAST_IDENTITY {
            return b;
        }
        if b == FIRST_LAST_IDENTITY {
            return a;
        }
        (a.0, b.1)
    }
}

/// 2×2 matrix product over `i64` (mod wrapping arithmetic) — a second
/// non-commutative operator, exercising engines with a "wide" element type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mat2Mul;

impl CombineOp<[i64; 4]> for Mat2Mul {
    const COMMUTATIVE: bool = false;
    #[inline(always)]
    fn identity(&self) -> [i64; 4] {
        [1, 0, 0, 1]
    }
    #[inline(always)]
    fn combine(&self, a: [i64; 4], b: [i64; 4]) -> [i64; 4] {
        [
            a[0].wrapping_mul(b[0])
                .wrapping_add(a[1].wrapping_mul(b[2])),
            a[0].wrapping_mul(b[1])
                .wrapping_add(a[1].wrapping_mul(b[3])),
            a[2].wrapping_mul(b[0])
                .wrapping_add(a[3].wrapping_mul(b[2])),
            a[2].wrapping_mul(b[1])
                .wrapping_add(a[3].wrapping_mul(b[3])),
        ]
    }
}

// FirstLast and the arg-selectors only ever *select* one of their
// arguments' components, so they are total.
impl TryCombineOp<(i32, i32)> for FirstLast {
    #[inline(always)]
    fn checked_combine(&self, a: (i32, i32), b: (i32, i32)) -> Option<(i32, i32)> {
        Some(self.combine(a, b))
    }
    #[inline(always)]
    fn saturating_combine(&self, a: (i32, i32), b: (i32, i32)) -> (i32, i32) {
        self.combine(a, b)
    }
}

impl TryCombineOp<(i64, i64)> for ArgMax {
    #[inline(always)]
    fn checked_combine(&self, a: (i64, i64), b: (i64, i64)) -> Option<(i64, i64)> {
        Some(self.combine(a, b))
    }
    #[inline(always)]
    fn saturating_combine(&self, a: (i64, i64), b: (i64, i64)) -> (i64, i64) {
        self.combine(a, b)
    }
}

impl TryCombineOp<(i64, i64)> for ArgMin {
    #[inline(always)]
    fn checked_combine(&self, a: (i64, i64), b: (i64, i64)) -> Option<(i64, i64)> {
        Some(self.combine(a, b))
    }
    #[inline(always)]
    fn saturating_combine(&self, a: (i64, i64), b: (i64, i64)) -> (i64, i64) {
        self.combine(a, b)
    }
}

impl TryCombineOp<[i64; 4]> for Mat2Mul {
    #[inline(always)]
    fn checked_combine(&self, a: [i64; 4], b: [i64; 4]) -> Option<[i64; 4]> {
        let cell = |x: i64, y: i64, z: i64, w: i64| -> Option<i64> {
            x.checked_mul(y)?.checked_add(z.checked_mul(w)?)
        };
        Some([
            cell(a[0], b[0], a[1], b[2])?,
            cell(a[0], b[1], a[1], b[3])?,
            cell(a[2], b[0], a[3], b[2])?,
            cell(a[2], b[1], a[3], b[3])?,
        ])
    }
    #[inline(always)]
    fn saturating_combine(&self, a: [i64; 4], b: [i64; 4]) -> [i64; 4] {
        let cell = |x: i64, y: i64, z: i64, w: i64| -> i64 {
            x.saturating_mul(y).saturating_add(z.saturating_mul(w))
        };
        [
            cell(a[0], b[0], a[1], b[2]),
            cell(a[0], b[1], a[1], b[3]),
            cell(a[2], b[0], a[3], b[2]),
            cell(a[2], b[1], a[3], b[3]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_laws<T: Element + PartialEq + std::fmt::Debug, O: CombineOp<T>>(
        op: O,
        a: T,
        b: T,
        c: T,
    ) {
        let id = op.identity();
        assert_eq!(op.combine(id, a), a, "left identity");
        assert_eq!(op.combine(a, id), a, "right identity");
        assert_eq!(
            op.combine(a, op.combine(b, c)),
            op.combine(op.combine(a, b), c),
            "associativity"
        );
        if O::COMMUTATIVE {
            assert_eq!(op.combine(a, b), op.combine(b, a), "commutativity");
        }
    }

    proptest! {
        #[test]
        fn plus_i64_laws(a: i64, b: i64, c: i64) { check_laws(Plus, a, b, c); }

        #[test]
        fn mult_i64_laws(a: i64, b: i64, c: i64) { check_laws(Mult, a, b, c); }

        #[test]
        fn max_i64_laws(a: i64, b: i64, c: i64) { check_laws(Max, a, b, c); }

        #[test]
        fn min_i64_laws(a: i64, b: i64, c: i64) { check_laws(Min, a, b, c); }

        #[test]
        fn and_u64_laws(a: u64, b: u64, c: u64) { check_laws(And, a, b, c); }

        #[test]
        fn or_u64_laws(a: u64, b: u64, c: u64) { check_laws(Or, a, b, c); }

        #[test]
        fn and_bool_laws(a: bool, b: bool, c: bool) { check_laws(And, a, b, c); }

        #[test]
        fn or_bool_laws(a: bool, b: bool, c: bool) { check_laws(Or, a, b, c); }

        #[test]
        fn xor_u64_laws(a: u64, b: u64, c: u64) { check_laws(Xor, a, b, c); }

        #[test]
        fn xor_i32_laws(a: i32, b: i32, c: i32) { check_laws(Xor, a, b, c); }

        #[test]
        fn xor_uncombine_is_exact_inverse(a: u64, b: u64) {
            prop_assert_eq!(Xor.combine(Xor.uncombine(a, b), b), a);
            prop_assert_eq!(Xor.uncombine(Xor.combine(a, b), b), a);
        }

        #[test]
        fn argmax_laws(
            a in (any::<i64>(), 0i64..1000),
            b in (any::<i64>(), 0i64..1000),
            c in (any::<i64>(), 0i64..1000),
        ) {
            check_laws(ArgMax, a, b, c);
        }

        #[test]
        fn argmin_laws(
            a in (any::<i64>(), 0i64..1000),
            b in (any::<i64>(), 0i64..1000),
            c in (any::<i64>(), 0i64..1000),
        ) {
            check_laws(ArgMin, a, b, c);
        }

        #[test]
        fn first_last_laws(
            a in (0i32..100, 0i32..100),
            b in (0i32..100, 0i32..100),
            c in (0i32..100, 0i32..100),
        ) {
            check_laws(FirstLast, a, b, c);
        }

        #[test]
        fn mat2_laws(a: [i64; 4], b: [i64; 4], c: [i64; 4]) {
            check_laws(Mat2Mul, a, b, c);
        }

        // f64 PLUS is only associative up to rounding, but identity laws are
        // exact; MAX/MIN are exactly associative on non-NaN floats.
        #[test]
        fn max_f64_laws(a in -1e12f64..1e12, b in -1e12f64..1e12, c in -1e12f64..1e12) {
            check_laws(Max, a, b, c);
        }

        #[test]
        fn min_f64_laws(a in -1e12f64..1e12, b in -1e12f64..1e12, c in -1e12f64..1e12) {
            check_laws(Min, a, b, c);
        }
    }

    #[test]
    fn kernel_recognition_matrix() {
        // Only the 32/64-bit lanes of Add/Max/Min/Xor (and f32 Add, which
        // is further gated at runtime) are vectorizable; everything else
        // must stay None so it can never leave the scalar path.
        assert_eq!(<Plus as CombineOp<u64>>::KERNEL, Some(Kernel::Add));
        assert_eq!(<Plus as CombineOp<i32>>::KERNEL, Some(Kernel::Add));
        assert_eq!(<Plus as CombineOp<u8>>::KERNEL, None);
        assert_eq!(<Plus as CombineOp<u128>>::KERNEL, None);
        assert_eq!(<Plus as CombineOp<usize>>::KERNEL, None);
        assert_eq!(<Max as CombineOp<i64>>::KERNEL, Some(Kernel::Max));
        assert_eq!(<Min as CombineOp<u32>>::KERNEL, Some(Kernel::Min));
        assert_eq!(<Xor as CombineOp<i64>>::KERNEL, Some(Kernel::Xor));
        assert_eq!(<Mult as CombineOp<u64>>::KERNEL, None);
        assert_eq!(<And as CombineOp<u64>>::KERNEL, None);
        assert_eq!(<Plus as CombineOp<f32>>::KERNEL, Some(Kernel::Add));
        assert_eq!(<Plus as CombineOp<f64>>::KERNEL, None);
        assert_eq!(<Max as CombineOp<f32>>::KERNEL, None);
    }

    #[test]
    fn float_identities_exact() {
        assert_eq!(CombineOp::<f64>::identity(&Plus), 0.0);
        assert_eq!(CombineOp::<f64>::identity(&Mult), 1.0);
        assert_eq!(Plus.combine(0.0f64, 3.5), 3.5);
        assert_eq!(Mult.combine(1.0f64, 3.5), 3.5);
    }

    #[test]
    fn argmax_prefers_earlier_on_ties() {
        assert_eq!(ArgMax.combine((5, 3), (5, 7)), (5, 3));
        assert_eq!(ArgMax.combine((5, 7), (5, 3)), (5, 3));
        assert_eq!(ArgMax.combine((4, 0), (5, 9)), (5, 9));
        assert_eq!(ArgMin.combine((5, 3), (5, 7)), (5, 3));
        assert_eq!(ArgMin.combine((4, 9), (5, 0)), (4, 9));
    }

    #[test]
    fn running_argmax_through_multiprefix() {
        // The idiom: pair each value with its index, multiprefix with
        // ArgMax -> each element learns the position of the largest
        // preceding same-label value.
        let values: Vec<(i64, i64)> = [3i64, 9, 2, 9, 1]
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as i64))
            .collect();
        let labels = [0usize; 5];
        let out = crate::serial::multiprefix_serial(&values, &labels, 1, ArgMax);
        assert_eq!(out.sums[0], (i64::MIN, i64::MAX));
        assert_eq!(out.sums[2], (9, 1));
        assert_eq!(out.sums[4], (9, 1), "first 9 wins the tie");
        assert_eq!(out.reductions[0], (9, 1));
    }

    #[test]
    fn first_last_keeps_order() {
        let a = (1, 2);
        let b = (3, 4);
        assert_eq!(FirstLast.combine(a, b), (1, 4));
        assert_eq!(FirstLast.combine(b, a), (3, 2));
    }

    #[test]
    fn mat2_is_noncommutative_witness() {
        let a = [1, 1, 0, 1];
        let b = [1, 0, 1, 1];
        assert_ne!(Mat2Mul.combine(a, b), Mat2Mul.combine(b, a));
    }

    #[test]
    fn checked_combine_agrees_with_combine_when_representable() {
        for (a, b) in [(3i64, 4), (-7, 7), (i64::MAX, 0), (i64::MIN, 0)] {
            assert_eq!(Plus.checked_combine(a, b), Some(Plus.combine(a, b)));
            assert_eq!(Plus.saturating_combine(a, b), Plus.combine(a, b));
        }
        assert_eq!(Mult.checked_combine(1i64 << 32, 1 << 31), None);
        assert_eq!(Mult.saturating_combine(1i64 << 32, 1 << 31), i64::MAX);
    }

    #[test]
    fn checked_combine_detects_overflow() {
        assert_eq!(Plus.checked_combine(i64::MAX, 1), None);
        assert_eq!(Plus.checked_combine(i64::MIN, -1), None);
        assert_eq!(Plus.saturating_combine(i64::MAX, 1), i64::MAX);
        assert_eq!(Plus.saturating_combine(i64::MIN, -1), i64::MIN);
        // Selection operators are total.
        assert_eq!(Max.checked_combine(i64::MAX, i64::MIN), Some(i64::MAX));
        assert_eq!(Min.checked_combine(i64::MAX, i64::MIN), Some(i64::MIN));
        assert_eq!(And.checked_combine(!0u64, 5), Some(5));
        assert_eq!(Or.checked_combine(0u64, 5), Some(5));
    }

    #[test]
    fn float_checked_is_total() {
        assert_eq!(
            Plus.checked_combine(f64::MAX, f64::MAX),
            Some(f64::INFINITY)
        );
        assert_eq!(Mult.saturating_combine(f64::MAX, 2.0), f64::INFINITY);
    }

    #[test]
    fn mat2_checked_overflow() {
        let big = [i64::MAX / 2, 0, 0, i64::MAX / 2];
        assert_eq!(Mat2Mul.checked_combine(big, big), None);
        let sat = Mat2Mul.saturating_combine(big, big);
        assert_eq!(sat[0], (i64::MAX / 2).saturating_mul(i64::MAX / 2));
        let id = Mat2Mul.identity();
        assert_eq!(Mat2Mul.checked_combine(big, id), Some(big));
    }
}
