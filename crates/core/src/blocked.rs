//! The production `rayon` engine: blocked (chunked) multiprefix.
//!
//! Where the [`crate::spinetree`] engine reproduces the paper's PRAM
//! algorithm faithfully, this engine is the shape a multiprefix takes on a
//! modern multicore: the element vector is cut into `C` contiguous chunks,
//! and the operation runs in three passes —
//!
//! 1. **local** (parallel over chunks): each chunk computes its own serial
//!    multiprefix (Figure 2), leaving chunk-local exclusive prefixes in the
//!    output and a per-chunk table of per-label totals;
//! 2. **combine** (sequential over chunks, parallelizable over labels):
//!    an exclusive scan *per label* across the chunk tables turns each
//!    table entry into the chunk's per-label offset, and accumulates the
//!    global reductions;
//! 3. **apply** (parallel over chunks): every element prepends its chunk's
//!    offset for its label: `sums[i] = offset(chunk, label) ⊕ local[i]`.
//!
//! Left-to-right chunk order is preserved throughout, so the engine is
//! deterministic and correct for non-commutative operators. Work is
//! `O(n + C·d)` where `d` is the per-chunk distinct-label count — work
//! efficient for any fixed chunk count.
//!
//! The per-chunk label tables are **dense** (`Vec<T>`, directly indexed)
//! when `C·m` is small relative to `n`, and **sparse** (hash maps over the
//! labels actually present) otherwise, so a call with `m ≈ n` labels does
//! not explode to `O(C·n)` memory.

use crate::error::MpError;
use crate::exec::{try_filled_vec, CheckGuard, ExecConfig, OverflowPolicy, TryEngineResult};
use crate::obs::Phase;
use crate::op::{CombineOp, TryCombineOp};
use crate::problem::{Element, MultiprefixOutput};
use crate::resilience::RunContext;
use rayon::prelude::*;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// Minimum chunk length before we stop splitting further; below this the
/// scheduling overhead outweighs the parallelism.
const MIN_CHUNK: usize = 4 * 1024;

/// Per-chunk label-total table.
///
/// Dense tables carry a `touched` list — the labels this chunk actually
/// saw, in first-touch order — so the sequential combine pass costs
/// `O(distinct)` per chunk rather than `O(m)`. With `m ≫ n` workloads the
/// old full-`m` sweep dominated the whole call (pinned by the
/// `combine_touched_*` cases in the `chunking` bench).
enum Table<T> {
    Dense { vals: Vec<T>, touched: Vec<usize> },
    Sparse(HashMap<usize, T>),
}

fn choose_chunk_len(n: usize, m: usize) -> (usize, bool) {
    let threads = rayon::current_num_threads().max(1);
    let target_chunks = (threads * 4).max(1);
    let chunk_len = n.div_ceil(target_chunks).max(MIN_CHUNK).max(1);
    let chunks = n.div_ceil(chunk_len).max(1);
    // Dense tables cost chunks·m words; allow that when it is within a
    // small multiple of n (the data we already hold).
    let dense = chunks.saturating_mul(m) <= 8 * n.max(1) + 1024;
    (chunk_len, dense)
}

/// Blocked multiprefix. Preconditions as elsewhere (validated by
/// [`crate::api::multiprefix`]): equal lengths, labels `< m`.
pub fn multiprefix_blocked<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
) -> MultiprefixOutput<T> {
    let (chunk_len, _) = choose_chunk_len(values.len(), m);
    multiprefix_blocked_with_chunk(values, labels, m, op, chunk_len)
}

/// [`multiprefix_blocked`] with an explicit chunk length — the tuning knob
/// the `chunking` ablation bench sweeps. Small chunks expose more
/// parallelism but multiply the per-chunk table cost; large chunks
/// degenerate toward serial.
pub fn multiprefix_blocked_with_chunk<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    chunk_len: usize,
) -> MultiprefixOutput<T> {
    debug_assert_eq!(values.len(), labels.len());
    assert!(chunk_len > 0, "chunk length must be positive");
    let n = values.len();
    if n == 0 {
        return MultiprefixOutput {
            sums: Vec::new(),
            reductions: vec![op.identity(); m],
        };
    }
    let chunks = n.div_ceil(chunk_len).max(1);
    let dense = chunks.saturating_mul(m) <= 8 * n.max(1) + 1024;
    let mut sums = vec![op.identity(); n];

    // Single-label vector fast path: with `m == 1` every row scan is a
    // plain prefix scan and pass 3 a broadcast, both of which the simd
    // kernels implement bit-exactly for recognized operators
    // ([`crate::op::CombineOp::KERNEL`]). Multi-bucket tables stay scalar
    // (DESIGN §12).
    let fast = if m == 1 {
        O::KERNEL.and_then(|k| crate::simd::kernels::<T>(k, false))
    } else {
        None
    };

    // Pass 1 — local multiprefix per chunk.
    let mut tables: Vec<Table<T>> = sums
        .par_chunks_mut(chunk_len)
        .zip(values.par_chunks(chunk_len))
        .zip(labels.par_chunks(chunk_len))
        .map(|((s, v), l)| local_pass(s, v, l, m, op, dense, fast))
        .collect();

    // Pass 2 — exclusive scan of the tables, per label, in chunk order.
    // Each table entry is replaced by the offset (⊕ of earlier chunks'
    // totals for that label); `running` ends as the global reductions.
    let reductions = match dense {
        true => {
            let mut running = vec![op.identity(); m];
            for table in &mut tables {
                let Table::Dense { vals, touched } = table else {
                    unreachable!("invariant: dense mode fills `tables` with Table::Dense only")
                };
                for &label in touched.iter() {
                    let offset = running[label];
                    running[label] = op.combine(running[label], vals[label]);
                    vals[label] = offset;
                }
            }
            running
        }
        false => {
            let mut running: HashMap<usize, T> = HashMap::new();
            for table in &mut tables {
                let Table::Sparse(t) = table else {
                    unreachable!("invariant: sparse mode fills `tables` with Table::Sparse only")
                };
                for (&label, total) in t.iter_mut() {
                    let entry = running.entry(label).or_insert_with(|| op.identity());
                    let offset = *entry;
                    *entry = op.combine(*entry, *total);
                    *total = offset;
                }
            }
            let mut reductions = vec![op.identity(); m];
            for (label, total) in running {
                reductions[label] = total;
            }
            reductions
        }
    };

    // Pass 3 — prepend each chunk's per-label offset.
    sums.par_chunks_mut(chunk_len)
        .zip(labels.par_chunks(chunk_len))
        .zip(tables.par_iter())
        .for_each(|((s, l), table)| match table {
            Table::Dense { vals, .. } => {
                if let Some(tbl) = fast {
                    (tbl.combine_broadcast)(vals[0], s);
                    return;
                }
                for (si, &label) in s.iter_mut().zip(l) {
                    *si = op.combine(vals[label], *si);
                }
            }
            Table::Sparse(t) => {
                for (si, &label) in s.iter_mut().zip(l) {
                    *si = op.combine(t[&label], *si);
                }
            }
        });

    MultiprefixOutput { sums, reductions }
}

/// Chunk-local serial multiprefix (Figure 2 on a sub-range), returning the
/// chunk's per-label totals.
fn local_pass<T: Element, O: CombineOp<T>>(
    sums: &mut [T],
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    dense: bool,
    fast: Option<&'static crate::simd::Kernels<T>>,
) -> Table<T> {
    // Single-label fast path (`fast` is only `Some` when `m == 1`): the
    // whole row is one exclusive scan; the outgoing carry is the chunk
    // total.
    if let Some(tbl) = fast {
        let mut buckets = vec![op.identity(); m];
        let mut touched = Vec::new();
        if !values.is_empty() {
            buckets[0] = (tbl.excl_scan_into)(values, sums, op.identity());
            touched.push(0);
        }
        return Table::Dense {
            vals: buckets,
            touched,
        };
    }
    if dense {
        let mut buckets = vec![op.identity(); m];
        let mut seen = vec![false; m];
        let mut touched = Vec::new();
        for ((si, &v), &l) in sums.iter_mut().zip(values).zip(labels) {
            if !seen[l] {
                seen[l] = true;
                touched.push(l);
            }
            *si = buckets[l];
            buckets[l] = op.combine(buckets[l], v);
        }
        Table::Dense {
            vals: buckets,
            touched,
        }
    } else {
        let mut buckets: HashMap<usize, T> = HashMap::new();
        for ((si, &v), &l) in sums.iter_mut().zip(values).zip(labels) {
            let entry = buckets.entry(l).or_insert_with(|| op.identity());
            *si = *entry;
            *entry = op.combine(*entry, v);
        }
        Table::Sparse(buckets)
    }
}

/// Blocked multireduce: per-label reductions only — a parallel histogram
/// fold. Same chunking as [`multiprefix_blocked`] minus the element output.
pub fn multireduce_blocked<T: Element, O: CombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
) -> Vec<T> {
    debug_assert_eq!(values.len(), labels.len());
    let n = values.len();
    if n == 0 {
        return vec![op.identity(); m];
    }
    let (chunk_len, dense) = choose_chunk_len(n, m);
    let fast = if m == 1 {
        O::KERNEL.and_then(|k| crate::simd::kernels::<T>(k, false))
    } else {
        None
    };
    let tables: Vec<Table<T>> = values
        .par_chunks(chunk_len)
        .zip(labels.par_chunks(chunk_len))
        .map(|(v, l)| {
            if let Some(tbl) = fast {
                let mut buckets = vec![op.identity(); m];
                let mut touched = Vec::new();
                if !v.is_empty() {
                    buckets[0] = (tbl.reduce)(op.identity(), v);
                    touched.push(0);
                }
                return Table::Dense {
                    vals: buckets,
                    touched,
                };
            }
            if dense {
                let mut buckets = vec![op.identity(); m];
                let mut seen = vec![false; m];
                let mut touched = Vec::new();
                for (&vi, &li) in v.iter().zip(l) {
                    if !seen[li] {
                        seen[li] = true;
                        touched.push(li);
                    }
                    buckets[li] = op.combine(buckets[li], vi);
                }
                Table::Dense {
                    vals: buckets,
                    touched,
                }
            } else {
                let mut buckets: HashMap<usize, T> = HashMap::new();
                for (&vi, &li) in v.iter().zip(l) {
                    let entry = buckets.entry(li).or_insert_with(|| op.identity());
                    *entry = op.combine(*entry, vi);
                }
                Table::Sparse(buckets)
            }
        })
        .collect();

    let mut reductions = vec![op.identity(); m];
    for table in &tables {
        match table {
            Table::Dense { vals, touched } => {
                for &label in touched {
                    reductions[label] = op.combine(reductions[label], vals[label]);
                }
            }
            Table::Sparse(t) => {
                // Chunk order is preserved (outer loop); within one chunk
                // each label appears once, so map order is irrelevant.
                for (&label, &total) in t {
                    reductions[label] = op.combine(reductions[label], total);
                }
            }
        }
    }
    reductions
}

/// Hardened blocked multiprefix (see [`crate::exec`] for the contract).
///
/// Differences from [`multiprefix_blocked`]:
///
/// * the output vector and every dense per-chunk table are allocated
///   fallibly (`try_reserve_exact`), so allocator refusal surfaces as
///   [`MpError::AllocationFailed`];
/// * under a checking [`OverflowPolicy`] every combine is checked; a trip
///   yields `Ok(None)` and the caller replays the serial engine;
/// * the whole engine body — including the rayon passes, whose worker
///   panics rayon rethrows on this thread — runs under
///   [`catch_unwind`], so a panicking [`CombineOp`] becomes
///   [`MpError::EnginePanicked`] instead of unwinding through (or, with
///   `panic=abort` workers, killing) the caller.
pub fn try_multiprefix_blocked<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
) -> TryEngineResult<MultiprefixOutput<T>> {
    try_multiprefix_blocked_ctx(values, labels, m, op, policy, &RunContext::new())
}

/// [`try_multiprefix_blocked`] under a [`RunContext`]: the context is polled
/// at every pass boundary and every [`crate::resilience::CHECK_STRIDE`]
/// elements within each pass (chunk-locally in the parallel passes), so
/// deadlines and cancellation interrupt the run promptly. On any error the
/// partially-built output is dropped inside the engine — no partial result
/// can escape.
pub fn try_multiprefix_blocked_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
    ctx: &RunContext,
) -> TryEngineResult<MultiprefixOutput<T>> {
    try_multiprefix_blocked_cfg_ctx(
        values,
        labels,
        m,
        op,
        ExecConfig::default().overflow(policy),
        ctx,
    )
}

/// [`try_multiprefix_blocked_ctx`] under a full [`ExecConfig`], so the
/// SIMD knobs ([`ExecConfig::force_scalar`], [`ExecConfig::simd_f32`])
/// reach the engine alongside the overflow policy.
pub fn try_multiprefix_blocked_cfg_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    cfg: ExecConfig,
    ctx: &RunContext,
) -> TryEngineResult<MultiprefixOutput<T>> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        try_multiprefix_blocked_inner(values, labels, m, op, cfg, ctx)
    }));
    // AssertUnwindSafe is sound here: on panic every partially-built local
    // (sums, tables) is dropped inside the closure and nothing the caller
    // can observe was mutated — the inputs are shared references.
    caught.unwrap_or(Err(MpError::EnginePanicked))
}

fn try_multiprefix_blocked_inner<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    cfg: ExecConfig,
    ctx: &RunContext,
) -> TryEngineResult<MultiprefixOutput<T>> {
    debug_assert_eq!(values.len(), labels.len());
    ctx.checkpoint()?;
    let n = values.len();
    if n == 0 {
        return Ok(Some(MultiprefixOutput {
            sums: Vec::new(),
            reductions: try_filled_vec(op.identity(), m)?,
        }));
    }
    let (chunk_len, _) = choose_chunk_len(n, m);
    let chunks = n.div_ceil(chunk_len).max(1);
    let dense = chunks.saturating_mul(m) <= 8 * n.max(1) + 1024;
    let tripped = AtomicBool::new(false);
    let guard =
        CheckGuard::new(op, cfg.overflow, &tripped).with_simd_opts(cfg.force_scalar, cfg.simd_f32);
    let fast = if m == 1 && guard.simd_ok() {
        O::KERNEL.and_then(|k| crate::simd::kernels::<T>(k, guard.allow_f32()))
    } else {
        None
    };
    let mut sums = try_filled_vec(op.identity(), n)?;

    // Pass 1 — local multiprefix per chunk, fallible table allocation.
    // Each worker polls the context chunk-locally (the chunk length is at
    // least the checkpoint stride, so every chunk polls at least once).
    let local_span = ctx.phase_span(Phase::Local);
    let mut tables: Vec<Table<T>> = sums
        .par_chunks_mut(chunk_len)
        .zip(values.par_chunks(chunk_len))
        .zip(labels.par_chunks(chunk_len))
        .map(|((s, v), l)| try_local_pass(s, v, l, m, guard, dense, fast, ctx))
        .collect::<Result<_, _>>()?;
    drop(local_span);

    // Pass 2 — exclusive scan of the tables per label (identical structure
    // to the plain engine, with guarded combines).
    ctx.checkpoint()?;
    let combine_span = ctx.phase_span(Phase::Combine);
    let mut scanned: usize = 0;
    let reductions = match dense {
        true => {
            let mut running = try_filled_vec(op.identity(), m)?;
            for table in &mut tables {
                let Table::Dense { vals, touched } = table else {
                    unreachable!("invariant: dense mode fills `tables` with Table::Dense only")
                };
                for &label in touched.iter() {
                    ctx.checkpoint_every(scanned)?;
                    scanned += 1;
                    let offset = running[label];
                    running[label] = guard.combine(running[label], vals[label]);
                    vals[label] = offset;
                }
            }
            running
        }
        false => {
            let mut running: HashMap<usize, T> = HashMap::new();
            for table in &mut tables {
                let Table::Sparse(t) = table else {
                    unreachable!("invariant: sparse mode fills `tables` with Table::Sparse only")
                };
                for (&label, total) in t.iter_mut() {
                    ctx.checkpoint_every(scanned)?;
                    scanned += 1;
                    let entry = running.entry(label).or_insert_with(|| op.identity());
                    let offset = *entry;
                    *entry = guard.combine(*entry, *total);
                    *total = offset;
                }
            }
            let mut reductions = try_filled_vec(op.identity(), m)?;
            for (label, total) in running {
                reductions[label] = total;
            }
            reductions
        }
    };

    drop(combine_span);

    // Pass 3 — prepend each chunk's per-label offset.
    ctx.checkpoint()?;
    let _span = ctx.phase_span(Phase::Apply);
    sums.par_chunks_mut(chunk_len)
        .zip(labels.par_chunks(chunk_len))
        .zip(tables.par_iter())
        .try_for_each(|((s, l), table)| -> Result<(), MpError> {
            ctx.checkpoint()?;
            match table {
                Table::Dense { vals, .. } => {
                    if let Some(tbl) = fast {
                        (tbl.combine_broadcast)(vals[0], s);
                        return Ok(());
                    }
                    for (si, &label) in s.iter_mut().zip(l) {
                        *si = guard.combine(vals[label], *si);
                    }
                }
                Table::Sparse(t) => {
                    for (si, &label) in s.iter_mut().zip(l) {
                        *si = guard.combine(t[&label], *si);
                    }
                }
            }
            Ok(())
        })?;

    if tripped.load(Ordering::Relaxed) {
        Ok(None)
    } else {
        Ok(Some(MultiprefixOutput { sums, reductions }))
    }
}

/// [`local_pass`] with guarded combines, fallible dense allocation, and a
/// chunk-local [`RunContext`] poll every stride elements.
#[allow(clippy::too_many_arguments)]
fn try_local_pass<T: Element, O: TryCombineOp<T>>(
    sums: &mut [T],
    values: &[T],
    labels: &[usize],
    m: usize,
    guard: CheckGuard<'_, O>,
    dense: bool,
    fast: Option<&'static crate::simd::Kernels<T>>,
    ctx: &RunContext,
) -> Result<Table<T>, MpError> {
    // Single-label fast path, block-strided so the cancellation fuse is
    // polled at the same indices as the scalar loop.
    if let Some(tbl) = fast {
        let mut buckets = try_filled_vec(guard.identity(), m)?;
        let mut touched = Vec::new();
        if !values.is_empty() {
            let mut acc = guard.identity();
            let mut i = 0usize;
            while i < values.len() {
                ctx.checkpoint_every(i)?;
                let end = (i + crate::resilience::CHECK_STRIDE).min(values.len());
                acc = (tbl.excl_scan_into)(&values[i..end], &mut sums[i..end], acc);
                i = end;
            }
            buckets[0] = acc;
            touched.push(0);
        }
        return Ok(Table::Dense {
            vals: buckets,
            touched,
        });
    }
    if dense {
        let mut buckets = try_filled_vec(guard.identity(), m)?;
        let mut seen = try_filled_vec(false, m)?;
        let mut touched = Vec::new();
        for (i, ((si, &v), &l)) in sums.iter_mut().zip(values).zip(labels).enumerate() {
            ctx.checkpoint_every(i)?;
            if !seen[l] {
                seen[l] = true;
                touched.push(l);
            }
            *si = buckets[l];
            buckets[l] = guard.combine(buckets[l], v);
        }
        Ok(Table::Dense {
            vals: buckets,
            touched,
        })
    } else {
        let mut buckets: HashMap<usize, T> = HashMap::new();
        for (i, ((si, &v), &l)) in sums.iter_mut().zip(values).zip(labels).enumerate() {
            ctx.checkpoint_every(i)?;
            let entry = buckets.entry(l).or_insert_with(|| guard.identity());
            *si = *entry;
            *entry = guard.combine(*entry, v);
        }
        Ok(Table::Sparse(buckets))
    }
}

/// Hardened blocked multireduce. Same contract as
/// [`try_multiprefix_blocked`].
pub fn try_multireduce_blocked<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
) -> TryEngineResult<Vec<T>> {
    try_multireduce_blocked_ctx(values, labels, m, op, policy, &RunContext::new())
}

/// [`try_multireduce_blocked`] under a [`RunContext`] (see
/// [`try_multiprefix_blocked_ctx`] for the checkpoint contract).
pub fn try_multireduce_blocked_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    policy: OverflowPolicy,
    ctx: &RunContext,
) -> TryEngineResult<Vec<T>> {
    try_multireduce_blocked_cfg_ctx(
        values,
        labels,
        m,
        op,
        ExecConfig::default().overflow(policy),
        ctx,
    )
}

/// [`try_multireduce_blocked_ctx`] under a full [`ExecConfig`] (the SIMD
/// knobs reach the engine alongside the overflow policy).
pub fn try_multireduce_blocked_cfg_ctx<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    cfg: ExecConfig,
    ctx: &RunContext,
) -> TryEngineResult<Vec<T>> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        try_multireduce_blocked_inner(values, labels, m, op, cfg, ctx)
    }));
    caught.unwrap_or(Err(MpError::EnginePanicked))
}

fn try_multireduce_blocked_inner<T: Element, O: TryCombineOp<T>>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    cfg: ExecConfig,
    ctx: &RunContext,
) -> TryEngineResult<Vec<T>> {
    debug_assert_eq!(values.len(), labels.len());
    ctx.checkpoint()?;
    let n = values.len();
    if n == 0 {
        return Ok(Some(try_filled_vec(op.identity(), m)?));
    }
    let (chunk_len, dense) = choose_chunk_len(n, m);
    let tripped = AtomicBool::new(false);
    let guard =
        CheckGuard::new(op, cfg.overflow, &tripped).with_simd_opts(cfg.force_scalar, cfg.simd_f32);
    let fast = if m == 1 && guard.simd_ok() {
        O::KERNEL.and_then(|k| crate::simd::kernels::<T>(k, guard.allow_f32()))
    } else {
        None
    };
    let tables: Vec<Table<T>> = values
        .par_chunks(chunk_len)
        .zip(labels.par_chunks(chunk_len))
        .map(|(v, l)| {
            if let Some(tbl) = fast {
                let mut buckets = try_filled_vec(guard.identity(), m)?;
                let mut touched = Vec::new();
                if !v.is_empty() {
                    let mut acc = guard.identity();
                    let mut i = 0usize;
                    while i < v.len() {
                        ctx.checkpoint_every(i)?;
                        let end = (i + crate::resilience::CHECK_STRIDE).min(v.len());
                        acc = (tbl.reduce)(acc, &v[i..end]);
                        i = end;
                    }
                    buckets[0] = acc;
                    touched.push(0);
                }
                return Ok(Table::Dense {
                    vals: buckets,
                    touched,
                });
            }
            if dense {
                let mut buckets = try_filled_vec(op.identity(), m)?;
                let mut seen = try_filled_vec(false, m)?;
                let mut touched = Vec::new();
                for (i, (&vi, &li)) in v.iter().zip(l).enumerate() {
                    ctx.checkpoint_every(i)?;
                    if !seen[li] {
                        seen[li] = true;
                        touched.push(li);
                    }
                    buckets[li] = guard.combine(buckets[li], vi);
                }
                Ok(Table::Dense {
                    vals: buckets,
                    touched,
                })
            } else {
                let mut buckets: HashMap<usize, T> = HashMap::new();
                for (i, (&vi, &li)) in v.iter().zip(l).enumerate() {
                    ctx.checkpoint_every(i)?;
                    let entry = buckets.entry(li).or_insert_with(|| op.identity());
                    *entry = guard.combine(*entry, vi);
                }
                Ok(Table::Sparse(buckets))
            }
        })
        .collect::<Result<_, MpError>>()?;

    ctx.checkpoint()?;
    let mut reductions = try_filled_vec(op.identity(), m)?;
    let mut folded: usize = 0;
    for table in &tables {
        match table {
            Table::Dense { vals, touched } => {
                for &label in touched {
                    ctx.checkpoint_every(folded)?;
                    folded += 1;
                    reductions[label] = guard.combine(reductions[label], vals[label]);
                }
            }
            Table::Sparse(t) => {
                for (&label, &total) in t {
                    ctx.checkpoint_every(folded)?;
                    folded += 1;
                    reductions[label] = guard.combine(reductions[label], total);
                }
            }
        }
    }
    if tripped.load(Ordering::Relaxed) {
        Ok(None)
    } else {
        Ok(Some(reductions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{FirstLast, Max, Plus};
    use crate::serial::{multiprefix_serial, multireduce_serial};

    fn mixed_input(n: usize, m: usize) -> (Vec<i64>, Vec<usize>) {
        let values = (0..n).map(|i| (i as i64 * 37 % 101) - 50).collect();
        let labels = (0..n).map(|i| (i * 7 + i / 13) % m).collect();
        (values, labels)
    }

    #[test]
    fn matches_serial_small() {
        let (values, labels) = mixed_input(100, 7);
        assert_eq!(
            multiprefix_blocked(&values, &labels, 7, Plus),
            multiprefix_serial(&values, &labels, 7, Plus)
        );
    }

    #[test]
    fn matches_serial_across_many_chunks() {
        // Large enough to split into several chunks on any thread count.
        let (values, labels) = mixed_input(100_000, 97);
        assert_eq!(
            multiprefix_blocked(&values, &labels, 97, Plus),
            multiprefix_serial(&values, &labels, 97, Plus)
        );
    }

    #[test]
    fn sparse_table_path() {
        // m = n forces the sparse tables whenever several chunks exist;
        // also exercise it directly with a small MIN_CHUNK-dodging input by
        // just checking agreement.
        let n = 50_000;
        let (values, labels) = mixed_input(n, n);
        assert_eq!(
            multiprefix_blocked(&values, &labels, n, Plus),
            multiprefix_serial(&values, &labels, n, Plus)
        );
    }

    #[test]
    fn noncommutative_across_chunk_boundaries() {
        let n = 60_000;
        let values: Vec<(i32, i32)> = (0..n as i32).map(|i| (i, i)).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 5).collect();
        assert_eq!(
            multiprefix_blocked(&values, &labels, 5, FirstLast),
            multiprefix_serial(&values, &labels, 5, FirstLast)
        );
    }

    #[test]
    fn max_and_empty_labels() {
        let (values, labels) = mixed_input(10_000, 3);
        let out = multiprefix_blocked(&values, &labels, 10, Max);
        let expect = multiprefix_serial(&values, &labels, 10, Max);
        assert_eq!(out, expect);
        assert_eq!(out.reductions[9], i64::MIN, "absent label keeps identity");
    }

    #[test]
    fn multireduce_agrees() {
        let (values, labels) = mixed_input(80_000, 1000);
        assert_eq!(
            multireduce_blocked(&values, &labels, 1000, Plus),
            multireduce_serial(&values, &labels, 1000, Plus)
        );
    }

    #[test]
    fn empty_input() {
        let out = multiprefix_blocked::<i64, _>(&[], &[], 4, Plus);
        assert!(out.sums.is_empty());
        assert_eq!(out.reductions, vec![0; 4]);
        assert_eq!(multireduce_blocked::<i64, _>(&[], &[], 4, Plus), vec![0; 4]);
    }

    #[test]
    fn single_label_is_plain_scan() {
        let (values, _) = mixed_input(30_000, 2);
        let labels = vec![0usize; 30_000];
        let out = multiprefix_blocked(&values, &labels, 1, Plus);
        let mut acc = 0i64;
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(out.sums[i], acc, "at {i}");
            acc += v;
        }
        assert_eq!(out.reductions, vec![acc]);
    }
}

#[cfg(test)]
mod chunk_param_tests {
    use super::*;
    use crate::op::Plus;
    use crate::serial::multiprefix_serial;

    #[test]
    fn any_chunk_length_is_correct() {
        let n = 10_000;
        let values: Vec<i64> = (0..n as i64).map(|i| i % 17 - 8).collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 13) % 23).collect();
        let expect = multiprefix_serial(&values, &labels, 23, Plus);
        for chunk in [1usize, 7, 64, 1000, 9_999, 10_000, 20_000] {
            let got = multiprefix_blocked_with_chunk(&values, &labels, 23, Plus, chunk);
            assert_eq!(got, expect, "chunk {chunk}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_rejected() {
        multiprefix_blocked_with_chunk(&[1i64], &[0], 1, Plus, 0);
    }
}
