//! The supervisor side of the socket fabric: listener, worker fleet
//! launch, per-connection reader threads, and the **keeper** — the
//! connection supervisor that respawns dead workers with jittered
//! backoff until a per-shard reconnect budget runs out.
//!
//! ## Division of labour
//!
//! The existing [`ShardSupervisor`] loop already recovers from *task*
//! loss: a shard that stops answering has its tasks requeued onto
//! survivors. This module adds the *connection* layer underneath it:
//!
//! * each accepted connection gets a reader thread that decodes
//!   [`UpMsg`] frames into one shared up-queue (so `recv_up` stays a
//!   single bounded wait, exactly like the channel fabric);
//! * a reader observing stream death synthesizes [`UpMsg::Crashed`]
//!   (the supervisor requeues on survivors — never an indefinite hang)
//!   and notifies the keeper;
//! * the keeper respawns the worker (thread or process), re-handshakes,
//!   re-ships the job, and announces the revived slot with a synthetic
//!   [`UpMsg::Heartbeat`]. Reconnects are counted on the supervisor and
//!   under the `shard.supervisor.reconnects` recorder key;
//! * when the budget is exhausted the slot stays dead and the existing
//!   degradation ladder (requeue → `Unavailable` → single-node rerun)
//!   takes over.

use super::codec::{
    decode_ack, decode_hello, decode_up, encode_ack, encode_down, encode_job, Hello, TAG_HELLO_ACK,
    TAG_JOB_ACK, WIRE_VERSION,
};
use super::conn::{Conn, NetStream};
use super::wire::{wire_tag_of, NetError, WireOp, WireValue};
use super::worker::{run_inproc_worker, ENV_ADDR, ENV_INDEX, ENV_WORKER};
use super::DEFAULT_NAK_BUDGET;
use crate::chunked::{run_prefix, ChunkedWorkspace, PlainComb};
use crate::error::MpError;
use crate::exec::try_filled_vec;
use crate::obs::{Phase, Recorder};
use crate::op::CombineOp;
use crate::problem::{validate_slices, Element, MultiprefixOutput};
use crate::resilience::{ChaosState, Deadline, RunContext};
use crate::shard::transport::{DownMsg, RecvOutcome, ShardSpan, Transport, UpMsg};
use crate::shard::{
    ShardConfig, ShardSupervisor, ShutdownGuard, COUNTER_DEGRADED, COUNTER_RECONNECTS,
};
use std::fmt;
use std::marker::PhantomData;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::Stdio;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which socket family carries the shard traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketKind {
    /// Unix-domain sockets (a temp-dir path, removed on drop).
    Uds,
    /// Loopback TCP (`127.0.0.1`, ephemeral port, `TCP_NODELAY`).
    Tcp,
}

/// How worker endpoints come to exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetMode {
    /// Worker **threads** in this process, each talking to the
    /// supervisor through a real socket. The problem stays in shared
    /// memory (no `Job` shipping); this exercises the full wire path
    /// with none of the process-management variance — the chaos
    /// matrix's workhorse.
    InProc,
    /// Worker **processes**, spawned by re-executing the current binary
    /// with `args` and the worker environment set (see
    /// [`maybe_run_worker_from_env`](super::maybe_run_worker_from_env)).
    /// The problem is shipped over the wire in a `Job` frame.
    SelfExec {
        /// Arguments for the re-executed binary (e.g. a test filter).
        args: Vec<String>,
    },
}

/// Per-shard extra environment for spawned worker processes.
type ShardEnvFn = dyn Fn(usize) -> Vec<(String, String)> + Send + Sync;

/// Socket-fabric configuration, orthogonal to [`ShardConfig`] (which
/// keeps owning the recovery tuning: timeouts, retries, reconnect
/// budget).
#[derive(Clone)]
pub struct NetConfig {
    /// Socket family.
    pub kind: SocketKind,
    /// Worker fleet mode.
    pub fleet: FleetMode,
    /// How long to wait for a worker to connect and finish its
    /// handshake (initial fleet launch and each keeper respawn).
    pub accept_timeout: Duration,
    /// Corrupt frames tolerated per connection before it is declared
    /// poisoned and handed to the keeper.
    pub nak_budget: u32,
    /// Extra environment for every spawned worker process.
    pub proc_env: Vec<(String, String)>,
    /// Extra per-shard environment for spawned worker processes (e.g. a
    /// fault-injection hook for one victim shard).
    pub shard_env: Option<Arc<ShardEnvFn>>,
}

impl NetConfig {
    fn with_kind(kind: SocketKind) -> Self {
        NetConfig {
            kind,
            fleet: FleetMode::InProc,
            accept_timeout: Duration::from_secs(3),
            nak_budget: DEFAULT_NAK_BUDGET,
            proc_env: Vec::new(),
            shard_env: None,
        }
    }

    /// Unix-domain sockets, in-process worker threads.
    pub fn uds() -> Self {
        Self::with_kind(SocketKind::Uds)
    }

    /// Loopback TCP, in-process worker threads.
    pub fn tcp() -> Self {
        Self::with_kind(SocketKind::Tcp)
    }

    /// Switch to worker processes spawned by re-executing the current
    /// binary with `args`.
    pub fn self_exec(mut self, args: Vec<String>) -> Self {
        self.fleet = FleetMode::SelfExec { args };
        self
    }

    /// Set the handshake window.
    pub fn accept_timeout(mut self, timeout: Duration) -> Self {
        self.accept_timeout = timeout;
        self
    }

    /// Set the per-connection corrupt-frame (NAK) budget.
    pub fn nak_budget(mut self, budget: u32) -> Self {
        self.nak_budget = budget.max(1);
        self
    }

    /// Add an environment variable for every spawned worker process.
    pub fn proc_env(mut self, key: &str, value: &str) -> Self {
        self.proc_env.push((key.to_string(), value.to_string()));
        self
    }

    /// Set a per-shard environment hook for spawned worker processes.
    pub fn shard_env(
        mut self,
        f: impl Fn(usize) -> Vec<(String, String)> + Send + Sync + 'static,
    ) -> Self {
        self.shard_env = Some(Arc::new(f));
        self
    }
}

impl fmt::Debug for NetConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetConfig")
            .field("kind", &self.kind)
            .field("fleet", &self.fleet)
            .field("accept_timeout", &self.accept_timeout)
            .field("nak_budget", &self.nak_budget)
            .field("proc_env", &self.proc_env)
            .field("shard_env", &self.shard_env.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// The listener half: bound before the fleet launches so workers always
/// have something to connect to.
enum NetListener {
    Unix {
        listener: UnixListener,
        path: PathBuf,
    },
    Tcp {
        listener: TcpListener,
        addr: std::net::SocketAddr,
    },
}

static SOCK_COUNTER: AtomicU64 = AtomicU64::new(0);

impl NetListener {
    fn bind(kind: SocketKind) -> std::io::Result<NetListener> {
        match kind {
            SocketKind::Uds => {
                let path = std::env::temp_dir().join(format!(
                    "mpx-{}-{}.sock",
                    std::process::id(),
                    SOCK_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path)?;
                listener.set_nonblocking(true)?;
                Ok(NetListener::Unix { listener, path })
            }
            SocketKind::Tcp => {
                let listener = TcpListener::bind(("127.0.0.1", 0))?;
                listener.set_nonblocking(true)?;
                let addr = listener.local_addr()?;
                Ok(NetListener::Tcp { listener, addr })
            }
        }
    }

    /// The address workers connect to, in the `uds:<path>` / `tcp:<addr>`
    /// syntax [`NetStream::connect`] parses.
    fn addr_string(&self) -> String {
        match self {
            NetListener::Unix { path, .. } => format!("uds:{}", path.display()),
            NetListener::Tcp { addr, .. } => format!("tcp:{addr}"),
        }
    }

    /// Non-blocking accept; accepted streams are switched to blocking
    /// mode (the connection layer uses read timeouts).
    fn try_accept(&self) -> std::io::Result<Option<NetStream>> {
        match self {
            NetListener::Unix { listener, .. } => match listener.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(NetStream::Unix(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            NetListener::Tcp { listener, .. } => match listener.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    let _ = s.set_nodelay(true);
                    Ok(Some(NetStream::Tcp(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Drop for NetListener {
    fn drop(&mut self) {
        if let NetListener::Unix { path, .. } = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A launched worker endpoint, owned (and reaped) by the keeper.
pub(crate) enum WorkerHandle {
    Thread(JoinHandle<()>),
    Proc(std::process::Child),
}

impl WorkerHandle {
    /// Reap the worker. Threads are joined (their connection has been
    /// shut down first, so the worker loop exits promptly); processes
    /// are killed and waited — a respawn must never race its
    /// predecessor for the shard slot.
    fn terminate(self) {
        match self {
            WorkerHandle::Thread(handle) => {
                let _ = handle.join();
            }
            WorkerHandle::Proc(mut child) => {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Launches one worker endpoint for a shard slot.
pub(crate) trait WorkerLauncher: Send + Sync {
    fn launch(&self, shard: usize, addr: &str) -> std::io::Result<WorkerHandle>;
}

/// Spawns worker threads in this process; the problem rides in `Arc`s.
struct InProcLauncher<T, O> {
    values: Arc<Vec<T>>,
    labels: Arc<Vec<usize>>,
    m: usize,
    op: O,
    heartbeat: Duration,
    chaos: Option<Arc<ChaosState>>,
    nak_budget: u32,
}

impl<T: Element + WireValue, O: CombineOp<T>> WorkerLauncher for InProcLauncher<T, O> {
    fn launch(&self, shard: usize, addr: &str) -> std::io::Result<WorkerHandle> {
        let values = Arc::clone(&self.values);
        let labels = Arc::clone(&self.labels);
        let (m, op, heartbeat, nak_budget) = (self.m, self.op, self.heartbeat, self.nak_budget);
        let chaos = self.chaos.clone();
        let addr = addr.to_string();
        let handle = std::thread::Builder::new()
            .name(format!("shard-net-worker-{shard}"))
            .spawn(move || {
                run_inproc_worker(
                    shard, &addr, values, labels, m, op, heartbeat, chaos, nak_budget,
                )
            })?;
        Ok(WorkerHandle::Thread(handle))
    }
}

/// Spawns worker processes by re-executing the current binary.
struct ProcLauncher {
    args: Vec<String>,
    env: Vec<(String, String)>,
    shard_env: Option<Arc<ShardEnvFn>>,
}

impl WorkerLauncher for ProcLauncher {
    fn launch(&self, shard: usize, addr: &str) -> std::io::Result<WorkerHandle> {
        let exe = std::env::current_exe()?;
        let mut cmd = std::process::Command::new(exe);
        cmd.args(&self.args)
            .env(ENV_WORKER, "1")
            .env(ENV_ADDR, addr)
            .env(ENV_INDEX, shard.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        for (key, value) in &self.env {
            cmd.env(key, value);
        }
        if let Some(f) = &self.shard_env {
            for (key, value) in f(shard) {
                cmd.env(key, value);
            }
        }
        Ok(WorkerHandle::Proc(cmd.spawn()?))
    }
}

/// State shared between the transport, its reader threads, and the
/// keeper. Connection slots are per-shard so a revival swaps one slot
/// without touching in-flight traffic to others.
struct Shared {
    conns: Vec<Mutex<Option<Arc<Conn>>>>,
    /// The transport is being dropped: suppress crash synthesis and
    /// revival, and unblock every keeper/reader wait.
    shutdown: AtomicBool,
    /// `Shutdown` has been broadcast (the run is over): worker EOFs from
    /// here on are clean exits, not crashes — don't revive them.
    closing: AtomicBool,
    reconnects: AtomicU64,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// True once the run is winding down for any reason.
    fn winding_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || self.closing.load(Ordering::Acquire)
    }
}

/// Keeper → transport control messages.
enum KeeperMsg {
    /// A shard's connection died; try to revive it.
    Dead(usize),
    /// The transport is shutting down.
    Quit,
}

/// Deterministic jittered exponential backoff: seeded from the shard
/// slot and attempt number so chaos runs replay identically, spread in
/// `[0.5, 1.5) × base × 2^min(attempt-1, 4)`, capped at 500 ms.
fn jittered_backoff(base: Duration, shard: usize, attempt: u32) -> Duration {
    let mut x = (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    let jitter = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 54) as f64 / 1024.0;
    let exp = 1u64 << u64::from(attempt.saturating_sub(1)).min(4);
    let ms = base.as_secs_f64() * 1e3 * exp as f64 * (0.5 + jitter);
    Duration::from_millis((ms.ceil() as u64).clamp(1, 500))
}

/// Sleep in small slices so a transport shutdown is never blocked
/// behind a backoff wait.
fn sleep_checking(total: Duration, shared: &Shared) {
    let end = Instant::now() + total;
    while !shared.winding_down() {
        let left = end.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(10)));
    }
}

/// Accept one connection and run the supervisor side of the handshake:
/// `Hello` → version + slot validation → `HelloAck` → (for processes)
/// `Job` → `JobAck`. Refused or garbled peers are dropped and the
/// accept loop continues until `deadline`.
#[allow(clippy::too_many_arguments)]
fn accept_one(
    listener: &NetListener,
    deadline: Instant,
    shared: &Shared,
    chaos: Option<Arc<ChaosState>>,
    run_deadline: Option<Deadline>,
    nak_budget: u32,
    job: Option<&[u8]>,
    expect: impl Fn(&Hello) -> Result<(), &'static str>,
) -> Result<(Arc<Conn>, Hello), NetError> {
    loop {
        if shared.winding_down() || Instant::now() >= deadline {
            return Err(NetError::Handshake("accept timed out"));
        }
        let Some(stream) = listener.try_accept()? else {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };
        let Ok(conn) = Conn::new(stream, chaos.clone(), run_deadline, nak_budget) else {
            continue;
        };
        let wait = deadline
            .saturating_duration_since(Instant::now())
            .min(Duration::from_secs(2));
        let hello = match conn.recv(wait) {
            Ok(Some(payload)) => match decode_hello(&payload) {
                Ok(hello) => hello,
                Err(_) => continue,
            },
            _ => continue,
        };
        if hello.version != WIRE_VERSION {
            let _ = conn.send(
                &encode_ack(TAG_HELLO_ACK, false, "wire version mismatch"),
                true,
            );
            continue;
        }
        if hello.needs_job && job.is_none() {
            let _ = conn.send(
                &encode_ack(TAG_HELLO_ACK, false, "no job for this fleet mode"),
                true,
            );
            continue;
        }
        if let Err(reason) = expect(&hello) {
            let _ = conn.send(&encode_ack(TAG_HELLO_ACK, false, reason), true);
            continue;
        }
        if conn
            .send(&encode_ack(TAG_HELLO_ACK, true, ""), true)
            .is_err()
        {
            continue;
        }
        if hello.needs_job {
            let job = job.expect("checked above");
            if conn.send(job, true).is_err() {
                continue;
            }
            match conn.recv(Duration::from_secs(10)) {
                Ok(Some(payload)) => match decode_ack(TAG_JOB_ACK, &payload) {
                    Ok((true, _)) => {}
                    _ => continue,
                },
                _ => continue,
            }
        }
        return Ok((conn, hello));
    }
}

/// Spawn the reader thread for one accepted connection: decode
/// [`UpMsg`] frames into the shared up-queue; on stream death,
/// synthesize [`UpMsg::Crashed`] and notify the keeper.
fn spawn_reader<T: Element + WireValue>(
    shard: usize,
    conn: Arc<Conn>,
    shared: &Arc<Shared>,
    up_tx: &Sender<UpMsg<T>>,
    keeper_tx: &Sender<KeeperMsg>,
) {
    let shared_for_thread = Arc::clone(shared);
    let up_tx = up_tx.clone();
    let keeper_tx = keeper_tx.clone();
    let handle = std::thread::Builder::new()
        .name(format!("shard-net-reader-{shard}"))
        .spawn(move || {
            loop {
                if shared_for_thread.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match conn.recv(Duration::from_millis(50)) {
                    Ok(Some(payload)) => match decode_up::<T>(&payload) {
                        Ok(msg) => {
                            let _ = up_tx.send(msg);
                        }
                        // A checksum-verified frame we cannot decode is a
                        // protocol violation, not line noise: kill the
                        // connection rather than guess.
                        Err(_) => break,
                    },
                    Ok(None) => {}
                    Err(_) => break,
                }
            }
            // Slam the socket so the worker side notices too (a poisoned
            // connection is only marked dead locally).
            conn.shutdown();
            if !shared_for_thread.winding_down() {
                let _ = up_tx.send(UpMsg::Crashed { shard });
                let _ = keeper_tx.send(KeeperMsg::Dead(shard));
            }
        })
        .expect("spawn shard-net reader thread");
    shared.readers.lock().unwrap().push(handle);
}

/// The connection supervisor: owns the listener and the worker handles,
/// revives dead shards with jittered backoff, and reaps the fleet at
/// shutdown.
struct Keeper<T: Element + WireValue> {
    shared: Arc<Shared>,
    listener: NetListener,
    addr: String,
    launcher: Arc<dyn WorkerLauncher>,
    job: Option<Arc<Vec<u8>>>,
    handles: Vec<Option<WorkerHandle>>,
    attempts: Vec<u32>,
    max_reconnects: u32,
    backoff: Duration,
    accept_timeout: Duration,
    nak_budget: u32,
    chaos: Option<Arc<ChaosState>>,
    run_deadline: Option<Deadline>,
    recorder: Option<Arc<dyn Recorder>>,
    rx: Receiver<KeeperMsg>,
    keeper_tx: Sender<KeeperMsg>,
    up_tx: Sender<UpMsg<T>>,
}

impl<T: Element + WireValue> Keeper<T> {
    fn run(mut self) {
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            match self.rx.recv_timeout(Duration::from_millis(100)) {
                Ok(KeeperMsg::Quit) | Err(RecvTimeoutError::Disconnected) => break,
                Ok(KeeperMsg::Dead(shard)) => self.revive(shard),
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        let Keeper {
            listener,
            mut handles,
            ..
        } = self;
        // Close the listener before reaping: a worker parked in the
        // accept queue (launched by a revival the shutdown raced) gets
        // its connection reset and fails its handshake immediately,
        // instead of waiting out the handshake timeout under our join.
        drop(listener);
        for handle in &mut handles {
            if let Some(h) = handle.take() {
                h.terminate();
            }
        }
    }

    /// Bounded reconnect/respawn: each attempt burns one unit of the
    /// shard's budget, backs off with deterministic jitter, replaces the
    /// worker endpoint, and re-runs the full handshake (re-shipping the
    /// job to processes). Success re-arms the slot and beacons a
    /// synthetic heartbeat so the task supervisor marks it live again.
    fn revive(&mut self, shard: usize) {
        if let Some(conn) = self.shared.conns[shard].lock().unwrap().take() {
            conn.shutdown();
        }
        while self.attempts[shard] < self.max_reconnects {
            if self.shared.winding_down() {
                return;
            }
            self.attempts[shard] += 1;
            sleep_checking(
                jittered_backoff(self.backoff, shard, self.attempts[shard]),
                &self.shared,
            );
            if let Some(old) = self.handles[shard].take() {
                old.terminate();
            }
            let handle = match self.launcher.launch(shard, &self.addr) {
                Ok(handle) => handle,
                Err(_) => continue,
            };
            self.handles[shard] = Some(handle);
            let deadline = Instant::now() + self.accept_timeout;
            let got = accept_one(
                &self.listener,
                deadline,
                &self.shared,
                self.chaos.clone(),
                self.run_deadline,
                self.nak_budget,
                self.job.as_deref().map(Vec::as_slice),
                |hello| {
                    if hello.shard == shard {
                        Ok(())
                    } else {
                        Err("unexpected shard slot")
                    }
                },
            );
            match got {
                Ok((conn, _hello)) => {
                    *self.shared.conns[shard].lock().unwrap() = Some(Arc::clone(&conn));
                    spawn_reader::<T>(shard, conn, &self.shared, &self.up_tx, &self.keeper_tx);
                    self.shared.reconnects.fetch_add(1, Ordering::Relaxed);
                    if let Some(rec) = &self.recorder {
                        rec.counter(COUNTER_RECONNECTS, 1);
                    }
                    // Revival beacon: drive_phase flips the slot back to
                    // live on any sign of life from it.
                    let _ = self.up_tx.send(UpMsg::Heartbeat { shard });
                    return;
                }
                Err(_) => continue,
            }
        }
        // Budget exhausted: the slot stays dead and the task supervisor's
        // degradation ladder takes over.
    }
}

/// Supervisor-side socket [`Transport`]: down-messages are encoded and
/// framed onto per-shard connections, up-messages arrive via the reader
/// threads' shared queue. The worker-side trait methods are unreachable
/// by construction (workers hold a
/// [`WorkerSocket`](super::worker::WorkerSocket) instead).
pub struct SocketTransport<T> {
    shared: Arc<Shared>,
    up_rx: Mutex<Receiver<UpMsg<T>>>,
    keeper: Option<JoinHandle<()>>,
    keeper_tx: Sender<KeeperMsg>,
    nshards: usize,
}

impl<T: Element + WireValue> SocketTransport<T> {
    /// Bind a listener, launch the fleet, and handshake every shard
    /// slot. Slots that fail to connect within the window are reported
    /// as immediately crashed (the supervisor requeues their spans) and
    /// handed to the keeper for revival — a partially-connected fleet is
    /// degraded, not fatal.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn establish(
        nshards: usize,
        launcher: Arc<dyn WorkerLauncher>,
        job: Option<Arc<Vec<u8>>>,
        net: &NetConfig,
        max_reconnects: u32,
        reconnect_backoff: Duration,
        chaos: Option<Arc<ChaosState>>,
        run_deadline: Option<Deadline>,
        recorder: Option<Arc<dyn Recorder>>,
    ) -> Result<SocketTransport<T>, NetError> {
        let listener = NetListener::bind(net.kind)?;
        let addr = listener.addr_string();
        let shared = Arc::new(Shared {
            conns: (0..nshards).map(|_| Mutex::new(None)).collect(),
            shutdown: AtomicBool::new(false),
            closing: AtomicBool::new(false),
            reconnects: AtomicU64::new(0),
            readers: Mutex::new(Vec::new()),
        });
        let (up_tx, up_rx) = mpsc::channel::<UpMsg<T>>();
        let (keeper_tx, keeper_rx) = mpsc::channel::<KeeperMsg>();

        let mut handles: Vec<Option<WorkerHandle>> = (0..nshards).map(|_| None).collect();
        for (shard, slot) in handles.iter_mut().enumerate() {
            *slot = launcher.launch(shard, &addr).ok();
        }

        let mut connected = vec![false; nshards];
        let deadline = Instant::now() + net.accept_timeout;
        while connected.iter().any(|c| !c) {
            let got = accept_one(
                &listener,
                deadline,
                &shared,
                chaos.clone(),
                run_deadline,
                net.nak_budget,
                job.as_deref().map(Vec::as_slice),
                |hello| {
                    if hello.shard >= nshards {
                        Err("shard index out of range")
                    } else if connected[hello.shard] {
                        Err("slot already connected")
                    } else {
                        Ok(())
                    }
                },
            );
            match got {
                Ok((conn, hello)) => {
                    connected[hello.shard] = true;
                    *shared.conns[hello.shard].lock().unwrap() = Some(Arc::clone(&conn));
                    spawn_reader::<T>(hello.shard, conn, &shared, &up_tx, &keeper_tx);
                }
                Err(_) => break,
            }
        }
        for (shard, ok) in connected.iter().enumerate() {
            if !*ok {
                let _ = up_tx.send(UpMsg::Crashed { shard });
                let _ = keeper_tx.send(KeeperMsg::Dead(shard));
            }
        }

        let keeper = Keeper {
            shared: Arc::clone(&shared),
            listener,
            addr,
            launcher,
            job,
            handles,
            attempts: vec![0; nshards],
            max_reconnects,
            backoff: reconnect_backoff,
            accept_timeout: net.accept_timeout,
            nak_budget: net.nak_budget,
            chaos,
            run_deadline,
            recorder,
            rx: keeper_rx,
            keeper_tx: keeper_tx.clone(),
            up_tx,
        };
        let keeper = std::thread::Builder::new()
            .name("shard-net-keeper".into())
            .spawn(move || keeper.run())?;

        Ok(SocketTransport {
            shared,
            up_rx: Mutex::new(up_rx),
            keeper: Some(keeper),
            keeper_tx,
            nshards,
        })
    }

    /// Reconnect/respawn attempts that succeeded during this transport's
    /// lifetime.
    pub(crate) fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::Relaxed)
    }
}

impl<T: Element + WireValue> Transport<T> for SocketTransport<T> {
    fn shards(&self) -> usize {
        self.nshards
    }

    fn send_down(&self, shard: usize, msg: DownMsg<T>) {
        // Shutdown is protocol-critical: exempt from byte chaos, same
        // rule as the channel fabric. It also marks the run as winding
        // down, so worker EOFs from here on read as clean exits and the
        // keeper stops reviving slots nobody will ever task again.
        let exempt = matches!(msg, DownMsg::Shutdown);
        if exempt {
            self.shared.closing.store(true, Ordering::Release);
        }
        let payload = encode_down(&msg);
        let slot = self.shared.conns[shard].lock().unwrap();
        if let Some(conn) = slot.as_ref() {
            // A failed send is a lost message — the task supervisor's
            // attempt deadline requeues the span, and the reader thread
            // reports the dead stream to the keeper.
            let _ = conn.send(&payload, exempt);
        }
    }

    fn recv_down(&self, _shard: usize, _timeout: Duration) -> RecvOutcome<DownMsg<T>> {
        unreachable!("supervisor half of the socket fabric has no in-process workers");
    }

    fn send_up(&self, _msg: UpMsg<T>) {
        unreachable!("supervisor half of the socket fabric has no in-process workers");
    }

    fn recv_up(&self, timeout: Duration) -> RecvOutcome<UpMsg<T>> {
        let rx = self.up_rx.lock().unwrap();
        match rx.recv_timeout(timeout) {
            Ok(msg) => RecvOutcome::Msg(msg),
            Err(RecvTimeoutError::Timeout) => RecvOutcome::TimedOut,
            // Every sender gone (readers and keeper dead) — the fabric
            // itself is lost; the supervisor maps this to Unavailable.
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Disconnected,
        }
    }
}

impl<T> Drop for SocketTransport<T> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Close connections before waking the keeper: its teardown joins
        // worker threads, which only exit once their stream dies.
        for slot in &self.shared.conns {
            if let Some(conn) = slot.lock().unwrap().take() {
                conn.shutdown();
            }
        }
        let _ = self.keeper_tx.send(KeeperMsg::Quit);
        if let Some(keeper) = self.keeper.take() {
            let _ = keeper.join();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock().unwrap());
        for reader in readers {
            let _ = reader.join();
        }
    }
}

impl ShardSupervisor {
    /// Sharded multiprefix over a **socket** worker fleet (UDS or
    /// loopback TCP per [`NetConfig`]); panics on typed failures,
    /// mirroring [`ShardSupervisor::multiprefix`].
    pub fn multiprefix_socket<T, O>(
        &self,
        values: &[T],
        labels: &[usize],
        m: usize,
        op: O,
        net: &NetConfig,
    ) -> MultiprefixOutput<T>
    where
        T: Element + WireValue,
        O: CombineOp<T> + WireOp,
    {
        self.try_multiprefix_socket(values, labels, m, op, net, &RunContext::new())
            .expect("socket sharded multiprefix failed")
    }

    /// Hardened socket-sharded multiprefix under a [`RunContext`].
    ///
    /// Wrap-semantics only (the operator crosses a process boundary by
    /// *name*, so checked-overflow guards cannot ride along — use the
    /// in-process engines for `Checked`/`Saturate` policies). Worker
    /// loss, byte corruption, truncation and disconnects are absorbed by
    /// the requeue/reconnect ladder; exhausted recovery degrades to
    /// single-node chunked execution when
    /// [`ShardConfig::fallback_single_node`] is set, else fails with
    /// [`MpError::Unavailable`].
    pub fn try_multiprefix_socket<T, O>(
        &self,
        values: &[T],
        labels: &[usize],
        m: usize,
        op: O,
        net: &NetConfig,
        ctx: &RunContext,
    ) -> Result<MultiprefixOutput<T>, MpError>
    where
        T: Element + WireValue,
        O: CombineOp<T> + WireOp,
    {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            self.run_socket_sharded(values, labels, m, op, net, ctx)
        }));
        // AssertUnwindSafe is sound for the same reason as the channel
        // path: partial outputs die inside the closure and supervisor
        // state is interior-mutable and coherent at every step.
        caught.unwrap_or(Err(MpError::EnginePanicked))
    }

    fn run_socket_sharded<T, O>(
        &self,
        values: &[T],
        labels: &[usize],
        m: usize,
        op: O,
        net: &NetConfig,
        ctx: &RunContext,
    ) -> Result<MultiprefixOutput<T>, MpError>
    where
        T: Element + WireValue,
        O: CombineOp<T> + WireOp,
    {
        ctx.checkpoint()?;
        validate_slices(values, labels, m)?;
        if values.is_empty() {
            return Ok(MultiprefixOutput {
                sums: Vec::new(),
                reductions: try_filled_vec(op.identity(), m)?,
            });
        }
        match self.run_socket_distributed(values, labels, m, op, net, ctx) {
            Err(MpError::Unavailable) if self.config().fallback_single_node => {
                self.note_degraded(ctx);
                let _span = ctx.phase_span(Phase::Recover);
                let mut ws = ChunkedWorkspace::new();
                run_prefix(
                    values,
                    labels,
                    m,
                    PlainComb(op),
                    self.config().shards,
                    &mut ws,
                    ctx,
                )
            }
            other => other,
        }
    }

    fn run_socket_distributed<T, O>(
        &self,
        values: &[T],
        labels: &[usize],
        m: usize,
        op: O,
        net: &NetConfig,
        ctx: &RunContext,
    ) -> Result<MultiprefixOutput<T>, MpError>
    where
        T: Element + WireValue,
        O: CombineOp<T> + WireOp,
    {
        let cfg = *self.config();
        let n = values.len();
        let nshards = cfg.shards.min(n);
        let span_len = n.div_ceil(nshards);
        let nspans = n.div_ceil(span_len);
        let spans: Vec<ShardSpan> = (0..nspans)
            .map(|i| ShardSpan {
                index: i,
                start: i * span_len,
                end: ((i + 1) * span_len).min(n),
            })
            .collect();

        let launcher: Arc<dyn WorkerLauncher> = match &net.fleet {
            FleetMode::InProc => Arc::new(InProcLauncher {
                values: Arc::new(values.to_vec()),
                labels: Arc::new(labels.to_vec()),
                m,
                op,
                heartbeat: cfg.heartbeat_interval,
                chaos: ctx.chaos_arc(),
                nak_budget: net.nak_budget,
            }),
            FleetMode::SelfExec { args } => Arc::new(ProcLauncher {
                args: args.clone(),
                env: net.proc_env.clone(),
                shard_env: net.shard_env.clone(),
            }),
        };
        let job = match &net.fleet {
            FleetMode::InProc => None,
            FleetMode::SelfExec { .. } => Some(Arc::new(encode_job::<T>(
                &wire_tag_of::<T>(),
                O::WIRE_OP,
                m,
                (cfg.heartbeat_interval.as_millis() as u64).max(1),
                values,
                labels,
            ))),
        };

        let transport: SocketTransport<T> = SocketTransport::establish(
            nshards,
            launcher,
            job,
            net,
            cfg.max_reconnects,
            cfg.reconnect_backoff,
            ctx.chaos_arc(),
            ctx.deadline(),
            ctx.recorder_arc(),
        )
        .map_err(|_| MpError::Unavailable)?;

        let result = {
            let _guard = ShutdownGuard {
                transport: &transport,
                _elements: PhantomData,
            };
            self.supervise(&transport, &spans, n, m, PlainComb(op), ctx)
        };
        // Fold the transport's reconnect tally into the supervisor's
        // cross-run counter (recorder emission happened live, in the
        // keeper).
        self.reconnects
            .fetch_add(transport.reconnects(), Ordering::Relaxed);
        result
    }

    fn note_degraded(&self, ctx: &RunContext) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = ctx.recorder() {
            rec.counter(COUNTER_DEGRADED, 1);
        }
    }
}

/// Socket-sharded multiprefix with default tuning: a convenience over
/// [`ShardSupervisor::multiprefix_socket`] for one-shot runs.
///
/// ```no_run
/// use multiprefix::op::Plus;
/// use multiprefix::shard::net::{multiprefix_socket, NetConfig};
///
/// let values = [1i64, 3, 2, 1, 1, 2, 3, 1];
/// let labels = [1usize, 2, 1, 1, 2, 2, 1, 1];
/// let out = multiprefix_socket(&values, &labels, 4, Plus, 3, &NetConfig::uds());
/// assert_eq!(out.sums, vec![0, 0, 1, 3, 3, 4, 4, 7]);
/// ```
pub fn multiprefix_socket<T, O>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    shards: usize,
    net: &NetConfig,
) -> MultiprefixOutput<T>
where
    T: Element + WireValue,
    O: CombineOp<T> + WireOp,
{
    ShardSupervisor::new(ShardConfig::default().shards(shards))
        .multiprefix_socket(values, labels, m, op, net)
}

/// Hardened one-shot socket-sharded multiprefix: a transient supervisor
/// under explicit [`ShardConfig`] + [`NetConfig`] + [`RunContext`].
pub fn try_multiprefix_socket_ctx<T, O>(
    values: &[T],
    labels: &[usize],
    m: usize,
    op: O,
    shard_cfg: &ShardConfig,
    net: &NetConfig,
    ctx: &RunContext,
) -> Result<MultiprefixOutput<T>, MpError>
where
    T: Element + WireValue,
    O: CombineOp<T> + WireOp,
{
    ShardSupervisor::new(*shard_cfg).try_multiprefix_socket(values, labels, m, op, net, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Plus;

    fn problem(n: usize, m: usize) -> (Vec<i64>, Vec<usize>) {
        let values: Vec<i64> = (0..n).map(|i| (i as i64 % 23) - 11).collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 7 + i / 3) % m).collect();
        (values, labels)
    }

    fn oracle(values: &[i64], labels: &[usize], m: usize) -> MultiprefixOutput<i64> {
        let mut buckets = vec![0i64; m];
        let mut sums = Vec::with_capacity(values.len());
        for (&v, &l) in values.iter().zip(labels) {
            sums.push(buckets[l]);
            buckets[l] = buckets[l].wrapping_add(v);
        }
        MultiprefixOutput {
            sums,
            reductions: buckets,
        }
    }

    #[test]
    fn uds_in_proc_matches_oracle() {
        let (values, labels) = problem(5_000, 32);
        let out = multiprefix_socket(&values, &labels, 32, Plus, 3, &NetConfig::uds());
        assert_eq!(out, oracle(&values, &labels, 32));
    }

    #[test]
    fn tcp_in_proc_matches_oracle() {
        let (values, labels) = problem(5_000, 32);
        let out = multiprefix_socket(&values, &labels, 32, Plus, 3, &NetConfig::tcp());
        assert_eq!(out, oracle(&values, &labels, 32));
    }

    #[test]
    fn empty_input_and_single_element_over_socket() {
        let out = multiprefix_socket::<i64, _>(&[], &[], 4, Plus, 3, &NetConfig::uds());
        assert!(out.sums.is_empty());
        assert_eq!(out.reductions, vec![0; 4]);

        // One element with more shard slots than elements: the span
        // split clamps to one shard and the single apply payload holds
        // exactly one offset.
        let out = multiprefix_socket(&[41i64], &[0usize], 1, Plus, 4, &NetConfig::uds());
        assert_eq!(out.sums, vec![0]);
        assert_eq!(out.reductions, vec![41]);
    }

    /// A zero-length [`ShardSpan`] must round-trip the full wire path:
    /// its `Scan` yields an empty summary, its `Apply` carries a
    /// zero-length offsets payload, and its `Applied` a zero-length
    /// sums payload.
    #[test]
    fn zero_length_span_round_trips_over_socket() {
        let values = vec![7i64];
        let labels = vec![0usize];
        let sup = ShardSupervisor::new(ShardConfig::default().shards(2));
        let launcher: Arc<dyn WorkerLauncher> = Arc::new(InProcLauncher {
            values: Arc::new(values.clone()),
            labels: Arc::new(labels.clone()),
            m: 1,
            op: Plus,
            heartbeat: Duration::from_millis(10),
            chaos: None,
            nak_budget: 8,
        });
        let transport: SocketTransport<i64> = SocketTransport::establish(
            2,
            launcher,
            None,
            &NetConfig::uds(),
            1,
            Duration::from_millis(5),
            None,
            None,
            None,
        )
        .expect("establish");
        let spans = [
            ShardSpan {
                index: 0,
                start: 0,
                end: 1,
            },
            ShardSpan {
                index: 1,
                start: 1,
                end: 1,
            },
        ];
        let ctx = RunContext::new();
        let out = {
            let _guard = ShutdownGuard {
                transport: &transport,
                _elements: PhantomData,
            };
            sup.supervise(&transport, &spans, 1, 1, PlainComb(Plus), &ctx)
                .expect("supervise")
        };
        drop(transport);
        assert_eq!(out.sums, vec![0]);
        assert_eq!(out.reductions, vec![7]);
    }

    /// Deterministic pin for the reconnect ladder: sever one shard's
    /// socket at the transport level, then wait for the keeper to
    /// respawn the worker, re-handshake, and tick
    /// `shard.supervisor.reconnects` — no chaos timing races involved.
    /// The revived connection must then carry a full run bit-identically.
    #[test]
    fn keeper_revives_severed_connection_and_ticks_counter() {
        let (values, labels) = problem(2_000, 16);
        let launcher: Arc<dyn WorkerLauncher> = Arc::new(InProcLauncher {
            values: Arc::new(values.clone()),
            labels: Arc::new(labels.clone()),
            m: 16,
            op: Plus,
            heartbeat: Duration::from_millis(10),
            chaos: None,
            nak_budget: 2,
        });
        let transport: SocketTransport<i64> = SocketTransport::establish(
            2,
            launcher,
            None,
            &NetConfig::uds(),
            4,
            Duration::from_millis(2),
            None,
            None,
            None,
        )
        .expect("establish");

        // Kill shard 1's socket out from under both endpoints: the
        // reader thread sees EOF and reports the shard dead.
        transport.shared.conns[1]
            .lock()
            .unwrap()
            .as_ref()
            .expect("shard 1 connected at establish")
            .shutdown();

        let deadline = Instant::now() + Duration::from_secs(10);
        while transport.reconnects() == 0 {
            assert!(
                Instant::now() < deadline,
                "keeper never revived the severed connection"
            );
            std::thread::sleep(Duration::from_millis(2));
        }

        // The revived endpoint must carry real traffic end to end.
        let sup = ShardSupervisor::new(ShardConfig::default().shards(2).max_reconnects(4));
        let spans = [
            ShardSpan {
                index: 0,
                start: 0,
                end: 1_000,
            },
            ShardSpan {
                index: 1,
                start: 1_000,
                end: 2_000,
            },
        ];
        let ctx = RunContext::new();
        let out = {
            let _guard = ShutdownGuard {
                transport: &transport,
                _elements: PhantomData,
            };
            sup.supervise(&transport, &spans, 2_000, 16, PlainComb(Plus), &ctx)
                .expect("supervise after revival")
        };
        assert!(transport.reconnects() >= 1);
        drop(transport);
        assert_eq!(out, oracle(&values, &labels, 16));
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for shard in 0..8 {
            for attempt in 1..6 {
                let a = jittered_backoff(Duration::from_millis(10), shard, attempt);
                let b = jittered_backoff(Duration::from_millis(10), shard, attempt);
                assert_eq!(a, b, "same inputs must give the same backoff");
                assert!(a >= Duration::from_millis(1) && a <= Duration::from_millis(500));
            }
        }
    }
}
