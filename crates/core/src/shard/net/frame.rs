//! Length-prefixed, checksummed, sequence-numbered frames.
//!
//! ```text
//! ┌────────────┬─────────┬─────────┬──────────┬──────────┬──────────────┐
//! │ MAGIC MPXF │ seq u32 │ len u32 │ hcrc u32 │ pcrc u32 │ payload[len] │
//! │  4 bytes   │   LE    │   LE    │    LE    │    LE    │              │
//! └────────────┴─────────┴─────────┴──────────┴──────────┴──────────────┘
//! hcrc = CRC-32 (IEEE) over seq ‖ len      (authenticates the header)
//! pcrc = CRC-32 (IEEE) over payload        (authenticates the body)
//! ```
//!
//! The header carries its **own** checksum so a corrupted length field is
//! rejected at once — without it, a bit flip in `len` would leave the
//! parser waiting forever for payload bytes that never arrive, turning a
//! detectable fault into a stall.
//!
//! The parser ([`FrameBuffer`]) is a pure byte-stream machine with no I/O
//! of its own, so the whole damage model — bit flips, truncation,
//! arbitrary re-chunking — is unit-testable (and proptested in
//! `tests/shard_codec_differential.rs`) without a socket. Damage is never
//! delivered: a frame whose checksum fails, whose length field is
//! implausible, or whose sequence number jumps ahead produces a
//! [`FrameEvent::NakNeeded`], the parser resynchronizes by scanning for
//! the next `MAGIC`, and the connection layer asks the peer to resend
//! everything after the last good frame (go-back-N).

use super::wire::NetError;

/// Frame preamble: what the resync scan hunts for.
pub const MAGIC: [u8; 4] = *b"MPXF";
/// Header bytes before the payload.
pub const HEADER_LEN: usize = 20;
/// Hard cap on one frame's payload: large enough for a `Job` carrying a
/// bench-sized input, small enough that a hostile length field can never
/// demand a gigantic buffer.
pub const MAX_PAYLOAD: usize = 256 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected) with a lazily built table — zero
/// dependencies, matches every standard `crc32` implementation.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// Encode one frame: header + payload, both checksummed.
pub fn encode_frame(seq: u32, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let seq_le = seq.to_le_bytes();
    let len_le = (payload.len() as u32).to_le_bytes();
    let hcrc = crc32(&[&seq_le, &len_le]);
    let pcrc = crc32(&[payload]);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&seq_le);
    out.extend_from_slice(&len_le);
    out.extend_from_slice(&hcrc.to_le_bytes());
    out.extend_from_slice(&pcrc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One step of the frame parser.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// The next in-sequence frame, verified and complete.
    Frame {
        /// Its sequence number (`== expected` at delivery).
        seq: u32,
        /// Its payload bytes.
        payload: Vec<u8>,
    },
    /// Damage detected (checksum failure, implausible length, or a
    /// sequence gap). The connection should send a NAK carrying
    /// `last_ok` so the peer resends everything after it; the typed
    /// cause is reported alongside for diagnostics and tests.
    NakNeeded {
        /// Last sequence number delivered in order.
        last_ok: u32,
        /// Why the stream broke.
        cause: NetError,
    },
    /// A frame older than `expected` (a resend overshoot or an injected
    /// duplicate) — verified but already delivered; skip it.
    Stale {
        /// The duplicate's sequence number.
        seq: u32,
    },
    /// Not enough bytes buffered for another event.
    Need,
}

/// Reassembles a damaged byte stream into verified, in-order frames.
/// Pure: bytes in via [`FrameBuffer::extend`], events out via
/// [`FrameBuffer::poll`]. Never panics and never allocates more than the
/// buffered bytes plus one payload copy, whatever the input.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Read cursor into `buf` (compacted periodically).
    pos: usize,
    /// Next sequence number to deliver.
    expected: u32,
    /// Bytes skipped hunting for `MAGIC` (diagnostics).
    resynced: u64,
}

impl Default for FrameBuffer {
    fn default() -> Self {
        FrameBuffer::new()
    }
}

impl FrameBuffer {
    /// An empty parser expecting sequence number 1.
    pub fn new() -> Self {
        FrameBuffer {
            buf: Vec::new(),
            pos: 0,
            expected: 1,
            resynced: 0,
        }
    }

    /// Last sequence number delivered in order (0 before the first).
    pub fn last_ok(&self) -> u32 {
        self.expected - 1
    }

    /// Bytes discarded while hunting for a frame magic.
    pub fn resynced_bytes(&self) -> u64 {
        self.resynced
    }

    /// Feed raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: the parser never re-reads consumed
        // bytes, so the buffer stays bounded by one frame plus readahead.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn remaining(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Drop `n` bytes as resync garbage.
    fn skip(&mut self, n: usize) {
        self.pos += n;
        self.resynced += n as u64;
    }

    /// Extract the next event. Call until it returns [`FrameEvent::Need`].
    pub fn poll(&mut self) -> FrameEvent {
        loop {
            // Hunt for the magic: anything before it is resync garbage
            // (a truncated frame's tail, or a corrupted magic byte).
            let rem = self.remaining();
            if rem.len() < 4 {
                // Too short to even hold the magic; discard bytes that
                // already cannot begin one.
                let keep = longest_magic_prefix(rem);
                let drop = rem.len() - keep;
                if drop > 0 {
                    self.skip(drop);
                }
                return FrameEvent::Need;
            }
            if rem[..4] != MAGIC {
                match find_magic(rem) {
                    Some(at) => self.skip(at),
                    None => {
                        let keep = longest_magic_prefix(rem);
                        self.skip(rem.len() - keep);
                        return FrameEvent::Need;
                    }
                }
                continue;
            }
            let rem = self.remaining();
            if rem.len() < HEADER_LEN {
                return FrameEvent::Need;
            }
            let seq = u32::from_le_bytes(rem[4..8].try_into().unwrap());
            let len = u32::from_le_bytes(rem[8..12].try_into().unwrap());
            let hcrc = u32::from_le_bytes(rem[12..16].try_into().unwrap());
            let pcrc = u32::from_le_bytes(rem[16..20].try_into().unwrap());
            if crc32(&[&rem[4..8], &rem[8..12]]) != hcrc {
                // A lying header (possibly a corrupt length) must be
                // rejected *now* — waiting for `len` payload bytes that
                // may never come would turn a bit flip into a stall.
                let last_ok = self.last_ok();
                self.skip(1);
                return FrameEvent::NakNeeded {
                    last_ok,
                    cause: NetError::BadChecksum { seq },
                };
            }
            if len as usize > MAX_PAYLOAD {
                let last_ok = self.last_ok();
                self.skip(1);
                return FrameEvent::NakNeeded {
                    last_ok,
                    cause: NetError::BadLength {
                        len: len as u64,
                        cap: MAX_PAYLOAD as u64,
                    },
                };
            }
            if rem.len() < HEADER_LEN + len as usize {
                // Header verified, so `len` is trustworthy: the payload
                // really is coming (or the stream died, which the
                // connection layer detects as EOF/timeout).
                return FrameEvent::Need;
            }
            let payload = &rem[HEADER_LEN..HEADER_LEN + len as usize];
            if crc32(&[payload]) != pcrc {
                let last_ok = self.last_ok();
                // The header was genuine, so skipping the whole frame is
                // safe — no byte-by-byte rescan needed.
                self.pos += HEADER_LEN + len as usize;
                self.resynced += 1;
                return FrameEvent::NakNeeded {
                    last_ok,
                    cause: NetError::BadChecksum { seq },
                };
            }
            // Verified. Now sequence-check.
            if seq == self.expected {
                let payload = payload.to_vec();
                self.pos += HEADER_LEN + len as usize;
                self.expected += 1;
                return FrameEvent::Frame { seq, payload };
            }
            if seq < self.expected {
                self.pos += HEADER_LEN + len as usize;
                return FrameEvent::Stale { seq };
            }
            // A gap: an earlier frame vanished whole (truncated away).
            // Leave this frame unconsumed is wrong (infinite loop); drop
            // it and let the go-back-N resend replay both.
            let last_ok = self.last_ok();
            self.pos += HEADER_LEN + len as usize;
            return FrameEvent::NakNeeded {
                last_ok,
                cause: NetError::Truncated {
                    need: (seq - self.expected) as usize,
                    have: 0,
                },
            };
        }
    }
}

/// First offset in `hay` (after 0) where `MAGIC` begins, if any.
fn find_magic(hay: &[u8]) -> Option<usize> {
    hay.windows(4)
        .skip(1)
        .position(|w| w == MAGIC)
        .map(|p| p + 1)
}

/// Length of the longest *suffix* of `hay` that is a prefix of `MAGIC`
/// (those bytes might become a magic once more arrive, so keep them).
fn longest_magic_prefix(hay: &[u8]) -> usize {
    for keep in (1..=3.min(hay.len())).rev() {
        if hay[hay.len() - keep..] == MAGIC[..keep] {
            return keep;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn frames_roundtrip_in_order_across_arbitrary_chunking() {
        let frames: Vec<Vec<u8>> = (1..=5u32)
            .map(|s| encode_frame(s, format!("payload-{s}").as_bytes()))
            .collect();
        let stream: Vec<u8> = frames.concat();
        for chunk in [1usize, 3, 7, stream.len()] {
            let mut fb = FrameBuffer::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                fb.extend(piece);
                loop {
                    match fb.poll() {
                        FrameEvent::Frame { seq, payload } => got.push((seq, payload)),
                        FrameEvent::Need => break,
                        other => panic!("clean stream produced {other:?}"),
                    }
                }
            }
            assert_eq!(got.len(), 5, "chunk={chunk}");
            for (i, (seq, payload)) in got.iter().enumerate() {
                assert_eq!(*seq, i as u32 + 1);
                assert_eq!(payload, format!("payload-{seq}").as_bytes());
            }
            assert_eq!(fb.resynced_bytes(), 0);
        }
    }

    #[test]
    fn every_possible_bit_flip_is_rejected_then_resend_recovers() {
        let good = encode_frame(1, b"hello");
        for bit in 0..good.len() * 8 {
            let mut bad = good.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let mut fb = FrameBuffer::new();
            fb.extend(&bad);
            // Whatever the flipped bit hit — magic, header, payload, or
            // a checksum — the damaged frame must never be delivered.
            loop {
                match fb.poll() {
                    FrameEvent::Frame { seq, payload } => {
                        panic!("flipped bit {bit} delivered seq {seq} {payload:?}")
                    }
                    FrameEvent::NakNeeded { last_ok, .. } => assert_eq!(last_ok, 0),
                    FrameEvent::Stale { .. } => {}
                    FrameEvent::Need => break,
                }
            }
            // The "resend" then delivers exactly the original bytes.
            fb.extend(&good);
            let mut delivered = false;
            loop {
                match fb.poll() {
                    FrameEvent::Frame { seq: 1, payload } => {
                        assert_eq!(payload, b"hello");
                        delivered = true;
                    }
                    FrameEvent::Need => break,
                    _ => {}
                }
            }
            assert!(delivered, "resend after bit {bit} not delivered");
        }
    }

    #[test]
    fn truncated_frame_resyncs_on_next_magic_and_naks_the_gap() {
        let f1 = encode_frame(1, b"first");
        let f2 = encode_frame(2, b"second");
        let mut fb = FrameBuffer::new();
        fb.extend(&f1[..f1.len() - 3]); // frame 1 never finishes
        fb.extend(&f2);
        let mut nak = false;
        loop {
            match fb.poll() {
                FrameEvent::NakNeeded { last_ok: 0, .. } => nak = true,
                FrameEvent::Frame { seq: 2, .. } => {
                    panic!("frame 2 delivered before frame 1")
                }
                FrameEvent::Need => break,
                _ => {}
            }
        }
        assert!(nak, "gap must demand a NAK");
        // Peer resends 1 and 2.
        fb.extend(&f1);
        fb.extend(&f2);
        let mut got = Vec::new();
        loop {
            match fb.poll() {
                FrameEvent::Frame { seq, .. } => got.push(seq),
                FrameEvent::Need => break,
                _ => {}
            }
        }
        assert_eq!(got, vec![1, 2]);
        assert!(fb.resynced_bytes() > 0);
    }

    #[test]
    fn oversized_length_field_is_rejected_not_awaited() {
        // Forge a header that *checksums correctly* but advertises an
        // absurd length: the cap must reject it.
        let seq_le = 1u32.to_le_bytes();
        let len_le = u32::MAX.to_le_bytes();
        let hcrc = crc32(&[&seq_le, &len_le]);
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&seq_le);
        frame.extend_from_slice(&len_le);
        frame.extend_from_slice(&hcrc.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        let mut fb = FrameBuffer::new();
        fb.extend(&frame);
        match fb.poll() {
            FrameEvent::NakNeeded {
                cause: NetError::BadLength { .. },
                ..
            } => {}
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn stale_resends_are_skipped() {
        let f1 = encode_frame(1, b"one");
        let f2 = encode_frame(2, b"two");
        let mut fb = FrameBuffer::new();
        fb.extend(&f1);
        assert!(matches!(fb.poll(), FrameEvent::Frame { seq: 1, .. }));
        fb.extend(&f1); // duplicate
        fb.extend(&f2);
        assert!(matches!(fb.poll(), FrameEvent::Stale { seq: 1 }));
        assert!(matches!(fb.poll(), FrameEvent::Frame { seq: 2, .. }));
    }

    #[test]
    fn garbage_between_frames_is_skipped_by_magic_scan() {
        let f1 = encode_frame(1, b"one");
        let f2 = encode_frame(2, b"two");
        let mut fb = FrameBuffer::new();
        fb.extend(&f1);
        fb.extend(b"\x00\xFFgarbageMP"); // includes a magic prefix tail
        fb.extend(&f2);
        let mut got = Vec::new();
        loop {
            match fb.poll() {
                FrameEvent::Frame { seq, .. } => got.push(seq),
                FrameEvent::Need => break,
                _ => {}
            }
        }
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn empty_payload_frame_roundtrips() {
        let f = encode_frame(1, b"");
        let mut fb = FrameBuffer::new();
        fb.extend(&f);
        match fb.poll() {
            FrameEvent::Frame { seq: 1, payload } => assert!(payload.is_empty()),
            other => panic!("expected empty frame, got {other:?}"),
        }
    }
}
